"""Property tests: flattened collectives ≡ generator-spec collectives.

PR 2 flattened the collective algorithms' ``yield from`` towers into
inline-progress fast paths (see ``repro/mpi/collectives/algorithms.py``);
the original towers survive as the ``*_spec`` functions.  The two
implementations must be *observationally identical*: same per-rank
results, same virtual runtime, same dispatched-event and frame counts —
matching order, combine order and the rendezvous handshake are all
observable through those.  This mirrors ``tests/test_matching_equivalence.py``
(indexed vs linear matching): the spec is executable, and every randomized
configuration runs both implementations in real jobs and compares the
engine fingerprint.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from repro.mpi.collectives import algorithms as coll

OPS = ["sum", "prod", "max", "min"]
#: mixes power-of-two and odd sizes: allreduce/alltoall switch algorithms
SIZES = [2, 3, 4, 5, 8]
#: every shipped protocol: the flat wait loops specialize on handle type
#: (stock done predicate, needs_advance, needs_ack), and mirror's
#: multi-request SendHandles, SDR's ack gating and redMPI's per-send hash
#: traffic each exercise a different branch of those guards
PROTOCOLS = ["native", "sdr", "mirror", "leader", "redmpi"]


def _run(protocol: str, n_ranks: int, app, **kwargs):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    job = Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, cfg.degree))
    return job.launch(app, **kwargs).run()


def _norm(value):
    """Comparable form of an app result (numpy arrays → nested lists)."""
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.tolist())
    if isinstance(value, (list, tuple)):
        return [_norm(v) for v in value]
    return value


def _fingerprint(res):
    return {
        "results": {proc: _norm(v) for proc, v in sorted(res.app_results.items())},
        "runtime": repr(res.runtime),
        "finish": {p: repr(t) for p, t in sorted(res.finish_times.items())},
        "events": res.events,
        "frames": res.fabric["frames"],
        "bytes": res.fabric["bytes"],
        "by_kind": dict(sorted(res.fabric["by_kind"].items())),
    }


def _assert_equivalent(protocol, n, app, **kwargs):
    flat = _fingerprint(_run(protocol, n, app, impl="flat", **kwargs))
    spec = _fingerprint(_run(protocol, n, app, impl="spec", **kwargs))
    assert flat == spec, f"flattened collective diverged from spec ({protocol}, n={n})"


# ------------------------------------------------------------- applications
def _rooted_app(flat_fn, spec_fn, make_data):
    def app(mpi, impl, root):
        fn = flat_fn if impl == "flat" else spec_fn
        return (yield from fn(mpi, mpi.world, make_data(mpi), root))

    return app


def _op_app(flat_fn, spec_fn, make_data):
    def app(mpi, impl, op):
        fn = flat_fn if impl == "flat" else spec_fn
        return (yield from fn(mpi, mpi.world, make_data(mpi), op))

    return app


@settings(max_examples=40, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    root=st.integers(0, 7),
    protocol=st.sampled_from(PROTOCOLS),
    payload=st.sampled_from(["scalar", "array"]),
)
def test_bcast_equivalence(n, root, protocol, payload):
    def make_data(mpi):
        if payload == "array":
            return np.arange(6, dtype=np.float64) * (mpi.rank + 1)
        return float(mpi.rank * 10 + 1)

    app = _rooted_app(coll.bcast, coll.bcast_spec, make_data)
    _assert_equivalent(protocol, n, app, root=root % n)


@settings(max_examples=40, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    root=st.integers(0, 7),
    op=st.sampled_from(OPS),
    protocol=st.sampled_from(PROTOCOLS),
)
def test_reduce_equivalence(n, root, op, protocol):
    def app(mpi, impl, root, op):
        fn = coll.reduce if impl == "flat" else coll.reduce_spec
        return (yield from fn(mpi, mpi.world, float(mpi.rank + 2), op, root))

    _assert_equivalent(protocol, n, app, root=root % n, op=op)


@settings(max_examples=40, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    op=st.sampled_from(OPS),
    protocol=st.sampled_from(PROTOCOLS),
)
def test_allreduce_equivalence(n, op, protocol):
    def make_data(mpi):
        return np.array([mpi.rank + 1.0, mpi.rank * 0.5])

    app = _op_app(coll.allreduce, coll.allreduce_spec, make_data)
    _assert_equivalent(protocol, n, app, op=op)


@settings(max_examples=25, deadline=None)
@given(n=st.sampled_from(SIZES), protocol=st.sampled_from(PROTOCOLS))
def test_barrier_equivalence(n, protocol):
    def app(mpi, impl):
        fn = coll.barrier if impl == "flat" else coll.barrier_spec
        yield from fn(mpi, mpi.world)
        return mpi.wtime()

    _assert_equivalent(protocol, n, app)


@settings(max_examples=30, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    root=st.integers(0, 7),
    protocol=st.sampled_from(PROTOCOLS),
)
def test_gather_scatter_equivalence(n, root, protocol):
    def app(mpi, impl, root):
        gather_fn = coll.gather if impl == "flat" else coll.gather_spec
        scatter_fn = coll.scatter if impl == "flat" else coll.scatter_spec
        gathered = yield from gather_fn(mpi, mpi.world, mpi.rank * 3 + 1, root)
        chunks = gathered if mpi.rank == root else None
        back = yield from scatter_fn(mpi, mpi.world, chunks, root)
        return gathered, back

    _assert_equivalent(protocol, n, app, root=root % n)


@settings(max_examples=25, deadline=None)
@given(n=st.sampled_from(SIZES), protocol=st.sampled_from(PROTOCOLS))
def test_allgather_alltoall_equivalence(n, protocol):
    def app(mpi, impl):
        allgather_fn = coll.allgather if impl == "flat" else coll.allgather_spec
        alltoall_fn = coll.alltoall if impl == "flat" else coll.alltoall_spec
        everyone = yield from allgather_fn(mpi, mpi.world, mpi.rank + 0.5)
        swapped = yield from alltoall_fn(
            mpi, mpi.world, [mpi.rank * mpi.size + j for j in range(mpi.size)]
        )
        return everyone, swapped

    _assert_equivalent(protocol, n, app)


@settings(max_examples=25, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    op=st.sampled_from(OPS),
    protocol=st.sampled_from(PROTOCOLS),
)
def test_scan_reduce_scatter_equivalence(n, op, protocol):
    def app(mpi, impl, op):
        scan_fn = coll.scan if impl == "flat" else coll.scan_spec
        rs_fn = coll.reduce_scatter_block if impl == "flat" else coll.reduce_scatter_block_spec
        prefix = yield from scan_fn(mpi, mpi.world, float(mpi.rank + 1), op)
        mine = yield from rs_fn(mpi, mpi.world, [float(j + 1) for j in range(mpi.size)], op)
        return prefix, mine

    _assert_equivalent(protocol, n, app, op=op)


# --------------------------------------------------------- deterministic mix
@pytest.mark.parametrize("protocol", PROTOCOLS)
@pytest.mark.parametrize("n", [4, 6])
def test_mixed_collective_program_equivalence(protocol, n):
    """A program interleaving every collective (including a rendezvous-size
    payload) fingerprints identically under both implementations."""

    def app(mpi, impl):
        flat = impl == "flat"
        acc = 0.0
        for it in range(2):
            root = it % mpi.size
            yield from (coll.barrier if flat else coll.barrier_spec)(mpi, mpi.world)
            data = yield from (coll.bcast if flat else coll.bcast_spec)(
                mpi, mpi.world, np.full(16384, float(mpi.rank + it)), root
            )
            acc += float(data[0])
            r = yield from (coll.reduce if flat else coll.reduce_spec)(
                mpi, mpi.world, float(mpi.rank), "sum", root
            )
            if r is not None:
                acc += r
            acc += (yield from (coll.allreduce if flat else coll.allreduce_spec)(
                mpi, mpi.world, float(mpi.rank + it), "max"
            ))
            acc += (yield from (coll.scan if flat else coll.scan_spec)(
                mpi, mpi.world, 1.0, "sum"
            ))
        return acc

    _assert_equivalent(protocol, n, app)
