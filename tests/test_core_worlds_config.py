"""ReplicaMap arithmetic, ReplicationConfig validation, membership service."""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import ReplicationConfig
from repro.core.membership import MembershipService, elect_substitute
from repro.core.worlds import ReplicaMap
from repro.harness.runner import Job, cluster_for
from repro.network.fabric import Fabric
from repro.network.topology import Cluster, split_halves_placement
from repro.sim.kernel import Simulator


class TestReplicaMap:
    def test_replica_major_layout(self):
        # paper Fig. 6 / §4.2: proc = rep * n + rank
        rmap = ReplicaMap(n_ranks=4, degree=2)
        assert rmap.phys(2, 0) == 2
        assert rmap.phys(2, 1) == 6
        assert rmap.replicas_of(3) == [3, 7]

    def test_roundtrip(self):
        rmap = ReplicaMap(5, 3)
        for proc in range(rmap.n_procs):
            assert rmap.phys(rmap.rank_of(proc), rmap.rep_of(proc)) == proc

    def test_bounds_checked(self):
        rmap = ReplicaMap(4, 2)
        with pytest.raises(ValueError):
            rmap.phys(4, 0)
        with pytest.raises(ValueError):
            rmap.phys(0, 2)
        with pytest.raises(ValueError):
            rmap.rank_of(8)

    @given(n=st.integers(1, 50), r=st.integers(1, 4))
    def test_property_bijection(self, n, r):
        rmap = ReplicaMap(n, r)
        seen = set()
        for rank in range(n):
            for rep in range(r):
                seen.add(rmap.phys(rank, rep))
        assert seen == set(range(n * r))


class TestConfig:
    def test_defaults(self):
        cfg = ReplicationConfig()
        assert cfg.degree == 2 and cfg.protocol == "sdr"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            ReplicationConfig(protocol="raft")

    def test_native_requires_degree_one(self):
        with pytest.raises(ValueError):
            ReplicationConfig(degree=2, protocol="native")

    def test_replication_requires_degree_two_plus(self):
        with pytest.raises(ValueError):
            ReplicationConfig(degree=1, protocol="sdr")

    def test_negative_detection_delay_rejected(self):
        with pytest.raises(ValueError):
            ReplicationConfig(detection_delay=-1.0)


def _membership(n_ranks=2, degree=2, delay=5e-6):
    sim = Simulator()
    cluster = Cluster(nodes=degree * 2, cores_per_node=max(1, n_ranks // 2))
    placement = split_halves_placement(cluster, n_ranks, degree)
    fabric = Fabric(sim, placement)
    rmap = ReplicaMap(n_ranks, degree)
    return sim, fabric, MembershipService(sim, fabric, rmap, detection_delay=delay)


class TestMembership:
    def test_crash_marks_dead(self):
        sim, fabric, svc = _membership()
        svc.crash(3)
        assert not svc.is_alive(3)
        assert svc.failed == [3]

    def test_notifications_arrive_after_detection_delay(self):
        sim, fabric, svc = _membership(delay=7e-6)
        svc.crash(3)
        sim.run()
        for proc in (0, 1, 2):
            frames = list(fabric.endpoint(proc).inbox)
            assert len(frames) == 1
            assert frames[0].kind == "svc"
            assert frames[0].payload == ("failure", 3)
            assert frames[0].arrived_at == -1.0 or True
        assert sim.now == 7e-6

    def test_dead_process_not_notified(self):
        sim, fabric, svc = _membership()
        svc.crash(3)
        sim.run()
        assert list(fabric.endpoint(3).inbox) == []

    def test_substitute_election_lowest_alive(self):
        sim, fabric, svc = _membership(n_ranks=2, degree=2)
        assert svc.substitute_rep(1) == 0
        svc.crash(1)  # p^0_1
        assert svc.substitute_rep(1) == 1
        svc.crash(3)  # p^1_1
        assert svc.substitute_rep(1) is None

    def test_rank_lost_detection(self):
        sim, fabric, svc = _membership()
        lost = []
        svc.on_rank_lost.append(lost.append)
        svc.crash(1)
        assert lost == []
        svc.crash(3)
        assert lost == [1]
        assert svc.lost_ranks == {1}

    def test_recovery_reverses_loss(self):
        sim, fabric, svc = _membership()
        svc.crash(3)
        svc.announce_recovery(3)
        assert svc.is_alive(3)
        assert 3 not in svc.failed

    def test_elect_substitute_helper(self):
        rmap = ReplicaMap(2, 3)
        alive = {0, 1, 4, 5}  # rank 1: replicas 1 (dead at rep0? phys(1,0)=1 alive), ...
        fn = lambda p: p in alive
        assert elect_substitute(rmap, 1, fn) == 0
        assert elect_substitute(rmap, 0, fn) == 0
        # phys(0, 1) == 2, so replica index 1 is the lowest alive
        assert elect_substitute(rmap, 0, lambda p: p in {2, 4}) == 1


class TestJobLostRanks:
    def test_all_replicas_dead_raises(self):
        import numpy as np

        def app(mpi, iters=50):
            for i in range(iters):
                right = (mpi.rank + 1) % mpi.size
                left = (mpi.rank - 1) % mpi.size
                yield from mpi.sendrecv(np.array([1.0]), dest=right, source=left)
                yield from mpi.compute(5e-6)

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2)).launch(app)
        job.crash(1, 0, at=20e-6)
        job.crash(1, 1, at=40e-6)
        with pytest.raises(Exception) as err:
            job.run()
        assert "lost" in str(err.value) or "deadlock" in str(err.value)
