"""Determinism regression: the optimized engine must be bit-identical.

The tentpole perf work (indexed matching, slotted hot-path objects, the
no-trace dispatch loop, copy-on-write payloads) is only admissible because
it does not change *what* the simulator computes: virtual times, dispatched
event counts, and frame counts are part of the reproduction's contract.

``GOLDEN`` below was recorded from the seed engine (commit 3bc06e8, linear
matching, closure-based delivery) by running this module as a script::

    PYTHONPATH=src python tests/test_determinism_regression.py

Each scenario runs twice per test: run-to-run equality catches accidental
nondeterminism (e.g. iteration over an unordered container on the hot
path), equality against GOLDEN catches semantic drift of the engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from repro.mpi.datatypes import Phantom

# The fingerprinted workloads are the *same* functions the perf harness
# measures and the ablation drivers run — imported from the scenario
# registry, not copied, so the goldens always pin the workload shape that
# BENCH_engine.json's trajectory is measured on.
from repro.scenarios import anysource_fanin, ring_collectives


def collective_suite(mpi, iters=4, nbytes=65536):
    """Every collective the engine ships, exercised per iteration.

    Pins the tree/ring/recursive-doubling schedules (peer choices, tag
    assignment, combine order) of the collective algorithms: the flattened
    fast paths must produce the identical frame/event stream the generator
    spec produced when this golden was recorded.
    """
    n = mpi.size
    acc = 0.0
    for it in range(iters):
        yield from mpi.barrier()
        root = it % n
        data = yield from mpi.bcast(np.arange(8, dtype=np.float64) + it, root=root)
        acc += float(data[0])
        r = yield from mpi.reduce(float(mpi.rank + it), op="sum", root=root)
        if r is not None:
            acc += float(r)
        acc += float((yield from mpi.allreduce(float(mpi.rank), op="max")))
        gathered = yield from mpi.gather(mpi.rank * 2 + it, root=root)
        chunks = gathered if mpi.rank == root else None
        acc += float((yield from mpi.scatter(chunks, root=root)))
        acc += float((yield from mpi.allgather(mpi.rank + it))[-1])
        swapped = yield from mpi.alltoall([mpi.rank * n + j for j in range(n)])
        acc += float(swapped[0])
        acc += float((yield from mpi.scan(float(mpi.rank), op="sum")))
        rs = yield from mpi.reduce_scatter([float(j + it) for j in range(n)], op="sum")
        acc += float(rs)
        yield from mpi.sendrecv(
            Phantom(nbytes), dest=(mpi.rank + 1) % n, source=(mpi.rank - 1) % n, sendtag=9
        )
    return acc


def pingpong(mpi, rounds=30):
    peer = mpi.rank ^ 1
    if peer >= mpi.size:
        return 0
    for r in range(rounds):
        if mpi.rank < peer:
            yield from mpi.send(np.arange(4, dtype=np.float64), dest=peer, tag=r % 3)
            d, _ = yield from mpi.recv(source=peer, tag=r % 3)
        else:
            d, _ = yield from mpi.recv(source=peer, tag=r % 3)
            yield from mpi.send(np.arange(4, dtype=np.float64), dest=peer, tag=r % 3)
    return rounds


# ----------------------------------------------------------------- scenarios
def _job(protocol: str, n_ranks: int, degree: int = 2) -> Job:
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=degree, protocol=protocol)
    return Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, cfg.degree))


def run_sdr_anysource():
    return _job("sdr", 6).launch(anysource_fanin, rounds=20).run(), None


def run_leader_anysource():
    return _job("leader", 6).launch(anysource_fanin, rounds=20).run(), None


def run_mirror_pingpong():
    return _job("mirror", 4).launch(pingpong, rounds=30).run(), None


def run_native_collectives():
    return _job("native", 8).launch(ring_collectives, iters=12).run(), None


def run_native_collective_suite():
    return _job("native", 8).launch(collective_suite, iters=4).run(), None


def run_sdr_collective_suite():
    return _job("sdr", 6).launch(collective_suite, iters=3).run(), None


def run_sdr_crash_failover():
    job = _job("sdr", 4).launch(anysource_fanin, rounds=40)
    job.crash(rank=1, rep=1, at=2e-4)
    return job.run(), job


SCENARIOS = {
    "sdr-anysource": run_sdr_anysource,
    "leader-anysource": run_leader_anysource,
    "mirror-pingpong": run_mirror_pingpong,
    "native-collectives": run_native_collectives,
    "native-collective-suite": run_native_collective_suite,
    "sdr-collective-suite": run_sdr_collective_suite,
    "sdr-crash-failover": run_sdr_crash_failover,
}


def fingerprint(res) -> dict:
    """Engine-behaviour fingerprint: exact virtual time + effort counters."""
    return {
        "runtime": repr(res.runtime),
        "events": res.events,
        "frames": res.fabric["frames"],
        "bytes": res.fabric["bytes"],
        "by_kind": dict(sorted(res.fabric["by_kind"].items())),
        "unexpected": res.stat_total("unexpected_count"),
        "acks": res.stat_total("acks_sent"),
    }


# Recorded from the seed engine (linear MatchEngine, dataclass frames,
# closure-based fabric delivery) — see module docstring.
GOLDEN = {
    "leader-anysource": {
        "runtime": "0.0003385975999999975",
        "events": 4265,
        "frames": 900,
        "bytes": 19200,
        "by_kind": {"ctrl": 500, "eager": 400},
        "unexpected": 195,
        "acks": 400,
    },
    "mirror-pingpong": {
        "runtime": "4.581839999999999e-05",
        "events": 1737,
        "frames": 480,
        "bytes": 15360,
        "by_kind": {"eager": 480},
        "unexpected": 0,
        "acks": 0,
    },
    # The two collective-suite goldens were recorded from the PR 1 engine
    # (commit 0d20d60, generator-tower collectives) just before the
    # flattened collective fast paths landed — they pin the full schedule
    # of every collective algorithm, including the rendezvous handshake.
    "native-collective-suite": {
        "runtime": "0.00014387140000000087",
        "events": 3593,
        "frames": 932,
        "bytes": 2109376,
        "by_kind": {"cts": 32, "data": 32, "eager": 836, "rts": 32},
        "unexpected": 42,
        "acks": 0,
    },
    "sdr-collective-suite": {
        "runtime": "0.00028292180000000076",
        "events": 7626,
        "frames": 1620,
        "bytes": 2395548,
        "by_kind": {"ctrl": 774, "cts": 36, "data": 36, "eager": 738, "rts": 36},
        "unexpected": 163,
        "acks": 774,
    },
    "native-collectives": {
        "runtime": "0.00020557440000000058",
        "events": 2430,
        "frames": 576,
        "bytes": 6302976,
        "by_kind": {"cts": 96, "data": 96, "eager": 288, "rts": 96},
        "unexpected": 0,
        "acks": 0,
    },
    "sdr-anysource": {
        "runtime": "0.00028157400000000063",
        "events": 3924,
        "frames": 800,
        "bytes": 16000,
        "by_kind": {"ctrl": 400, "eager": 400},
        "unexpected": 172,
        "acks": 400,
    },
    "sdr-crash-failover": {
        "runtime": "0.00032588159999999785",
        "events": 4344,
        "frames": 898,
        "bytes": 17600,
        "by_kind": {"ctrl": 434, "eager": 464},
        "unexpected": 196,
        "acks": 434,
    },
}


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_fingerprint_stable_and_golden(name):
    res1, _ = SCENARIOS[name]()
    res2, _ = SCENARIOS[name]()
    fp1, fp2 = fingerprint(res1), fingerprint(res2)
    assert fp1 == fp2, f"{name}: run-to-run nondeterminism"
    assert fp1 == GOLDEN[name], f"{name}: engine drifted from seed-engine golden"


if __name__ == "__main__":
    import json

    print(json.dumps({name: fingerprint(fn()[0]) for name, fn in sorted(SCENARIOS.items())}, indent=4))
