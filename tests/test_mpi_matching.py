"""Unit + property tests for MPI message matching."""

from hypothesis import given, settings, strategies as st

from repro.mpi.matching import MatchEngine
from repro.mpi.pml import Envelope, PmlRecvRequest
from repro.mpi.status import ANY_SOURCE, ANY_TAG


def env(ctx=("w",), src=0, tag=0, seq=0):
    return Envelope(
        kind="eager",
        ctx=ctx,
        src_rank=src,
        tag=tag,
        world_src=src,
        world_dst=1,
        seq=seq,
        nbytes=8,
        data=None,
        src_phys=src,
        dst_phys=1,
    )


def recv(ctx=("w",), source=0, tag=0):
    return PmlRecvRequest(ctx, source, tag)


class TestBasicMatching:
    def test_exact_match(self):
        m = MatchEngine()
        r = recv(source=3, tag=7)
        m.post(r)
        assert m.arrive(env(src=3, tag=7)) is r

    def test_source_mismatch_goes_unexpected(self):
        m = MatchEngine()
        m.post(recv(source=3, tag=7))
        assert m.arrive(env(src=4, tag=7)) is None
        assert m.unexpected_count == 1

    def test_tag_mismatch_goes_unexpected(self):
        m = MatchEngine()
        m.post(recv(source=3, tag=7))
        assert m.arrive(env(src=3, tag=8)) is None

    def test_ctx_mismatch(self):
        m = MatchEngine()
        m.post(recv(ctx=("a",)))
        assert m.arrive(env(ctx=("b",))) is None

    def test_any_source_matches(self):
        m = MatchEngine()
        r = recv(source=ANY_SOURCE, tag=7)
        m.post(r)
        assert m.arrive(env(src=99, tag=7)) is r

    def test_any_tag_matches(self):
        m = MatchEngine()
        r = recv(source=1, tag=ANY_TAG)
        m.post(r)
        assert m.arrive(env(src=1, tag=42)) is r

    def test_post_matches_unexpected_first(self):
        m = MatchEngine()
        e = env(src=2, tag=5)
        m.arrive(e)
        assert m.post(recv(source=2, tag=5)) is e
        assert len(m.unexpected) == 0


class TestOrdering:
    def test_posted_receives_match_in_post_order(self):
        m = MatchEngine()
        r1, r2 = recv(source=ANY_SOURCE), recv(source=ANY_SOURCE)
        m.post(r1)
        m.post(r2)
        assert m.arrive(env(src=1)) is r1
        assert m.arrive(env(src=2)) is r2

    def test_unexpected_matched_in_arrival_order(self):
        m = MatchEngine()
        e1, e2 = env(src=1, seq=0), env(src=1, seq=1)
        m.arrive(e1)
        m.arrive(e2)
        assert m.post(recv(source=1)) is e1
        assert m.post(recv(source=1)) is e2

    def test_first_compatible_wins_not_first_posted(self):
        m = MatchEngine()
        specific = recv(source=5)
        m.post(specific)
        anyrecv = recv(source=ANY_SOURCE)
        m.post(anyrecv)
        assert m.arrive(env(src=3)) is anyrecv
        assert m.arrive(env(src=5)) is specific


class TestCancelAndProbe:
    def test_cancel_posted(self):
        m = MatchEngine()
        r = recv()
        m.post(r)
        assert m.cancel(r)
        assert m.arrive(env()) is None

    def test_cancel_after_match_fails(self):
        m = MatchEngine()
        r = recv()
        m.post(r)
        m.arrive(env())
        assert not m.cancel(r)

    def test_probe_finds_unexpected(self):
        m = MatchEngine()
        m.arrive(env(src=2, tag=9))
        st_ = m.probe(("w",), ANY_SOURCE, 9)
        assert st_ is not None and st_.src_rank == 2

    def test_probe_misses(self):
        m = MatchEngine()
        m.arrive(env(src=2, tag=9))
        assert m.probe(("w",), 3, ANY_TAG) is None

    def test_stats_counters(self):
        m = MatchEngine()
        m.arrive(env())
        m.arrive(env(seq=1))
        m.post(recv(source=ANY_SOURCE))
        s = m.stats()
        assert s["unexpected_count"] == 2
        assert s["unexpected_peak"] == 2
        assert s["unexpected_pending"] == 1


@settings(max_examples=60)
@given(
    msgs=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=20
    )
)
def test_property_every_message_matched_exactly_once(msgs):
    """Posting one compatible wildcard receive per message drains the queue."""
    m = MatchEngine()
    for src, tag in msgs:
        m.arrive(env(src=src, tag=tag))
    matched = []
    for _ in msgs:
        got = m.post(recv(source=ANY_SOURCE, tag=ANY_TAG))
        assert got is not None
        matched.append((got.src_rank, got.tag))
    assert matched == msgs  # arrival order preserved
    assert len(m.unexpected) == 0 and len(m.posted) == 0


@settings(max_examples=60)
@given(
    order=st.permutations(list(range(6))),
)
def test_property_specific_receives_match_their_source(order):
    """With per-source receives, matching pairs sources correctly whatever
    the arrival interleaving."""
    m = MatchEngine()
    for src in order:
        m.arrive(env(src=src, tag=1))
    for src in range(6):
        got = m.post(recv(source=src, tag=1))
        assert got is not None and got.src_rank == src
