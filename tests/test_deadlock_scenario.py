"""The §3.3 deadlock argument, executable.

The paper: two processes each do MPI_Irecv; MPI_Send; MPI_Wait(recv).  The
Send cannot complete before the acks arrive; the acks can only be produced
if reception completes *at the library level* while the peers are stuck
inside MPI_Send.  Acking at irecvComplete (SDR-MPI's choice) therefore
works; acking when the receive completes at the *application* level (i.e.
when MPI_Wait is finally called on it) deadlocks, because neither process
ever gets there.
"""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.core.sdr import SdrProtocol
from repro.harness.runner import Job, _PROTOCOL_CLASSES, cluster_for
from repro.mpi.errors import DeadlockError


def exchange(mpi):
    """Irecv; Send; Wait(recv) — both ranks simultaneously (§3.3)."""
    peer = 1 - mpi.rank
    recv = yield from mpi.irecv(source=peer, tag=1)
    yield from mpi.send(np.ones(1), dest=peer, tag=1)  # blocks awaiting acks
    yield from mpi.wait(recv)
    return float(recv.data[0])


class AckOnAppCompletionProtocol(SdrProtocol):
    """The broken design the paper warns against: acks are only emitted
    when the application completes the receive (never at irecvComplete)."""

    name = "sdr-late-ack"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # Undo SDR's irecvComplete hook; remember what to ack later.
        self.pml.on_recv_complete.remove(self._ack_on_recv_complete)
        self.pml.on_recv_complete.append(self._remember_only)
        self._unacked = []

    def _remember_only(self, env, recv):
        self._unacked.append(env)
        yield from ()

    def app_irecv(self, ctx, source, tag, buf=None):
        handle = yield from super().app_irecv(ctx, source, tag, buf)
        return _LateAckHandle(handle, self, ctx)


class _LateAckHandle:
    """Wrapper whose advance() acks only once the app waits the receive."""

    def __init__(self, inner, proto, ctx):
        self._inner = inner
        self._proto = proto
        self._ctx = ctx

    @property
    def done(self):
        return self._inner.done

    @property
    def data(self):
        return self._inner.data

    @property
    def status(self):
        return self._inner.status

    @property
    def pml_req(self):
        return self._inner.pml_req

    def advance(self):
        gen = self._inner.advance()
        if gen is not None:
            yield from gen
        if self._inner.pml_req.done:
            for env in list(self._proto._unacked):
                if env.ctx == self._ctx:
                    self._proto._unacked.remove(env)
                    yield from self._proto._send_acks(
                        env.world_src, self._proto.rmap.rep_of(env.src_phys), env.seq
                    )


def _job(protocol_cls):
    _PROTOCOL_CLASSES["_test"] = protocol_cls
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    object.__setattr__(cfg, "protocol", "_test")
    job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
    del _PROTOCOL_CLASSES["_test"]
    return job


def test_ack_on_irecv_complete_is_deadlock_free():
    """SDR-MPI's design: the exchange completes."""
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
    res = job.launch(exchange).run()
    assert all(v == 1.0 for v in res.app_results.values())


def test_ack_on_app_completion_deadlocks():
    """The counterfactual: every process stuck in MPI_Send forever."""
    job = _job(AckOnAppCompletionProtocol)
    job.launch(exchange)
    with pytest.raises(DeadlockError) as err:
        job.run()
    # all four physical processes are blocked
    assert len(err.value.blocked) == 4


def test_unexpected_eager_message_still_acked():
    """irecvComplete covers unexpected eager messages: the message is fully
    in the library even though no receive is posted — the ack must flow,
    letting the sender's MPI_Send complete before the receive is posted."""

    def app(mpi):
        peer = 1 - mpi.rank
        if mpi.rank == 0:
            t0 = mpi.wtime()
            yield from mpi.send(np.ones(1), dest=peer, tag=1)
            send_done = mpi.wtime() - t0
            return send_done
        # receiver sits in an unrelated MPI call (probe loop), receive
        # posted only much later
        yield from mpi.compute(50e-6)
        st = yield from mpi.probe(source=0, tag=1)  # drains, acks fire here
        yield from mpi.compute(100e-6)
        data, _ = yield from mpi.recv(source=0, tag=1)
        return float(data[0])

    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
    res = job.launch(app).run()
    # rank 0's Send completed as soon as the library-level reception +
    # ack happened (~50 us), NOT after the 100 us post-probe delay
    assert res.app_results[0] < 120e-6
    assert res.app_results[1] == 1.0
