"""Unit tests for generator-based processes."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.sync import Event, Timeout


def test_process_runs_and_returns_value(sim):
    def body():
        yield Timeout(sim, 1.0)
        yield Timeout(sim, 2.0)
        return "done"

    p = Process(sim, body(), name="t")
    sim.run()
    assert not p.alive
    assert p.value == "done"
    assert sim.now == 3.0


def test_yielded_event_value_flows_back(sim):
    got = []

    def body():
        v = yield Timeout(sim, 1.0, value="tick")
        got.append(v)

    Process(sim, body())
    sim.run()
    assert got == ["tick"]


def test_failed_event_throws_into_generator(sim):
    caught = []

    def body():
        ev = Event(sim)
        ev.fail(ValueError("boom"))
        try:
            yield ev
        except ValueError as exc:
            caught.append(str(exc))

    Process(sim, body())
    sim.run()
    assert caught == ["boom"]


def test_escaped_exception_recorded_and_join_fails(sim):
    def body():
        yield Timeout(sim, 1.0)
        raise RuntimeError("died")

    p = Process(sim, body())
    joined = []
    p.join().add_callback(lambda e: joined.append(e.ok))
    sim.run()
    assert isinstance(p.exception, RuntimeError)
    assert joined == [False]


def test_yielding_non_event_is_an_error(sim):
    def body():
        yield "not an event"

    p = Process(sim, body())
    sim.run()
    assert p.exception is not None
    assert "yield" in str(p.exception)


def test_yielding_negative_charge_is_an_error(sim):
    def body():
        yield -1.0

    p = Process(sim, body())
    sim.run()
    assert p.exception is not None
    assert "yield" in str(p.exception)


def test_yielding_float_charges_virtual_time(sim):
    """`yield seconds` is the allocation-free equivalent of a Timeout."""
    seen = []

    def body():
        yield 1.5
        seen.append(sim.now)
        yield 0.5
        seen.append(sim.now)
        return "done"

    p = Process(sim, body())
    sim.run()
    assert seen == [1.5, 2.0]
    assert p.value == "done"
    assert sim.events_dispatched == 4  # start + two charges + terminated


def test_float_charge_counts_events_like_timeout(sim):
    """Charge scheduling is observationally identical to Timeout yields."""
    from repro.sim.kernel import Simulator

    def body_timeout(s):
        yield Timeout(s, 1.0)
        yield Timeout(s, 2.0)

    def body_charge(s):
        yield 1.0
        yield 2.0

    s1, s2 = Simulator(), Simulator()
    Process(s1, body_timeout(s1))
    Process(s2, body_charge(s2))
    s1.run()
    s2.run()
    assert s1.events_dispatched == s2.events_dispatched
    assert s1.now == s2.now


def test_non_generator_body_rejected(sim):
    with pytest.raises(TypeError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_crash_stops_process_immediately(sim):
    progress = []

    def body():
        for i in range(10):
            progress.append(i)
            yield Timeout(sim, 1.0)

    p = Process(sim, body())
    sim.call_at(2.5, p.crash)
    sim.run()
    assert p.crashed and not p.alive
    assert progress == [0, 1, 2]  # i=3 would have run at t=3.0


def test_crash_is_idempotent(sim):
    def body():
        yield Timeout(sim, 10.0)

    p = Process(sim, body())
    sim.call_at(1.0, p.crash)
    sim.call_at(2.0, p.crash)
    sim.run()
    assert p.crashed


def test_crash_runs_generator_finally(sim):
    cleaned = []

    def body():
        try:
            yield Timeout(sim, 10.0)
        finally:
            cleaned.append(True)

    p = Process(sim, body())
    sim.call_at(1.0, p.crash)
    sim.run()
    assert cleaned == [True]


def test_join_returns_value(sim):
    def worker():
        yield Timeout(sim, 2.0)
        return 99

    def waiter(w):
        v = yield w.join()
        return v * 2

    w = Process(sim, worker())
    p = Process(sim, waiter(w))
    sim.run()
    assert p.value == 198


def test_on_exit_callback(sim):
    exited = []

    def body():
        yield Timeout(sim, 1.0)

    Process(sim, body(), on_exit=lambda p: exited.append(p.name), name="w")
    sim.run()
    assert exited == ["w"]


def test_processes_interleave_by_virtual_time(sim):
    order = []

    def body(name, dt):
        for _ in range(3):
            yield Timeout(sim, dt)
            order.append((name, sim.now))

    Process(sim, body("fast", 1.0))
    Process(sim, body("slow", 2.5))
    sim.run()
    assert order == sorted(order, key=lambda x: x[1])
    assert [n for n, _ in order].count("fast") == 3
