"""Tracing, Lamport clocks, and the send-determinism checker."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.patterns import anysource_reduce, master_worker, ring, stencil_allreduce
from repro.harness.runner import Job, cluster_for
from repro.trace.determinism import check_send_determinism
from repro.trace.events import SendEvent
from repro.trace.lamport import LamportClock, causal_order_violations, happened_before
from repro.trace.recorder import TraceSet


class TestLamport:
    def test_tick_monotone(self):
        c = LamportClock()
        assert [c.tick() for _ in range(3)] == [1, 2, 3]

    def test_merge_takes_max_plus_one(self):
        c = LamportClock()
        c.tick()
        assert c.merge(10) == 11
        assert c.merge(2) == 12

    def test_happened_before_transitive(self):
        edges = [("a", "b"), ("b", "c"), ("x", "y")]
        assert happened_before(edges, "a", "c")
        assert not happened_before(edges, "c", "a")
        assert not happened_before(edges, "a", "y")

    def test_clock_condition_holds_for_simulated_run(self):
        """Run a real exchange, stamp events with Lamport clocks, verify
        C(a) < C(b) along every program-order and message edge."""
        stamps = {}
        edges = []

        def app(mpi):
            clock = LamportClock()
            peer = 1 - mpi.rank
            me = mpi.rank
            prev = None
            for i in range(5):
                if mpi.rank == 0:
                    s = clock.stamp_send()
                    stamps[("s", me, i)] = s
                    yield from mpi.send(np.array([float(s)]), dest=peer, tag=1)
                    node = ("s", me, i)
                else:
                    data, _ = yield from mpi.recv(source=peer, tag=1)
                    r = clock.merge(int(data[0]))
                    stamps[("r", me, i)] = r
                    edges.append((("s", peer, i), ("r", me, i)))
                    node = ("r", me, i)
                if prev is not None:
                    edges.append((prev, node))
                prev = node

        Job(2, cluster=cluster_for(2)).launch(app).run()
        assert causal_order_violations(stamps, edges) == []

    @settings(max_examples=30)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20))
    def test_property_merge_is_monotone(self, received):
        c = LamportClock()
        last = 0
        for r in received:
            now = c.merge(r)
            assert now > last and now > r
            last = now


class TestRecorder:
    def test_records_send_keys_in_order(self):
        traces = TraceSet()
        job = Job(2, cluster=cluster_for(2), recorder_factory=traces.factory)

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(2), dest=1, tag=3)
                yield from mpi.send(np.ones(4), dest=1, tag=4)
            else:
                yield from mpi.recv(source=0, tag=3)
                yield from mpi.recv(source=0, tag=4)

        job.launch(app).run()
        seqs = traces.send_sequences()
        assert len(seqs[0]) == 2
        assert seqs[0][0][-2:] == (3, 16)  # (tag, nbytes)
        assert seqs[0][1][-2:] == (4, 32)
        assert seqs[1] == []

    def test_send_event_key_excludes_timing(self):
        e = SendEvent(("w",), 0, 1, 1, 5, 64)
        assert e.key() == (("w",), 0, 1, 1, 5, 64)


class TestDeterminismChecker:
    def test_ring_is_send_deterministic(self):
        assert bool(check_send_determinism(ring, 4, replays=3))

    def test_anysource_reduce_is_send_deterministic(self):
        """Fig. 2: ANY_SOURCE reception order varies, sends do not."""
        report = check_send_determinism(anysource_reduce, 4, replays=4)
        assert report.send_deterministic, report.divergences

    def test_stencil_is_send_deterministic(self):
        assert bool(check_send_determinism(stencil_allreduce, 4, replays=3, iters=4))

    def test_master_worker_is_not_send_deterministic(self):
        """The counterexample class from [Cappello et al. 2010]."""
        report = check_send_determinism(master_worker, 4, replays=5, tasks=9)
        assert not report.send_deterministic
        assert report.divergences  # at least one divergent send recorded

    def test_report_carries_lengths(self):
        report = check_send_determinism(ring, 3, replays=2)
        assert len(report.lengths) == 2
        assert set(report.lengths[0]) == {0, 1, 2}

    def test_nas_kernels_are_send_deterministic(self):
        from repro.apps.nas import cg_rank, mg_rank

        assert bool(check_send_determinism(cg_rank, 4, replays=3, klass="S", iters=3))
        assert bool(check_send_determinism(mg_rank, 4, replays=3, klass="S", iters=2))

    def test_anysource_apps_are_send_deterministic(self):
        """HPCCG and CM1 — the paper's Table 2 pair — must pass despite
        their wildcard receptions."""
        from repro.apps.cm1 import cm1_rank
        from repro.apps.hpccg import hpccg_rank

        assert bool(check_send_determinism(hpccg_rank, 4, replays=3, nx=8, ny=8, nz=8, iters=3))
        assert bool(check_send_determinism(cm1_rank, 4, replays=3, n=16, steps=2))
