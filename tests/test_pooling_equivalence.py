"""Property tests: arena-pooled engine ≡ no-pooling engine.

PR 3 extended the Frame/Envelope arenas to every envelope kind (eager/rts/
data cross the interposition surface under the explicit ownership contract
— see :mod:`repro.mpi.pml`).  Recycling is a host-side optimisation and
must be *observationally invisible*: ``Job(pooling=False)`` bypasses both
arenas (every acquire constructs a fresh object; the ownership accounting
stays on), and every randomized configuration here runs the same program
under both modes and compares the full engine fingerprint — per-rank
results, bit-identical virtual times, dispatched-event and frame counts.
This mirrors ``tests/test_matching_equivalence.py`` (indexed vs linear
matching) and ``tests/test_collectives_equivalence.py`` (flat vs spec
collectives): the bypass mode is the executable specification of what
pooling must preserve.

All five protocols are exercised: native (no filter, no hooks), sdr (ack
hooks + ctrl recycling), mirror (duplicate drops release borrowed
envelopes), leader (deferred receives inflate the unexpected queue, whose
entries the arena owns), and redmpi (per-send hash ctrl traffic + digest
checks inside the borrow window).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from repro.mpi.datatypes import Phantom

#: mixes power-of-two and odd sizes (collective algorithm switches)
SIZES = [2, 3, 4, 5]
PROTOCOLS = ["native", "sdr", "mirror", "leader", "redmpi"]


def _run(protocol: str, n_ranks: int, app, pooling: bool, **kwargs):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    job = Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, cfg.degree), pooling=pooling)
    return job.launch(app, **kwargs).run()


def _norm(value):
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.tolist())
    if isinstance(value, (list, tuple)):
        return [_norm(v) for v in value]
    return value


def _fingerprint(res):
    return {
        "results": {proc: _norm(v) for proc, v in sorted(res.app_results.items())},
        "runtime": repr(res.runtime),
        "finish": {p: repr(t) for p, t in sorted(res.finish_times.items())},
        "events": res.events,
        "frames": res.fabric["frames"],
        "bytes": res.fabric["bytes"],
        "by_kind": dict(sorted(res.fabric["by_kind"].items())),
        "unexpected": res.stat_total("unexpected_count"),
        "acks": res.stat_total("acks_sent"),
    }


def _assert_equivalent(protocol, n, app, **kwargs):
    pooled = _run(protocol, n, app, pooling=True, **kwargs)
    bypass = _run(protocol, n, app, pooling=False, **kwargs)
    assert _fingerprint(pooled) == _fingerprint(bypass), (
        f"pooled engine diverged from no-pooling spec ({protocol}, n={n})"
    )


# ------------------------------------------------------------ applications
def mixed_p2p(mpi, rounds, anonymous, tagset):
    """Eager p2p with optional wildcards: matched, unexpected and reorder
    paths, all below the eager limit."""
    acc = 0.0
    if mpi.rank == 0:
        for r in range(rounds):
            for _ in range(mpi.size - 1):
                src = mpi.ANY_SOURCE if anonymous else (_ % (mpi.size - 1)) + 1
                d, st = yield from mpi.recv(source=src, tag=tagset[r % len(tagset)])
                acc += float(d[0])
            for dst in range(1, mpi.size):
                yield from mpi.send(np.array([acc]), dest=dst, tag=tagset[r % len(tagset)])
    else:
        for r in range(rounds):
            yield from mpi.send(
                np.array([float(mpi.rank + r)]), dest=0, tag=tagset[r % len(tagset)]
            )
            d, _ = yield from mpi.recv(source=0, tag=tagset[r % len(tagset)])
            acc = float(d[0])
    return acc


def rendezvous_ring(mpi, iters, nbytes):
    """Modeled large payloads force the rts/cts/data path + a collective."""
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    acc = 0.0
    for _ in range(iters):
        yield from mpi.sendrecv(Phantom(nbytes), dest=right, source=left, sendtag=5)
        acc += float((yield from mpi.allreduce(float(mpi.rank), op="sum")))
    return acc


def collective_mix(mpi, iters):
    acc = 0.0
    for it in range(iters):
        root = it % mpi.size
        data = yield from mpi.bcast(np.arange(4, dtype=np.float64) + it, root=root)
        acc += float(data[0])
        acc += float((yield from mpi.allreduce(float(mpi.rank + it), op="max")))
        gathered = yield from mpi.gather(mpi.rank + it, root=root)
        acc += float((yield from mpi.scatter(gathered if mpi.rank == root else None, root=root)))
    return acc


# ----------------------------------------------------------------- the law
@settings(max_examples=30, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    protocol=st.sampled_from(PROTOCOLS),
    rounds=st.integers(1, 4),
    anonymous=st.booleans(),
    tagset=st.sampled_from([(1,), (1, 2), (3, 1, 2)]),
)
def test_p2p_pooling_equivalence(n, protocol, rounds, anonymous, tagset):
    _assert_equivalent(
        protocol, n, mixed_p2p, rounds=rounds, anonymous=anonymous, tagset=tagset
    )


@settings(max_examples=20, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    protocol=st.sampled_from(PROTOCOLS),
    iters=st.integers(1, 3),
    nbytes=st.sampled_from([16384, 65536]),
)
def test_rendezvous_pooling_equivalence(n, protocol, iters, nbytes):
    _assert_equivalent(protocol, n, rendezvous_ring, iters=iters, nbytes=nbytes)


@settings(max_examples=20, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    protocol=st.sampled_from(PROTOCOLS),
    iters=st.integers(1, 3),
)
def test_collective_pooling_equivalence(n, protocol, iters):
    _assert_equivalent(protocol, n, collective_mix, iters=iters)


def test_bypass_mode_really_bypasses():
    """pooling=False must construct fresh on every acquire (pool stays
    empty) while the ownership accounting still balances."""
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(4, cfg=cfg, cluster=cluster_for(4, 2), pooling=False)
    job.launch(mixed_p2p, rounds=3, anonymous=True, tagset=(1, 2)).run()
    for pml in job.pmls.values():
        assert pml.env_allocated == pml.env_acquired  # no reuse ever
        assert len(pml._env_pool) == 0
    assert len(job.fabric._frame_pool) == 0
    assert job.fabric.frames_allocated == job.fabric.frames_acquired
