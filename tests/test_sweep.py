"""Sweep orchestrator: matrix validation, pooled determinism, store, report.

The determinism contract under test: every config's fingerprint is
byte-identical whether the sweep runs serially or across a
multiprocessing pool, cold cache or warm — the per-worker ShapeCache only
reuses construction that is a pure function of (protocol, degree,
n_ranks).  The hypothesis suite pins warm-vs-cold equivalence per config;
the pooled test pins serial-vs-pool equivalence over a whole matrix; the
crash test pins that a dying worker costs one config, not the sweep.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.campaign import OUTCOMES, CampaignConfig, run_case
from repro.harness.report import render_table, sweep_outcome_rows
from repro.harness.store import StoreError, SweepStore, atomic_write_text
from repro.harness.sweep import (
    DETECTOR_PROFILES,
    MIX_PROFILES,
    ShapeCache,
    SweepError,
    SweepSpec,
    _execute_point,
    render_sweep_report,
    run_sweep,
    verify_sample,
)

SMALL = SweepSpec(
    protocols=("native", "sdr"), degrees=(2,), ranks=(4,),
    workloads=("ring",), mixes=("clean", "full"), seeds=(0, 1),
)


class TestSpecValidation:
    def test_empty_axis_rejected(self):
        with pytest.raises(SweepError, match="'protocols' is empty"):
            SweepSpec(protocols=()).validate()
        with pytest.raises(SweepError, match="'seeds' is empty"):
            SweepSpec(seeds=()).validate()

    def test_unknown_values_rejected(self):
        with pytest.raises(SweepError, match="unknown 'tmr'"):
            SweepSpec(protocols=("sdr", "tmr")).validate()
        with pytest.raises(SweepError, match="unknown 'stencil'"):
            SweepSpec(workloads=("stencil",)).validate()
        with pytest.raises(SweepError, match="unknown 'cosmic'"):
            SweepSpec(mixes=("cosmic",)).validate()

    def test_degree_rules(self):
        # Any replicated protocol in the matrix demands degree >= 2 ...
        with pytest.raises(SweepError, match="'degrees'.*below the minimum 2"):
            SweepSpec(protocols=("native", "sdr"), degrees=(1,)).validate()
        # ... but a native-only sweep happily runs r=1.
        SweepSpec(protocols=("native",), degrees=(1,)).validate()

    def test_rank_and_seed_floors(self):
        with pytest.raises(SweepError, match="'ranks'.*below the minimum 2"):
            SweepSpec(ranks=(4, 1)).validate()
        with pytest.raises(SweepError, match="'seeds'.*below the minimum 0"):
            SweepSpec(seeds=(-1,)).validate()

    def test_duplicates_and_wrong_types_rejected(self):
        with pytest.raises(SweepError, match="duplicate"):
            SweepSpec(seeds=(0, 1, 0)).validate()
        with pytest.raises(SweepError, match="is not int"):
            SweepSpec(ranks=(4, "8")).validate()
        with pytest.raises(SweepError, match="is not int"):
            SweepSpec(seeds=(True,)).validate()  # bools are not seeds

    def test_scalar_knobs_validated(self):
        with pytest.raises(SweepError, match="steps"):
            SweepSpec(steps=0).validate()
        with pytest.raises(SweepError, match="active"):
            SweepSpec(active=1.0, horizon=1e-3).validate()

    def test_points_enumeration_and_native_dedup(self):
        # native ignores the degree axis: one emission per remaining axes,
        # not one per degree — no duplicate configs that would fingerprint
        # identically.
        spec = SweepSpec(
            protocols=("native", "sdr"), degrees=(2, 3), ranks=(4,),
            workloads=("ring",), mixes=("clean",), seeds=(0,),
        )
        pts = spec.points()
        assert len(pts) == 1 + 2  # native once, sdr at r=2 and r=3
        assert [p.index for p in pts] == list(range(len(pts)))
        assert spec.n_configs == len(pts)
        native = [p for p in pts if p.protocol == "native"]
        assert len(native) == 1 and native[0].effective_degree == 1
        assert native[0].label() == "native/r1/n4/ring/clean/s0"

    def test_campaign_config_applies_mix_profile(self):
        spec = SweepSpec(protocols=("sdr",), mixes=("clean",), seeds=(0,))
        cfg = spec.points()[0].campaign_config()
        assert isinstance(cfg, CampaignConfig)
        for knob, value in MIX_PROFILES["clean"].items():
            assert getattr(cfg, knob) == value
        # "full" is the campaign's own default odds: no overrides at all.
        assert MIX_PROFILES["full"] == {}


class TestShapeCache:
    def test_hit_miss_accounting(self):
        cache = ShapeCache()
        a = cache.get("sdr", 2, 4)
        b = cache.get("sdr", 2, 4)
        c = cache.get("native", 1, 4)
        assert a is b and c is not a
        assert cache.stats() == {"hits": 1, "misses": 2, "shapes": 2}

    @settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        protocol=st.sampled_from(["native", "sdr", "mirror"]),
        mix=st.sampled_from(sorted(MIX_PROFILES)),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_warm_cache_cannot_change_fingerprints(self, protocol, mix, seed):
        # Reusing campaign fingerprint machinery: the same config executed
        # against a cold cache and against a cache warmed by *other*
        # configs must produce byte-identical fingerprints.
        spec = SweepSpec(
            protocols=(protocol,), degrees=(2,), ranks=(4,),
            mixes=(mix,), seeds=(seed,),
        )
        point = spec.points()[0]
        cold = _execute_point(point, ShapeCache())
        warm_cache = ShapeCache()
        for p in ("native", "sdr", "mirror"):
            warm_cache.get(p, 1 if p == "native" else 2, 4)
        warm = _execute_point(point, warm_cache)
        assert cold["fingerprint"] == warm["fingerprint"]
        assert warm_cache.hits >= 1


class TestPooledExecution:
    def test_pool_matches_serial_byte_for_byte(self):
        serial = run_sweep(SMALL, workers=1)
        pooled = run_sweep(SMALL, workers=2)
        assert serial.fingerprints == pooled.fingerprints
        assert all(serial.fingerprints)  # every config actually ran
        assert pooled.cache["hits"] > 0  # the flyweight reuse is real
        assert pooled.worker_crashes == 0
        assert [r["index"] for r in pooled.records] == list(range(SMALL.n_configs))

    def test_worker_crash_marks_config_failed_and_keeps_draining(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "2")
        spec = SweepSpec(
            protocols=("native", "sdr"), degrees=(2,), ranks=(4,),
            workloads=("ring",), mixes=("clean",), seeds=(0, 1, 2),
        )
        result = run_sweep(spec, workers=2)
        assert len(result.records) == spec.n_configs  # the sweep drained
        assert result.worker_crashes == 1
        dead = [r for r in result.records if not r["fingerprint"]]
        assert len(dead) == 1 and dead[0]["index"] == 2
        assert dead[0]["outcome"] == "failed" and "worker" in dead[0]["error"]
        # Every other config still carries a real audited fingerprint.
        assert all(r["fingerprint"] for r in result.records if r["index"] != 2)

    def test_verify_sample_passes_and_catches_tampering(self):
        result = run_sweep(SMALL, workers=1)
        assert verify_sample(SMALL, result.records, k=3) == []
        tampered = [dict(r) for r in result.records]
        tampered[0]["fingerprint"] = tampered[0]["fingerprint"] + "x"
        mismatches = verify_sample(SMALL, tampered, k=SMALL.n_configs)
        assert len(mismatches) == 1 and "config #0" in mismatches[0]

    def test_invariant_violation_surfaces_in_result(self, monkeypatch):
        import repro.harness.sweep as sweep_mod
        from repro.harness.campaign import RunRecord

        def bad_run_case(protocol, seed, cfg=None, shape=None):
            return RunRecord(
                protocol=protocol, seed=seed, outcome="completed",
                mix={}, metrics={}, stranded_by_site={},
                invariant_error="arena imbalance: acquired != released + stranded",
                fingerprint="{}",
            )

        monkeypatch.setattr(sweep_mod, "run_case", bad_run_case)
        result = run_sweep(SMALL, workers=1)
        assert len(result.violations) == SMALL.n_configs


class TestStore:
    @staticmethod
    def _record(idx, fingerprint="fp"):
        return {
            "index": idx, "protocol": "sdr", "degree": 2, "n_ranks": 4,
            "workload": "ring", "mix": "clean", "seed": idx,
            "outcome": "completed", "faults_drawn": {},
            "metrics": {"events": 10 + idx, "runtime": 0.5},
            "stranded_by_site": {}, "error": None, "invariant_error": None,
            "fingerprint": fingerprint,
        }

    def test_round_trip(self, tmp_path):
        base = str(tmp_path / "sweep")
        store = SweepStore.create(base)
        for i in (1, 0, 2):  # completion order is not config order
            store.append(self._record(i))
        store.finalize({"workers": 2})
        with SweepStore.open(base) as ro:
            recs = ro.records()
            assert [r["index"] for r in recs] == [0, 1, 2]  # idx order wins
            assert ro.summary == {"workers": 2}
            assert ro.sql("SELECT COUNT(*) FROM runs")[0][0] == 3
            assert ro.sql(
                "SELECT events FROM runs WHERE idx = ?", (2,)
            ) == [(12,)]
            assert ro.records("seed = ?", (1,))[0]["seed"] == 1

    def test_collision_is_loud_and_overwrite_opt_in(self, tmp_path):
        base = str(tmp_path / "sweep")
        store = SweepStore.create(base)
        store.append(self._record(0))
        store.finalize()
        with pytest.raises(StoreError, match="already exist"):
            SweepStore.create(base)
        replacement = SweepStore.create(base, overwrite=True)
        replacement.append(self._record(0, fingerprint="new"))
        replacement.finalize()
        with SweepStore.open(base) as ro:
            assert ro.records()[0]["fingerprint"] == "new"

    def test_abandon_leaves_no_partials_and_no_finals(self, tmp_path):
        base = str(tmp_path / "sweep")
        with SweepStore.create(base) as store:
            store.append(self._record(0))
            # no finalize: the context manager abandons the .partials
        assert os.listdir(tmp_path) == []
        with pytest.raises(StoreError, match="no finalized store"):
            SweepStore.open(base)

    def test_open_names_unfinalized_partials(self, tmp_path):
        base = str(tmp_path / "sweep")
        store = SweepStore.create(base)
        store.append(self._record(0))
        with pytest.raises(StoreError, match="never finalized"):
            SweepStore.open(base)
        store.abandon()

    def test_missing_parent_dir_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="directory does not exist"):
            SweepStore.create(str(tmp_path / "nowhere" / "sweep"))

    def test_run_sweep_streams_to_store(self, tmp_path):
        base = str(tmp_path / "sweep")
        result = run_sweep(SMALL, workers=2, store_base=base)
        with SweepStore.open(base) as ro:
            assert [r["fingerprint"] for r in ro.records()] == result.fingerprints
            assert ro.summary["cache"] == result.cache

    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "artifact.json"
        atomic_write_text(str(target), '{"ok": true}')
        assert target.read_text() == '{"ok": true}'
        assert os.listdir(tmp_path) == ["artifact.json"]  # no tmp residue


class TestReporting:
    def test_sweep_outcome_rows_groups_and_survival(self):
        records = [
            {"protocol": "sdr", "degree": 2, "n_ranks": 4, "workload": "ring",
             "mix": "full", "outcome": o, "metrics": {"runtime": 1.0}}
            for o in ("completed", "degraded", "deadlocked", "failed")
        ]
        header, rows = sweep_outcome_rows(records, OUTCOMES)
        assert header[0] == "config" and "survive%" in header
        assert len(rows) == 1
        row = rows[0]
        assert row[0] == "sdr/r2/n4/ring/full" and row[1] == 4
        assert row[header.index("survive%")] == "50"  # completed + degraded
        render_table("t", header, rows)  # renders without error

    def test_render_sweep_report_end_to_end(self):
        result = run_sweep(SMALL, workers=1)
        text = render_sweep_report(result.records, result.summary())
        assert "outcomes by config group" in text
        assert "sdr/r2/n4/ring/full" in text
        assert "stranded frames/envs by mechanism" in text
        assert "hits" in text and "0 worker crashes" in text


class TestDetectorAndIntensityAxes:
    def test_unknown_or_invalid_values_rejected(self):
        with pytest.raises(SweepError, match="axis 'detectors': unknown 'psychic'"):
            SweepSpec(detectors=("psychic",)).validate()
        with pytest.raises(SweepError, match="must be > 0"):
            SweepSpec(intensities=(0.0,)).validate()
        with pytest.raises(SweepError, match="is not a number"):
            SweepSpec(intensities=(True,)).validate()
        with pytest.raises(SweepError, match="duplicate"):
            SweepSpec(intensities=(2.0, 2.0)).validate()

    def test_default_axes_change_nothing(self):
        # the axes exist, but at their defaults the label and the campaign
        # config are byte-identical to the pre-axis sweep — stored
        # fingerprints stay comparable
        point = SweepSpec(protocols=("sdr",), seeds=(0,)).points()[0]
        assert point.label() == "sdr/r2/n4/ring/full/s0"
        assert point.campaign_config() == CampaignConfig()
        assert DETECTOR_PROFILES["default"] == CampaignConfig().detector

    def test_intensity_scales_only_network_probabilities(self):
        spec = SweepSpec(
            protocols=("sdr",), mixes=("network",), intensities=(2.0,), seeds=(0,),
        )
        cfg = spec.points()[0].campaign_config()
        assert cfg.p_drop_window == pytest.approx(0.5)   # 0.25 * 2
        assert cfg.p_dup_window == 1.0                   # 0.5 * 2, capped
        assert cfg.p_partition == pytest.approx(0.3)
        # crash-side odds stay the mix's own — intensity is a wire knob
        assert cfg.p_crash == 0.0 and cfg.p_churn == 0.0

    def test_detector_profile_reaches_campaign_config(self):
        spec = SweepSpec(protocols=("sdr",), detectors=("eager",), seeds=(0,))
        cfg = spec.points()[0].campaign_config()
        assert cfg.detector == DETECTOR_PROFILES["eager"]
        assert cfg.detector.suspicion_threshold == 1

    def test_labels_grow_segments_only_off_default(self):
        spec = SweepSpec(
            protocols=("mirror",), detectors=("eager",), intensities=(2.0,), seeds=(0,),
        )
        assert spec.points()[0].label() == "mirror/r2/n4/ring/full/eager/x2/s0"

    def test_axes_multiply_the_matrix_and_ride_into_records(self):
        spec = SweepSpec(
            protocols=("sdr",), mixes=("clean",),
            detectors=("default", "eager"), intensities=(1.0, 2.0), seeds=(0,),
        )
        assert spec.n_configs == 4
        result = run_sweep(spec, workers=1)
        assert {(r["detector"], r["intensity"]) for r in result.records} == {
            ("default", 1.0), ("default", 2.0), ("eager", 1.0), ("eager", 2.0),
        }


class TestExplicitMatrix:
    def test_indices_are_list_positions_and_envelopes_are_per_config(self):
        # mg@8 beside ring@4 is legal in an explicit list — an axis-union
        # check would wrongly test mg@4
        spec = SweepSpec.explicit([
            {"protocol": "native", "n_ranks": 4, "seed": 3, "mix": "clean"},
            {"protocol": "sdr", "n_ranks": 8, "seed": 1, "workload": "mg"},
            {"protocol": "mirror", "n_ranks": 4, "seed": 0,
             "detector": "eager", "intensity": 2.0},
        ])
        pts = spec.points()
        assert [p.index for p in pts] == [0, 1, 2]
        assert pts[1].workload == "mg" and pts[1].n_ranks == 8
        assert pts[2].label() == "mirror/r2/n4/ring/full/eager/x2/s0"
        assert spec.n_configs == 3
        assert len(spec.as_dict()["explicit"]) == 3

    @pytest.mark.parametrize(
        "entries, message",
        [
            ([], "empty"),
            ([{"protocol": "sdr"}], "missing required keys"),
            ([{"protocol": "sdr", "n_ranks": 4, "seed": 0, "flavor": "hot"}],
             "unknown keys"),
            ([{"protocol": "tmr", "n_ranks": 4, "seed": 0}], "unknown protocol"),
            ([{"protocol": "sdr", "n_ranks": 4, "seed": 0, "workload": "mg"}],
             "needs >= 8 ranks"),
            ([{"protocol": "sdr", "n_ranks": 4, "seed": 0, "detector": "psychic"}],
             "unknown detector"),
            ([{"protocol": "sdr", "n_ranks": 4, "seed": 0, "intensity": 0.0}],
             "must be > 0"),
            ([{"protocol": "sdr", "n_ranks": 4, "seed": -1}], "must be an int >= 0"),
        ],
    )
    def test_invalid_entries_rejected_at_build_time(self, entries, message):
        with pytest.raises(SweepError, match=message):
            SweepSpec.explicit(entries)

    def test_explicit_pool_matches_serial_byte_for_byte(self):
        spec = SweepSpec.explicit([
            {"protocol": "native", "n_ranks": 4, "seed": 0, "mix": "clean"},
            {"protocol": "sdr", "n_ranks": 4, "seed": 1},
            {"protocol": "sdr", "n_ranks": 4, "seed": 0,
             "workload": "traffic-poisson", "mix": "clean"},
        ])
        serial = run_sweep(spec, workers=1)
        pooled = run_sweep(spec, workers=2)
        assert serial.fingerprints == pooled.fingerprints
        assert all(serial.fingerprints)
        assert [r["index"] for r in serial.records] == [0, 1, 2]


class TestRunCaseWorkloads:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="workload"):
            run_case("sdr", 0, CampaignConfig(workload="fft"))

    def test_allreduce_clean_completes_everywhere(self):
        cfg = CampaignConfig(workload="allreduce", **MIX_PROFILES["clean"])
        for protocol in ("native", "sdr", "mirror"):
            rec = run_case(protocol, 0, cfg)
            assert rec.outcome == "completed", (protocol, rec.error)
            assert rec.invariant_error is None
