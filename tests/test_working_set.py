"""The run-time working-set contract (PR 8).

Three coordinated memory layers landed behind ``Job(...)`` flags, each
keeping the previous implementation as its executable spec:

* **payload interning** (``interning``) — a job-wide
  :class:`~repro.mpi.datatypes.PayloadInterner` collapses the millions of
  size-only ``Phantom`` snapshots (and small immutable bytes/str
  payloads) to one object per distinct value;
* **high-water-trimmed arenas** (``arena_trim``) — the Frame/Envelope
  free lists are capped at a windowed high-water bound by a trimmer
  running from the kernel's quiescent-point ``on_advance`` hook;
* **SoA match lanes** (the default :class:`~repro.mpi.matching.MatchEngine`,
  with ``matching="linear"`` keeping the seed engine) — parallel slot
  arrays + int-list lanes instead of a deque of entry lists per pattern.

All three are host-side memory policy and must be *observationally
invisible*: every randomized configuration here runs the same program
with the flag on and off and compares the full engine fingerprint —
per-rank results, bit-identical virtual times, dispatched-event and
frame counts — across all five protocols, crash-free and crashy.  The
zero-leak balance (``acquired == released + stranded``) must keep
holding while trims drop pooled shells.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ReplicationConfig
from repro.harness.report import render_table, working_set_rows
from repro.harness.runner import Job, cluster_for
from repro.mpi.datatypes import PayloadInterner, Phantom
from repro.mpi.errors import DeadlockError

PROTOCOLS = ["native", "sdr", "mirror", "leader", "redmpi"]


def _job(protocol="native", n=4, **kwargs):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    return Job(n, cfg=cfg, cluster=cluster_for(n, cfg.degree), **kwargs)


def mixed_traffic(mpi, rounds=3, nbytes=65536):
    """Eager p2p + ANY_SOURCE + rendezvous Phantoms + collectives: every
    path the working-set layers touch (interned Phantom payloads, bursty
    arena use, wildcard match lanes)."""
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    acc = 0.0
    for r in range(rounds):
        yield from mpi.sendrecv(Phantom(nbytes), dest=right, source=left, sendtag=1)
        if mpi.rank == 0:
            for _ in range(mpi.size - 1):
                d, _st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                acc += float(d[0])
        else:
            yield from mpi.send(np.array([float(mpi.rank + r)]), dest=0, tag=2)
        acc += float((yield from mpi.allreduce(float(mpi.rank), op="sum")))
        yield from mpi.compute(1e-6)
    return acc


def _norm(value):
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.tolist())
    if isinstance(value, (list, tuple)):
        return [_norm(v) for v in value]
    return value


def _fingerprint(res):
    return {
        "results": {proc: _norm(v) for proc, v in sorted(res.app_results.items())},
        "runtime": repr(res.runtime),
        "finish": {p: repr(t) for p, t in sorted(res.finish_times.items())},
        "events": res.events,
        "frames": res.fabric["frames"],
        "bytes": res.fabric["bytes"],
        "by_kind": dict(sorted(res.fabric["by_kind"].items())),
        "unexpected": res.stat_total("unexpected_count"),
        "acks": res.stat_total("acks_sent"),
        "stranded": dict(sorted(res.stranded_by_site.items())),
    }


def _run_flagged(protocol, n, rounds, crash_at=None, **flags):
    """One run under *flags*; wedged runs fingerprint as their blocked set."""
    job = _job(protocol, n=n, **flags)
    job.launch(mixed_traffic, rounds=rounds)
    if crash_at is not None:
        job.crash(1, 1, at=crash_at)
    try:
        return _fingerprint(job.run())
    except DeadlockError as err:
        job._assert_arenas_balanced()
        return ("deadlock", sorted(err.blocked.items()))


# ------------------------------------------------- flag equivalence (crash-free)
class TestFlagEquivalence:
    """flag on ≡ flag off, bit for bit, across all five protocols."""

    @settings(max_examples=15, deadline=None)
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        n=st.sampled_from([2, 3, 4]),
        rounds=st.integers(min_value=1, max_value=3),
        flag=st.sampled_from(["interning", "arena_trim"]),
    )
    def test_memory_flags_unobservable(self, protocol, n, rounds, flag):
        on = _run_flagged(protocol, n, rounds, **{flag: True})
        off = _run_flagged(protocol, n, rounds, **{flag: False})
        assert on == off, f"{flag} diverged ({protocol}, n={n})"

    @settings(max_examples=15, deadline=None)
    @given(
        protocol=st.sampled_from(PROTOCOLS),
        n=st.sampled_from([2, 3, 4]),
        rounds=st.integers(min_value=1, max_value=3),
    )
    def test_soa_engine_matches_linear_spec(self, protocol, n, rounds):
        indexed = _run_flagged(protocol, n, rounds, matching="indexed")
        linear = _run_flagged(protocol, n, rounds, matching="linear")
        assert indexed == linear, f"SoA engine diverged from linear spec ({protocol})"

    def test_all_flags_off_together(self):
        """The fully seed-shaped stack (every spec mode at once) agrees
        with the fully optimized one."""
        for protocol in PROTOCOLS:
            fast = _run_flagged(protocol, 4, 2)
            spec = _run_flagged(
                protocol, 4, 2,
                interning=False, arena_trim=False, matching="linear",
                pooling=False, bucketed=False, shared_state=False,
            )
            assert fast == spec, f"optimized stack diverged from full spec ({protocol})"

    def test_matching_flag_validated(self):
        with pytest.raises(ValueError, match="indexed.*linear"):
            _job("sdr", matching="soa")


# ---------------------------------------------------- flag equivalence (crashy)
class TestFlagEquivalenceUnderFailover:
    """Crashes and failover resends must not observe the memory policy.

    Some (protocol, crash-time) pairs legitimately wedge; the deadlock —
    down to the blocked-process set — is then the outcome both modes must
    agree on, and the arenas must still balance.
    """

    @settings(max_examples=10, deadline=None)
    @given(
        protocol=st.sampled_from(["sdr", "mirror", "leader"]),
        crash_at=st.sampled_from([2e-5, 9e-5]),
        flag=st.sampled_from(["interning", "arena_trim"]),
    )
    def test_memory_flags_unobservable_on_crashes(self, protocol, crash_at, flag):
        on = _run_flagged(protocol, 4, 3, crash_at=crash_at, **{flag: True})
        off = _run_flagged(protocol, 4, 3, crash_at=crash_at, **{flag: False})
        assert on == off, f"{flag} diverged under failover ({protocol})"

    @settings(max_examples=10, deadline=None)
    @given(
        protocol=st.sampled_from(["sdr", "mirror", "leader"]),
        crash_at=st.sampled_from([2e-5, 9e-5]),
    )
    def test_soa_engine_matches_linear_spec_on_crashes(self, protocol, crash_at):
        indexed = _run_flagged(protocol, 4, 3, crash_at=crash_at, matching="indexed")
        linear = _run_flagged(protocol, 4, 3, crash_at=crash_at, matching="linear")
        assert indexed == linear, f"SoA engine diverged under failover ({protocol})"


# -------------------------------------------------------------- arena trimming
class TestArenaTrim:
    """The quiescent-point trimmer: pools shrink, books still balance."""

    def test_forced_trims_stay_unobservable_and_balanced(self, monkeypatch):
        """Trim at *every* quiescent point (interval 1, full sweep): the
        most aggressive policy possible must still be fingerprint-
        identical to no trimming at all, crash-free and crashy."""
        for crash_at in (None, 2e-5):
            baseline = _run_flagged("sdr", 4, 3, crash_at=crash_at, arena_trim=False)
            monkeypatch.setattr(Job, "TRIM_INTERVAL", 1)
            monkeypatch.setattr(Job, "TRIM_PROCS", 10_000)
            forced = _run_flagged("sdr", 4, 3, crash_at=crash_at, arena_trim=True)
            monkeypatch.undo()
            assert forced == baseline

    def test_trim_caps_pool_and_counts_drops(self):
        """Unit-level policy check: a pool bloated past the windowed
        high-water is cut to ``window + TRIM_SLACK`` and the drop counted;
        the arena balance is untouched (trimmed shells were released)."""
        job = _job("native", n=2, arena_trim=False)
        pml = job.pmls[0]
        # Warm the pool far beyond any real outstanding count.
        envs = [
            pml.acquire_env("eager", ("w",), 0, 1, 0, 1, i, 8, None, 1)
            for i in range(200)
        ]
        for env in envs:
            pml.release_env(env)
        assert len(pml._env_pool) == 200
        assert pml.env_hw_window == 200
        dropped = pml.trim_env_pool()  # folds the window, no cut yet
        assert dropped == 0 and pml.env_high_water == 200
        assert pml.env_hw_window == 0  # nothing outstanding now
        dropped = pml.trim_env_pool()  # second window saw no traffic: cut
        assert dropped == 200 - pml.TRIM_SLACK
        assert len(pml._env_pool) == pml.TRIM_SLACK
        assert pml.env_trimmed == dropped
        assert pml.stats()["env_high_water"] == 200
        # books: acquired == released, trimming moved nothing
        assert pml.env_acquired == pml.env_released == 200

    def test_fabric_trim_mirrors_pml_policy(self):
        job = _job("native", n=2, arena_trim=False)
        fab = job.fabric
        frames = [fab.acquire_frame(0, 1, 8, None) for _ in range(100)]
        for f in frames:
            fab.release_frame(f)
        assert len(fab._frame_pool) == 100
        fab.trim_frame_pool()
        dropped = fab.trim_frame_pool()
        assert dropped == 100 - fab.TRIM_SLACK
        assert fab.frames_trimmed == dropped
        assert fab.stats()["frame_high_water"] == 100

    def test_balance_holds_with_trimming_across_protocols(self, monkeypatch):
        """Zero-leak proof under constant trimming, every protocol, with a
        crash landing mid-traffic."""
        monkeypatch.setattr(Job, "TRIM_INTERVAL", 1)
        monkeypatch.setattr(Job, "TRIM_PROCS", 10_000)
        for protocol in ["sdr", "mirror", "leader", "redmpi"]:
            job = _job(protocol, n=4)
            job.launch(mixed_traffic, rounds=3)
            job.crash(1, 1, at=2e-5)
            try:
                job.run()  # run() audits on completion
            except DeadlockError:
                job._assert_arenas_balanced()


# ------------------------------------------------------------------ interning
class TestPayloadInterning:
    def test_phantoms_collapse_to_one_object(self):
        interner = PayloadInterner()
        a, b = Phantom(4096), Phantom(4096)
        assert a is not b
        canon = interner.intern(a)
        assert interner.intern(b) is canon
        assert interner.intern(Phantom(4096)) is canon
        assert interner.hits == 2 and interner.misses == 1

    def test_numeric_payloads_never_interned(self):
        """``True == 1`` and ``-0.0 == 0.0`` would conflate distinct
        payloads under a value key — numerics must pass through."""
        interner = PayloadInterner()
        for first, second in [(1, True), (0.0, -0.0)]:
            out = interner.intern(second)
            assert out is second
            interner.intern(first)
            assert interner.intern(second) is second
        assert interner.hits == 0

    def test_small_immutables_interned_large_not(self):
        interner = PayloadInterner()
        # runtime-constructed so no two are the same object
        small_a, small_b = bytes(bytearray(16)), bytes(bytearray(16))
        assert small_a is not small_b
        canon = interner.intern(small_a)
        assert interner.intern(small_b) is canon
        assert interner.hits == 1
        n = PayloadInterner.SMALL_LIMIT + 1
        big_a, big_b = bytes(bytearray(n)), bytes(bytearray(n))
        assert interner.intern(big_a) is big_a
        assert interner.intern(big_b) is big_b  # never tabled
        assert interner.hits == 1

    def test_table_is_bounded(self):
        interner = PayloadInterner()
        for i in range(PayloadInterner.MAX_ENTRIES + 50):
            interner.intern(Phantom(i))
        assert len(interner._phantoms) == PayloadInterner.MAX_ENTRIES
        # known values still hit; overflow values stay misses
        assert interner.intern(Phantom(0)) is not None
        before = interner.hits
        interner.intern(Phantom(PayloadInterner.MAX_ENTRIES + 10))
        assert interner.hits == before

    def test_job_counters_surface_in_result(self):
        res = _job("sdr", n=4).launch(mixed_traffic, rounds=3).run()
        assert res.payload_interned > 0
        assert res.payload_misses > 0
        off = _job("sdr", n=4, interning=False).launch(mixed_traffic, rounds=3).run()
        assert off.payload_interned == 0 and off.payload_misses == 0

    def test_unexpected_phantoms_share_one_snapshot(self):
        """The working-set win itself: distinct Phantom sends parked in an
        unexpected queue hold the same canonical object."""
        job = _job("native", n=2)
        sender, receiver = job.pmls[0], job.pmls[1]
        envs = [
            sender.acquire_env(
                "eager", ("w",), 0, i, 0, 1, i, 512, Phantom(512), 1
            )
            for i in range(4)
        ]
        datas = {id(env.data) for env in envs}
        assert datas == {id(envs[0].data)}, "acquire_env did not intern"
        # park them all unexpected (no receives posted) and re-check
        for env in envs:
            assert receiver.matching.arrive(env) is None
        parked = receiver.matching.unexpected
        assert len(parked) == 4
        assert all(env.data is parked[0].data for env in parked)


# ------------------------------------------------------------- high-water marks
class TestHighWaterMarks:
    def test_env_high_water_bounds_pool(self):
        res = _job("sdr", n=4).launch(mixed_traffic, rounds=3).run()
        for proc, stats in res.stats.items():
            assert stats["env_high_water"] >= 1
            assert stats["env_pool_size"] <= stats["env_high_water"], (
                f"proc {proc}: pool retained beyond its high-water"
            )
        assert res.fabric["frame_high_water"] >= 1
        assert res.fabric["frame_pool_size"] <= res.fabric["frame_high_water"]

    def test_report_rows_render(self):
        res = _job("sdr", n=4).launch(mixed_traffic, rounds=2).run()
        header, rows = working_set_rows([("sdr/n4", res)])
        table = render_table("working set", header, rows)
        assert "interned" in table and "env hw" in table
        assert rows[0][1] == res.payload_interned


# ------------------------------------------------------------ kernel on_advance
class TestOnAdvanceHook:
    def test_fires_between_timestamps_not_per_event(self):
        from repro.sim.kernel import Simulator

        sim = Simulator()
        seen = []
        sim.on_advance = lambda: seen.append(sim.now)
        fired = []
        for t in (1.0, 1.0, 2.0, 4.0):
            sim.call_at(t, lambda t=t: fired.append(t))
        sim.run()
        # one advance per distinct timestamp with a successor
        assert seen == [0.0, 1.0, 2.0]
        assert fired == [1.0, 1.0, 2.0, 4.0]
        assert sim.events_dispatched == 4

    def test_hook_does_not_count_as_events(self):
        from repro.sim.kernel import Simulator

        def drive(hooked):
            sim = Simulator()
            if hooked:
                sim.on_advance = lambda: None
            for t in (1.0, 2.0, 3.0):
                sim.call_at(t, lambda: None)
            sim.run()
            return sim.events_dispatched

        assert drive(True) == drive(False) == 3
