"""Harness: runner wiring, metrics, report rendering, experiment entries."""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.harness.experiments import SCALES, Scale, app_overhead, fig7, nas_overhead
from repro.harness.metrics import RunStats, overhead_pct, summarize
from repro.harness.report import (
    PAPER_TABLE1,
    PAPER_TABLE2,
    overhead_row,
    parallel_rows,
    render_series,
    render_table,
)
from repro.harness.runner import Job, cluster_for

TINY = Scale("tiny", n_ranks=4, nas_class="S", nas_iter_cap=2,
             hpccg_iters=3, cm1_steps=2, netpipe_iters=3, noise=0.05)


class TestRunner:
    def test_native_job_has_n_processes(self):
        job = Job(4)
        assert len(job.processes) == 0  # before launch
        job.launch(lambda mpi: iter(()))
        assert len(job.processes) == 4

    def test_replicated_job_has_rn_processes(self):
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(4, cfg=cfg, cluster=cluster_for(4, 2))
        job.launch(lambda mpi: iter(()))
        assert len(job.processes) == 8

    def test_result_runtime_is_latest_finish(self):
        def app(mpi):
            yield from mpi.compute((mpi.rank + 1) * 1e-3)
            return mpi.rank

        res = Job(3, cluster=cluster_for(3)).launch(app).run()
        assert res.runtime == pytest.approx(3e-3)
        assert res.app_results == {0: 0, 1: 1, 2: 2}

    def test_app_exception_propagates(self):
        def app(mpi):
            yield from mpi.compute(1e-6)
            raise ValueError("app bug")

        job = Job(2, cluster=cluster_for(2)).launch(app)
        with pytest.raises(Exception) as err:
            job.run()
        assert "app bug" in str(err.value)

    def test_seed_changes_noise_realization(self):
        def app(mpi):
            yield from mpi.compute(1e-3)
            return mpi.wtime()

        cluster = cluster_for(2, 1, compute_noise=0.2)
        a = Job(2, cluster=cluster, seed=1).launch(app).run().runtime
        b = Job(2, cluster=cluster, seed=2).launch(app).run().runtime
        c = Job(2, cluster=cluster, seed=1).launch(app).run().runtime
        assert a != b
        assert a == c  # same seed reproduces exactly

    def test_identical_jobs_bit_identical(self):
        from repro.apps.nas.cg import cg_rank

        def run_once():
            cfg = ReplicationConfig(degree=2, protocol="sdr")
            job = Job(4, cfg=cfg, cluster=cluster_for(4, 2))
            res = job.launch(cg_rank, klass="S", iters=2).run()
            return res.runtime, res.events

        assert run_once() == run_once()

    def test_stat_total_sums_over_processes(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        res = Job(2, cfg=cfg, cluster=cluster_for(2, 2)).launch(app).run()
        assert res.stat_total("app_sends") == 2  # one logical send per world


class TestMetrics:
    def test_overhead_pct(self):
        assert overhead_pct(100.0, 105.0) == pytest.approx(5.0)

    def test_overhead_requires_positive_native(self):
        with pytest.raises(ValueError):
            overhead_pct(0.0, 1.0)

    def test_runstats(self):
        s = RunStats.of([1.0, 2.0, 3.0])
        assert s.mean == 2.0 and s.minimum == 1.0 and s.maximum == 3.0 and s.n == 3
        assert s.std == pytest.approx(1.0)

    def test_runstats_single_sample(self):
        assert RunStats.of([5.0]).std == 0.0

    def test_runstats_empty_rejected(self):
        with pytest.raises(ValueError):
            RunStats.of([])

    def test_summarize_runs_per_seed(self):
        seen = []

        def run(seed):
            seen.append(seed)
            return float(seed)

        s = summarize(run, repetitions=3)
        assert seen == [0, 1, 2]
        assert s.mean == 1.0


class TestReport:
    def test_render_table_alignment(self):
        out = render_table("T", ["a", "bb"], [[1, 22], [333, 4]])
        lines = out.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, rule, two rows
        assert "333" in lines[4]

    def test_overhead_row_with_paper_reference(self):
        row = overhead_row("CG", 100.0, 104.92, PAPER_TABLE1["CG"])
        assert row[0] == "CG"
        assert row[3] == "4.92"
        assert row[-1] == "4.92"

    def test_render_series(self):
        out = render_series("S", "x", {"a": {1: 0.5, 2: 1.5}, "b": {1: 2.0}})
        assert "nan" in out  # missing point rendered as nan
        assert "0.5" in out

    def test_paper_constants_match_the_paper(self):
        assert PAPER_TABLE1["CG"] == (210.37, 220.71, 4.92)
        assert PAPER_TABLE2["HPCCG"][2] == 0.002

    def test_parallel_rows_empty_without_metadata(self):
        header, rows = parallel_rows([("sdr-16", {"host_seconds": 1.0})])
        assert rows == []  # serial-only sets get no table at all
        assert header[0] == "run"

    def test_parallel_rows_speedup_and_fallback(self):
        labelled = [
            ("sdr-16", {"host_seconds": 2.0}),
            (
                "sdr-16@w4",
                {
                    "host_seconds": 1.0,
                    "parallel": {"workers": 4, "shards": 2, "windows": 19,
                                 "fallback": []},
                },
            ),
            (
                "mirror-16@w4",
                {
                    "host_seconds": 1.0,
                    "parallel": {"workers": 4, "shards": 1, "windows": 23,
                                 "fallback": ["drain_race: tied contention"]},
                },
            ),
        ]
        header, rows = parallel_rows(labelled)
        assert header == ["run", "workers", "shards", "windows", "speedup"]
        assert rows[0] == ["sdr-16@w4", 4, 2, 19, "2.00x"]
        # Fallback runs surface the reason where the window count would go,
        # and get no speedup cell without a matching serial wall-time.
        assert rows[1][3] == "drain_race: tied contention"
        assert rows[1][4] == "-"
        render_table("sharded execution", header, rows)  # renders cleanly


class TestExperiments:
    def test_scales_registry(self):
        assert set(SCALES) >= {"quick", "small", "paper"}
        assert SCALES["paper"].n_ranks == 256
        assert SCALES["paper"].nas_class == "D"
        assert SCALES["paper"].nas_iter_cap is None

    def test_nas_overhead_entry(self):
        r = nas_overhead("MG", TINY)
        assert r["native_s"] > 0
        assert -2.0 < r["overhead_pct"] < 25.0
        assert r["acks"] > 0

    def test_app_overhead_entry(self):
        r = app_overhead("HPCCG", TINY)
        assert r["native_s"] > 0
        assert r["acks"] > 0

    def test_fig7_sweep_entry(self):
        out = fig7(sizes=(1, 1024), iters=3)
        assert set(out) == {"native", "sdr"}
        assert out["sdr"][1]["latency_s"] > out["native"][1]["latency_s"]
