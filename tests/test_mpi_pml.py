"""PML internals: protocol selection, hooks, control frames, cancellation."""

import numpy as np
import pytest

from repro.harness.runner import Job, cluster_for
from repro.mpi.errors import MpiError


def _job(n=2):
    return Job(n, cluster=cluster_for(n, 1, cores_per_node=1))


class TestProtocolSelection:
    def test_small_messages_go_eager(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(16), dest=1, tag=1)  # 128 B
            else:
                yield from mpi.recv(source=0, tag=1)

        job = _job()
        res = job.launch(app).run()
        kinds = res.fabric["by_kind"]
        assert kinds.get("eager", 0) == 1
        assert "rts" not in kinds

    def test_large_messages_go_rendezvous(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(8192), dest=1, tag=1)  # 64 KiB
            else:
                yield from mpi.recv(source=0, tag=1)

        job = _job()
        res = job.launch(app).run()
        kinds = res.fabric["by_kind"]
        assert kinds.get("rts", 0) == 1
        assert kinds.get("cts", 0) == 1
        assert kinds.get("data", 0) == 1
        assert "eager" not in kinds

    def test_eager_limit_is_model_dependent(self):
        # intra-node (shared memory) eager limit is 4 KiB, IB is 12 KiB
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(1024), dest=1, tag=1)  # 8 KiB
            else:
                yield from mpi.recv(source=0, tag=1)

        intra = Job(2, cluster=cluster_for(2, 1, cores_per_node=2))
        res_intra = intra.launch(app).run()
        assert res_intra.fabric["by_kind"].get("rts", 0) == 1  # > 4 KiB

        inter = _job()
        res_inter = inter.launch(app).run()
        assert res_inter.fabric["by_kind"].get("eager", 0) == 1  # < 12 KiB


class TestHooks:
    def test_match_hook_fires_with_envelope(self):
        job = _job()
        matches = []
        job.pmls[1].on_match.append(lambda recv, env: matches.append((env.src_rank, env.tag)))

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=9)
            else:
                yield from mpi.recv(source=0, tag=9)

        job.launch(app).run()
        assert matches == [(0, 9)]

    def test_recv_complete_hook_fires_for_unexpected_eager(self):
        """The irecvComplete event the paper's ack placement depends on."""
        job = _job()
        completes = []
        job.pmls[1].on_recv_complete.append(
            lambda env, recv: completes.append((env.seq, recv is None))
        )

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=9)
            else:
                yield from mpi.compute(20e-6)  # message lands unexpected...
                yield from mpi.probe(source=0, tag=9)  # ...and is drained here
                yield from mpi.recv(source=0, tag=9)

        job.launch(app).run()
        assert completes == [(0, True)]  # fired while unmatched

    def test_recv_complete_for_rendezvous_fires_at_data(self):
        job = _job()
        events = []
        job.pmls[1].on_recv_complete.append(lambda env, recv: events.append(env.kind))

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(8192), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)

        job.launch(app).run()
        assert events == ["data"]

    def test_unknown_ctrl_key_raises(self):
        job = _job()

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.pml.send_ctrl(1, "nonexistent.key", None)
            else:
                yield from mpi.recv(source=0, tag=1)

        job.launch(app)
        with pytest.raises(MpiError):
            job.run()

    def test_ctrl_handler_dispatched(self):
        job = _job()
        got = []

        def handler(env):
            got.append(env.data)
            yield from ()

        job.pmls[1].ctrl_handlers["test.key"] = handler

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.pml.send_ctrl(1, "test.key", {"x": 1})
                yield from mpi.send(np.ones(1), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)

        job.launch(app).run()
        assert got == [{"x": 1}]


class TestCancellation:
    def test_cancel_posted_recv(self):
        job = _job()

        def app(mpi):
            if mpi.rank == 1:
                h = yield from mpi.irecv(source=0, tag=1)
                ok = mpi.pml.cancel_recv(h.pml_req)
                assert ok and h.pml_req.cancelled
                # a second receive still matches the message
                data, _ = yield from mpi.recv(source=0, tag=1)
                return float(data[0])
            yield from mpi.send(np.array([5.0]), dest=1, tag=1)

        res = job.launch(app).run()
        assert res.app_results[1] == 5.0

    def test_cancel_sends_to_dead_destination(self):
        job = _job()
        pml = job.pmls[0]

        def app(mpi):
            if mpi.rank == 0:
                h = yield from mpi.isend(np.zeros(8192), dest=1, tag=1)  # rendezvous
                cancelled = mpi.pml.cancel_sends_to(1)
                assert cancelled == 1
                assert h.pml_reqs[0].done  # completed-by-cancellation
            else:
                yield from mpi.compute(1e-3)

        job.launch(app).run()


class TestCounters:
    def test_posted_counters(self):
        job = _job()

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=1)
                yield from mpi.send(np.ones(1), dest=1, tag=2)
            else:
                yield from mpi.recv(source=0, tag=1)
                yield from mpi.recv(source=0, tag=2)

        job.launch(app).run()
        assert job.pmls[0].sends_posted == 2
        assert job.pmls[1].recvs_posted == 2
