"""Property tests: two-level event queue ≡ heap-only queue.

PR 4 split the kernel queue into a near-horizon FIFO bucket (events at the
current virtual time) backed by the heap (strictly-future times) — see
:mod:`repro.sim.kernel`.  The split is a host-side optimisation and must be
*observationally invisible*: ``Job(bucketed=False)`` keeps every insertion
on the heap exactly as the seed engine did (the executable specification),
and every randomized configuration here runs the same program under both
modes and compares the full engine fingerprint — per-rank results,
bit-identical virtual times and finish times, dispatched-event and frame
counts, per-kind frame histograms.  This mirrors
``tests/test_pooling_equivalence.py`` (arenas vs fresh allocation) and
``tests/test_matching_equivalence.py`` (indexed vs linear matching).

All five protocols are exercised: the replication protocols multiply
zero-delay completions (ack fan-out, reorder release, endpoint wake-ups),
which is exactly the traffic the bucket absorbs.  The kernel-level FIFO law
is additionally pinned directly: interleaved now-time and future
insertions, including insertions made *while* a same-time batch drains,
dispatch in identical order under both modes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from repro.mpi.datatypes import Phantom
from repro.sim.kernel import Simulator

SIZES = [2, 3, 4, 5]
PROTOCOLS = ["native", "sdr", "mirror", "leader", "redmpi"]


def _run(protocol: str, n_ranks: int, app, bucketed: bool, **kwargs):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    job = Job(
        n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, cfg.degree), bucketed=bucketed
    )
    return job.launch(app, **kwargs).run()


def _norm(value):
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.tolist())
    if isinstance(value, (list, tuple)):
        return [_norm(v) for v in value]
    return value


def _fingerprint(res):
    return {
        "results": {proc: _norm(v) for proc, v in sorted(res.app_results.items())},
        "runtime": repr(res.runtime),
        "finish": {p: repr(t) for p, t in sorted(res.finish_times.items())},
        "events": res.events,
        "frames": res.fabric["frames"],
        "bytes": res.fabric["bytes"],
        "by_kind": dict(sorted(res.fabric["by_kind"].items())),
        "unexpected": res.stat_total("unexpected_count"),
        "acks": res.stat_total("acks_sent"),
    }


def _assert_equivalent(protocol, n, app, **kwargs):
    bucketed = _run(protocol, n, app, bucketed=True, **kwargs)
    heap_only = _run(protocol, n, app, bucketed=False, **kwargs)
    assert _fingerprint(bucketed) == _fingerprint(heap_only), (
        f"two-level queue diverged from heap-only spec ({protocol}, n={n})"
    )


# ------------------------------------------------------------ applications
def mixed_p2p(mpi, rounds, anonymous, tagset):
    """Eager p2p with optional wildcards: matched, unexpected and reorder
    paths — dense same-timestamp batches of completions and wake-ups."""
    acc = 0.0
    if mpi.rank == 0:
        for r in range(rounds):
            for _ in range(mpi.size - 1):
                src = mpi.ANY_SOURCE if anonymous else (_ % (mpi.size - 1)) + 1
                d, st_ = yield from mpi.recv(source=src, tag=tagset[r % len(tagset)])
                acc += float(d[0])
            for dst in range(1, mpi.size):
                yield from mpi.send(np.array([acc]), dest=dst, tag=tagset[r % len(tagset)])
    else:
        for r in range(rounds):
            yield from mpi.send(
                np.array([float(mpi.rank + r)]), dest=0, tag=tagset[r % len(tagset)]
            )
            d, _ = yield from mpi.recv(source=0, tag=tagset[r % len(tagset)])
            acc = float(d[0])
    return acc


def rendezvous_ring(mpi, iters, nbytes):
    """Modeled large payloads force the rts/cts/data handshake + a collective."""
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    acc = 0.0
    for _ in range(iters):
        yield from mpi.sendrecv(Phantom(nbytes), dest=right, source=left, sendtag=5)
        acc += float((yield from mpi.allreduce(float(mpi.rank), op="sum")))
    return acc


def collective_mix(mpi, iters):
    acc = 0.0
    for it in range(iters):
        root = it % mpi.size
        data = yield from mpi.bcast(np.arange(4, dtype=np.float64) + it, root=root)
        acc += float(data[0])
        acc += float((yield from mpi.allreduce(float(mpi.rank + it), op="max")))
        gathered = yield from mpi.gather(mpi.rank + it, root=root)
        acc += float((yield from mpi.scatter(gathered if mpi.rank == root else None, root=root)))
    return acc


# ----------------------------------------------------------------- the law
@settings(max_examples=30, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    protocol=st.sampled_from(PROTOCOLS),
    rounds=st.integers(1, 4),
    anonymous=st.booleans(),
    tagset=st.sampled_from([(1,), (1, 2), (3, 1, 2)]),
)
def test_p2p_queue_equivalence(n, protocol, rounds, anonymous, tagset):
    _assert_equivalent(
        protocol, n, mixed_p2p, rounds=rounds, anonymous=anonymous, tagset=tagset
    )


@settings(max_examples=20, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    protocol=st.sampled_from(PROTOCOLS),
    iters=st.integers(1, 3),
    nbytes=st.sampled_from([16384, 65536]),
)
def test_rendezvous_queue_equivalence(n, protocol, iters, nbytes):
    _assert_equivalent(protocol, n, rendezvous_ring, iters=iters, nbytes=nbytes)


@settings(max_examples=20, deadline=None)
@given(
    n=st.sampled_from(SIZES),
    protocol=st.sampled_from(PROTOCOLS),
    iters=st.integers(1, 3),
)
def test_collective_queue_equivalence(n, protocol, iters):
    _assert_equivalent(protocol, n, collective_mix, iters=iters)


@settings(max_examples=25, deadline=None)
@given(
    protocol=st.sampled_from(["sdr", "mirror", "leader"]),
    crash_us=st.floats(min_value=1.0, max_value=150.0),
)
def test_failover_queue_equivalence(protocol, crash_us):
    """Crash handling (detector fan-out, failover resends, duplicate
    suppression) schedules bursts of now-time events — the two modes must
    agree on the whole fingerprint through a fail-stop too."""

    def run_mode(bucketed):
        cfg = ReplicationConfig(degree=2, protocol=protocol)
        job = Job(4, cfg=cfg, cluster=cluster_for(4, 2), bucketed=bucketed)
        job.launch(mixed_p2p, rounds=3, anonymous=True, tagset=(1, 2))
        job.crash(1, 1, at=crash_us * 1e-6)
        return job.run(allow_lost_ranks=True)

    assert _fingerprint(run_mode(True)) == _fingerprint(run_mode(False))


# ------------------------------------------------------- kernel-level laws
def _record_order(sim):
    seen = []
    # Interleave: future events that, when fired, schedule same-time
    # follow-ups (the clumpy MPI shape), plus pre-run now-time events.
    def fire(label, follow=()):
        def cb(label=label, follow=follow):
            seen.append((label, sim.now))
            for f in follow:
                sim.call_in(0.0, lambda f=f: seen.append((f, sim.now)))
        return cb

    sim.call_in(0.0, fire("pre-a", follow=("pre-a.0", "pre-a.1")))
    sim.call_at(1.0, fire("t1-a", follow=("t1-a.0",)))
    sim.call_at(1.0, fire("t1-b", follow=("t1-b.0", "t1-b.1")))
    sim.call_at(2.0, fire("t2-a"))
    sim.call_in(0.0, fire("pre-b"))
    sim.run()
    return seen


def test_kernel_fifo_order_matches_heap_only():
    """Same-time insertions made while a batch drains fire in exactly the
    order the heap-only queue would have given them."""
    assert _record_order(Simulator(bucketed=True)) == _record_order(
        Simulator(bucketed=False)
    )


def test_kernel_step_and_peek_agree():
    for bucketed in (True, False):
        sim = Simulator(bucketed=bucketed)
        seen = []
        sim.call_in(0.0, lambda: seen.append("now"))
        sim.call_at(3.0, lambda: seen.append("later"))
        assert sim.peek() == 0.0
        assert sim.queue_size == 2
        assert sim.step() and seen == ["now"]
        assert sim.peek() == 3.0
        assert sim.step() and seen == ["now", "later"]
        assert not sim.step()
        assert sim.peek() is None and sim.queue_size == 0


def test_heap_only_mode_really_uses_the_heap():
    sim = Simulator(bucketed=False)
    sim.call_in(0.0, lambda: None)
    assert len(sim._queue) == 1 and not sim._bucket
    sim2 = Simulator()
    sim2.call_in(0.0, lambda: None)
    assert len(sim2._bucket) == 1 and not sim2._queue
