"""Replica recovery (§3.4, Fig. 4)."""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.core.recovery import RecoveryManager, RecoveryUnsupported
from repro.harness.runner import Job, cluster_for


class IterState:
    def __init__(self):
        self.it = 0
        self.acc = 0.0


def recoverable_exchange(mpi, iters=60, state=None):
    st = state or IterState()
    mpi.register_state(st)
    while st.it < iters:
        it = st.it
        if mpi.rank == 1:
            yield from mpi.send(np.array([float(it)]), dest=0, tag=1)
            got, _ = yield from mpi.recv(source=0, tag=2)
        else:
            got, _ = yield from mpi.recv(source=1, tag=1)
            yield from mpi.send(np.array([2.0 * it]), dest=1, tag=2)
        st.acc += float(got[0])
        st.it += 1
        yield from mpi.recovery_point()
        yield from mpi.compute(1e-6)
    return st.acc


def _job(n_ranks=2, iters=60):
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, 2, cores_per_node=1))
    job.launch(recoverable_exchange, iters=iters)
    return job


def _want(iters=60):
    return {0: sum(float(i) for i in range(iters)), 1: sum(2.0 * i for i in range(iters))}


class TestRecovery:
    @pytest.mark.parametrize("crash_at,respawn_at", [(60e-6, 100e-6), (30e-6, 35e-6), (100e-6, 300e-6)])
    def test_respawned_replica_finishes_correctly(self, crash_at, respawn_at):
        job = _job()
        manager = RecoveryManager(job)
        job.crash(1, 1, at=crash_at)
        job.sim.call_at(respawn_at, lambda: manager.request_respawn(1))
        res = job.run()
        want = _want()
        assert len(res.app_results) == 4  # including the respawned process
        for proc, val in res.app_results.items():
            assert val == want[job.rmap.rank_of(proc)]
        assert manager.respawns_done == [job.rmap.phys(1, 1)]

    def test_recovery_of_replica_zero(self):
        job = _job()
        manager = RecoveryManager(job)
        job.crash(0, 0, at=60e-6)
        job.sim.call_at(100e-6, lambda: manager.request_respawn(0))
        res = job.run()
        want = _want()
        assert len(res.app_results) == 4
        for proc, val in res.app_results.items():
            assert val == want[job.rmap.rank_of(proc)]

    def test_substitute_stops_on_behalf_duty_after_respawn(self):
        job = _job()
        manager = RecoveryManager(job)
        job.crash(1, 1, at=60e-6)
        job.sim.call_at(100e-6, lambda: manager.request_respawn(1))
        job.run()
        sub = job.protocols[job.rmap.phys(1, 0)]
        assert sub.substitute[1] == 1  # identity restored
        assert job.rmap.phys(0, 1) not in sub.physical_dests.get(0, [])

    def test_peer_resumes_pairwise_sends(self):
        job = _job()
        manager = RecoveryManager(job)
        job.crash(1, 1, at=60e-6)
        job.sim.call_at(100e-6, lambda: manager.request_respawn(1))
        job.run()
        peer = job.protocols[job.rmap.phys(0, 1)]  # p^1_0
        assert job.rmap.phys(1, 1) in peer.physical_dests.get(1, [])

    def test_protocol_state_cloned(self):
        job = _job()
        manager = RecoveryManager(job)
        job.crash(1, 1, at=60e-6)
        job.sim.call_at(100e-6, lambda: manager.request_respawn(1))
        job.run()
        fresh = job.protocols[job.rmap.phys(1, 1)]  # post-respawn protocol
        # the respawned replica continued the logical channels: its send
        # counters cover the full run
        assert fresh._send_seq.get(0, 0) >= 1
        assert fresh._expected.get(0, 0) >= 1

    def test_no_pending_respawn_is_noop(self):
        job = _job()
        RecoveryManager(job)
        res = job.run()  # recovery_point called every iteration, no pending
        want = _want()
        for proc, val in res.app_results.items():
            assert val == want[job.rmap.rank_of(proc)]

    def test_respawn_request_before_crash_is_harmless(self):
        job = _job()
        manager = RecoveryManager(job)
        manager.request_respawn(1)  # nothing dead yet
        job.crash(1, 1, at=60e-6)
        res = job.run()
        assert len(res.app_results) == 4  # respawn happens once the crash lands


class TestRecoveryValidity:
    def test_degree_three_rejected(self):
        cfg = ReplicationConfig(degree=3, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 3, cores_per_node=1))
        with pytest.raises(RecoveryUnsupported) as err:
            RecoveryManager(job)
        assert "degree" in str(err.value)

    def test_mirror_protocol_rejected(self):
        cfg = ReplicationConfig(degree=2, protocol="mirror")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        with pytest.raises(RecoveryUnsupported):
            RecoveryManager(job)

    def test_unregistered_state_rejected(self):
        def stateless(mpi, iters=30, state=None):
            for it in range(iters):
                yield from mpi.barrier()
                yield from mpi.recovery_point()
                yield from mpi.compute(1e-6)

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        job.launch(stateless)
        manager = RecoveryManager(job)
        job.crash(1, 1, at=50e-6)
        job.sim.call_at(60e-6, lambda: manager.request_respawn(1))
        with pytest.raises(RecoveryUnsupported):
            job.run()
