"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

from typing import Any, Callable, Optional

import pytest

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, JobResult, cluster_for
from repro.network.topology import Cluster


def run_app(
    app: Callable[..., Any],
    n_ranks: int,
    protocol: str = "native",
    degree: int = 2,
    cluster: Optional[Cluster] = None,
    crash: Optional[tuple] = None,
    seed: int = 0,
    **kwargs: Any,
) -> JobResult:
    """One-line job runner used throughout the tests."""
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=degree, protocol=protocol)
    job = Job(
        n_ranks,
        cfg=cfg,
        cluster=cluster or cluster_for(n_ranks, cfg.degree),
        seed=seed,
    )
    job.launch(app, **kwargs)
    if crash is not None:
        rank, rep, at = crash
        job.crash(rank, rep, at=at)
    return job.run()


class DeliverSpy:
    """Proxy standing in for a protocol's (slotted) Pml in filter tests.

    ``Pml`` has ``__slots__``, so tests can no longer monkeypatch
    ``deliver_to_matching`` on the instance; rebinding ``proto.pml`` to
    this proxy reroutes delivery while forwarding everything else."""

    def __init__(self, pml: Any, fake_deliver: Callable[[Any], Any]) -> None:
        self._pml = pml
        self.deliver_to_matching = fake_deliver

    def __getattr__(self, name: str) -> Any:
        return getattr(self._pml, name)


@pytest.fixture
def sim():
    from repro.sim.kernel import Simulator

    return Simulator()
