"""Campaign engine: seeded fault mixes, the degradation taxonomy, and the
machine-audited invariants every run must satisfy.

The hypothesis suite throws random seeds at random protocols and pins the
campaign contract: the arena books balance (``acquired == released +
stranded``), the per-site strand attribution sums back to the scalar
counters (``run_case`` records any discrepancy as ``invariant_error``),
the outcome is exactly one taxonomy bucket, and one integer reproduces
the run byte-identically (fingerprint equality).
"""

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.campaign import (
    DEFAULT_PROTOCOLS,
    OUTCOMES,
    CampaignConfig,
    RunRecord,
    run_campaign,
    run_case,
    sample_faults,
)
from repro.scenarios import campaign_app, expected_results

import pytest

from repro.harness.runner import Job, cluster_for


# ----------------------------------------------------------- property suite
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    protocol=st.sampled_from(DEFAULT_PROTOCOLS),
)
def test_every_seeded_run_balances_and_classifies(seed, protocol):
    rec = run_case(protocol, seed)
    # leak balance + per-site sum consistency: run_case records any
    # discrepancy as an invariant error — there must never be one
    assert rec.invariant_error is None
    # outcome taxonomy is exhaustive and exclusive
    assert rec.outcome in OUTCOMES
    # the strand attribution it reports sums back to the metrics
    assert sum(c["frames"] for c in rec.stranded_by_site.values()) == (
        rec.metrics["stranded_frames"]
    )
    assert sum(c["envs"] for c in rec.stranded_by_site.values()) == (
        rec.metrics["stranded_envs"]
    )
    # the fingerprint is parseable and carries the classification
    payload = json.loads(rec.fingerprint)
    assert payload["outcome"] == rec.outcome
    assert payload["seed"] == seed


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_fault_mix_is_a_pure_function_of_the_seed(seed):
    for protocol in ("native", "sdr"):
        a_sched, a_plan, a_mix = sample_faults(seed, CampaignConfig(), protocol)
        b_sched, b_plan, b_mix = sample_faults(seed, CampaignConfig(), protocol)
        assert a_mix == b_mix
        assert a_sched.crashes == b_sched.crashes
        assert a_sched.respawns == b_sched.respawns
        assert a_sched.suspicions == b_sched.suspicions
        assert a_plan == b_plan


def test_same_seed_reproduces_the_run_byte_identically():
    for protocol, seed in (("sdr", 1), ("native", 0), ("redmpi", 2)):
        first = run_case(protocol, seed)
        again = run_case(protocol, seed)
        assert first.fingerprint == again.fingerprint
        assert first.outcome == again.outcome
        assert first.metrics == again.metrics


# ------------------------------------------------------------ taxonomy edges
def test_taxonomy_buckets_are_exercised_across_seeds():
    """Over a handful of seeds the campaign must demonstrate its point:
    the native stack fails on fault mixes the replicated protocols absorb."""
    result = run_campaign(protocols=("native", "sdr"), seeds=range(6))
    assert not result.violations
    counts = result.outcome_counts()
    # native has no dedup filter and only one replica per rank: crashes
    # lose ranks, duplicated frames double-deliver
    assert counts["native"]["failed"] >= 1
    # sdr absorbs the same mixes with measurable degradation
    assert counts["sdr"]["degraded"] >= 1
    assert counts["sdr"]["failed"] == 0
    # the imperfect detector leaves a measurable mark on degraded sdr runs
    latencies = [
        r.metrics["detection_latency_max"]
        for r in result.records
        if r.protocol == "sdr" and r.metrics["crashes"]
    ]
    assert latencies and all(lat > 0.0 for lat in latencies)


def test_outcome_counts_cover_every_bucket_and_json_round_trips():
    result = run_campaign(protocols=("sdr",), seeds=range(3))
    counts = result.outcome_counts()
    assert set(counts["sdr"]) == set(OUTCOMES)
    assert sum(counts["sdr"].values()) == 3
    records = json.loads(result.to_json())
    assert len(records) == 3
    assert {r["protocol"] for r in records} == {"sdr"}
    table = result.table("smoke")
    for column in ("protocol", *OUTCOMES, "violations"):
        assert column in table


def test_run_record_rejects_unknown_outcome():
    with pytest.raises(ValueError, match="not in"):
        RunRecord(
            protocol="sdr", seed=0, outcome="exploded", mix={}, metrics={},
            stranded_by_site={},
        )


def test_campaign_app_expected_results_match_clean_run():
    cfg = CampaignConfig()
    job = Job(cfg.n_ranks, cluster=cluster_for(cfg.n_ranks, 1))
    res = job.launch(campaign_app, steps=cfg.steps).run()
    want = expected_results(cfg)
    assert res.app_results == {p: want[job.rmap.rank_of(p)] for p in res.app_results}


def test_clean_seed_completes():
    """A seed whose mix draws no faults must classify as completed."""
    # find one deterministically: the mix dict is empty when nothing drew
    for seed in range(64):
        _sched, plan, mix = sample_faults(seed, CampaignConfig(), "sdr")
        if not mix and plan is None:
            rec = run_case("sdr", seed)
            assert rec.outcome == "completed"
            assert rec.invariant_error is None
            break
    else:  # pragma: no cover - probability ~0 over 64 seeds
        raise AssertionError("no fault-free mix in 64 seeds")
