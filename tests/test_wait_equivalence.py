"""Property tests: specialized wait loops ≡ generic wait loops.

PR 4 specialized the remaining generic completion loops per-handle
(:meth:`MpiProcess.wait_handles` — the NAS ``waitall`` towers — plus
``waitsome``/``waitany``): stock handles resolve to their underlying PML
requests once, completed requests drop out of the pending scan, and the
progress step is inlined.  The generic loops survive as
``wait_handles_generic``/``waitsome_generic``/``waitany_generic`` — the
executable specification — and every randomized configuration here runs
the same program through both and compares results, statuses, completion
orders, bit-identical virtual times and dispatched-event counts, under
completion orders randomized by per-sender compute delays.

The leader protocol is included deliberately: its ``DeferredRecvHandle``
does real work in ``advance()``, is *not* stock, and must route the whole
handle set to the generic loop — the fallback dispatch is part of the
contract.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for

PROTOCOLS = ["native", "sdr", "leader"]


def _status_obs(status):
    return None if status is None else (status.source, status.tag, status.nbytes)


def waiter_fanin(mpi, which, use_generic, delays, per_peer):
    """Rank 0 posts ANY_SOURCE receives (plus sends back), then completes
    them through the selected wait loop; peers send after hypothesis-drawn
    compute delays, randomizing the completion order rank 0 observes."""
    if mpi.rank != 0:
        d = delays[(mpi.rank - 1) % len(delays)]
        for i in range(per_peer):
            yield from mpi.compute(d * 1e-6)
            yield from mpi.send(np.array([float(mpi.rank * 100 + i)]), dest=0, tag=7)
        got, _st = yield from mpi.recv(source=0, tag=8)
        return float(got[0])
    handles = []
    for _ in range(per_peer * (mpi.size - 1)):
        h = yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=7)
        handles.append(h)
    # Mixed handle kinds: the farewell sends complete through the same loop.
    for dst in range(1, mpi.size):
        s = yield from mpi.isend(np.array([float(dst)]), dest=dst, tag=8)
        handles.append(s)
    obs = []
    if which == "waitall":
        loop = mpi.wait_handles_generic if use_generic else mpi.wait_handles
        statuses = yield from loop(handles)
        obs.append([_status_obs(s) for s in statuses])
    elif which == "waitsome":
        loop = mpi.waitsome_generic if use_generic else mpi.waitsome
        pending = list(range(len(handles)))
        while pending:
            done = yield from loop([handles[i] for i in pending])
            got = {i for i, _s in done}
            obs.append(sorted((pending[i], _status_obs(s)) for i, s in done))
            pending = [p for j, p in enumerate(pending) if j not in got]
    else:  # waitany
        loop = mpi.waitany_generic if use_generic else mpi.waitany
        pending = list(range(len(handles)))
        while pending:
            i, s = yield from loop([handles[p] for p in pending])
            obs.append((pending[i], _status_obs(s)))
            pending.pop(i)
    data = sorted(float(h.data[0]) for h in handles[: per_peer * (mpi.size - 1)])
    return (obs, data)


def _run(protocol, n, which, use_generic, delays, per_peer):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    job = Job(n, cfg=cfg, cluster=cluster_for(n, cfg.degree))
    res = job.launch(
        waiter_fanin,
        which=which,
        use_generic=use_generic,
        delays=delays,
        per_peer=per_peer,
    ).run()
    return {
        "results": {p: v for p, v in sorted(res.app_results.items())},
        "runtime": repr(res.runtime),
        "finish": {p: repr(t) for p, t in sorted(res.finish_times.items())},
        "events": res.events,
        "frames": res.fabric["frames"],
    }


@settings(max_examples=40, deadline=None)
@given(
    protocol=st.sampled_from(PROTOCOLS),
    n=st.sampled_from([3, 4, 5]),
    which=st.sampled_from(["waitall", "waitsome", "waitany"]),
    per_peer=st.integers(1, 3),
    delays=st.lists(st.integers(0, 40), min_size=1, max_size=4),
)
def test_wait_loop_equivalence(protocol, n, which, per_peer, delays):
    fast = _run(protocol, n, which, use_generic=False, delays=delays, per_peer=per_peer)
    spec = _run(protocol, n, which, use_generic=True, delays=delays, per_peer=per_peer)
    assert fast == spec, (
        f"specialized {which} diverged from generic spec ({protocol}, n={n})"
    )


def test_stock_dispatch_decision():
    """Stock handle sets get a poll plan; one non-stock handle (leader's
    deferred receive) sends the whole set to the generic spec loop."""
    from repro.core.baselines.leader import DeferredRecvHandle
    from repro.mpi.handles import RecvHandle, SendHandle
    from repro.mpi.pml import PmlRecvRequest

    cfg = ReplicationConfig(degree=1, protocol="native")
    job = Job(2, cfg=cfg, cluster=cluster_for(2, 1))
    mpi = job.mpis[0]
    recv = RecvHandle(PmlRecvRequest(("w",), 1, 7))
    send = SendHandle([], world_dst=1, seq=0)
    polls = mpi._stock_polls([recv, send])
    assert polls == [(False, recv.pml_req), (True, send)]
    deferred = DeferredRecvHandle(None, 0, ("w",), 7, None)
    assert mpi._stock_polls([recv, deferred, send]) is None


def test_specialized_waitall_drops_completed_handles():
    """The whole point: completed requests leave the pending scan.  Proven
    indirectly by equivalence; pinned here via the public result so a
    refactor cannot quietly turn the compaction into a no-op."""
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(3, cfg=cfg, cluster=cluster_for(3, 2))
    res = job.launch(
        waiter_fanin, which="waitall", use_generic=False, delays=[5, 25], per_peer=3
    ).run()
    obs, data = res.app_results[0]
    assert len(obs[0]) == 3 * 2 + 2  # every status surfaced, sends included
    assert data == sorted(data) and len(data) == 6
