"""Unit tests for named deterministic random streams."""

import numpy as np

from repro.sim.rng import RngRegistry


def test_same_name_same_seed_reproduces():
    a = RngRegistry(seed=7).stream("x").random(5)
    b = RngRegistry(seed=7).stream("x").random(5)
    assert np.array_equal(a, b)


def test_different_names_are_independent():
    reg = RngRegistry(seed=7)
    a = reg.stream("a").random(5)
    b = reg.stream("b").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(5)
    b = RngRegistry(seed=2).stream("x").random(5)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    reg = RngRegistry()
    assert reg.stream("x") is reg.stream("x")


def test_adding_streams_does_not_shift_existing():
    reg1 = RngRegistry(seed=3)
    _ = reg1.stream("a")
    vals1 = reg1.stream("z").random(4)

    reg2 = RngRegistry(seed=3)
    _ = reg2.stream("a")
    _ = reg2.stream("b")  # extra stream created in between
    vals2 = reg2.stream("z").random(4)
    assert np.array_equal(vals1, vals2)


def test_reseed_perturbs_one_stream_only():
    reg = RngRegistry(seed=5)
    base_other = reg.stream("other").random(3)
    reg.reseed("target", seed=999)
    perturbed = reg.stream("target").random(3)

    fresh = RngRegistry(seed=5)
    assert np.array_equal(base_other, fresh.stream("other").random(3))
    assert not np.array_equal(perturbed, fresh.stream("target").random(3))
