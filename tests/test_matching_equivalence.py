"""Property tests: indexed MatchEngine ≡ LinearMatchEngine.

The indexed engine replaces the seed engine's linear scans with pattern
lanes; MPI semantics (non-overtaking, first-compatible-pair, wildcard
receives) must be preserved *exactly* — the pairing decisions of the two
engines on any operation stream have to be identical, because matching
order is observable through virtual timestamps and ANY_SOURCE results.

The streams below interleave arrivals, posts (with ANY_SOURCE/ANY_TAG in
all four combinations), cancels and probes over multiple contexts, and
compare every return value plus the pending-queue contents and stats after
every step.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.mpi.matching import LinearMatchEngine, MatchEngine
from repro.mpi.pml import Envelope, PmlRecvRequest
from repro.mpi.status import ANY_SOURCE, ANY_TAG


def make_env(ctx, src, tag, seq):
    return Envelope(
        kind="eager",
        ctx=ctx,
        src_rank=src,
        tag=tag,
        world_src=src,
        world_dst=1,
        seq=seq,
        nbytes=8,
        data=None,
        src_phys=src,
        dst_phys=1,
    )


CTXS = [("w", "p"), ("c", 1)]
SRC = st.integers(0, 2)
TAG = st.integers(0, 2)
WSRC = st.one_of(st.just(ANY_SOURCE), st.integers(0, 2))
WTAG = st.one_of(st.just(ANY_TAG), st.integers(0, 2))
CTX = st.sampled_from(CTXS)

# op encodings: ("arrive", ctx, src, tag) | ("post", ctx, src?, tag?)
#               | ("cancel", k) — cancel the k-th still-pending posted recv
#               | ("probe", ctx, src?, tag?)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("arrive"), CTX, SRC, TAG),
        st.tuples(st.just("post"), CTX, WSRC, WTAG),
        st.tuples(st.just("cancel"), st.integers(0, 5)),
        st.tuples(st.just("probe"), CTX, WSRC, WTAG),
    ),
    min_size=1,
    max_size=60,
)


def snapshot(engine):
    return (
        [id(r) for r in engine.posted],
        [id(e) for e in engine.unexpected],
        engine.stats(),
    )


@settings(max_examples=300, deadline=None)
@given(ops=OPS)
def test_indexed_engine_matches_linear_reference(ops):
    fast, ref = MatchEngine(), LinearMatchEngine()
    # Shared objects: both engines see the *same* request/envelope instances
    # so identity-based comparison of results is meaningful.
    pending_recvs = []
    seq = 0
    for op in ops:
        if op[0] == "arrive":
            _, ctx, src, tag = op
            env = make_env(ctx, src, tag, seq)
            seq += 1
            got_fast = fast.arrive(env)
            got_ref = ref.arrive(env)
            assert got_fast is got_ref
            if got_fast is not None and got_fast in pending_recvs:
                pending_recvs.remove(got_fast)
        elif op[0] == "post":
            _, ctx, src, tag = op
            recv = PmlRecvRequest(ctx, src, tag)
            got_fast = fast.post(recv)
            got_ref = ref.post(recv)
            assert got_fast is got_ref
            if got_fast is None:
                pending_recvs.append(recv)
        elif op[0] == "cancel":
            _, k = op
            if not pending_recvs:
                continue
            recv = pending_recvs[k % len(pending_recvs)]
            ok_fast = fast.cancel(recv)
            ok_ref = ref.cancel(recv)
            assert ok_fast == ok_ref
            if ok_fast:
                pending_recvs.remove(recv)
        else:  # probe
            _, ctx, src, tag = op
            assert fast.probe(ctx, src, tag) is ref.probe(ctx, src, tag)
        assert snapshot(fast) == snapshot(ref), "queues diverged mid-stream"


@settings(max_examples=150, deadline=None)
@given(
    arrivals=st.lists(st.tuples(SRC, TAG), min_size=1, max_size=25),
    wild=st.lists(st.booleans(), min_size=25, max_size=25),
)
def test_wildcard_drain_preserves_arrival_order(arrivals, wild):
    """Draining with a mix of specific and wildcard receives pairs both
    engines identically and respects non-overtaking per pattern."""
    fast, ref = MatchEngine(), LinearMatchEngine()
    ctx = CTXS[0]
    for i, (src, tag) in enumerate(arrivals):
        env = make_env(ctx, src, tag, i)
        assert fast.arrive(env) is ref.arrive(env)
    for i, (src, tag) in enumerate(arrivals):
        if wild[i]:
            recv = PmlRecvRequest(ctx, ANY_SOURCE, ANY_TAG)
        else:
            recv = PmlRecvRequest(ctx, src, tag)
        assert fast.post(recv) is ref.post(recv)
    assert snapshot(fast) == snapshot(ref)


def test_cancelled_receive_never_matches():
    fast = MatchEngine()
    ctx = CTXS[0]
    r1 = PmlRecvRequest(ctx, ANY_SOURCE, 1)
    r2 = PmlRecvRequest(ctx, ANY_SOURCE, 1)
    fast.post(r1)
    fast.post(r2)
    assert fast.cancel(r1)
    assert not fast.cancel(r1), "double-cancel must report failure"
    env = make_env(ctx, 0, 1, 0)
    assert fast.arrive(env) is r2, "tombstoned receive matched"
    assert fast.stats()["posted_pending"] == 0


def test_tombstones_do_not_leak_into_views():
    fast = MatchEngine()
    ctx = CTXS[0]
    envs = [make_env(ctx, s, 0, s) for s in range(3)]
    for env in envs:
        fast.arrive(env)
    # Claim the middle one via a specific receive: lanes for the wildcard
    # patterns still hold its tombstone internally.
    got = fast.post(PmlRecvRequest(ctx, 1, 0))
    assert got is envs[1]
    assert fast.unexpected == [envs[0], envs[2]]
    assert fast.probe(ctx, ANY_SOURCE, ANY_TAG) is envs[0]
    assert fast.stats()["unexpected_pending"] == 2
