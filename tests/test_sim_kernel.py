"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import SimulationError, Simulator, StopSimulation
from repro.sim.sync import Event


class TestScheduling:
    def test_clock_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_callback_fires_at_scheduled_time(self, sim):
        seen = []
        sim.call_in(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]

    def test_call_at_absolute_time(self, sim):
        seen = []
        sim.call_at(1.0, lambda: seen.append("a"))
        sim.call_at(3.0, lambda: seen.append("b"))
        sim.run()
        assert seen == ["a", "b"]
        assert sim.now == 3.0

    def test_fifo_tie_break_at_same_time(self, sim):
        seen = []
        for i in range(10):
            sim.call_at(1.0, lambda i=i: seen.append(i))
        sim.run()
        assert seen == list(range(10))

    def test_interleaved_times_dispatch_in_order(self, sim):
        seen = []
        for t in (5.0, 1.0, 3.0, 2.0, 4.0):
            sim.call_at(t, lambda t=t: seen.append(t))
        sim.run()
        assert seen == sorted(seen)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(Event(sim), delay=-1.0)

    def test_schedule_in_past_rejected(self, sim):
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(Event(sim), 1.0)

    def test_nested_scheduling_from_callback(self, sim):
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.call_in(1.0, lambda: seen.append(("inner", sim.now)))

        sim.call_at(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestRun:
    def test_run_until_stops_clock_at_horizon(self, sim):
        sim.call_at(10.0, lambda: None)
        sim.run(until=4.0)
        assert sim.now == 4.0
        assert sim.queue_size == 1

    def test_run_until_resumable(self, sim):
        seen = []
        sim.call_at(10.0, lambda: seen.append("x"))
        sim.run(until=4.0)
        sim.run()
        assert seen == ["x"]

    def test_stop_simulation_carries_value(self, sim):
        def stopper():
            raise StopSimulation("done")

        sim.call_at(1.0, stopper)
        sim.call_at(2.0, lambda: pytest.fail("should not run"))
        assert sim.run() == "done"

    def test_events_dispatched_counter(self, sim):
        for t in range(5):
            sim.call_at(float(t), lambda: None)
        sim.run()
        assert sim.events_dispatched == 5

    def test_step_single_event(self, sim):
        seen = []
        sim.call_at(1.0, lambda: seen.append(1))
        sim.call_at(2.0, lambda: seen.append(2))
        assert sim.step()
        assert seen == [1]
        assert sim.step()
        assert not sim.step()

    def test_run_not_reentrant(self, sim):
        def recurse():
            sim.run()

        sim.call_at(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_peek_next_event_time(self, sim):
        assert sim.peek() is None
        sim.call_at(7.0, lambda: None)
        assert sim.peek() == 7.0


class TestCancellation:
    def test_cancelled_event_not_dispatched(self, sim):
        ev = Event(sim)
        seen = []
        ev.add_callback(lambda e: seen.append(1))
        ev.succeed()
        ev.cancelled = True
        sim.run()
        assert seen == []

    def test_trace_hook_sees_every_event(self, sim):
        seen = []
        sim.trace_hook = lambda t, e: seen.append(t)
        sim.call_at(1.0, lambda: None)
        sim.call_at(2.0, lambda: None)
        sim.run()
        assert seen == [1.0, 2.0]


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def build_and_run():
            sim = Simulator()
            trace = []
            for t in (3.0, 1.0, 1.0, 2.0):
                sim.call_at(t, lambda t=t: trace.append((sim.now, t)))
            sim.call_at(1.5, lambda: sim.call_in(0.5, lambda: trace.append("nested")))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()
