"""Cross-cutting property-based tests (hypothesis).

These pin the invariants the protocol design leans on:

* the kernel dispatches events in (time, insertion) order, always;
* the replicated receive filter releases any arrival permutation in
  sequence order, exactly once (idempotent under duplication);
* random SPMD communication programs produce identical results native vs
  SDR-replicated, and identical results across the two replica worlds;
* the fabric never violates per-channel FIFO, whatever the frame sizes.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from repro.mpi.pml import Envelope
from repro.network.fabric import Fabric, Frame
from repro.network.topology import Cluster, round_robin_placement
from repro.sim.kernel import Simulator

from tests.conftest import DeliverSpy


@settings(max_examples=50)
@given(st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False), min_size=1, max_size=40))
def test_kernel_dispatch_order_is_sorted(times):
    sim = Simulator()
    seen = []
    for t in times:
        sim.call_at(t, lambda t=t: seen.append(t))
    sim.run()
    assert seen == sorted(times)
    # stable for equal keys: equal times keep insertion order
    positions = {}
    for i, t in enumerate(times):
        positions.setdefault(t, []).append(i)


@settings(max_examples=50)
@given(order=st.permutations(list(range(8))), dup=st.lists(st.integers(0, 7), max_size=6))
def test_reorder_filter_releases_in_order_exactly_once(order, dup):
    """Feed an arbitrary permutation (plus duplicates) of seqs 0..7 into the
    replicated incoming filter: matching sees 0..7 in order, once each."""
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
    proto = job.protocols[0]
    released = []

    def fake_deliver(env):
        released.append(env.seq)
        yield from ()

    proto.pml = DeliverSpy(proto.pml, fake_deliver)

    def feed(seq):
        env = Envelope(
            kind="eager",
            ctx=("w",),
            src_rank=1,
            tag=0,
            world_src=1,
            world_dst=0,
            seq=seq,
            nbytes=8,
            data=None,
            src_phys=1,
            dst_phys=0,
        )
        gen = proto._filter_incoming(env)
        try:
            while True:
                next(gen)
        except StopIteration:
            pass

    sequence = list(order)
    # interleave duplicates of already-planned seqs at the end
    for seq in sequence + dup:
        feed(seq)
    assert released == list(range(8))


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(2, 5),
    rounds=st.integers(1, 4),
    pattern=st.lists(st.integers(0, 2), min_size=1, max_size=3),
    seed=st.integers(0, 50),
)
def test_random_spmd_program_native_equals_replicated(n, rounds, pattern, seed):
    """Generative SPMD programs: ring shifts, allreduces, gathers in a random
    order — native and SDR runs must produce identical results, and the two
    replica worlds must agree."""
    rng = np.random.default_rng(seed)
    consts = rng.normal(size=8)

    def app(mpi):
        acc = float(consts[mpi.rank % 8])
        for r in range(rounds):
            for op in pattern:
                if op == 0:  # ring shift
                    right = (mpi.rank + 1) % mpi.size
                    left = (mpi.rank - 1) % mpi.size
                    got, _ = yield from mpi.sendrecv(
                        np.array([acc]), dest=right, source=left, sendtag=r, recvtag=r
                    )
                    acc = acc * 0.5 + float(got[0]) * 0.5
                elif op == 1:  # allreduce
                    acc = yield from mpi.allreduce(acc, op="sum")
                else:  # bcast from a rotating root
                    root = r % mpi.size
                    acc = yield from mpi.bcast(acc if mpi.rank == root else None, root=root)
        return acc

    native = Job(n, cluster=cluster_for(n)).launch(app).run()
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    replicated = Job(n, cfg=cfg, cluster=cluster_for(n, 2)).launch(app).run()
    for rank in range(n):
        assert replicated.app_results[rank] == native.app_results[rank]
        assert replicated.app_results[rank] == replicated.app_results[rank + n]


@settings(max_examples=40, deadline=None)
@given(
    sizes=st.lists(st.integers(1, 200_000), min_size=1, max_size=20),
)
def test_fabric_fifo_for_any_size_mix(sizes):
    sim = Simulator()
    placement = round_robin_placement(Cluster(nodes=2, cores_per_node=1), 2)
    fabric = Fabric(sim, placement)
    for i, size in enumerate(sizes):
        fabric.inject(Frame(src=0, dst=1, size=size, payload=i))
    sim.run()
    got = [f.payload for f in fabric.endpoint(1).inbox]
    assert got == list(range(len(sizes)))
    arrivals = [f.arrived_at for f in fabric.endpoint(1).inbox]
    assert arrivals == sorted(arrivals)


@settings(max_examples=30, deadline=None)
@given(laps=st.integers(1, 3), n=st.integers(2, 6))
def test_ring_token_conservation(laps, n):
    from repro.apps.patterns import ring

    res = Job(n, cluster=cluster_for(n)).launch(ring, laps=laps).run()
    assert all(v == laps for v in res.app_results.values())


@settings(max_examples=20, deadline=None)
@given(crash_at_us=st.integers(5, 200))
def test_failover_correct_for_any_crash_time(crash_at_us):
    """Property: whatever the crash instant, surviving replicas finish with
    the failure-free result."""

    def app(mpi, iters=30):
        total = 0.0
        for it in range(iters):
            if mpi.rank == 1:
                yield from mpi.send(np.array([float(it)]), dest=0, tag=1)
                got, _ = yield from mpi.recv(source=0, tag=2)
            else:
                got, _ = yield from mpi.recv(source=1, tag=1)
                yield from mpi.send(np.array([2.0 * it]), dest=1, tag=2)
            total += float(got[0])
            yield from mpi.compute(1e-6)
        return total

    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
    job.launch(app)
    job.crash(1, 1, at=crash_at_us * 1e-6)
    res = job.run()
    want = {0: sum(float(i) for i in range(30)), 1: sum(2.0 * i for i in range(30))}
    for proc, val in res.app_results.items():
        assert val == want[job.rmap.rank_of(proc)]
