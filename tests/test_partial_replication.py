"""Partial replication (§5 research direction; MR-MPI's headline feature).

Only a subset of ranks gets a replica.  An absent replica behaves exactly
like a replica that failed before t=0: its substitute (the sole copy)
carries both worlds' sending duties from the start, receivers of the
unreplicated rank's messages get them mirror-style, and sends *toward*
the unreplicated rank from world-1 peers are covered by the world-0 copy
plus the usual acks.
"""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from tests.conftest import run_app


def _job(replicated, n_ranks=4, protocol="sdr"):
    cfg = ReplicationConfig(degree=2, protocol=protocol, replicated_ranks=frozenset(replicated))
    return Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, 2))


def ring_all(mpi, iters=15):
    total = 0.0
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    for it in range(iters):
        got, _ = yield from mpi.sendrecv(
            np.array([float(mpi.rank + it)]), dest=right, source=left, sendtag=1, recvtag=1
        )
        total += float(got[0])
        yield from mpi.compute(1e-6)
    s = yield from mpi.allreduce(total, op="sum")
    return s


class TestConfig:
    def test_replicated_ranks_normalized(self):
        cfg = ReplicationConfig(degree=2, protocol="sdr", replicated_ranks={1, 2})
        assert cfg.replicated_ranks == frozenset({1, 2})
        assert cfg.rank_is_replicated(1)
        assert not cfg.rank_is_replicated(0)

    def test_full_replication_by_default(self):
        assert ReplicationConfig().rank_is_replicated(99)

    def test_native_cannot_be_partial(self):
        with pytest.raises(ValueError):
            ReplicationConfig(degree=1, protocol="native", replicated_ranks={0})

    def test_negative_ranks_rejected(self):
        with pytest.raises(ValueError):
            ReplicationConfig(degree=2, protocol="sdr", replicated_ranks={-1})


class TestExecution:
    def test_absent_replicas_not_launched(self):
        job = _job(replicated={0, 2}).launch(ring_all)
        # ranks 1 and 3 are unreplicated: procs 5 and 7 do not exist
        assert job.absent == {job.rmap.phys(1, 1), job.rmap.phys(3, 1)}
        assert set(job.processes) == set(range(8)) - {5, 7}

    def test_partial_run_produces_correct_results(self):
        job = _job(replicated={0, 2}).launch(ring_all)
        res = job.run()
        full = run_app(ring_all, 4)
        want = full.app_results[0]
        for proc, val in res.app_results.items():
            assert val == want

    def test_replicated_and_sole_copies_agree(self):
        job = _job(replicated={1}).launch(ring_all)
        res = job.run()
        # rank 1's two replicas both finish with identical results
        assert res.app_results[1] == res.app_results[5]

    def test_nobody_replicated_degenerates_to_single_copies(self):
        job = _job(replicated=set()).launch(ring_all)
        res = job.run()
        assert len(res.app_results) == 4
        want = run_app(ring_all, 4).app_results[0]
        assert all(v == want for v in res.app_results.values())

    def test_sole_copy_feeds_both_worlds(self):
        """The unreplicated rank's single process must supply world-1's
        replicas too (mirror-style adoption at startup)."""
        job = _job(replicated={0, 1, 3})  # rank 2 unreplicated
        sole = job.protocols[job.rmap.phys(2, 0)]
        # it adopted world-1 destinations for its neighbours
        assert job.rmap.phys(3, 1) in sole.dests_for(3)
        assert job.rmap.phys(1, 1) in sole.dests_for(1)
        job.launch(ring_all)
        res = job.run()
        want = run_app(ring_all, 4).app_results[0]
        assert all(v == want for v in res.app_results.values())

    def test_collectives_work_partially_replicated(self):
        def app(mpi):
            s = yield from mpi.allreduce(float(mpi.rank), op="sum")
            g = yield from mpi.allgather(mpi.rank)
            b = yield from mpi.bcast(s if mpi.rank == 0 else None, root=0)
            return s, tuple(g), b

        job = _job(replicated={0, 3}).launch(app)
        res = job.run()
        for proc, (s, g, b) in res.app_results.items():
            assert s == 6.0 and g == (0, 1, 2, 3) and b == 6.0

    def test_anysource_app_partial(self):
        def app(mpi, rounds=5):
            if mpi.rank == 0:
                total = 0.0
                for r in range(rounds):
                    for _ in range(mpi.size - 1):
                        d, _ = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                        total += float(d[0])
                    for dst in range(1, mpi.size):
                        yield from mpi.send(np.array([total]), dest=dst, tag=3)
                return total
            acc = 0.0
            for r in range(rounds):
                yield from mpi.send(np.array([float(mpi.rank)]), dest=0, tag=2)
                d, _ = yield from mpi.recv(source=0, tag=3)
                acc = float(d[0])
            return acc

        job = _job(replicated={0, 1}, n_ranks=3).launch(app)
        res = job.run()
        vals = set(res.app_results.values())
        assert len(vals) == 1

    def test_mirror_protocol_partial(self):
        job = _job(replicated={0}, protocol="mirror").launch(ring_all)
        res = job.run()
        want = run_app(ring_all, 4).app_results[0]
        assert all(v == want for v in res.app_results.values())


class TestPartialFaultTolerance:
    def test_replicated_rank_still_tolerates_crash(self):
        job = _job(replicated={0, 2}).launch(ring_all)
        job.crash(2, 1, at=20e-6)  # kill rank 2's replica
        res = job.run()
        want = run_app(ring_all, 4).app_results[0]
        for proc, val in res.app_results.items():
            assert val == want

    def test_unreplicated_rank_crash_loses_application(self):
        job = _job(replicated={0, 2}).launch(ring_all)
        job.crash(1, 0, at=20e-6)  # rank 1 has no replica
        with pytest.raises(Exception) as err:
            job.run()
        assert "lost" in str(err.value).lower() or "deadlock" in str(err.value).lower()

    def test_resource_savings_measurable(self):
        """Half the ranks replicated -> fewer frames than full replication."""
        full = _job(replicated={0, 1, 2, 3}).launch(ring_all).run()
        half = _job(replicated={0, 2}).launch(ring_all).run()
        assert half.fabric["frames"] < full.fabric["frames"]
