"""SDR-MPI protocol semantics: acks, retention, completion gating, ordering.

These tests pin Algorithm 1's observable behaviour on the failure-free
path; failover and recovery live in test_core_failover.py and
test_core_recovery.py.
"""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from tests.conftest import DeliverSpy, run_app


def _sdr_job(n_ranks=2, **cfg_kwargs):
    cfg = ReplicationConfig(degree=2, protocol="sdr", **cfg_kwargs)
    return Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, 2, cores_per_node=1))


class TestParallelSends:
    def test_each_message_sent_once_per_replica(self):
        """Parallel protocol: O(q·r) data messages, not O(q·r²)."""

        def app(mpi):
            if mpi.rank == 0:
                for _ in range(10):
                    yield from mpi.send(np.ones(4), dest=1, tag=1)
            else:
                for _ in range(10):
                    yield from mpi.recv(source=0, tag=1)

        job = _sdr_job()
        res = job.launch(app).run()
        # 10 logical messages x 2 replicas = 20 eager frames
        assert res.fabric["by_kind"].get("eager", 0) == 20

    def test_one_ack_per_received_message(self):
        def app(mpi):
            if mpi.rank == 0:
                for _ in range(7):
                    yield from mpi.send(np.ones(1), dest=1, tag=1)
                # ensure acks are drained before exiting
                yield from mpi.barrier()
            else:
                for _ in range(7):
                    yield from mpi.recv(source=0, tag=1)
                yield from mpi.barrier()

        res = _sdr_job().launch(app).run()
        # 7 app msgs x 2 receivers, plus barrier traffic acks
        sent = res.stat_total("acks_sent")
        received = res.stat_total("acks_received")
        assert sent == received
        assert sent >= 14

    def test_send_completion_gated_on_ack(self):
        """MPI_Wait on a send returns only after the remote replica's ack
        (lines 12-14): with the receiver replica stalled in compute, the
        sender's Send must stall too."""

        def app(mpi, stall=200e-6):
            if mpi.rank == 0:
                t0 = mpi.wtime()
                yield from mpi.send(np.ones(1), dest=1, tag=1)
                return mpi.wtime() - t0
            # both receiver replicas stall before receiving
            yield from mpi.compute(stall)
            yield from mpi.recv(source=0, tag=1)

        res = _sdr_job().launch(app, stall=200e-6).run()
        send_time = res.app_results[0]
        assert send_time >= 200e-6  # gated on the (stalled) ack

    def test_native_send_not_gated(self):
        def app(mpi, stall=200e-6):
            if mpi.rank == 0:
                t0 = mpi.wtime()
                yield from mpi.send(np.ones(1), dest=1, tag=1)
                return mpi.wtime() - t0
            yield from mpi.compute(stall)
            yield from mpi.recv(source=0, tag=1)

        res = run_app(app, 2, stall=200e-6)
        assert res.app_results[0] < 50e-6  # eager send completes locally

    def test_retention_cleared_after_acks(self):
        def app(mpi):
            if mpi.rank == 0:
                for _ in range(5):
                    yield from mpi.send(np.ones(1), dest=1, tag=1)
            else:
                for _ in range(5):
                    yield from mpi.recv(source=0, tag=1)
            yield from mpi.barrier()

        job = _sdr_job()
        job.launch(app).run()
        for proto in job.protocols.values():
            assert proto.retention == {}
            assert not proto._early_acks  # lazy: None until an ack parks

    def test_early_ack_parked_and_consumed(self):
        """One replica pair runs far ahead: its receiver's acks arrive at
        the lagging sender before that sender even posts the send."""

        def app(mpi):
            if mpi.proc == 0:  # p^0_0 lags behind its replica p^1_0
                yield from mpi.compute(500e-6)
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)
            yield from mpi.barrier()

        job = _sdr_job()
        job.launch(app).run()
        for proto in job.protocols.values():
            assert proto.retention == {}


class TestAnySource:
    def test_no_leader_traffic_for_anonymous_receives(self):
        """§3.1: replicas decide locally — no decision messages exist."""

        def app(mpi):
            if mpi.rank == 0:
                srcs = []
                for _ in range(2):
                    _, st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=1)
                    srcs.append(st.source)
                return sorted(srcs)
            yield from mpi.send(np.ones(1), dest=0, tag=1)

        job = _sdr_job(n_ranks=3)
        res = job.launch(app).run()
        assert res.app_results[0] == [1, 2]
        assert res.app_results[3] == [1, 2]
        assert "ctrl" not in {k for k in res.fabric["by_kind"] if k == "decide"}

    def test_replicas_may_diverge_internally(self):
        """The two replicas of rank 0 may observe different reception
        orders (allowed!) while the replicated run still completes and both
        return the same multiset of sources."""

        def app(mpi):
            if mpi.rank == 0:
                order = []
                for _ in range(4):
                    _, st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=1)
                    order.append(st.source)
                return order
            # stagger sends differently on purpose via rank-dependent compute
            yield from mpi.compute(mpi.rank * 3e-6)
            yield from mpi.send(np.ones(1), dest=0, tag=1)
            yield from mpi.send(np.ones(1), dest=0, tag=1)

        job = _sdr_job(n_ranks=3)
        res = job.launch(app).run()
        assert sorted(res.app_results[0]) == sorted(res.app_results[3]) == [1, 1, 2, 2]


class TestOrdering:
    def test_receiver_filter_releases_in_seq_order(self):
        from repro.mpi.pml import Envelope

        job = _sdr_job()
        proto = job.protocols[0]  # p^0_0
        released = []

        def fake_deliver(env):
            released.append(env.seq)
            yield from ()

        proto.pml = DeliverSpy(proto.pml, fake_deliver)

        def feed(seq, kind="eager"):
            env = Envelope(
                kind=kind,
                ctx=("w",),
                src_rank=1,
                tag=0,
                world_src=1,
                world_dst=0,
                seq=seq,
                nbytes=8,
                data=None,
                src_phys=1,
                dst_phys=0,
            )
            gen = proto._filter_incoming(env)
            try:
                while True:
                    next(gen)
            except StopIteration:
                pass

        for seq in (2, 0, 3, 1, 4):
            feed(seq)
        assert released == [0, 1, 2, 3, 4]

    def test_duplicates_dropped_and_counted(self):
        from repro.mpi.pml import Envelope

        job = _sdr_job()
        proto = job.protocols[0]
        delivered = []

        def fake_deliver(env):
            delivered.append(env.seq)
            yield from ()

        proto.pml = DeliverSpy(proto.pml, fake_deliver)

        def feed(seq):
            env = Envelope(
                kind="eager",
                ctx=("w",),
                src_rank=1,
                tag=0,
                world_src=1,
                world_dst=0,
                seq=seq,
                nbytes=8,
                data=None,
                src_phys=1,
                dst_phys=0,
            )
            gen = proto._filter_incoming(env)
            try:
                while True:
                    next(gen)
            except StopIteration:
                pass

        for seq in (0, 1, 0, 1, 2, 2):
            feed(seq)
        assert delivered == [0, 1, 2]
        assert proto.duplicates_dropped == 3

    def test_results_identical_native_vs_sdr(self):
        """The acid test: same program, same numeric results."""

        def app(mpi):
            local = np.arange(8.0) + mpi.rank
            total = yield from mpi.allreduce(local, op="sum")
            gathered = yield from mpi.gather(float(local[0]), root=0)
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            got, _ = yield from mpi.sendrecv(local[:2].copy(), dest=right, source=left)
            return float(total.sum()) + float(got.sum()) + (sum(gathered) if gathered else 0)

        nat = run_app(app, 5)
        sdr = run_app(app, 5, protocol="sdr")
        for rank in range(5):
            assert nat.app_results[rank] == sdr.app_results[rank]
            assert sdr.app_results[rank] == sdr.app_results[rank + 5]


class TestAckCosts:
    def test_ping_pong_latency_matches_paper_anchor(self):
        from repro.apps.netpipe import netpipe_sweep

        sweep = netpipe_sweep("sdr", sizes=(1,), iters=10)
        lat_us = sweep[1]["latency_s"] * 1e6
        # paper: 2.37 us for 1-byte messages under SDR-MPI
        assert lat_us == pytest.approx(2.37, rel=0.05)

    def test_overhead_decays_with_message_size(self):
        from repro.apps.netpipe import netpipe_sweep

        nat = netpipe_sweep("native", sizes=(1, 65536, 8388608), iters=5)
        sdr = netpipe_sweep("sdr", sizes=(1, 65536, 8388608), iters=5)
        decs = [
            sdr[s]["latency_s"] / nat[s]["latency_s"] - 1 for s in (1, 65536, 8388608)
        ]
        assert decs[0] > 0.25  # paper: >25 % only for small messages
        assert decs[0] > decs[1] > decs[2]
        assert decs[2] < 0.01
