"""Runtime ownership guard on the hook surface (``on_match`` /
``on_recv_complete``).

Hooks borrow the envelope; ``env.retain()`` is the escape hatch, balanced
later by ``pml.release_env``.  With the filter guard enabled, hooks are
wrapped at append time in retain accounting: a retain that is never
balanced is stranded at the ``unbalanced_retain`` site at end of run and
the harness raises naming the hook — instead of an anonymous arena
imbalance.
"""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.core.interpose import filter_guard_enabled, set_filter_guard
from repro.harness.runner import Job, cluster_for


def pingpong(mpi, rounds=4):
    peer = 1 - mpi.rank
    acc = 0.0
    for k in range(rounds):
        if mpi.rank == 0:
            yield from mpi.send(np.array([float(k)]), dest=peer, tag=5)
            got, _ = yield from mpi.recv(source=peer, tag=5)
        else:
            got, _ = yield from mpi.recv(source=peer, tag=5)
            yield from mpi.send(got, dest=peer, tag=5)
        acc += float(got[0])
    return acc


def _sdr_job():
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    return Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))


@pytest.fixture
def guard():
    previous = set_filter_guard(True)
    yield
    set_filter_guard(previous)


class TestGuardMechanics:
    def test_flag_round_trip(self):
        previous = set_filter_guard(True)
        try:
            assert filter_guard_enabled()
            assert set_filter_guard(False) is True
            assert not filter_guard_enabled()
        finally:
            set_filter_guard(previous)

    def test_hooks_wrap_only_while_enabled(self, guard):
        job = _sdr_job()
        pml = job.pmls[0]

        def plain(recv, env):
            return None

        pml.on_match.append(plain)
        assert pml.on_match[-1].__wrapped__ is plain
        set_filter_guard(False)
        pml.on_match.append(plain)
        assert pml.on_match[-1] is plain


class TestUnbalancedRetain:
    def test_on_match_retain_without_release_fails_naming_the_hook(self, guard):
        job = _sdr_job()

        def bad_hook(recv, env):
            env.retain()  # never balanced: the leak the guard exists to name

        job.pmls[0].on_match.append(bad_hook)
        job.launch(pingpong)
        with pytest.raises(AssertionError, match="bad_hook"):
            job.run()
        assert job._strand_attribution()["unbalanced_retain"]["envs"] >= 1
        # the strand keeps the arena balance provable despite the leak
        pml = job.pmls[0]
        assert pml.env_acquired == pml.env_released + pml.env_stranded

    def test_on_recv_complete_retain_without_release_fails_too(self, guard):
        job = _sdr_job()

        def hoarder(env, recv):  # env is argument 0 on this surface
            env.retain()

        job.pmls[1].on_recv_complete.append(hoarder)
        job.launch(pingpong)
        with pytest.raises(AssertionError, match="hoarder"):
            job.run()
        assert job._strand_attribution()["unbalanced_retain"]["envs"] >= 1

    def test_generator_hooks_are_guarded_as_well(self, guard):
        job = _sdr_job()

        def gen_hoarder(recv, env):
            env.retain()
            yield 0.0

        job.pmls[0].on_match.append(gen_hoarder)
        job.launch(pingpong)
        with pytest.raises(AssertionError, match="gen_hoarder"):
            job.run()

    def test_without_guard_the_leak_is_anonymous(self):
        assert not filter_guard_enabled()
        job = _sdr_job()

        def bad_hook(recv, env):
            env.retain()

        job.pmls[0].on_match.append(bad_hook)
        job.launch(pingpong)
        with pytest.raises(AssertionError) as exc:
            job.run()
        assert "bad_hook" not in str(exc.value)  # the guard's added value


class TestBalancedRetain:
    def test_retain_released_in_same_hook_is_clean(self, guard):
        job = _sdr_job()
        pml = job.pmls[0]

        def inspect(recv, env):
            env.retain()
            pml.release_env(env)

        pml.on_match.append(inspect)
        res = job.launch(pingpong).run()  # audits: no violation, books balance
        assert "unbalanced_retain" not in res.stranded_by_site

    def test_retain_released_in_a_later_hook_is_clean(self, guard):
        job = _sdr_job()
        pml = job.pmls[0]
        held = []

        def keeper(recv, env):
            env.retain()
            held.append(env)

        def releaser(env, recv):
            while held:
                pml.release_env(held.pop())

        pml.on_match.append(keeper)
        pml.on_recv_complete.append(releaser)
        res = job.launch(pingpong).run()
        assert held == []
        assert "unbalanced_retain" not in res.stranded_by_site

    def test_guarded_clean_run_matches_unguarded_results(self, guard):
        guarded = _sdr_job().launch(pingpong).run()
        set_filter_guard(False)
        plain = _sdr_job().launch(pingpong).run()
        assert guarded.app_results == plain.app_results
        assert guarded.runtime == plain.runtime
