"""Integration tests for point-to-point semantics through the full stack."""

import numpy as np
import pytest

from repro.mpi.errors import DeadlockError, TruncationError
from tests.conftest import run_app


class TestBlocking:
    def test_send_recv_delivers_payload(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.arange(4.0), dest=1, tag=3)
            else:
                data, st = yield from mpi.recv(source=0, tag=3)
                assert np.array_equal(data, np.arange(4.0))
                assert st.source == 0 and st.tag == 3 and st.nbytes == 32
                return float(data.sum())

        res = run_app(app, 2)
        assert res.app_results[1] == 6.0

    def test_send_buffer_snapshot_semantics(self):
        """Payload is captured at send time; later mutation must not leak."""

        def app(mpi):
            if mpi.rank == 0:
                buf = np.ones(4)
                h = yield from mpi.isend(buf, dest=1, tag=0)
                buf[:] = 999.0
                yield from mpi.wait(h)
            else:
                data, _ = yield from mpi.recv(source=0, tag=0)
                return float(data[0])

        assert run_app(app, 2).app_results[1] == 1.0

    def test_messages_nonovertaking_same_channel(self):
        def app(mpi):
            if mpi.rank == 0:
                for i in range(10):
                    yield from mpi.send(np.array([float(i)]), dest=1, tag=5)
            else:
                got = []
                for _ in range(10):
                    data, _ = yield from mpi.recv(source=0, tag=5)
                    got.append(float(data[0]))
                return got

        assert run_app(app, 2).app_results[1] == [float(i) for i in range(10)]

    def test_tags_demultiplex(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.array([1.0]), dest=1, tag=1)
                yield from mpi.send(np.array([2.0]), dest=1, tag=2)
            else:
                # receive in reverse tag order: matching must pick correctly
                d2, _ = yield from mpi.recv(source=0, tag=2)
                d1, _ = yield from mpi.recv(source=0, tag=1)
                return float(d1[0]), float(d2[0])

        assert run_app(app, 2).app_results[1] == (1.0, 2.0)

    def test_any_source_resolves_actual_sender(self):
        def app(mpi):
            if mpi.rank == 0:
                sources = set()
                for _ in range(mpi.size - 1):
                    _, st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=9)
                    sources.add(st.source)
                return sorted(sources)
            yield from mpi.send(np.array([1.0]), dest=0, tag=9)

        assert run_app(app, 4).app_results[0] == [1, 2, 3]

    def test_sendrecv_is_deadlock_free_in_a_cycle(self):
        def app(mpi):
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            data, _ = yield from mpi.sendrecv(
                np.array([float(mpi.rank)]), dest=right, source=left, sendtag=1, recvtag=1
            )
            return float(data[0])

        res = run_app(app, 6)
        for r in range(6):
            assert res.app_results[r] == float((r - 1) % 6)

    def test_self_send(self):
        def app(mpi):
            h = yield from mpi.isend(np.array([7.0]), dest=mpi.rank, tag=0)
            data, _ = yield from mpi.recv(source=mpi.rank, tag=0)
            yield from mpi.wait(h)
            return float(data[0])

        assert run_app(app, 2).app_results[0] == 7.0


class TestNonblocking:
    def test_irecv_before_send_completes(self):
        def app(mpi):
            if mpi.rank == 1:
                h = yield from mpi.irecv(source=0, tag=2)
                assert not h.done
                ok = yield from mpi.test(h)
                yield from mpi.wait(h)
                return float(h.data[0])
            yield from mpi.compute(10e-6)
            yield from mpi.send(np.array([3.0]), dest=1, tag=2)

        assert run_app(app, 2).app_results[1] == 3.0

    def test_waitany_returns_first_completion(self):
        def app(mpi):
            if mpi.rank == 0:
                fast = yield from mpi.irecv(source=1, tag=1)
                slow = yield from mpi.irecv(source=2, tag=1)
                idx, st = yield from mpi.waitany([slow, fast])
                yield from mpi.waitall([slow, fast])
                return idx
            elif mpi.rank == 1:
                yield from mpi.send(np.array([1.0]), dest=0, tag=1)
            else:
                yield from mpi.compute(100e-6)
                yield from mpi.send(np.array([2.0]), dest=0, tag=1)

        assert run_app(app, 3).app_results[0] == 1  # rank 1's message wins

    def test_test_does_not_block(self):
        def app(mpi):
            if mpi.rank == 0:
                h = yield from mpi.irecv(source=1, tag=1)
                polls = 0
                while not (yield from mpi.test(h)):
                    polls += 1
                    yield from mpi.compute(1e-6)
                return polls
            yield from mpi.compute(20e-6)
            yield from mpi.send(np.array([1.0]), dest=0, tag=1)

        assert run_app(app, 2).app_results[0] >= 5

    def test_probe_reports_without_consuming(self):
        def app(mpi):
            if mpi.rank == 0:
                st = yield from mpi.probe(source=mpi.ANY_SOURCE, tag=4)
                data, st2 = yield from mpi.recv(source=st.source, tag=4)
                return st.source, st.nbytes, float(data[0])
            yield from mpi.send(np.array([8.0]), dest=0, tag=4)

        assert run_app(app, 2).app_results[0] == (1, 8, 8.0)

    def test_iprobe_misses_then_hits(self):
        def app(mpi):
            if mpi.rank == 0:
                first = yield from mpi.iprobe(source=1, tag=6)
                yield from mpi.compute(50e-6)
                second = yield from mpi.iprobe(source=1, tag=6)
                yield from mpi.recv(source=1, tag=6)
                return first is None, second is not None
            yield from mpi.send(np.array([1.0]), dest=0, tag=6)

        assert run_app(app, 2).app_results[0] == (True, True)


class TestRendezvous:
    def test_large_message_roundtrip(self):
        def app(mpi, nbytes=256 * 1024):
            if mpi.rank == 0:
                data = np.arange(nbytes // 8, dtype=np.float64)
                yield from mpi.send(data, dest=1, tag=1)
            else:
                data, st = yield from mpi.recv(source=0, tag=1)
                assert st.nbytes == nbytes
                return float(data[-1])

        n = 256 * 1024
        assert run_app(app, 2).app_results[1] == float(n // 8 - 1)

    def test_rendezvous_slower_than_eager_per_byte_latency(self):
        """An RTS/CTS round trip shows up for > eager_limit messages."""

        def app(mpi, nbytes=8):
            t0 = mpi.wtime()
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(nbytes // 8), dest=1, tag=1)
                yield from mpi.recv(source=1, tag=2)
            else:
                yield from mpi.recv(source=0, tag=1)
                yield from mpi.send(np.zeros(1), dest=0, tag=2)
            return mpi.wtime() - t0

        from repro.harness.runner import cluster_for

        inter = cluster_for(2, 1, cores_per_node=1)  # force the IB path
        small = run_app(app, 2, cluster=inter, nbytes=1024).app_results[0]
        big = run_app(app, 2, cluster=inter, nbytes=64 * 1024).app_results[0]
        # 64 KiB at 2.5 GB/s is ~26 us of serialization plus the RTS/CTS trip
        assert big > small + 20e-6

    def test_truncation_detected(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(16), dest=1, tag=1)
            else:
                buf = np.zeros(4)
                yield from mpi.recv(source=0, tag=1, buf=buf)

        with pytest.raises(TruncationError):
            run_app(app, 2)


class TestDeadlockDetection:
    def test_recv_without_sender_is_reported(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.recv(source=1, tag=1)

        with pytest.raises(DeadlockError) as err:
            run_app(app, 2)
        assert "p0" in str(err.value)

    def test_mismatched_tags_deadlock(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(1), dest=1, tag=1)
                yield from mpi.recv(source=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=2)  # wrong tag

        with pytest.raises(DeadlockError):
            run_app(app, 2)
