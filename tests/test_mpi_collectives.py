"""Collectives: correctness against numpy references, across sizes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.datatypes import Phantom
from tests.conftest import run_app

SIZES = [1, 2, 3, 4, 5, 7, 8, 16]


@pytest.mark.parametrize("n", SIZES)
def test_barrier_synchronizes(n):
    def app(mpi):
        # stagger entry; everyone must leave at (or after) the slowest entry
        yield from mpi.compute(mpi.rank * 10e-6)
        yield from mpi.barrier()
        return mpi.wtime()

    res = run_app(app, n)
    slowest_entry = (n - 1) * 10e-6
    for t in res.app_results.values():
        assert t >= slowest_entry - 1e-12


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_from_any_root(n, root):
    rootv = n - 1 if root == "last" else 0

    def app(mpi):
        data = np.arange(5.0) * 3 if mpi.rank == rootv else None
        out = yield from mpi.bcast(data, root=rootv)
        return list(out)

    res = run_app(app, n)
    for r in range(n):
        assert res.app_results[r] == list(np.arange(5.0) * 3)


@pytest.mark.parametrize("n", SIZES)
def test_reduce_sum_at_root(n):
    def app(mpi):
        out = yield from mpi.reduce(float(mpi.rank + 1), op="sum", root=0)
        return out

    res = run_app(app, n)
    assert res.app_results[0] == sum(range(1, n + 1))
    for r in range(1, n):
        assert res.app_results[r] is None


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("op,ref", [("sum", sum), ("max", max), ("min", min)])
def test_allreduce_ops(n, op, ref):
    def app(mpi):
        return (yield from mpi.allreduce(float(mpi.rank * 2 + 1), op=op))

    res = run_app(app, n)
    expected = float(ref(r * 2 + 1 for r in range(n)))
    for r in range(n):
        assert res.app_results[r] == expected


@pytest.mark.parametrize("n", SIZES)
def test_allreduce_arrays_bitwise_identical(n):
    def app(mpi):
        vec = np.arange(8.0) + mpi.rank
        out = yield from mpi.allreduce(vec, op="sum")
        return out.tobytes()

    res = run_app(app, n)
    blobs = set(res.app_results.values())
    assert len(blobs) == 1  # reproducible reduction order
    out = np.frombuffer(blobs.pop())
    assert np.array_equal(out, np.arange(8.0) * n + sum(range(n)))


@pytest.mark.parametrize("n", SIZES)
def test_gather_collects_in_rank_order(n):
    def app(mpi):
        return (yield from mpi.gather(mpi.rank * 10, root=0))

    res = run_app(app, n)
    assert res.app_results[0] == [r * 10 for r in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_scatter_distributes(n):
    def app(mpi):
        chunks = [f"chunk{r}" for r in range(mpi.size)] if mpi.rank == 0 else None
        return (yield from mpi.scatter(chunks, root=0))

    res = run_app(app, n)
    for r in range(n):
        assert res.app_results[r] == f"chunk{r}"


@pytest.mark.parametrize("n", SIZES)
def test_allgather_everyone_gets_everything(n):
    def app(mpi):
        return (yield from mpi.allgather(mpi.rank + 100))

    res = run_app(app, n)
    for r in range(n):
        assert res.app_results[r] == [v + 100 for v in range(n)]


@pytest.mark.parametrize("n", SIZES)
def test_alltoall_transposes(n):
    def app(mpi):
        chunks = [(mpi.rank, dst) for dst in range(mpi.size)]
        return (yield from mpi.alltoall(chunks))

    res = run_app(app, n)
    for r in range(n):
        assert res.app_results[r] == [(src, r) for src in range(n)]


@pytest.mark.parametrize("n", [2, 4, 8])
def test_reduce_scatter_block(n):
    def app(mpi):
        chunks = [float((mpi.rank + 1) * (dst + 1)) for dst in range(mpi.size)]
        return (yield from mpi.reduce_scatter(chunks, op="sum"))

    res = run_app(app, n)
    total = sum(r + 1 for r in range(n))
    for r in range(n):
        assert res.app_results[r] == total * (r + 1)


@pytest.mark.parametrize("n", SIZES)
def test_scan_inclusive_prefix(n):
    def app(mpi):
        return (yield from mpi.scan(float(mpi.rank + 1), op="sum"))

    res = run_app(app, n)
    for r in range(n):
        assert res.app_results[r] == sum(range(1, r + 2))


def test_phantom_payloads_flow_through_collectives():
    def app(mpi):
        x = yield from mpi.allreduce(Phantom(64), op="sum")
        g = yield from mpi.allgather(Phantom(32))
        return isinstance(x, Phantom), len(g)

    res = run_app(app, 4)
    assert res.app_results[0] == (True, 4)


def test_back_to_back_collectives_do_not_crosstalk():
    def app(mpi):
        a = yield from mpi.allreduce(1.0, op="sum")
        b = yield from mpi.allreduce(2.0, op="sum")
        c = yield from mpi.bcast(mpi.rank if mpi.rank == 0 else None, root=0)
        yield from mpi.barrier()
        d = yield from mpi.allgather(mpi.rank)
        return a, b, c, d

    res = run_app(app, 8)
    for r in range(8):
        a, b, c, d = res.app_results[r]
        assert (a, b, c) == (8.0, 16.0, 0)
        assert d == list(range(8))


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=1, max_value=9), seed=st.integers(0, 100))
def test_property_allreduce_matches_numpy(n, seed):
    rng = np.random.default_rng(seed)
    values = rng.normal(size=n)

    def app(mpi):
        return (yield from mpi.allreduce(float(values[mpi.rank]), op="sum"))

    res = run_app(app, n)
    # recursive doubling / tree order may differ from np.sum order; allow fp tolerance
    for r in range(n):
        assert res.app_results[r] == pytest.approx(values.sum(), rel=1e-12, abs=1e-12)


def test_collectives_work_under_replication():
    def app(mpi):
        s = yield from mpi.allreduce(float(mpi.rank), op="sum")
        g = yield from mpi.allgather(mpi.rank)
        return s, g

    res = run_app(app, 6, protocol="sdr")
    for proc, (s, g) in res.app_results.items():
        assert s == 15.0 and g == list(range(6))
