"""Build-time validation of fault schedules: a schedule that cannot mean
anything sensible raises :class:`FaultScheduleError` before the simulation
runs, naming the offending spec — never a silently weird run.
"""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.core.membership import DetectorConfig
from repro.harness.faults import (
    CrashSchedule,
    FaultSchedule,
    FaultScheduleError,
)
from repro.harness.runner import Job, cluster_for


class _State:
    def __init__(self):
        self.step = 0


def exchange(mpi, iters=30, state=None):
    st = state or _State()
    mpi.register_state(st)
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    while st.step < iters:
        k = st.step
        if mpi.rank % 2 == 0:
            yield from mpi.send(np.array([float(k)]), dest=right, tag=1)
            yield from mpi.recv(source=left, tag=1)
        else:
            yield from mpi.recv(source=left, tag=1)
            yield from mpi.send(np.array([float(k)]), dest=right, tag=1)
        st.step += 1
        yield from mpi.recovery_point()
    return mpi.rank


def _sdr_job(n=4, detector=None):
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    return Job(n, cfg=cfg, cluster=cluster_for(n, 2), detector=detector)


class TestCrashScheduleValidation:
    def test_duplicate_crash_rejected(self):
        sched = CrashSchedule().add(1, 1, 10e-6).add(1, 1, 20e-6)
        with pytest.raises(FaultScheduleError, match="dies exactly once"):
            sched.validate()

    def test_negative_time_rejected(self):
        with pytest.raises(FaultScheduleError, match="negative time"):
            CrashSchedule().add(0, 0, -1e-6).validate()

    def test_post_horizon_time_rejected(self):
        with pytest.raises(FaultScheduleError, match="past the campaign horizon"):
            CrashSchedule().add(0, 0, 2e-3).validate(horizon=1e-3)


class TestFaultScheduleValidation:
    def test_duplicate_node_crash_rejected(self):
        sched = FaultSchedule().crash_node(0, 10e-6).crash_node(0, 20e-6)
        with pytest.raises(FaultScheduleError, match="duplicate crash of node"):
            sched.validate()

    def test_nonpositive_clear_after_rejected(self):
        sched = FaultSchedule().suspect(0, 1, 10e-6, clear_after=0.0)
        with pytest.raises(FaultScheduleError, match="must be positive"):
            sched.validate()

    def test_respawn_without_crash_rejected(self):
        with pytest.raises(FaultScheduleError, match="no crash of that"):
            FaultSchedule().respawn(2, 50e-6).validate()

    def test_respawn_before_crash_rejected(self):
        sched = FaultSchedule().crash(1, 1, 50e-6).respawn(1, 40e-6)
        with pytest.raises(FaultScheduleError, match="respawn-before-crash"):
            sched.validate()

    def test_builders_compose_and_count(self):
        sched = (
            FaultSchedule()
            .crash(0, 1, 10e-6)
            .crash_node(1, 20e-6)
            .suspect(2, 0, 30e-6, clear_after=10e-6)
            .respawn(0, 60e-6)
        )
        assert len(sched) == 4
        sched.validate()

    def test_rolling_churn_needs_positive_period_and_downtime(self):
        with pytest.raises(FaultScheduleError, match="positive period/downtime"):
            FaultSchedule.rolling_churn([0, 1], start=0.0, period=0.0, downtime=1e-6)
        with pytest.raises(FaultScheduleError, match="positive period/downtime"):
            FaultSchedule.rolling_churn([0, 1], start=0.0, period=1e-6, downtime=-1e-6)

    def test_cascade_needs_positive_gap(self):
        with pytest.raises(FaultScheduleError, match="positive gap"):
            FaultSchedule.cascade([0, 1], start=0.0, gap=0.0)

    def test_rolling_churn_shape(self):
        sched = FaultSchedule.rolling_churn([2, 3], start=10e-6, period=5e-6, downtime=7e-6)
        assert [(c.rank, c.at) for c in sched.crashes] == [
            (2, pytest.approx(10e-6)),
            (3, pytest.approx(15e-6)),
        ]
        assert [(r.rank, r.at) for r in sched.respawns] == [
            (2, pytest.approx(17e-6)),
            (3, pytest.approx(22e-6)),
        ]
        sched.validate()


class TestApplyTimeValidation:
    def test_crash_outside_job_rejected(self):
        job = _sdr_job()
        with pytest.raises(FaultScheduleError, match="outside the job"):
            FaultSchedule().crash(9, 0, 10e-6).apply(job)

    def test_node_crash_outside_cluster_rejected(self):
        job = _sdr_job()
        with pytest.raises(FaultScheduleError, match="cluster has"):
            FaultSchedule().crash_node(99, 10e-6).apply(job)

    def test_node_crash_colliding_with_replica_crash_rejected(self):
        job = _sdr_job()
        victim_node = job.placement.node_of(job.rmap.phys(0, 0))
        sched = FaultSchedule().crash(0, 0, 10e-6).crash_node(victim_node, 20e-6)
        with pytest.raises(FaultScheduleError, match="already crashed by"):
            sched.apply(job)

    def test_suspicion_requires_detector(self):
        job = _sdr_job(detector=None)
        with pytest.raises(FaultScheduleError, match="imperfect detector"):
            FaultSchedule().suspect(0, 1, 10e-6).apply(job)

    def test_respawn_before_declaration_rejected_with_detector(self):
        det = DetectorConfig(heartbeat_period=20e-6, timeout=30e-6, suspicion_threshold=2)
        job = _sdr_job(detector=det)
        at = 40e-6
        # after the crash, but before the detector can have declared it:
        # the respawned process would be condemned by the stale declaration
        early = det.declare_at(at) - 5e-6
        sched = FaultSchedule().crash(1, 1, at).respawn(1, early)
        with pytest.raises(FaultScheduleError, match="follow failure declaration"):
            sched.apply(job)

    def test_respawn_after_declaration_accepted_and_runs(self):
        det = DetectorConfig(heartbeat_period=10e-6, timeout=15e-6, suspicion_threshold=2)
        job = _sdr_job(detector=det)
        job.launch(exchange)
        at = 30e-6
        late = det.declare_at(at) + 3 * 5e-6 + 20e-6
        FaultSchedule().crash(1, 1, at).respawn(1, late).apply(job)
        res = job.run()
        # the respawned replica rejoined and finished too
        assert len(res.app_results) == 8

    def test_oracle_detector_keeps_historic_respawn_timing(self):
        # without the imperfect detector, declaration is near-instant: the
        # Fig. 4 style crash+quick-respawn schedule must stay legal
        job = _sdr_job(detector=None)
        job.launch(exchange)
        FaultSchedule().crash(1, 1, 30e-6).respawn(1, 45e-6).apply(job)
        res = job.run()
        assert len(res.app_results) == 8
