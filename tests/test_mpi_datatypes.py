"""Unit + property tests for payload handling."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.mpi.datatypes import Phantom, combine, copy_payload, nbytes_of


class TestPhantom:
    def test_size(self):
        assert Phantom(128).nbytes == 128

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Phantom(-1)

    def test_equality_and_hash(self):
        assert Phantom(5) == Phantom(5)
        assert Phantom(5) != Phantom(6)
        assert hash(Phantom(5)) == hash(Phantom(5))


class TestNbytes:
    @pytest.mark.parametrize(
        "obj,expected",
        [
            (None, 0),
            (Phantom(100), 100),
            (b"abcd", 4),
            (bytearray(7), 7),
            (3, 8),
            (3.14, 8),
            ([Phantom(10), b"xy"], 12),
        ],
    )
    def test_sizes(self, obj, expected):
        assert nbytes_of(obj) == expected

    def test_ndarray(self):
        assert nbytes_of(np.zeros(10, dtype=np.float64)) == 80

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            nbytes_of(object())


class TestCopy:
    def test_ndarray_copied_not_aliased(self):
        a = np.arange(4.0)
        c = copy_payload(a)
        a[0] = 99
        assert c[0] == 0.0

    def test_immutables_pass_through(self):
        assert copy_payload(b"x") == b"x"
        p = Phantom(4)
        assert copy_payload(p) is p

    def test_nested_list(self):
        a = [np.arange(3.0), 5]
        c = copy_payload(a)
        a[0][0] = 42
        assert c[0][0] == 0.0


class TestCombine:
    def test_sum(self):
        assert combine("sum", 2, 3) == 5

    def test_max_min_scalars(self):
        assert combine("max", 2, 3) == 3
        assert combine("min", 2, 3) == 2

    def test_prod(self):
        assert combine("prod", 4, 5) == 20

    def test_arrays_elementwise(self):
        a, b = np.array([1.0, 5.0]), np.array([4.0, 2.0])
        assert np.array_equal(combine("max", a, b), np.array([4.0, 5.0]))

    def test_phantom_absorbs(self):
        out = combine("sum", Phantom(10), Phantom(20))
        assert out == Phantom(20)
        assert combine("sum", Phantom(10), 5.0) == Phantom(10)

    def test_lists_combine_elementwise(self):
        assert combine("sum", [1, 2], [10, 20]) == [11, 22]

    def test_list_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            combine("sum", [1], [1, 2])

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            combine("xor", 1, 2)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=8))
    def test_sum_associativity_over_list(self, xs):
        # fold order must not change the result for commutative float-safe ops
        left = xs[0]
        for x in xs[1:]:
            left = combine("max", left, x)
        assert left == max(xs)

    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=0, max_value=10**6))
    def test_phantom_combine_takes_max_size(self, a, b):
        assert combine("sum", Phantom(a), Phantom(b)).nbytes == max(a, b)
