"""Unit tests for events, timeouts, composites, and mailboxes."""

import pytest

from repro.sim.kernel import SimulationError
from repro.sim.sync import AllOf, AnyOf, Event, Mailbox, Timeout


class TestEvent:
    def test_initial_state(self, sim):
        ev = Event(sim)
        assert not ev.triggered and not ev.processed

    def test_succeed_delivers_value(self, sim):
        ev = Event(sim)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.succeed(42)
        sim.run()
        assert got == [42]
        assert ev.ok

    def test_fail_delivers_exception(self, sim):
        ev = Event(sim)
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        ev.fail(ValueError("boom"))
        sim.run()
        assert isinstance(got[0], ValueError)
        assert not ev.ok

    def test_double_complete_rejected(self, sim):
        ev = Event(sim)
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)
        with pytest.raises(SimulationError):
            ev.fail(RuntimeError())

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(TypeError):
            Event(sim).fail("not an exception")  # type: ignore[arg-type]

    def test_late_callback_fires_immediately(self, sim):
        ev = Event(sim)
        ev.succeed("v")
        sim.run()
        got = []
        ev.add_callback(lambda e: got.append(e.value))
        assert got == ["v"]

    def test_value_before_completion_raises(self, sim):
        with pytest.raises(SimulationError):
            _ = Event(sim).value

    def test_delayed_succeed(self, sim):
        ev = Event(sim)
        times = []
        ev.add_callback(lambda e: times.append(sim.now))
        ev.succeed(delay=3.0)
        sim.run()
        assert times == [3.0]


class TestTimeout:
    def test_fires_after_delay(self, sim):
        times = []
        Timeout(sim, 1.5).add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [1.5]

    def test_zero_delay_fires_now(self, sim):
        times = []
        Timeout(sim, 0.0).add_callback(lambda e: times.append(sim.now))
        sim.run()
        assert times == [0.0]

    def test_carries_value(self, sim):
        vals = []
        Timeout(sim, 1.0, value="tick").add_callback(lambda e: vals.append(e.value))
        sim.run()
        assert vals == ["tick"]


class TestComposites:
    def test_allof_waits_for_all(self, sim):
        evs = [Timeout(sim, t) for t in (1.0, 3.0, 2.0)]
        done = []
        AllOf(sim, evs).add_callback(lambda e: done.append(sim.now))
        sim.run()
        assert done == [3.0]

    def test_allof_value_preserves_order(self, sim):
        a, b = Event(sim), Event(sim)
        vals = []
        AllOf(sim, [a, b]).add_callback(lambda e: vals.append(e.value))
        b.succeed("b")
        a.succeed("a", delay=1.0)
        sim.run()
        assert vals == [["a", "b"]]

    def test_allof_empty_succeeds_immediately(self, sim):
        ev = AllOf(sim, [])
        assert ev.triggered

    def test_allof_fails_fast(self, sim):
        a, b = Event(sim), Event(sim)
        vals = []
        composite = AllOf(sim, [a, b])
        composite.add_callback(lambda e: vals.append(e.ok))
        a.fail(RuntimeError("x"))
        sim.run()
        assert vals == [False]

    def test_anyof_first_wins(self, sim):
        evs = [Timeout(sim, 2.0, value="slow"), Timeout(sim, 1.0, value="fast")]
        got = []
        AnyOf(sim, evs).add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [(1, "fast")]

    def test_anyof_requires_children(self, sim):
        with pytest.raises(SimulationError):
            AnyOf(sim, [])


class TestMailbox:
    def test_put_then_get(self, sim):
        box = Mailbox(sim)
        box.put("x")
        ev = box.get()
        sim.run()
        assert ev.value == "x"

    def test_get_blocks_until_put(self, sim):
        box = Mailbox(sim)
        got = []
        box.get().add_callback(lambda e: got.append((sim.now, e.value)))
        sim.call_at(2.0, lambda: box.put("late"))
        sim.run()
        assert got == [(2.0, "late")]

    def test_fifo_ordering(self, sim):
        box = Mailbox(sim)
        for i in range(5):
            box.put(i)
        got = []
        for _ in range(5):
            box.get().add_callback(lambda e: got.append(e.value))
        sim.run()
        assert got == [0, 1, 2, 3, 4]

    def test_multiple_waiters_fifo(self, sim):
        box = Mailbox(sim)
        got = []
        for name in ("first", "second"):
            box.get().add_callback(lambda e, n=name: got.append((n, e.value)))
        box.put(1)
        box.put(2)
        sim.run()
        assert got == [("first", 1), ("second", 2)]

    def test_get_nowait_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            Mailbox(sim).get_nowait()

    def test_drain(self, sim):
        box = Mailbox(sim)
        box.put(1)
        box.put(2)
        assert box.drain() == [1, 2]
        assert len(box) == 0
