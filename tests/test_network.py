"""Unit tests for cost models, topology, and the fabric."""

import pytest

from repro.network.fabric import Fabric, Frame
from repro.network.model import InfiniBand20G, LinearCostModel, NetworkCostModel, SharedMemoryModel
from repro.network.topology import Cluster, round_robin_placement, split_halves_placement
from repro.sim.kernel import Simulator


class TestModels:
    def test_ib20g_one_byte_latency_matches_paper(self):
        # paper Fig. 7a: native 1-byte latency 1.67 us
        assert InfiniBand20G().one_way(1) == pytest.approx(1.67e-6, rel=0.01)

    def test_ib20g_peak_bandwidth(self):
        m = InfiniBand20G()
        t = m.one_way(8 * 2**20)
        assert (8 * 2**20) / t == pytest.approx(2.5e9, rel=0.01)

    def test_serialization_linear_in_size(self):
        m = NetworkCostModel()
        assert m.serialization(2000) == pytest.approx(2 * m.serialization(1000))

    def test_shared_memory_faster_than_ib(self):
        assert SharedMemoryModel().one_way(64) < InfiniBand20G().one_way(64)

    def test_linear_model_has_no_cpu_overhead(self):
        m = LinearCostModel()
        assert m.send_overhead == 0.0 and m.recv_overhead == 0.0


class TestTopology:
    def test_cluster_total_cores(self):
        assert Cluster(nodes=4, cores_per_node=8).total_cores == 32

    def test_model_for_intra_vs_inter(self):
        c = Cluster(nodes=2)
        assert isinstance(c.model_for(0, 0), SharedMemoryModel)
        assert isinstance(c.model_for(0, 1), InfiniBand20G)

    def test_round_robin_fills_nodes_first(self):
        c = Cluster(nodes=4, cores_per_node=2)
        p = round_robin_placement(c, 5)
        assert [p.node_of(i) for i in range(5)] == [0, 0, 1, 1, 2]

    def test_round_robin_spread(self):
        c = Cluster(nodes=4, cores_per_node=2)
        p = round_robin_placement(c, 5, fill_node_first=False)
        assert [p.node_of(i) for i in range(5)] == [0, 1, 2, 3, 0]

    def test_round_robin_overflow_rejected(self):
        with pytest.raises(ValueError):
            round_robin_placement(Cluster(nodes=1, cores_per_node=2), 3)

    def test_split_halves_is_papers_placement(self):
        # §4.2: first replica set on the first half of the nodes
        c = Cluster(nodes=4, cores_per_node=2)
        p = split_halves_placement(c, n_ranks=4, degree=2)
        assert [p.node_of(i) for i in range(4)] == [0, 0, 1, 1]  # set 0
        assert [p.node_of(i) for i in range(4, 8)] == [2, 2, 3, 3]  # set 1

    def test_split_halves_replicas_on_distinct_nodes(self):
        c = Cluster(nodes=8, cores_per_node=4)
        p = split_halves_placement(c, n_ranks=16, degree=2)
        for rank in range(16):
            assert p.node_of(rank) != p.node_of(16 + rank)

    def test_split_halves_divisibility_enforced(self):
        with pytest.raises(ValueError):
            split_halves_placement(Cluster(nodes=3), n_ranks=2, degree=2)

    def test_placement_validate_detects_double_booking(self):
        c = Cluster(nodes=2, cores_per_node=2)
        p = round_robin_placement(c, 3)
        p.slots[2] = p.slots[0]
        with pytest.raises(ValueError):
            p.validate()


def _fabric(nodes=2, cores=1, jitter=None):
    sim = Simulator()
    cluster = Cluster(nodes=nodes, cores_per_node=cores)
    placement = round_robin_placement(cluster, nodes * cores)
    return sim, Fabric(sim, placement, jitter=jitter)


class TestFabric:
    def test_delivery_time_matches_model(self):
        sim, fabric = _fabric()
        model = fabric.model_for(0, 1)
        fabric.inject(Frame(src=0, dst=1, size=1000, payload="x"))
        sim.run()
        frame = fabric.endpoint(1).inbox[0]
        assert frame.arrived_at == pytest.approx(model.serialization(1000) + model.latency)

    def test_fifo_per_channel(self):
        sim, fabric = _fabric()
        for i in range(10):
            fabric.inject(Frame(src=0, dst=1, size=100, payload=i))
        sim.run()
        assert [f.payload for f in fabric.endpoint(1).inbox] == list(range(10))

    def test_stream_is_bandwidth_limited(self):
        sim, fabric = _fabric()
        model = fabric.model_for(0, 1)
        n, size = 10, 100_000
        for i in range(n):
            fabric.inject(Frame(src=0, dst=1, size=size, payload=i))
        sim.run()
        last = fabric.endpoint(1).inbox[-1]
        assert last.arrived_at == pytest.approx(n * model.serialization(size) + model.latency)

    def test_fifo_per_channel_inter_node_under_jitter(self):
        # The FIFO clamp is keyed per ordered (src, dst) channel even though
        # inter-node contention is priced per node uplink/downlink: with
        # adversarial jitter (large then zero), a later frame's arrival must
        # be clamped to never precede an earlier frame on the same channel.
        jolts = iter([50e-6, 0.0, 0.0, 0.0])
        sim, fabric = _fabric(nodes=2, cores=1, jitter=lambda: next(jolts, 0.0))
        for i in range(4):
            fabric.inject(Frame(src=0, dst=1, size=10, payload=i))
        sim.run()
        arrived = [f.arrived_at for f in fabric.endpoint(1).inbox]
        assert [f.payload for f in fabric.endpoint(1).inbox] == [0, 1, 2, 3]
        assert arrived == sorted(arrived)
        # the jolted first frame pushes everything behind it
        assert all(t >= 50e-6 for t in arrived)

    def test_nic_contention_serializes_node_traffic(self):
        # two senders on node 0, two receivers on node 1: the shared uplink
        # forces the second transfer to queue behind the first.
        sim, fabric = _fabric(nodes=2, cores=2)
        size = 1_000_000
        model = fabric.model_for(0, 2)
        fabric.inject(Frame(src=0, dst=2, size=size, payload="a"))
        fabric.inject(Frame(src=1, dst=3, size=size, payload="b"))
        sim.run()
        t_b = fabric.endpoint(3).inbox[0].arrived_at
        assert t_b == pytest.approx(2 * model.serialization(size) + model.latency)

    def test_intra_node_bypasses_nic(self):
        sim, fabric = _fabric(nodes=1, cores=2)
        fabric.inject(Frame(src=0, dst=1, size=10, payload="x"))
        sim.run()
        model = fabric.model_for(0, 1)
        assert fabric.endpoint(1).inbox[0].arrived_at == pytest.approx(
            model.serialization(10) + model.latency
        )

    def test_crashed_destination_drops_frames(self):
        sim, fabric = _fabric()
        fabric.crash(1)
        fabric.inject(Frame(src=0, dst=1, size=10, payload="x"))
        sim.run()
        assert list(fabric.endpoint(1).inbox) == []

    def test_crashed_source_cannot_send(self):
        sim, fabric = _fabric()
        fabric.crash(0)
        fabric.inject(Frame(src=0, dst=1, size=10, payload="x"))
        sim.run()
        assert list(fabric.endpoint(1).inbox) == []

    def test_crash_listener_fires_once(self):
        sim, fabric = _fabric()
        seen = []
        fabric.on_crash.append(seen.append)
        fabric.crash(1)
        fabric.crash(1)
        assert seen == [1]

    def test_in_flight_frames_delivered_after_sender_crash(self):
        sim, fabric = _fabric()
        fabric.inject(Frame(src=0, dst=1, size=10, payload="x"))
        fabric.crash(0)
        sim.run()
        assert [f.payload for f in fabric.endpoint(1).inbox] == ["x"]

    def test_revive_reattaches_endpoint(self):
        sim, fabric = _fabric()
        fabric.crash(1)
        fabric.revive(1)
        fabric.inject(Frame(src=0, dst=1, size=10, payload="x"))
        sim.run()
        assert len(fabric.endpoint(1).inbox) == 1

    def test_jitter_preserves_fifo(self):
        import numpy as np

        rng = np.random.default_rng(0)
        sim, fabric = _fabric(jitter=lambda: float(rng.exponential(5e-6)))
        for i in range(50):
            fabric.inject(Frame(src=0, dst=1, size=10, payload=i))
        sim.run()
        assert [f.payload for f in fabric.endpoint(1).inbox] == list(range(50))

    def test_frame_counters(self):
        sim, fabric = _fabric()
        fabric.inject(Frame(src=0, dst=1, size=10, payload="x", kind="data"))
        fabric.inject(Frame(src=0, dst=1, size=20, payload="y", kind="ctrl"))
        sim.run()
        assert fabric.total_frames == 2
        assert fabric.total_bytes == 30
        assert fabric.frames_by_kind == {"data": 1, "ctrl": 1}

    def test_wait_for_frame_wakes_on_arrival(self):
        sim, fabric = _fabric()
        times = []
        fabric.endpoint(1).wait_for_frame().add_callback(lambda e: times.append(sim.now))
        sim.call_at(1e-3, lambda: fabric.inject(Frame(src=0, dst=1, size=1, payload="x")))
        sim.run()
        assert len(times) == 1 and times[0] > 1e-3
