"""Groups and communicators, including the genealogy context-id scheme."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mpi.errors import RankError
from repro.mpi.group import Group, UNDEFINED
from tests.conftest import run_app


class TestGroup:
    def test_duplicates_rejected(self):
        with pytest.raises(RankError):
            Group([1, 1])

    def test_incl_excl(self):
        g = Group([10, 20, 30, 40])
        assert g.incl([2, 0]).members == (30, 10)
        assert g.excl([1, 3]).members == (10, 30)

    def test_incl_out_of_range(self):
        with pytest.raises(RankError):
            Group([1, 2]).incl([5])

    def test_range_incl(self):
        g = Group(list(range(10, 20)))
        assert g.range_incl([(0, 6, 2)]).members == (10, 12, 14, 16)

    def test_union_keeps_first_order(self):
        a, b = Group([3, 1]), Group([2, 1, 4])
        assert a.union(b).members == (3, 1, 2, 4)

    def test_intersection_difference(self):
        a, b = Group([5, 6, 7, 8]), Group([8, 6])
        assert a.intersection(b).members == (6, 8)
        assert a.difference(b).members == (5, 7)

    def test_translate_ranks(self):
        a, b = Group([10, 20, 30]), Group([30, 10])
        assert a.translate_ranks([0, 1, 2], b) == [1, UNDEFINED, 0]

    def test_rank_of(self):
        g = Group([7, 9])
        assert g.rank_of(9) == 1
        assert g.rank_of(8) is None

    @settings(max_examples=50)
    @given(st.lists(st.integers(0, 30), unique=True, min_size=1, max_size=10),
           st.lists(st.integers(0, 30), unique=True, min_size=1, max_size=10))
    def test_property_set_semantics(self, xs, ys):
        a, b = Group(xs), Group(ys)
        assert set(a.union(b).members) == set(xs) | set(ys)
        assert set(a.intersection(b).members) == set(xs) & set(ys)
        assert set(a.difference(b).members) == set(xs) - set(ys)
        # order: union starts with a's members
        assert a.union(b).members[: len(xs)] == tuple(xs)


class TestCommunicator:
    def test_world_basics(self):
        def app(mpi):
            yield from mpi.barrier()
            return mpi.world.rank, mpi.world.size, mpi.world.world_of(1)

        res = run_app(app, 3)
        assert res.app_results[2] == (2, 3, 1)

    def test_dup_isolates_traffic(self):
        import numpy as np

        def app(mpi):
            dup = yield from mpi.comm_dup()
            if mpi.rank == 0:
                yield from mpi.send(np.array([1.0]), dest=1, tag=7, comm=mpi.world)
                yield from mpi.send(np.array([2.0]), dest=1, tag=7, comm=dup)
            elif mpi.rank == 1:
                # receive from the dup first: matching must not cross comms
                d2, _ = yield from mpi.recv(source=0, tag=7, comm=dup)
                d1, _ = yield from mpi.recv(source=0, tag=7, comm=mpi.world)
                return float(d1[0]), float(d2[0])

        assert run_app(app, 2).app_results[1] == (1.0, 2.0)

    def test_split_by_parity(self):
        def app(mpi):
            sub = yield from mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            total = yield from mpi.allreduce(float(mpi.rank), op="sum", comm=sub)
            return sub.rank, sub.size, total

        res = run_app(app, 6)
        evens = sum(r for r in range(6) if r % 2 == 0)
        odds = sum(r for r in range(6) if r % 2 == 1)
        for r in range(6):
            subrank, subsize, total = res.app_results[r]
            assert subsize == 3
            assert subrank == r // 2
            assert total == (evens if r % 2 == 0 else odds)

    def test_split_key_reorders(self):
        def app(mpi):
            sub = yield from mpi.comm_split(color=0, key=-mpi.rank)
            return sub.rank

        res = run_app(app, 4)
        # key = -rank reverses the order
        assert [res.app_results[r] for r in range(4)] == [3, 2, 1, 0]

    def test_split_undefined_returns_none(self):
        from repro.mpi.group import UNDEFINED as U

        def app(mpi):
            sub = yield from mpi.comm_split(color=U if mpi.rank == 0 else 1, key=0)
            return sub is None

        res = run_app(app, 3)
        assert res.app_results[0] is True
        assert res.app_results[1] is False

    def test_comm_create_from_group(self):
        def app(mpi):
            group = mpi.world.group.incl([0, 2])
            sub = yield from mpi.comm_create(group)
            if sub is None:
                return None
            val = yield from mpi.allreduce(float(mpi.rank), op="sum", comm=sub)
            return sub.rank, val

        res = run_app(app, 4)
        assert res.app_results[0] == (0, 2.0)
        assert res.app_results[2] == (1, 2.0)
        assert res.app_results[1] is None

    def test_nested_split_contexts_unique(self):
        def app(mpi):
            a = yield from mpi.comm_split(color=0, key=mpi.rank)
            b = yield from mpi.comm_split(color=0, key=mpi.rank, comm=a)
            return a.ctx != b.ctx != mpi.world.ctx

        assert all(run_app(app, 4).app_results.values())

    def test_split_contexts_identical_across_replica_worlds(self):
        """The genealogy ctx scheme: both replica worlds derive the same
        context tuples, the property cross-world failover matching needs."""

        def app(mpi):
            sub = yield from mpi.comm_split(color=mpi.rank % 2, key=mpi.rank)
            return sub.ctx

        res = run_app(app, 4, protocol="sdr")
        for rank in range(4):
            ctx0 = res.app_results[rank]
            ctx1 = res.app_results[rank + 4]
            assert ctx0 == ctx1

    def test_collectives_on_subcommunicator(self):
        def app(mpi):
            row = yield from mpi.comm_split(color=mpi.rank // 2, key=mpi.rank)
            got = yield from mpi.allgather(mpi.rank, comm=row)
            return got

        res = run_app(app, 4)
        assert res.app_results[0] == [0, 1]
        assert res.app_results[3] == [2, 3]
