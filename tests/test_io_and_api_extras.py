"""Replicated file I/O (§4.1's planned integration) + ssend/waitsome."""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.core.io import ReplicatedIo, VirtualFileSystem
from repro.harness.runner import Job, cluster_for
from tests.conftest import run_app


class TestReplicatedIo:
    def _writer_app(self, payload_fn=None):
        def app(mpi, steps=3):
            for step in range(steps):
                data = payload_fn(mpi, step) if payload_fn else np.full(4, float(step))
                yield from mpi.fwrite("out.dat", data)
                yield from mpi.compute(1e-6)
            # writers pay PFS latency, suppressed replicas do not: sync
            # before reading the shared output (as a real app would)
            yield from mpi.barrier()
            log = yield from mpi.fread("out.dat")
            return len(log)

        return app

    def test_native_every_rank_writes(self):
        job = Job(3, cluster=cluster_for(3)).launch(self._writer_app(), steps=2)
        res = job.run()
        assert job.vfs.physical_writes == 6  # 3 ranks x 2 writes

    def test_replicated_single_physical_write_per_logical_write(self):
        """The Böhm/Engelmann property: replication must not double output."""
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(3, cfg=cfg, cluster=cluster_for(3, 2)).launch(self._writer_app(), steps=2)
        res = job.run()
        assert job.vfs.physical_writes == 6  # not 12
        assert job.vfs.suppressed_writes == 6
        assert job.vfs.divergences == []
        # every replica reads the same log
        assert set(res.app_results.values()) == {6}

    def test_file_contents_match_native(self):
        def payload(mpi, step):
            return np.array([float(mpi.rank * 10 + step)])

        native = Job(2, cluster=cluster_for(2)).launch(self._writer_app(payload), steps=2)
        nres = native.run()
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        repl = Job(2, cfg=cfg, cluster=cluster_for(2, 2)).launch(self._writer_app(payload), steps=2)
        rres = repl.run()
        strip = lambda log: sorted((r, float(d[0])) for r, d in log)
        assert strip(native.vfs.read("out.dat")) == strip(repl.vfs.read("out.dat"))

    def test_writer_promotion_after_crash(self):
        """Crash the leader replica mid-run: the survivor keeps writing."""

        def app(mpi, steps=40):
            for step in range(steps):
                yield from mpi.fwrite("log.dat", np.array([float(step)]))
                right = (mpi.rank + 1) % mpi.size
                left = (mpi.rank - 1) % mpi.size
                yield from mpi.sendrecv(np.ones(1), dest=right, source=left)
                yield from mpi.compute(1e-6)
            return steps

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2)).launch(app)
        job.crash(1, 0, at=60e-6)  # kill rank 1's replica 0 — the writer!
        res = job.run()
        # every one of rank 1's 40 logical writes made it to the file
        rank1_writes = [d for r, d in job.vfs.read("log.dat") if r == 1]
        assert len(rank1_writes) == 40

    def test_divergence_detected_in_compare_mode(self):
        def app(mpi, steps=2):
            for step in range(steps):
                # replicas of rank 0 disagree on purpose at step 1
                if mpi.rank == 0 and step == 1:
                    value = float(mpi.proc)  # physical id differs per replica!
                else:
                    value = float(step)
                yield from mpi.fwrite("x.dat", np.array([value]))
                yield from mpi.compute(1e-6)

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2)).launch(app)
        job.run()
        assert len(job.vfs.divergences) == 1
        div = job.vfs.divergences[0]
        assert div.rank == 0 and div.op_seq == 2

    def test_leader_mode_skips_comparison(self):
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2))
        for proc, mpi in job.mpis.items():
            mpi.io = ReplicatedIo(job.vfs, job.protocols[proc], mode="leader")

        def app(mpi):
            yield from mpi.fwrite("y.dat", np.array([float(mpi.proc)]))  # divergent!

        job.launch(app).run()
        assert job.vfs.divergences == []  # not checked in leader mode
        assert job.vfs.physical_writes == 2  # one per rank

    def test_unknown_mode_rejected(self):
        vfs = VirtualFileSystem(sim=None)  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            ReplicatedIo(vfs, protocol=None, mode="quorum")

    def test_write_costs_virtual_time(self):
        def app(mpi):
            t0 = mpi.wtime()
            yield from mpi.fwrite("big.dat", np.zeros(1_000_000 // 8))
            return mpi.wtime() - t0

        job = Job(1, cluster=cluster_for(1)).launch(app)
        res = job.run()
        # 1 MB at 1 GB/s + 50 us latency ~ 1.05 ms
        assert res.app_results[0] == pytest.approx(1.05e-3, rel=0.05)


class TestSsend:
    def test_ssend_blocks_until_receive_posted(self):
        def app(mpi):
            if mpi.rank == 0:
                t0 = mpi.wtime()
                yield from mpi.ssend(np.ones(1), dest=1, tag=1)
                return mpi.wtime() - t0
            yield from mpi.compute(100e-6)  # receive posted late
            yield from mpi.recv(source=0, tag=1)

        res = run_app(app, 2)
        assert res.app_results[0] >= 100e-6  # gated on the matching receive

    def test_plain_send_does_not_block(self):
        def app(mpi):
            if mpi.rank == 0:
                t0 = mpi.wtime()
                yield from mpi.send(np.ones(1), dest=1, tag=1)
                return mpi.wtime() - t0
            yield from mpi.compute(100e-6)
            yield from mpi.recv(source=0, tag=1)

        res = run_app(app, 2)
        assert res.app_results[0] < 50e-6

    def test_ssend_under_replication(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.ssend(np.array([3.0]), dest=1, tag=1)
            else:
                d, _ = yield from mpi.recv(source=0, tag=1)
                return float(d[0])

        res = run_app(app, 2, protocol="sdr")
        assert res.app_results[1] == 3.0
        assert res.app_results[3] == 3.0

    def test_issend_nonblocking_until_wait(self):
        def app(mpi):
            if mpi.rank == 0:
                h = yield from mpi.issend(np.ones(1), dest=1, tag=1)
                assert not h.done  # no receive posted yet
                yield from mpi.wait(h)
                return True
            yield from mpi.recv(source=0, tag=1)

        assert run_app(app, 2).app_results[0] is True


class TestWaitsome:
    def test_returns_all_completed(self):
        def app(mpi):
            if mpi.rank == 0:
                h1 = yield from mpi.irecv(source=1, tag=1)
                h2 = yield from mpi.irecv(source=2, tag=1)
                h3 = yield from mpi.irecv(source=3, tag=1)
                done = yield from mpi.waitsome([h1, h2, h3])
                yield from mpi.waitall([h1, h2, h3])
                return sorted(i for i, _st in done)
            yield from mpi.compute((mpi.rank - 1) * 1e-9)
            yield from mpi.send(np.ones(1), dest=0, tag=1)

        res = run_app(app, 4)
        done = res.app_results[0]
        assert len(done) >= 1
        assert all(0 <= i < 3 for i in done)

    def test_empty_rejected(self):
        def app(mpi):
            yield from mpi.waitsome([])

        with pytest.raises(Exception):
            run_app(app, 1)
