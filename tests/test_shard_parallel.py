"""Conservative sharded-parallel execution: byte-identical to serial.

The multi-core engine (:mod:`repro.sim.shard`) partitions processes by
node into per-shard Simulators, synchronized by conservative windows on
the minimum inter-shard wire latency.  Its entire contract is *byte
identity*: :func:`repro.sim.shard.fingerprint` of a sharded run must
equal the serial engine's for every protocol, worker count, crash
schedule and horizon — and whenever the shards cannot prove they can
replay the serial interleaving (drain races, tied cross-shard downlink
contention, hazard features), the run falls back to the serial engine
with the reasons recorded in ``result.parallel["fallback"]``.

Three layers pinned here:

* **fingerprint equivalence** — hypothesis-driven serial-vs-sharded runs
  across all five protocols, plus crash/failover, run-until horizons,
  delay-only fault plans, open-loop traffic, and the fault-campaign
  fallback path;
* **shard planner** — partition validity (every proc exactly once,
  node-aligned, contiguous), lookahead = minimum inter-node latency,
  and the single-shard degenerate case;
* **fallback honesty** — hazard features (jitter, stochastic faults,
  detector) and single-node placements run serially with the reason
  recorded, and the default ``Job`` path carries no parallel metadata
  at all.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import ReplicationConfig
from repro.harness.campaign import CampaignConfig
from repro.harness.runner import Job, cluster_for
from repro.network.model import FaultPlan, LinkFaultWindow
from repro.scenarios import get_scenario, ring_collectives
from repro.sim.shard import (
    ParallelConfig,
    ShardPlan,
    classify_hazards,
    fingerprint,
    run_parallel,
)

PROTOCOLS = ["native", "sdr", "mirror", "leader", "redmpi"]


def _run(
    protocol: str,
    n_ranks: int,
    workers: int = 0,
    crash=(),
    until=None,
    fault_plan=None,
    **kwargs,
):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    job = Job(
        n_ranks,
        cfg=cfg,
        cluster=cluster_for(n_ranks, cfg.degree),
        fault_plan=fault_plan,
        parallel=ParallelConfig(workers=workers) if workers else None,
    )
    job.launch(ring_collectives, **kwargs)
    for rank, rep, at in crash:
        job.crash(rank, rep, at=at)
    return job.run(until=until, allow_lost_ranks=bool(crash))


def _plan_for(n_ranks: int, workers: int, protocol: str = "sdr"):
    degree = 1 if protocol == "native" else 2
    cfg = ReplicationConfig(degree=degree, protocol=protocol)
    job = Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, degree))
    plan = ShardPlan.build(job.placement, workers)
    plan.validate()
    return job, plan


# ------------------------------------------------------- equivalence suite
@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    protocol=st.sampled_from(PROTOCOLS),
    n_ranks=st.sampled_from([8, 16]),
    workers=st.integers(min_value=2, max_value=4),
    iters=st.integers(min_value=1, max_value=2),
)
def test_sharded_fingerprint_equals_serial(protocol, n_ranks, workers, iters):
    """The load-bearing property: any protocol, size, worker count and
    iteration depth produces the exact serial fingerprint — whether the
    run truly sharded or conservatively fell back."""
    serial = _run(protocol, n_ranks, iters=iters, nbytes=256)
    parallel = _run(protocol, n_ranks, workers=workers, iters=iters, nbytes=256)
    assert parallel.parallel is not None
    assert fingerprint(parallel) == fingerprint(serial)


@pytest.mark.parametrize("workers", [2, 4])
def test_crash_failover_runs_shard_byte_identical(workers):
    """Fail-stop crashes mid-collective (SDR failover) replay exactly:
    the crash fan-out, detection latencies and the post-crash protocol
    traffic all land on the serial timeline."""
    crash = [(1, 1, 2e-5), (5, 0, 3e-5)]
    serial = _run("sdr", 16, crash=crash, iters=3, nbytes=256)
    parallel = _run("sdr", 16, workers=workers, crash=crash, iters=3, nbytes=256)
    assert fingerprint(parallel) == fingerprint(serial)


@pytest.mark.parametrize("workers", [2, 4])
def test_rendezvous_tied_arrivals_shard_byte_identical(workers):
    """Rendezvous handshakes (RTS/CTS ctrl frames) in a lockstep 16-rank
    ring land cross-shard frames at arrival times shared with pending
    local charge entries — serial breaks the tie by *push order* (the
    frame was heappushed at its inject dispatch), which the merge must
    reproduce via push-time checkpoints, not merge-time seqs.  Pinned as
    truly sharded: a fallback would hide a placement regression."""
    serial = _run("sdr", 16, iters=2)  # default nbytes: rendezvous path
    parallel = _run("sdr", 16, workers=workers, iters=2)
    assert parallel.parallel["fallback"] == []
    assert parallel.parallel["shards"] == workers
    assert fingerprint(parallel) == fingerprint(serial)


def test_anysource_receives_fall_back_serial():
    """ANY_SOURCE matching is order-sensitive at equal timestamps in ways
    deferred-frame seqs cannot reproduce: the worker taints and the run
    falls back — byte-identical by construction, reason recorded."""
    from repro.scenarios import anysource_fanin

    cfg = ReplicationConfig(degree=2, protocol="sdr")
    results = []
    for workers in (0, 2):
        job = Job(
            16,
            cfg=cfg,
            cluster=cluster_for(16, cfg.degree),
            parallel=ParallelConfig(workers=workers) if workers else None,
        )
        job.launch(anysource_fanin, rounds=4)
        results.append(job.run())
    serial, parallel = results
    assert any("any-source" in r for r in parallel.parallel["fallback"])
    assert fingerprint(parallel) == fingerprint(serial)


@pytest.mark.parametrize("protocol", ["sdr", "mirror"])
def test_until_horizon_runs_shard_byte_identical(protocol):
    """`run(until=...)` parks every shard clock at the horizon and
    dispatches exactly the serial event set (inclusive epilogue)."""
    serial = _run(protocol, 16, until=5e-5, iters=3, nbytes=256)
    parallel = _run(protocol, 16, workers=2, until=5e-5, iters=3, nbytes=256)
    assert fingerprint(parallel) == fingerprint(serial)


def test_delay_only_fault_plan_shards():
    """Delay windows draw nothing from the fault stream — they stay
    shardable (unlike drop/dup, which are a recorded hazard)."""
    plan = FaultPlan(windows=(LinkFaultWindow(0.0, 4e-5, delay=5e-6),)).validate()
    serial = _run("sdr", 16, fault_plan=plan, iters=2, nbytes=256)
    parallel = _run("sdr", 16, workers=2, fault_plan=plan, iters=2, nbytes=256)
    assert parallel.parallel["fallback"] == []
    assert parallel.parallel["shards"] == 2
    assert fingerprint(parallel) == fingerprint(serial)


def test_open_loop_traffic_shards_with_balanced_ledger():
    """Open-loop traffic: per-rank arrival plans are pure functions of
    the seed, so the request ledger shards — and the merged totals must
    satisfy the same zero-leak audit as the serial book."""
    cfg = CampaignConfig(n_ranks=8)
    rcfg = ReplicationConfig(degree=2, protocol="sdr")

    def run(workers):
        bound = get_scenario("traffic-poisson").bind(cfg, seed=3)
        job = Job(
            cfg.n_ranks,
            cfg=rcfg,
            seed=3,
            traffic=bound.traffic,
            cluster=cluster_for(cfg.n_ranks, 2),
            parallel=ParallelConfig(workers=workers) if workers else None,
        )
        job.launch(bound.factory, **bound.kwargs)
        res = job.run(until=cfg.horizon, allow_lost_ranks=True, audit=False)
        bound.traffic.audit()
        return res

    serial = run(0)
    parallel = run(2)
    assert parallel.parallel["shards"] == 2
    assert fingerprint(parallel) == fingerprint(serial)


def test_fault_campaign_records_detector_fallback():
    """Campaign mixes run under an imperfect detector — a recorded
    hazard: the run must fall back to the serial engine (byte-identical
    fingerprint) rather than shard an rng stream it cannot replay."""
    from repro.harness.campaign import sample_faults

    cfg = CampaignConfig()

    def run(workers):
        bound = get_scenario(cfg.workload).bind(cfg, 1)
        rcfg = ReplicationConfig(degree=cfg.degree, protocol="sdr")
        sched, plan, _mix = sample_faults(1, cfg, "sdr", respawnable=False)
        job = Job(
            cfg.n_ranks,
            cfg=rcfg,
            seed=1,
            detector=cfg.detector,
            fault_plan=plan,
            traffic=bound.traffic,
            parallel=ParallelConfig(workers=workers) if workers else None,
        )
        job.launch(bound.factory, **bound.kwargs)
        sched.apply(job, horizon=cfg.horizon)
        return job.run(until=cfg.horizon, allow_lost_ranks=True, audit=False)

    serial = run(0)
    fallback = run(2)
    assert "detector" in fallback.parallel["fallback"]
    assert fingerprint(fallback) == fingerprint(serial)


def test_zero_leak_balance_holds_globally_after_merge():
    """The merged result must re-derive the serial arena balance: the
    audit ran per shard, and the relay conservation (exports == imports)
    plus the merge compensation keep the global books closed."""
    res = _run("sdr", 16, workers=4, iters=2, nbytes=256)
    assert res.parallel["shards"] >= 2
    fab = res.fabric
    assert fab["frames_exported"] == fab["frames_imported"]
    assert fab["envs_exported"] == fab["envs_imported"]
    # Same stranded attribution as serial (empty on a clean run).
    assert res.stranded_by_site == _run("sdr", 16, iters=2, nbytes=256).stranded_by_site


# ----------------------------------------------------------- shard planner
@settings(max_examples=20, deadline=None)
@given(
    n_ranks=st.sampled_from([4, 8, 16, 32]),
    workers=st.integers(min_value=1, max_value=8),
)
def test_plan_partition_is_valid(n_ranks, workers):
    """Every proc in exactly one shard, shards node-aligned and
    contiguous, never more shards than nodes or workers."""
    job, plan = _plan_for(n_ranks, workers)
    n_procs = job.rmap.n_procs
    seen = sorted(p for shard in plan.local_procs for p in shard)
    assert seen == list(range(n_procs))
    node_of = [job.placement.node_of(p) for p in range(n_procs)]
    n_nodes = len(set(node_of))
    assert 1 <= plan.n_shards <= min(workers, n_nodes)
    for p in range(n_procs):
        # Node alignment: a proc's shard is its node's shard.
        assert plan.shard_of_proc[p] == plan.shard_of_node[node_of[p]]


def test_plan_lookahead_is_min_inter_node_latency():
    job, plan = _plan_for(16, 4)
    n_procs = job.rmap.n_procs
    nodes = sorted({job.placement.node_of(p) for p in range(n_procs)})
    expected = min(
        job.cluster.model_for(a, b).latency
        for i, a in enumerate(nodes)
        for b in nodes[i + 1 :]
    )
    assert plan.lookahead == expected
    assert plan.lookahead > 0


def test_single_shard_degenerate_falls_back_with_reason():
    """workers=1 (or a single populated node) cannot overlap anything:
    the run is the serial engine's, with the reason recorded."""
    serial = _run("sdr", 8, iters=1, nbytes=256)
    degenerate = _run("sdr", 8, workers=1, iters=1, nbytes=256)
    assert degenerate.parallel["shards"] == 1
    assert "single_shard" in degenerate.parallel["fallback"]
    assert fingerprint(degenerate) == fingerprint(serial)


# --------------------------------------------------------- fallback honesty
def test_jitter_is_a_recorded_hazard():
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(
        8,
        cfg=cfg,
        cluster=cluster_for(8, 2),
        jitter=lambda: 1e-9,
        parallel=ParallelConfig(workers=2),
    )
    res = job.launch(ring_collectives, iters=1, nbytes=256).run()
    assert "jitter" in res.parallel["fallback"]


def test_stochastic_faults_are_a_recorded_hazard():
    # dup_p draws from the fault stream (a hazard) without losing
    # traffic, so the run still completes under replication.
    plan = FaultPlan(windows=(LinkFaultWindow(0.0, 4e-5, dup_p=0.5),)).validate()
    res = _run("sdr", 8, workers=2, fault_plan=plan, iters=1, nbytes=256)
    assert "stochastic_faults" in res.parallel["fallback"]


def test_classify_hazards_is_empty_for_a_clean_sharded_job():
    job, plan = _plan_for(16, 2)
    assert classify_hazards(job, plan) == []


def test_default_job_path_carries_no_parallel_metadata():
    """The serial path is untouched: no ParallelConfig, no metadata —
    goldens and sweeps observe exactly the pre-parallel JobResult."""
    res = _run("sdr", 8, iters=1, nbytes=256)
    assert res.parallel is None


def test_run_parallel_requires_launch():
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(8, cfg=cfg, cluster=cluster_for(8, 2), parallel=ParallelConfig(workers=2))
    with pytest.raises(RuntimeError, match="launch"):
        run_parallel(job)


def test_fingerprint_excludes_memory_policy_counters():
    """The fingerprint is the *scientific* output: arena/pool machinery
    counters (high-water marks, pool sizes, relay counts) and the
    interner hit/miss split are excluded, their engine-invariant sum
    (`payload_lookups`) kept."""
    res = _run("sdr", 8, iters=1, nbytes=256)
    fp = fingerprint(res)
    assert "payload_lookups" in fp
    assert "payload_interned" not in fp
    for key in ("frame_high_water", "frames_exported", "frame_pool_size"):
        assert key not in fp["fabric"]
