"""Workload tests: validation kernels (real numerics) and modeled runs."""

import numpy as np
import pytest

from repro.apps.cm1 import cm1_rank
from repro.apps.hpccg import hpccg_rank
from repro.apps.nas import NAS_APPS, PROBLEMS, decompose_2d, decompose_3d
from repro.apps.nas.bt import bt_rank, sweep_grid
from repro.apps.nas.cg import cg_rank
from repro.apps.nas.ft import ft_rank
from repro.apps.nas.mg import mg_rank
from repro.apps.nas.sp import sp_rank
from repro.apps.netpipe import netpipe_rank
from tests.conftest import run_app


class TestDecompositions:
    def test_2d_power_of_two(self):
        assert decompose_2d(16) == (4, 4)
        assert decompose_2d(32) == (8, 4)
        assert decompose_2d(256) == (16, 16)

    def test_3d(self):
        assert sorted(decompose_3d(64)) == [4, 4, 4]
        assert sorted(decompose_3d(256)) == [4, 8, 8]
        a, b, c = decompose_3d(12)
        assert a * b * c == 12

    def test_sweep_grid_requires_square(self):
        assert sweep_grid(16) == 4
        with pytest.raises(ValueError):
            sweep_grid(6)

    def test_problem_tables_complete(self):
        for name in ("BT", "CG", "FT", "MG", "SP"):
            for klass in "SWABCD":
                prob = PROBLEMS[name][klass]
                assert prob.iterations > 0 and prob.flops_per_iter > 0

    def test_class_d_calibration_anchors(self):
        # CG class D: 210.37 s / 100 iters on 256 x 2.5 GF/s cores
        prob = PROBLEMS["CG"]["D"]
        per_iter = prob.compute_seconds(256, 2.5e9)
        assert per_iter * prob.iterations == pytest.approx(210.37, rel=0.05)


class TestValidationKernels:
    def test_cg_validate_converges(self):
        res = run_app(cg_rank, 4, validate=True)
        for r in range(4):
            assert res.app_results[r] < 1e-7  # residual norm

    def test_cg_validate_matches_serial_solution(self):
        """The distributed CG residual equals a serial solve's residual."""
        res = run_app(cg_rank, 2, validate=True)
        assert res.app_results[0] < 1e-7

    def test_ft_validate_transpose_exact(self):
        res = run_app(ft_rank, 4, validate=True)
        # checksum equals the column-slice sum; computed independently here
        n = 8
        size = 4
        full = np.arange(n * size * n * size, dtype=np.float64).reshape(n * size, n * size)
        for r in range(size):
            want = float(full[:, r * n : (r + 1) * n].sum())
            assert res.app_results[r] == want

    def test_mg_validate_residual_decreases(self):
        res = run_app(mg_rank, 4, validate=True)
        for r in range(4):
            norms = res.app_results[r]
            assert norms[-1] < norms[0]

    def test_bt_validate_prefix_sweep(self):
        res = run_app(bt_rank, 4, validate=True)  # 2x2 grid
        assert all(v is not None for v in res.app_results.values())

    def test_sp_validate_suffix_sweep(self):
        res = run_app(sp_rank, 9, validate=True)  # 3x3 grid
        assert all(v is not None for v in res.app_results.values())

    def test_hpccg_validate_converges(self):
        res = run_app(hpccg_rank, 4, validate=True)
        for r in range(4):
            assert res.app_results[r] < 1e-7

    def test_cm1_validate_conserves_mass(self):
        res = run_app(cm1_rank, 4, validate=True)
        vals = set(res.app_results.values())
        assert len(vals) == 1  # identical mass everywhere

    def test_validation_kernels_work_replicated(self):
        """Real numerics must survive the SDR protocol untouched."""
        res = run_app(cg_rank, 4, protocol="sdr", validate=True)
        for proc, val in res.app_results.items():
            assert val < 1e-7
        # both replicas compute the identical residual
        for r in range(4):
            assert res.app_results[r] == res.app_results[r + 4]


class TestModeledRuns:
    @pytest.mark.parametrize("name", ["BT", "CG", "FT", "MG", "SP"])
    def test_nas_modeled_runs_native_and_sdr(self, name):
        app = NAS_APPS[name]
        nat = run_app(app, 4, klass="S", iters=2)
        rep = run_app(app, 4, protocol="sdr", klass="S", iters=2)
        assert rep.runtime > 0 and nat.runtime > 0
        assert rep.runtime >= nat.runtime  # replication never speeds things up
        assert rep.runtime < 1.5 * nat.runtime  # and the overhead is bounded

    def test_nas_runtime_scales_with_class(self):
        small = run_app(cg_rank, 4, klass="S", iters=3).runtime
        bigger = run_app(cg_rank, 4, klass="A", iters=3).runtime
        assert bigger > small

    def test_hpccg_modeled(self):
        nat = run_app(hpccg_rank, 4, iters=5)
        rep = run_app(hpccg_rank, 4, protocol="sdr", iters=5)
        assert rep.runtime >= nat.runtime
        assert rep.stat_total("acks_sent") > 0

    def test_cm1_modeled(self):
        nat = run_app(cm1_rank, 4, n=32, steps=3)
        rep = run_app(cm1_rank, 4, protocol="sdr", n=32, steps=3)
        assert rep.runtime >= nat.runtime

    def test_anysource_present_in_hpccg_and_cm1(self):
        """Table 2's point: these two use wildcard receptions."""
        res = run_app(hpccg_rank, 4, iters=3)
        assert res.stat_total("unexpected_count") >= 0  # runs at all
        # the wildcard is structural: verify by source-checking the app code
        import inspect

        assert "ANY_SOURCE" in inspect.getsource(hpccg_rank)
        assert "ANY_SOURCE" in inspect.getsource(cm1_rank)

    def test_netpipe_latency_positive_and_monotone_in_size(self):
        lats = []
        for nbytes in (8, 4096, 262144):
            res = run_app(netpipe_rank, 2, nbytes=nbytes, iters=3)
            lats.append(res.app_results[0])
        assert lats == sorted(lats)

    def test_netpipe_validate_mode(self):
        res = run_app(netpipe_rank, 2, nbytes=64, iters=2, validate=True)
        assert res.app_results[0] > 0

    def test_netpipe_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            run_app(netpipe_rank, 3, nbytes=8)


class TestNasUnderFailure:
    def test_cg_survives_replica_crash(self):
        from repro.core.config import ReplicationConfig
        from repro.harness.runner import Job, cluster_for

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(4, cfg=cfg, cluster=cluster_for(4, 2))
        job.launch(cg_rank, klass="S", iters=4)
        job.crash(2, 1, at=50e-6)
        res = job.run()
        assert len(res.app_results) == 7  # 8 procs minus the crashed one
