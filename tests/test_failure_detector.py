"""Imperfect failure detection: heartbeat declaration latency, unreliable
notification delivery, and false-suspicion survival.

``Job(detector=DetectorConfig(...))`` replaces the instant membership
oracle with the analytic heartbeat detector: a crash at *t* is declared
only at ``declare_at(t)`` (missed heartbeats + timeout), each per-target
notification can be lost and is retried with backoff, and
``inject_suspicion`` models false positives.  The paper assumes a perfect
external detection service (§3.2); these tests measure what the protocols
do when that assumption degrades — and prove every replicated protocol
survives a suspected-but-alive replica.
"""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.core.membership import DetectorConfig
from repro.harness.faults import FaultSchedule
from repro.harness.runner import Job, cluster_for

REPLICATED = ("sdr", "mirror", "leader", "redmpi")

#: fast-declaring detector so crashes resolve inside short workloads
DET = DetectorConfig(
    heartbeat_period=10e-6, timeout=15e-6, suspicion_threshold=2,
    notify_attempts=3, notify_backoff=5e-6,
)


def exchange(mpi, iters=40):
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    acc = 0.0
    for k in range(iters):
        if mpi.rank % 2 == 0:
            yield from mpi.send(np.array([float(mpi.rank + k)]), dest=right, tag=3)
            got, _ = yield from mpi.recv(source=left, tag=3)
        else:
            got, _ = yield from mpi.recv(source=left, tag=3)
            yield from mpi.send(np.array([float(mpi.rank + k)]), dest=right, tag=3)
        acc += float(got[0])
        yield from mpi.compute(2e-6)
    return acc


def _job(protocol, n=4, detector=DET, seed=0):
    cfg = ReplicationConfig(degree=2, protocol=protocol)
    return Job(n, cfg=cfg, cluster=cluster_for(n, 2), seed=seed, detector=detector)


class TestDetectorConfig:
    def test_declare_at_formula(self):
        det = DetectorConfig(heartbeat_period=10e-6, timeout=5e-6, suspicion_threshold=3)
        # crash at 12us: heartbeat 1 was sent at 10us, beats 2/3/4 missed
        # (20/30/40us) -> declared at 40us + timeout
        assert det.declare_at(12e-6) == pytest.approx((1 + 3) * 10e-6 + 5e-6)
        # detection latency is strictly positive whenever timeout > 0
        for t in (0.0, 3e-6, 9.99e-6, 25e-6):
            assert det.declare_at(t) > t

    def test_config_validation(self):
        with pytest.raises(ValueError, match="heartbeat_period"):
            DetectorConfig(heartbeat_period=0.0)
        with pytest.raises(ValueError, match="suspicion_threshold"):
            DetectorConfig(suspicion_threshold=0)
        with pytest.raises(ValueError, match="notify_attempts"):
            DetectorConfig(notify_attempts=0)
        with pytest.raises(ValueError, match="notify_drop_p"):
            DetectorConfig(notify_drop_p=1.0)  # certain loss: nothing ever arrives
        with pytest.raises(ValueError, match="notify_backoff"):
            DetectorConfig(notify_backoff=-1e-6)


class TestDetectionLatency:
    def test_crash_declaration_is_late_and_measured(self):
        at = 42e-6
        clean = _job("sdr").launch(exchange).run()
        job = _job("sdr")
        job.launch(exchange)
        job.crash(1, 1, at=at)
        res = job.run()
        victim = job.rmap.phys(1, 1)
        latency = job.membership.detection_latency[victim]
        assert latency == pytest.approx(DET.declare_at(at) - at)
        assert latency > 0.0
        # the protocol still rides it out: every survivor matches the
        # failure-free run (results are rank-dependent by construction)
        assert res.app_results == {p: clean.app_results[p] for p in res.app_results}
        assert set(res.app_results) == set(clean.app_results) - {victim}

    def test_oracle_records_no_latency(self):
        job = _job("sdr", detector=None)
        job.launch(exchange)
        job.crash(1, 1, at=42e-6)
        job.run()
        assert job.membership.detection_latency == {}

    def test_detector_slows_failover_vs_oracle(self):
        def failover_runtime(detector):
            job = _job("sdr", detector=detector)
            job.launch(exchange)
            job.crash(1, 1, at=42e-6)
            return job.run().runtime

        # late declaration => peers keep waiting on the dead replica longer
        assert failover_runtime(DET) > failover_runtime(None)


class TestUnreliableNotification:
    def test_notify_retries_and_drops_are_counted(self):
        det = DetectorConfig(
            heartbeat_period=10e-6, timeout=15e-6, suspicion_threshold=2,
            notify_attempts=4, notify_backoff=5e-6, notify_drop_p=0.5,
        )
        job = _job("sdr", detector=det, seed=3)
        job.launch(exchange)
        job.crash(1, 1, at=42e-6)
        # a target whose every attempt is lost never learns of the crash and
        # legitimately wedges waiting on the dead replica — run to a horizon
        job.run(until=2e-3, allow_lost_ranks=True, audit=True)
        m = job.membership
        # 7 live targets, each retried until the first surviving attempt:
        # one non-dropped delivery per reached target, plus every loss
        assert m.notify_attempts_made > 7
        assert m.notify_drops > 0
        assert m.notify_attempts_made == m.notify_drops + 7 - len(m.notify_failures)

    def test_all_attempts_lost_is_recorded_not_hidden(self):
        det = DetectorConfig(
            heartbeat_period=10e-6, timeout=15e-6, suspicion_threshold=2,
            notify_attempts=1, notify_backoff=5e-6, notify_drop_p=0.99,
        )
        job = _job("sdr", detector=det, seed=0)
        job.launch(exchange)
        job.crash(1, 1, at=42e-6)
        job.run(until=2e-3, allow_lost_ranks=True, audit=True)
        # with one attempt at p=0.99, essentially every target misses the news
        assert job.membership.notify_failures
        victim = job.rmap.phys(1, 1)
        assert all(failed == victim for _target, failed in job.membership.notify_failures)


class TestFalseSuspicionSurvival:
    @pytest.mark.parametrize("protocol", REPLICATED)
    def test_suspected_but_alive_replica_survives(self, protocol):
        clean = _job(protocol).launch(exchange).run()
        job = _job(protocol)
        job.launch(exchange)
        FaultSchedule().suspect(1, 1, at=30e-6, clear_after=40e-6).apply(job)
        res = job.run()
        m = job.membership
        assert m.false_suspicions == [(job.rmap.phys(1, 1), pytest.approx(30e-6))]
        assert m.suspected == set()  # cleared before the end
        # nobody died, nothing was lost, and every process — including the
        # falsely suspected replica — finished with the correct result
        assert m.failed == []
        assert res.lost_ranks == []
        assert res.app_results == clean.app_results

    def test_suspicion_of_dead_process_is_true_positive(self):
        job = _job("sdr")
        job.launch(exchange)
        job.crash(1, 1, at=20e-6)
        # injected *after* the crash: not a false positive, must be a no-op
        FaultSchedule().suspect(1, 1, at=200e-6).apply(job)
        job.run()
        assert job.membership.false_suspicions == []

    def test_suspect_is_not_electable_as_substitute(self):
        job = _job("sdr")
        job.launch(exchange)
        m = job.membership
        sus = job.rmap.phys(1, 0)
        m.suspected.add(sus)
        assert m.substitute_rep(1) == 1  # rep 0 is suspect, elect rep 1
        m.suspected.clear()
        assert m.substitute_rep(1) == 0

    def test_suspicion_requires_detector(self):
        job = _job("sdr", detector=None)
        with pytest.raises(RuntimeError, match="imperfect detector"):
            job.membership.inject_suspicion(1)
