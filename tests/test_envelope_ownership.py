"""The envelope ownership contract: arenas balance, borrows, escape hatches.

PR 3's contract (see :mod:`repro.mpi.pml` and :mod:`repro.core.interpose`):
every envelope has exactly one owner at every point in its lifetime, hooks
receive borrows, and ``retain()``/``copy()`` are the explicit ways to hold
a message past the borrow window.  The harness enforces the zero-leak
property in the teardown of **every** run — since PR 4, crashy runs
included: fail-stop drop sites and abandoned receive pipelines count what
they strand, and the teardown asserts
``acquired == released + stranded``.  These tests pin the accounting
itself, the escape hatches, the end-of-run reaping of well-defined
leftovers, and the failover/recovery scenarios the strand accounting
exists for.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import ReplicationConfig
from repro.core.recovery import RecoveryManager
from repro.harness.runner import Job, cluster_for
from repro.mpi.datatypes import Phantom
from repro.mpi.errors import DeadlockError
from repro.mpi.pml import Envelope, MessageView
from tests.conftest import run_app


def _job(protocol="native", n=2, **kwargs):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    return Job(n, cfg=cfg, cluster=cluster_for(n, cfg.degree), **kwargs)


def pingpong(mpi, rounds=10):
    peer = mpi.rank ^ 1
    if peer >= mpi.size:
        return 0
    for r in range(rounds):
        if mpi.rank < peer:
            yield from mpi.send(np.arange(4, dtype=np.float64), dest=peer, tag=r % 3)
            yield from mpi.recv(source=peer, tag=r % 3)
        else:
            yield from mpi.recv(source=peer, tag=r % 3)
            yield from mpi.send(np.arange(4, dtype=np.float64), dest=peer, tag=r % 3)
    return rounds


def anysource_fanin(mpi, rounds=10):
    if mpi.rank == 0:
        total = 0.0
        for _ in range(rounds):
            for _ in range(mpi.size - 1):
                d, _st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                total += float(d[0])
            for dst in range(1, mpi.size):
                yield from mpi.send(np.array([total]), dest=dst, tag=3)
        return total
    acc = 0.0
    for _ in range(rounds):
        yield from mpi.send(np.array([float(mpi.rank)]), dest=0, tag=2)
        d, _ = yield from mpi.recv(source=0, tag=3)
        acc = float(d[0])
    return acc


class TestArenaBalance:
    """Zero leaks: every acquire matched by a release, per job."""

    @pytest.mark.parametrize("protocol", ["native", "sdr", "mirror", "leader", "redmpi"])
    def test_envelopes_and_frames_balance(self, protocol):
        n = 2 if protocol == "native" else 4
        job = _job(protocol, n=n)
        job.launch(anysource_fanin, rounds=8).run()  # run() asserts balance…
        # …and the counters are visible and consistent afterwards:
        env_acquired = sum(p.env_acquired for p in job.pmls.values())
        env_released = sum(p.env_released for p in job.pmls.values())
        assert env_acquired > 0
        assert env_acquired == env_released
        fab = job.fabric.stats()
        assert fab["frames_acquired"] == fab["frames_released"] > 0

    def test_arena_reuse_actually_happens(self):
        """Steady state is allocation-free: far fewer constructions than
        acquisitions once the pools are warm."""
        job = _job("sdr", n=4)
        job.launch(anysource_fanin, rounds=30).run()
        acquired = sum(p.env_acquired for p in job.pmls.values())
        allocated = sum(p.env_allocated for p in job.pmls.values())
        assert allocated < acquired / 5  # >80% of acquisitions recycled

    def test_rendezvous_path_balances(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(8192), dest=1, tag=1)  # rts/cts/data
            else:
                yield from mpi.recv(source=0, tag=1)

        job = _job()
        job.launch(app).run()
        assert sum(p.env_acquired for p in job.pmls.values()) == sum(
            p.env_released for p in job.pmls.values()
        )

    def test_stats_expose_arena_counters(self):
        job = _job("sdr", n=2)
        res = job.launch(pingpong, rounds=4).run()
        some = next(iter(res.stats.values()))
        for key in ("env_acquired", "env_allocated", "env_released", "env_pool_size"):
            assert key in some
        for key in ("frames_acquired", "frames_allocated", "frames_released"):
            assert key in res.fabric

    def test_unreceived_message_is_reaped(self):
        """A message nobody ever receives parks in the unexpected queue;
        teardown reaps it and the arenas still balance."""

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=9)  # eager: fire&forget
            else:
                yield from mpi.compute(1e-6)  # never posts the receive

        job = _job()
        job.launch(app).run()
        assert sum(p.env_acquired for p in job.pmls.values()) == sum(
            p.env_released for p in job.pmls.values()
        )

    def test_crashy_runs_assert_balance_too(self):
        """Crashes strand in-flight objects — and the teardown now proves
        every strand is accounted instead of skipping the check."""
        res = run_app(anysource_fanin, 4, protocol="sdr", crash=(1, 1, 2e-5), rounds=12)
        assert res.runtime > 0  # completed; run() asserted the balance
        assert "frames_stranded" in res.fabric and "envs_stranded" in res.fabric


def _balance(job):
    """(acquired, released, stranded) envelope totals, retired stacks included."""
    pmls = [pml for pml, _proto in job._retired_stacks] + list(job.pmls.values())
    acquired = sum(p.env_acquired for p in pmls)
    released = sum(p.env_released for p in pmls)
    stranded = sum(p.env_stranded for p in pmls) + job.fabric.envs_stranded
    return acquired, released, stranded


class TestDropSiteCounters:
    """The fabric-level fail-stop drop sites account what they strand."""

    def _env(self, dst=1):
        return Envelope("eager", ("w",), 0, 1, 0, dst, 0, 8, b"x" * 8, 0, dst)

    def test_send_by_dead_source_strands(self):
        job = _job(n=2)
        fab = job.fabric
        fab.crash(0)
        fab.send(0, 1, 8, self._env(), "eager")
        assert fab.frames_stranded == 1
        assert fab.envs_stranded == 1
        assert fab.frames_acquired == fab.frames_released + fab.frames_stranded

    def test_arrival_at_dead_endpoint_strands(self):
        job = _job(n=2)
        fab = job.fabric
        frame = fab.acquire_frame(0, 1, 8, self._env(), kind="eager")
        fab.crash(1)
        fab.endpoints[1].deliver(frame)
        assert fab.frames_stranded == 1
        assert fab.envs_stranded == 1

    def test_dead_rank_inbox_clear_strands(self):
        job = _job(n=2)
        fab = job.fabric
        fab.endpoints[1].deliver(fab.acquire_frame(0, 1, 8, self._env(), kind="eager"))
        fab.endpoints[1].deliver(fab.acquire_frame(-1, 1, 0, ("failure", 0), kind="svc"))
        fab.crash(1)  # clears the two queued frames
        assert fab.frames_stranded == 2
        assert fab.envs_stranded == 1  # the svc frame carries no envelope
        assert len(fab.endpoints[1].inbox) == 0


class TestCrashAwareStrandAccounting:
    """Failover/recovery leak cases: ``released + stranded == acquired``
    holds through fail-stop crashes, for every protocol.  ``Job.run``
    raises from its teardown on any unaccounted strand, so each scenario
    completing *is* the proof; the explicit sums double-check the exposed
    counters (including retired respawn stacks)."""

    @pytest.mark.parametrize("protocol", ["sdr", "mirror", "leader"])
    @pytest.mark.parametrize("crash_at", [1e-5, 6e-5, 1.5e-4])
    def test_failover_balances(self, protocol, crash_at):
        job = _job(protocol, n=4)
        job.launch(anysource_fanin, rounds=12)
        job.crash(1, 1, at=crash_at)
        res = job.run()
        assert res.runtime > 0
        acquired, released, stranded = _balance(job)
        assert acquired == released + stranded

    def test_failover_strands_are_counted_not_lost(self):
        """A crash in the middle of heavy traffic really strands objects —
        the counters must move, not just the check pass vacuously."""
        job = _job("sdr", n=4)
        job.launch(anysource_fanin, rounds=12)
        job.crash(1, 1, at=2e-5)
        job.run()
        acquired, released, stranded = _balance(job)
        assert stranded > 0
        assert acquired == released + stranded

    def test_rendezvous_failover_balances(self):
        """Crash mid-rendezvous: retained rts/cts/data envelopes at the
        dead peer are stranded or cancelled, never leaked."""

        def app(mpi, iters=6):
            right = (mpi.rank + 1) % mpi.size
            left = (mpi.rank - 1) % mpi.size
            for _ in range(iters):
                yield from mpi.sendrecv(Phantom(65536), dest=right, source=left, sendtag=1)
            return mpi.rank

        job = _job("sdr", n=4)
        job.launch(app)
        job.crash(2, 1, at=8e-5)
        job.run()
        acquired, released, stranded = _balance(job)
        assert acquired == released + stranded

    def test_native_lost_rank_balances(self):
        """Native has no replicas: a crash loses the rank, survivors block
        forever, and the teardown abandons them — their borrows must land
        in the strand counters."""
        cfg = ReplicationConfig(degree=1, protocol="native")
        job = Job(4, cfg=cfg, cluster=cluster_for(4, 1))
        job.launch(anysource_fanin, rounds=12)
        job.crash(2, 0, at=4e-5)
        res = job.run(allow_lost_ranks=True)
        assert res.lost_ranks == [2]
        acquired, released, stranded = _balance(job)
        assert acquired == released + stranded

    def test_redmpi_lost_rank_balances(self):
        """redMPI tolerates no crashes (no acks, no retention): losing both
        replicas of a rank wedges its peers, which the teardown abandons —
        and the arenas still balance."""
        job = _job("redmpi", n=4)
        job.launch(anysource_fanin, rounds=12)
        job.crash(1, 0, at=4e-5)
        job.crash(1, 1, at=5e-5)
        res = job.run(allow_lost_ranks=True)
        assert res.lost_ranks == [1]
        acquired, released, stranded = _balance(job)
        assert acquired == released + stranded

    def test_recovery_respawn_balances(self):
        """§3.4 recovery replaces the dead replica's stack: the retired
        PML's counters and parked envelopes stay in the balance."""

        class IterState:
            def __init__(self):
                self.it = 0
                self.acc = 0.0

        def app(mpi, iters=40, state=None):
            st_ = state or IterState()
            mpi.register_state(st_)
            while st_.it < iters:
                it = st_.it
                if mpi.rank == 1:
                    yield from mpi.send(np.array([float(it)]), dest=0, tag=1)
                    got, _ = yield from mpi.recv(source=0, tag=2)
                else:
                    got, _ = yield from mpi.recv(source=1, tag=1)
                    yield from mpi.send(np.array([2.0 * it]), dest=1, tag=2)
                st_.acc += float(got[0])
                st_.it += 1
                yield from mpi.recovery_point()
                yield from mpi.compute(1e-6)
            return st_.acc

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        job.launch(app)
        manager = RecoveryManager(job)
        job.crash(1, 1, at=60e-6)
        job.sim.call_at(100e-6, lambda: manager.request_respawn(1))
        res = job.run()
        assert len(res.app_results) == 4  # the respawn finished too
        assert job._retired_stacks  # the replaced stack was retired
        acquired, released, stranded = _balance(job)
        assert acquired == released + stranded

    @settings(max_examples=25, deadline=None)
    @given(
        protocol=st.sampled_from(["sdr", "mirror", "leader"]),
        rank=st.integers(0, 3),
        rep=st.integers(0, 1),
        crash_us=st.floats(min_value=1.0, max_value=200.0),
    )
    def test_random_crash_timing_balances(self, protocol, rank, rep, crash_us):
        """The crash can land at *any* yield point — mid-CPU-charge inside
        frame handling, mid-hook, mid-rendezvous handshake.  Whatever the
        pipeline was holding must be stranded, never lost.

        Some sampled configurations legitimately wedge: a leader-replica
        crash at the wrong moment leaves followers waiting forever for a
        decision (the leader baseline has no decision failover — that is
        the protocol's known weakness, not a leak).  A deadlocked run
        still must balance once its survivors are abandoned, which is a
        *stronger* exercise of the teardown than a clean finish.
        """
        job = _job(protocol, n=4)
        job.launch(anysource_fanin, rounds=10)
        job.crash(rank, rep, at=crash_us * 1e-6)
        try:
            job.run(allow_lost_ranks=True)
        except DeadlockError:
            job._assert_arenas_balanced()
        acquired, released, stranded = _balance(job)
        assert acquired == released + stranded


class TestBorrowAndEscapeHatches:
    def test_hook_borrow_is_valid_during_and_recycled_after(self):
        """Inside the hook the envelope is live; after the run the shell
        has been reset (ctx/data dropped) — proof it went back to the arena."""
        job = _job()
        seen = []

        def hook(env, recv):
            seen.append(env)
            assert env.data is not None and env.ctx is not None  # live borrow

        job.pmls[1].on_recv_complete.append(hook)

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(2), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)

        job.launch(app).run()
        (env,) = seen
        assert env.ctx is None and env.data is None  # recycled after the window

    def test_retain_keeps_envelope_out_of_the_arena(self):
        job = _job()
        held = []
        job.pmls[1].on_recv_complete.append(lambda env, recv: held.append(env.retain()))

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.full(3, 7.0), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)

        with pytest.raises(AssertionError, match="envelope arena leak"):
            job.launch(app).run()  # retained => deliberately unbalanced
        (env,) = held
        assert env.data is not None  # still live: retain() protected it
        job.pmls[1].release_env(env)  # balanced now
        assert env.data is None
        assert sum(p.env_acquired for p in job.pmls.values()) == sum(
            p.env_released for p in job.pmls.values()
        )

    def test_copy_returns_immutable_view(self):
        job = _job()
        views = []
        job.pmls[1].on_recv_complete.append(lambda env, recv: views.append(env.copy()))

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.array([1.0, 2.0]), dest=1, tag=4)
            else:
                yield from mpi.recv(source=0, tag=4)

        job.launch(app).run()  # views are arena-independent: still balanced
        (view,) = views
        assert isinstance(view, MessageView)
        assert view.tag == 4 and view.seq == 0 and view.src_rank == 0
        assert view.data is not None  # payload snapshot survives recycling
        with pytest.raises(AttributeError):
            view.tag = 9
        with pytest.raises(AttributeError):
            view.data = None

    def test_view_mirrors_envelope_fields(self):
        env = Envelope(
            kind="eager",
            ctx=("w",),
            src_rank=1,
            tag=2,
            world_src=1,
            world_dst=0,
            seq=3,
            nbytes=8,
            data=b"payload!",
            src_phys=1,
            dst_phys=0,
            msg_id=17,
        )
        view = env.copy()
        for field in MessageView.__slots__:
            assert getattr(view, field) == getattr(env, field)


class TestSendRequestOwnership:
    def test_send_requests_hold_no_envelope(self):
        """The eager envelope belongs to the wire/receiver the moment it is
        injected — the request object records scalars only."""
        job = _job()
        handles = []

        def app(mpi):
            if mpi.rank == 0:
                h = yield from mpi.isend(np.ones(1), dest=1, tag=1)
                handles.append(h)
                yield from mpi.wait(h)
            else:
                yield from mpi.recv(source=0, tag=1)

        job.launch(app).run()
        (handle,) = handles
        req = handle.pml_reqs[0]
        assert not hasattr(req, "envelope")
        assert req.done and req.nbytes == 8
