"""The envelope ownership contract: arenas balance, borrows, escape hatches.

PR 3's contract (see :mod:`repro.mpi.pml` and :mod:`repro.core.interpose`):
every envelope has exactly one owner at every point in its lifetime, hooks
receive borrows, and ``retain()``/``copy()`` are the explicit ways to hold
a message past the borrow window.  The harness enforces the zero-leak
property (acquired == released) in the teardown of every crash-free run;
these tests pin the accounting itself, the escape hatches, and the
end-of-run reaping of well-defined leftovers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from repro.mpi.pml import Envelope, MessageView
from tests.conftest import run_app


def _job(protocol="native", n=2, **kwargs):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    return Job(n, cfg=cfg, cluster=cluster_for(n, cfg.degree), **kwargs)


def pingpong(mpi, rounds=10):
    peer = mpi.rank ^ 1
    if peer >= mpi.size:
        return 0
    for r in range(rounds):
        if mpi.rank < peer:
            yield from mpi.send(np.arange(4, dtype=np.float64), dest=peer, tag=r % 3)
            yield from mpi.recv(source=peer, tag=r % 3)
        else:
            yield from mpi.recv(source=peer, tag=r % 3)
            yield from mpi.send(np.arange(4, dtype=np.float64), dest=peer, tag=r % 3)
    return rounds


def anysource_fanin(mpi, rounds=10):
    if mpi.rank == 0:
        total = 0.0
        for _ in range(rounds):
            for _ in range(mpi.size - 1):
                d, _st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                total += float(d[0])
            for dst in range(1, mpi.size):
                yield from mpi.send(np.array([total]), dest=dst, tag=3)
        return total
    acc = 0.0
    for _ in range(rounds):
        yield from mpi.send(np.array([float(mpi.rank)]), dest=0, tag=2)
        d, _ = yield from mpi.recv(source=0, tag=3)
        acc = float(d[0])
    return acc


class TestArenaBalance:
    """Zero leaks: every acquire matched by a release, per job."""

    @pytest.mark.parametrize("protocol", ["native", "sdr", "mirror", "leader", "redmpi"])
    def test_envelopes_and_frames_balance(self, protocol):
        n = 2 if protocol == "native" else 4
        job = _job(protocol, n=n)
        job.launch(anysource_fanin, rounds=8).run()  # run() asserts balance…
        # …and the counters are visible and consistent afterwards:
        env_acquired = sum(p.env_acquired for p in job.pmls.values())
        env_released = sum(p.env_released for p in job.pmls.values())
        assert env_acquired > 0
        assert env_acquired == env_released
        fab = job.fabric.stats()
        assert fab["frames_acquired"] == fab["frames_released"] > 0

    def test_arena_reuse_actually_happens(self):
        """Steady state is allocation-free: far fewer constructions than
        acquisitions once the pools are warm."""
        job = _job("sdr", n=4)
        job.launch(anysource_fanin, rounds=30).run()
        acquired = sum(p.env_acquired for p in job.pmls.values())
        allocated = sum(p.env_allocated for p in job.pmls.values())
        assert allocated < acquired / 5  # >80% of acquisitions recycled

    def test_rendezvous_path_balances(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.zeros(8192), dest=1, tag=1)  # rts/cts/data
            else:
                yield from mpi.recv(source=0, tag=1)

        job = _job()
        job.launch(app).run()
        assert sum(p.env_acquired for p in job.pmls.values()) == sum(
            p.env_released for p in job.pmls.values()
        )

    def test_stats_expose_arena_counters(self):
        job = _job("sdr", n=2)
        res = job.launch(pingpong, rounds=4).run()
        some = next(iter(res.stats.values()))
        for key in ("env_acquired", "env_allocated", "env_released", "env_pool_size"):
            assert key in some
        for key in ("frames_acquired", "frames_allocated", "frames_released"):
            assert key in res.fabric

    def test_unreceived_message_is_reaped(self):
        """A message nobody ever receives parks in the unexpected queue;
        teardown reaps it and the arenas still balance."""

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=9)  # eager: fire&forget
            else:
                yield from mpi.compute(1e-6)  # never posts the receive

        job = _job()
        job.launch(app).run()
        assert sum(p.env_acquired for p in job.pmls.values()) == sum(
            p.env_released for p in job.pmls.values()
        )

    def test_crashy_runs_skip_the_assertion(self):
        """Crashes drop in-flight frames — the balance check must not fire."""
        res = run_app(anysource_fanin, 4, protocol="sdr", crash=(1, 1, 2e-5), rounds=12)
        assert res.runtime > 0  # completed despite the (tolerated) strands


class TestBorrowAndEscapeHatches:
    def test_hook_borrow_is_valid_during_and_recycled_after(self):
        """Inside the hook the envelope is live; after the run the shell
        has been reset (ctx/data dropped) — proof it went back to the arena."""
        job = _job()
        seen = []

        def hook(env, recv):
            seen.append(env)
            assert env.data is not None and env.ctx is not None  # live borrow

        job.pmls[1].on_recv_complete.append(hook)

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(2), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)

        job.launch(app).run()
        (env,) = seen
        assert env.ctx is None and env.data is None  # recycled after the window

    def test_retain_keeps_envelope_out_of_the_arena(self):
        job = _job()
        held = []
        job.pmls[1].on_recv_complete.append(lambda env, recv: held.append(env.retain()))

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.full(3, 7.0), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)

        with pytest.raises(AssertionError, match="envelope arena leak"):
            job.launch(app).run()  # retained => deliberately unbalanced
        (env,) = held
        assert env.data is not None  # still live: retain() protected it
        job.pmls[1].release_env(env)  # balanced now
        assert env.data is None
        assert sum(p.env_acquired for p in job.pmls.values()) == sum(
            p.env_released for p in job.pmls.values()
        )

    def test_copy_returns_immutable_view(self):
        job = _job()
        views = []
        job.pmls[1].on_recv_complete.append(lambda env, recv: views.append(env.copy()))

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.array([1.0, 2.0]), dest=1, tag=4)
            else:
                yield from mpi.recv(source=0, tag=4)

        job.launch(app).run()  # views are arena-independent: still balanced
        (view,) = views
        assert isinstance(view, MessageView)
        assert view.tag == 4 and view.seq == 0 and view.src_rank == 0
        assert view.data is not None  # payload snapshot survives recycling
        with pytest.raises(AttributeError):
            view.tag = 9
        with pytest.raises(AttributeError):
            view.data = None

    def test_view_mirrors_envelope_fields(self):
        env = Envelope(
            kind="eager",
            ctx=("w",),
            src_rank=1,
            tag=2,
            world_src=1,
            world_dst=0,
            seq=3,
            nbytes=8,
            data=b"payload!",
            src_phys=1,
            dst_phys=0,
            msg_id=17,
        )
        view = env.copy()
        for field in MessageView.__slots__:
            assert getattr(view, field) == getattr(env, field)


class TestSendRequestOwnership:
    def test_send_requests_hold_no_envelope(self):
        """The eager envelope belongs to the wire/receiver the moment it is
        injected — the request object records scalars only."""
        job = _job()
        handles = []

        def app(mpi):
            if mpi.rank == 0:
                h = yield from mpi.isend(np.ones(1), dest=1, tag=1)
                handles.append(h)
                yield from mpi.wait(h)
            else:
                yield from mpi.recv(source=0, tag=1)

        job.launch(app).run()
        (handle,) = handles
        req = handle.pml_reqs[0]
        assert not hasattr(req, "envelope")
        assert req.done and req.nbytes == 8
