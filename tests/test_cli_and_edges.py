"""CLI entry points and miscellaneous edge cases."""

import numpy as np
import pytest

from repro.harness.cli import main
from repro.harness.runner import Job, cluster_for
from tests.conftest import run_app


class TestCli:
    def test_fig7_subcommand(self, capsys):
        assert main(["fig7", "--sizes", "1", "1024", "--iters", "2"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7a" in out and "Fig. 7b" in out
        assert "1.67" in out  # native 1-byte anchor

    def test_determinism_positive(self, capsys):
        assert main(["determinism", "--app", "cg", "--ranks", "4", "--replays", "2"]) == 0
        assert "send-deterministic" in capsys.readouterr().out

    def test_determinism_negative_control(self, capsys):
        assert main(["determinism", "--app", "master_worker"]) == 0
        assert "NOT send-deterministic" in capsys.readouterr().out

    def test_determinism_unknown_app(self):
        assert main(["determinism", "--app", "nonexistent"]) == 2

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_campaign_subcommand(self, capsys, tmp_path):
        import json

        artifact = tmp_path / "campaign.json"
        assert main([
            "campaign", "--protocols", "native", "sdr", "--seeds", "2",
            "--json", str(artifact),
        ]) == 0
        out = capsys.readouterr().out
        assert "Fault campaign" in out
        assert "deadlocked" in out  # taxonomy columns rendered
        records = json.loads(artifact.read_text())
        assert len(records) == 4  # 2 seeds x 2 protocols
        assert all(r["invariant_error"] is None for r in records)
        # The artifact is written atomically: no temp residue next to it.
        assert [p.name for p in tmp_path.iterdir()] == ["campaign.json"]

    def test_campaign_rejects_zero_seeds(self, capsys):
        assert main(["campaign", "--seeds", "0"]) == 2
        assert "--seeds must be >= 1" in capsys.readouterr().err


class TestSweepCli:
    ARGS = ["sweep", "--protocols", "native", "sdr", "--ranks", "4",
            "--mixes", "clean", "--seeds", "2"]

    def test_happy_path_with_store_and_report(self, capsys, tmp_path):
        base = str(tmp_path / "run")
        assert main(self.ARGS + ["--workers", "2", "--verify", "2",
                                 "--store", base]) == 0
        out = capsys.readouterr()
        assert "outcomes by config group" in out.out
        assert "verified 2 sampled config(s)" in out.err
        assert (tmp_path / "run.jsonl").exists()
        assert (tmp_path / "run.sqlite").exists()
        # Report-only mode re-renders the same tables from the store.
        assert main(["sweep", "--report", "--store", base]) == 0
        assert "outcomes by config group" in capsys.readouterr().out

    def test_invalid_axis_value_exits_2(self, capsys):
        assert main(["sweep", "--mixes", "cosmic"]) == 2
        assert "invalid sweep matrix" in capsys.readouterr().err
        assert main(["sweep", "--ranks", "1"]) == 2
        assert main(["sweep", "--degrees", "1"]) == 2  # replicated present

    def test_empty_matrix_exits_2(self, capsys):
        assert main(["sweep", "--seeds", "0"]) == 2
        assert "--seeds must be >= 1" in capsys.readouterr().err

    def test_store_collision_exits_2(self, capsys, tmp_path):
        base = str(tmp_path / "run")
        assert main(self.ARGS + ["--store", base]) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--store", base]) == 2
        assert "already exist" in capsys.readouterr().err
        assert main(self.ARGS + ["--store", base, "--overwrite"]) == 0

    def test_report_without_store_exits_2(self, capsys):
        assert main(["sweep", "--report"]) == 2
        assert "--report requires --store" in capsys.readouterr().err

    def test_report_on_missing_store_exits_2(self, capsys, tmp_path):
        assert main(["sweep", "--report", "--store", str(tmp_path / "ghost")]) == 2
        assert "no finalized store" in capsys.readouterr().err

    def test_invariant_violation_exits_1(self, capsys, monkeypatch):
        import repro.harness.sweep as sweep_mod
        from repro.harness.campaign import RunRecord

        def bad_run_case(protocol, seed, cfg=None, shape=None):
            return RunRecord(
                protocol=protocol, seed=seed, outcome="completed",
                mix={}, metrics={}, stranded_by_site={},
                invariant_error="arena imbalance", fingerprint="{}",
            )

        monkeypatch.setattr(sweep_mod, "run_case", bad_run_case)
        assert main(self.ARGS) == 1
        assert "INVARIANT VIOLATION" in capsys.readouterr().err

    def test_worker_crash_exits_1(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_TEST_CRASH", "1")
        assert main(self.ARGS + ["--workers", "2"]) == 1
        assert "lost to worker crashes" in capsys.readouterr().err


class TestJobShapeGuards:
    def test_mismatched_shape_rejected(self):
        from repro.harness.runner import JobShape

        shape = JobShape.build(4)
        with pytest.raises(ValueError, match="shape"):
            Job(8, shape=shape)


class TestComputeNoise:
    def test_noise_stretches_compute(self):
        def app(mpi):
            yield from mpi.compute(1e-3)
            return mpi.wtime()

        quiet = Job(1, cluster=cluster_for(1)).launch(app).run().runtime
        noisy = Job(1, cluster=cluster_for(1, compute_noise=0.5), seed=3).launch(app).run().runtime
        assert quiet == pytest.approx(1e-3)
        assert noisy != quiet

    def test_replica_zero_shares_native_noise_stream(self):
        """rep 0's noise equals the native run's — fair A/B comparisons."""
        from repro.core.config import ReplicationConfig

        def app(mpi):
            yield from mpi.compute(1e-3)
            return mpi.wtime()

        cluster_n = cluster_for(2, 1, compute_noise=0.3)
        native = Job(2, cluster=cluster_n, seed=7).launch(app).run()
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        cluster_r = cluster_for(2, 2, compute_noise=0.3)
        repl = Job(2, cfg=cfg, cluster=cluster_r, seed=7).launch(app).run()
        assert repl.app_results[0] == native.app_results[0]  # same draw
        assert repl.app_results[2] != native.app_results[0]  # rep 1 differs

    def test_negative_compute_rejected(self):
        def app(mpi):
            yield from mpi.compute(-1.0)

        with pytest.raises(Exception):
            run_app(app, 1)


class TestMiscEdges:
    def test_single_rank_collectives(self):
        def app(mpi):
            a = yield from mpi.allreduce(5.0, op="sum")
            b = yield from mpi.bcast(7.0, root=0)
            g = yield from mpi.allgather(9)
            yield from mpi.barrier()
            return a, b, g

        assert run_app(app, 1).app_results[0] == (5.0, 7.0, [9])

    def test_send_to_invalid_rank_rejected(self):
        def app(mpi):
            yield from mpi.send(np.ones(1), dest=99, tag=0)

        with pytest.raises(Exception):
            run_app(app, 2)

    def test_recv_from_invalid_rank_rejected(self):
        def app(mpi):
            yield from mpi.recv(source=99, tag=0)

        with pytest.raises(Exception):
            run_app(app, 2)

    def test_fread_before_any_write_is_empty(self):
        def app(mpi):
            log = yield from mpi.fread("nothing.dat")
            return log

        assert run_app(app, 1).app_results[0] == []

    def test_zero_byte_payload(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(b"", dest=1, tag=1)
            else:
                data, st = yield from mpi.recv(source=0, tag=1)
                return st.nbytes

        assert run_app(app, 2).app_results[1] == 0

    def test_wtime_monotone(self):
        def app(mpi):
            t0 = mpi.wtime()
            yield from mpi.compute(1e-6)
            t1 = mpi.wtime()
            yield from mpi.barrier()
            t2 = mpi.wtime()
            return t0 <= t1 <= t2

        assert all(run_app(app, 3).app_results.values())

    def test_large_tag_values(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=2**30)
            else:
                _, st = yield from mpi.recv(source=0, tag=2**30)
                return st.tag

        assert run_app(app, 2).app_results[1] == 2**30

    def test_stats_surface_complete(self):
        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.send(np.ones(1), dest=1, tag=1)
            else:
                yield from mpi.recv(source=0, tag=1)

        res = run_app(app, 2, protocol="sdr")
        sample = res.stats[0]
        for key in ("app_sends", "app_recvs", "unexpected_count", "acks_sent",
                    "duplicates_dropped", "retained", "resends"):
            assert key in sample
