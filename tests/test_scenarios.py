"""Scenario registry: envelopes, binding, and the NAS campaign wiring.

The registry is the single workload abstraction — the campaign runner,
the sweep orchestrator, ``tools/bench.py`` and the ablation drivers all
resolve names through :func:`get_scenario`.  These tests pin the
registry contract (lookup, loud collisions, build-time envelope checks)
and prove the NAS closed-form expecteds against actual clean runs.
"""

from __future__ import annotations

import pytest

from repro.harness.campaign import CampaignConfig, run_case, sample_faults
from repro.harness.sweep import MIX_PROFILES
from repro.scenarios import (
    ClosedLoopScenario,
    Scenario,
    ScenarioError,
    expected_results,
    get_scenario,
    register,
    scenario_names,
    scenarios,
)
from repro.scenarios.nas import CAMPAIGN_FLOPS_PER_CORE


# ----------------------------------------------------------------- registry
def test_registry_holds_every_migrated_workload():
    names = scenario_names()
    # the three ex-WORKLOADS entries, the bench/ablation kernels, the NAS
    # family, and the open-loop traffic family all resolve here
    for name in (
        "ring", "allreduce", "hpccg",
        "anysource", "collectives",
        "mg", "cg", "ft",
        "traffic-poisson", "traffic-bursty", "traffic-diurnal",
    ):
        assert name in names
    assert names == sorted(names)
    assert [s.name for s in scenarios()] == names


def test_unknown_workload_fails_loudly():
    with pytest.raises(ScenarioError, match="unknown workload 'nbody'"):
        get_scenario("nbody")
    # and the campaign runner surfaces the same build-time error
    with pytest.raises(ScenarioError, match="workload"):
        run_case("sdr", 0, CampaignConfig(workload="nbody"))


def test_registration_collision_is_loud():
    scenario = get_scenario("ring")
    with pytest.raises(ScenarioError, match="already registered"):
        register(scenario)
    # the failed re-registration must not have clobbered the entry
    assert get_scenario("ring") is scenario


# ---------------------------------------------------------------- envelopes
@pytest.mark.parametrize(
    "name, n_ranks, degree, message",
    [
        ("mg", 4, 2, "needs >= 8 ranks"),
        ("cg", 6, 2, "power-of-two"),
        ("cg", 2, 2, "needs >= 4 ranks"),
        ("ring", 1, 2, "needs >= 2 ranks"),
        ("ring", 4, 0, "degree must be >= 1"),
    ],
)
def test_envelopes_reject_invalid_shapes(name, n_ranks, degree, message):
    with pytest.raises(ScenarioError, match=message):
        get_scenario(name).check(n_ranks, degree)


def test_envelopes_accept_valid_shapes():
    get_scenario("mg").check(8, 2)
    get_scenario("cg").check(4, 1)
    get_scenario("ft").check(2, 3)


def test_max_ranks_envelope():
    s = Scenario("tiny", "bounded world", max_ranks=4)
    s.check(4, 1)
    with pytest.raises(ScenarioError, match="supports <= 4 ranks"):
        s.check(5, 1)


def test_respawn_support_is_declared_per_scenario():
    assert get_scenario("ring").supports_respawn
    assert get_scenario("traffic-poisson").supports_respawn
    # the NAS kernels take no state= — the fault sampler must never draw
    # churn/respawn mixes for them
    for name in ("mg", "cg", "ft"):
        assert not get_scenario(name).supports_respawn


def test_fault_sampler_gates_respawn_on_scenario_support():
    cfg = CampaignConfig(p_churn=1.0, p_respawn=1.0)
    sched, _plan, mix = sample_faults(3, cfg, "sdr", respawnable=True)
    assert "churn_ranks" in mix
    assert sched.respawns
    sched2, _plan2, mix2 = sample_faults(3, cfg, "sdr", respawnable=False)
    assert "churn_ranks" not in mix2
    assert not sched2.respawns


# ------------------------------------------------------------------ binding
def test_closed_loop_bind_defaults_to_steps_kwarg():
    calls = []

    def factory(mpi, steps=0):
        calls.append(steps)
        yield

    s = ClosedLoopScenario("probe", "test double", factory, expected_results)
    cfg = CampaignConfig(steps=7)
    bound = s.bind(cfg, seed=0)
    assert bound.factory is factory
    assert bound.kwargs == {"steps": 7}
    assert bound.expected == expected_results(cfg)
    assert bound.traffic is None


def test_nas_binding_models_campaign_scale_cores():
    cfg = CampaignConfig(n_ranks=8)
    for name in ("mg", "cg", "ft"):
        bound = get_scenario(name).bind(cfg, seed=0)
        assert bound.kwargs["klass"] == "S"
        assert bound.kwargs["iters"] == cfg.steps
        assert bound.kwargs["flops_per_core"] == CAMPAIGN_FLOPS_PER_CORE
    # ft additionally scales its transpose payloads to fit the horizon
    assert 0 < get_scenario("ft").bind(cfg, seed=0).kwargs["payload_scale"] < 1


@pytest.mark.parametrize(
    "name, n_ranks",
    [("mg", 8), ("cg", 4), ("ft", 4)],
)
def test_nas_expecteds_match_clean_runs(name, n_ranks):
    """The closed-form expected_fn is ground truth: a fault-free run under
    native and a replicated protocol must classify as completed, which
    requires every rank's app result to equal the expected value exactly."""
    cfg = CampaignConfig(workload=name, n_ranks=n_ranks, **MIX_PROFILES["clean"])
    for protocol in ("native", "sdr"):
        rec = run_case(protocol, 0, cfg)
        assert rec.outcome == "completed", (name, protocol, rec.metrics)
        assert rec.invariant_error is None


def test_nas_envelopes_enforced_at_build_time():
    cfg = CampaignConfig(workload="mg", n_ranks=4)
    with pytest.raises(ScenarioError, match="needs >= 8 ranks"):
        run_case("sdr", 0, cfg)
