"""Advanced fault scenarios: r=3, repeated crashes, crash-after-recovery.

These push the protocol past the paper's evaluated envelope (the protocol
is specified for any r ≥ 2; only *recovery* is r=2-specific) and validate
that a respawned replica is a first-class citizen — including being able
to act as substitute when the original survivor later dies.
"""

import numpy as np

from repro.core.config import ReplicationConfig
from repro.core.recovery import RecoveryManager
from repro.harness.runner import Job, cluster_for


class St:
    def __init__(self):
        self.it = 0
        self.acc = 0.0


def exchange(mpi, iters=80, state=None):
    st = state or St()
    mpi.register_state(st)
    while st.it < iters:
        it = st.it
        if mpi.rank == 1:
            yield from mpi.send(np.array([float(it)]), dest=0, tag=1)
            got, _ = yield from mpi.recv(source=0, tag=2)
        else:
            got, _ = yield from mpi.recv(source=1, tag=1)
            yield from mpi.send(np.array([2.0 * it]), dest=1, tag=2)
        st.acc += float(got[0])
        st.it += 1
        yield from mpi.recovery_point()
        yield from mpi.compute(1e-6)
    return st.acc


def _want(iters=80):
    return {0: sum(float(i) for i in range(iters)), 1: sum(2.0 * i for i in range(iters))}


def _check(job, res, iters=80):
    want = _want(iters)
    for proc, val in res.app_results.items():
        assert val == want[job.rmap.rank_of(proc)], (proc, val)


class TestTripleReplication:
    def _job(self, n_ranks=2):
        cfg = ReplicationConfig(degree=3, protocol="sdr")
        return Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, 3, cores_per_node=1))

    def test_failure_free_r3(self):
        job = self._job().launch(exchange)
        res = job.run()
        assert len(res.app_results) == 6
        _check(job, res)

    def test_single_crash_r3(self):
        job = self._job().launch(exchange)
        job.crash(1, 1, at=40e-6)
        res = job.run()
        assert len(res.app_results) == 5
        _check(job, res)

    def test_double_crash_same_rank_r3(self):
        """Two of the three replicas of rank 1 die; the last one carries
        both bereaved worlds."""
        job = self._job().launch(exchange)
        job.crash(1, 1, at=40e-6)
        job.crash(1, 2, at=90e-6)
        res = job.run()
        assert len(res.app_results) == 4
        _check(job, res)

    def test_double_crash_substitute_dies_r3(self):
        """The elected substitute itself dies: re-election must hand its
        adopted duties (and the original victim's) to the next survivor."""
        job = self._job().launch(exchange)
        job.crash(1, 0, at=40e-6)  # replica 0 dies -> rep 1 elected
        job.crash(1, 1, at=90e-6)  # the substitute dies -> rep 2 takes both
        res = job.run()
        assert len(res.app_results) == 4
        _check(job, res)
        survivor = job.protocols[job.rmap.phys(1, 2)]
        assert survivor.substitute == {0: 2, 1: 2, 2: 2}

    def test_crashes_across_ranks_r3(self):
        job = self._job().launch(exchange)
        job.crash(0, 2, at=30e-6)
        job.crash(1, 0, at=60e-6)
        job.crash(0, 1, at=100e-6)
        res = job.run()
        assert len(res.app_results) == 3
        _check(job, res)

    def test_mirror_r3_with_crashes(self):
        cfg = ReplicationConfig(degree=3, protocol="mirror")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 3, cores_per_node=1))
        job.launch(exchange)
        job.crash(1, 0, at=40e-6)
        job.crash(0, 2, at=80e-6)
        res = job.run()
        _check(job, res)


class TestCrashAfterRecovery:
    def test_recovered_replica_becomes_substitute(self):
        """Crash p¹₁ → respawn it → crash p⁰₁ (the original survivor).

        The respawned replica must now act as substitute using its cloned
        protocol state: retention, sequence cursors, the lot.  This is the
        strongest end-to-end check of §3.4's state transfer."""
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        job.launch(exchange)
        manager = RecoveryManager(job)
        job.crash(1, 1, at=40e-6)
        job.sim.call_at(60e-6, lambda: manager.request_respawn(1))
        job.crash(1, 0, at=150e-6)  # later, the original survivor dies
        res = job.run()
        assert manager.respawns_done == [job.rmap.phys(1, 1)]
        # rank 1 is carried solely by the respawned replica at the end
        _check(job, res)
        assert job.rmap.phys(1, 1) in res.app_results

    def test_two_sequential_recoveries(self):
        """Crash/respawn the same rank twice."""
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        job.launch(exchange, iters=120)
        manager = RecoveryManager(job)
        job.crash(1, 1, at=40e-6)
        job.sim.call_at(60e-6, lambda: manager.request_respawn(1))

        def second_round():
            job.crash(1, 1, at=job.sim.now)  # kill the respawned one too
            job.sim.call_at(job.sim.now + 30e-6, lambda: manager.request_respawn(1))

        job.sim.call_at(200e-6, second_round)
        res = job.run()
        assert len(manager.respawns_done) == 2
        _check(job, res, iters=120)

    def test_recovery_of_different_ranks(self):
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        job.launch(exchange)
        manager = RecoveryManager(job)
        job.crash(1, 1, at=40e-6)
        job.crash(0, 0, at=50e-6)
        job.sim.call_at(70e-6, lambda: manager.request_respawn(1))
        job.sim.call_at(80e-6, lambda: manager.request_respawn(0))
        res = job.run()
        assert sorted(manager.respawns_done) == [job.rmap.phys(0, 0), job.rmap.phys(1, 1)]
        assert len(res.app_results) == 4
        _check(job, res)


class TestCollectivesUnderRepeatedFailure:
    def test_allreduce_app_with_r3_and_crashes(self):
        def app(mpi, iters=40):
            acc = 0.0
            for it in range(iters):
                acc = yield from mpi.allreduce(float(mpi.rank + it), op="sum")
                yield from mpi.compute(1e-6)
            return acc

        cfg = ReplicationConfig(degree=3, protocol="sdr")
        job = Job(4, cfg=cfg, cluster=cluster_for(4, 3))
        job.launch(app)
        job.crash(0, 1, at=50e-6)
        job.crash(2, 2, at=120e-6)
        res = job.run()
        want = sum(r + 39 for r in range(4))
        assert all(v == want for v in res.app_results.values())
