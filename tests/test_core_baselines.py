"""Comparator protocols: mirror (MR-MPI), leader-based (rMPI), redMPI."""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for


def _job(protocol, n_ranks=2, degree=2, **kwargs):
    cfg = ReplicationConfig(degree=degree, protocol=protocol, **kwargs)
    return Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, degree, cores_per_node=1))


def stream(mpi, n=10):
    if mpi.rank == 0:
        for i in range(n):
            yield from mpi.send(np.array([float(i)]), dest=1, tag=1)
    else:
        out = []
        for _ in range(n):
            d, _ = yield from mpi.recv(source=0, tag=1)
            out.append(float(d[0]))
        return out


class TestMirror:
    def test_correct_delivery_with_duplicates_dropped(self):
        job = _job("mirror")
        res = job.launch(stream, n=10).run()
        for proc in (1, 3):
            assert res.app_results[proc] == [float(i) for i in range(10)]
        # each receiver saw r copies and dropped the extras; the very last
        # duplicates may still be undrained when the app exits
        assert 18 <= res.stat_total("duplicates_dropped") <= 20

    def test_message_complexity_is_q_r_squared(self):
        """§2.4: mirror sends O(q·r²) application messages vs parallel O(q·r)."""
        mirror = _job("mirror").launch(stream, n=10).run()
        sdr = _job("sdr").launch(stream, n=10).run()
        mirror_data = mirror.fabric["by_kind"].get("eager", 0)
        sdr_data = sdr.fabric["by_kind"].get("eager", 0)
        assert mirror_data == 40  # 10 x r^2
        assert sdr_data == 20  # 10 x r
        # mirror moves r x the application payload bytes (acks are tiny in
        # comparison once payloads are non-trivial — the ablation bench
        # shows this at realistic sizes)

    def test_no_acks_in_mirror(self):
        res = _job("mirror").launch(stream, n=5).run()
        assert res.stat_total("acks_sent") == 0

    def test_mirror_survives_crash_without_resend(self):
        def app(mpi, iters=40):
            total = 0.0
            for it in range(iters):
                if mpi.rank == 0:
                    yield from mpi.send(np.array([float(it)]), dest=1, tag=1)
                else:
                    d, _ = yield from mpi.recv(source=0, tag=1)
                    total += float(d[0])
                yield from mpi.compute(1e-6)
            return total

        job = _job("mirror")
        job.launch(app)
        job.crash(0, 1, at=40e-6)
        res = job.run()
        want = sum(range(40))
        for proc in (1, 3):
            assert res.app_results[proc] == want

    def test_triple_replication(self):
        job = _job("mirror", degree=3)
        res = job.launch(stream, n=4).run()
        assert res.fabric["by_kind"].get("eager", 0) == 4 * 9  # q * r^2


def anysource_app(mpi, rounds=6):
    """rank 0 collects from everyone with ANY_SOURCE then answers."""
    if mpi.rank == 0:
        total = 0.0
        for r in range(rounds):
            for _ in range(mpi.size - 1):
                d, st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                total += float(d[0])
            for dst in range(1, mpi.size):
                yield from mpi.send(np.array([total]), dest=dst, tag=3)
        return total
    acc = 0.0
    for r in range(rounds):
        yield from mpi.send(np.array([float(mpi.rank * (r + 1))]), dest=0, tag=2)
        d, _ = yield from mpi.recv(source=0, tag=3)
        acc = float(d[0])
    return acc


class TestLeader:
    def test_anysource_correctness(self):
        job = _job("leader", n_ranks=3)
        res = job.launch(anysource_app).run()
        vals = {res.app_results[p] for p in res.app_results}
        assert len(vals) == 1  # every replica of every rank agrees

    def test_leader_broadcasts_decisions(self):
        job = _job("leader", n_ranks=3)
        res = job.launch(anysource_app).run()
        # 6 rounds x 2 anonymous receives at rank 0's leader
        decisions = res.stat_total("decisions_sent")
        assert decisions == 12

    def test_followers_defer_and_pile_up_unexpected(self):
        """§3.1: followers post receives late -> unexpected messages."""
        leader = _job("leader", n_ranks=3).launch(anysource_app).run()
        sdr = _job("sdr", n_ranks=3).launch(anysource_app).run()
        assert leader.stat_total("unexpected_count") > sdr.stat_total("unexpected_count")

    def test_leader_slower_than_sdr_on_anysource(self):
        """The Fig. 2 critical-path argument, as runtimes."""
        leader = _job("leader", n_ranks=3).launch(anysource_app, rounds=20).run()
        sdr = _job("sdr", n_ranks=3).launch(anysource_app, rounds=20).run()
        assert leader.runtime > sdr.runtime

    def test_specific_source_takes_fast_path(self):
        job = _job("leader")
        res = job.launch(stream, n=8).run()
        assert res.app_results[1] == [float(i) for i in range(8)]
        assert res.stat_total("decisions_sent") == 0

    def test_deterministic_app_same_cost_as_sdr(self):
        leader = _job("leader").launch(stream, n=20).run()
        sdr = _job("sdr").launch(stream, n=20).run()
        assert leader.runtime == pytest.approx(sdr.runtime, rel=1e-9)


class TestRedMpi:
    def test_hashes_flow_and_no_sdc_on_clean_run(self):
        job = _job("redmpi")
        res = job.launch(stream, n=10).run()
        assert res.stat_total("hashes_sent") == 20  # one per message per replica
        assert res.stat_total("sdc_detected") == 0

    def test_injected_corruption_detected_once(self):
        job = _job("redmpi")
        job.launch(stream, n=10)
        job.protocols[job.rmap.phys(0, 1)].corrupt_next_send()
        res = job.run()
        assert res.stat_total("sdc_detected") == 1
        victim = job.protocols[job.rmap.phys(1, 0)]  # p^0_1 compares clean data vs bad hash
        assert len(victim.sdc_events) == 1
        assert victim.sdc_events[0].seq == 0

    def test_multiple_corruptions_counted(self):
        job = _job("redmpi")
        job.launch(stream, n=10)
        job.protocols[job.rmap.phys(0, 0)].corrupt_next_send(3)
        res = job.run()
        assert res.stat_total("sdc_detected") == 3

    def test_no_acks_no_retention(self):
        res = _job("redmpi").launch(stream, n=5).run()
        assert res.stat_total("acks_sent") == 0

    def test_anysource_uses_leader_decisions(self):
        job = _job("redmpi", n_ranks=3)
        res = job.launch(anysource_app).run()
        assert res.stat_total("decisions_sent") > 0
        vals = {res.app_results[p] for p in res.app_results}
        assert len(vals) == 1

    def test_phantom_payload_hashing_consistent(self):
        from repro.mpi.datatypes import Phantom

        def phantom_stream(mpi, n=6):
            if mpi.rank == 0:
                for i in range(n):
                    yield from mpi.send(Phantom(64), dest=1, tag=1)
            else:
                for _ in range(n):
                    yield from mpi.recv(source=0, tag=1)

        res = _job("redmpi").launch(phantom_stream).run()
        assert res.stat_total("sdc_detected") == 0
