"""Crash/failover scenarios (Algorithm 1 lines 18-35, Fig. 3)."""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.harness.faults import CrashSchedule, CrashSpec
from repro.harness.runner import Job, cluster_for


def exchange_loop(mpi, iters=50, compute=1e-6):
    """Fig. 3's pattern: rank 1 sends, rank 0 answers, repeatedly."""
    total = 0.0
    for it in range(iters):
        if mpi.rank == 1:
            yield from mpi.send(np.array([float(it)]), dest=0, tag=1)
            got, _ = yield from mpi.recv(source=0, tag=2)
        else:
            got, _ = yield from mpi.recv(source=1, tag=1)
            yield from mpi.send(np.array([2.0 * it]), dest=1, tag=2)
        total += float(got[0])
        yield from mpi.compute(compute)
    return total


def _expected(iters=50):
    return {0: sum(float(i) for i in range(iters)), 1: sum(2.0 * i for i in range(iters))}


def _run_with_crashes(crashes, iters=50, n_ranks=2):
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    job = Job(n_ranks, cfg=cfg, cluster=cluster_for(n_ranks, 2, cores_per_node=1))
    job.launch(exchange_loop, iters=iters)
    for rank, rep, at in crashes:
        job.crash(rank, rep, at=at)
    return job, job.run()


class TestFig3:
    @pytest.mark.parametrize("crash_at", [10e-6, 60e-6, 120e-6])
    def test_single_crash_application_completes_correctly(self, crash_at):
        job, res = _run_with_crashes([(1, 1, crash_at)])
        want = _expected()
        for proc, val in res.app_results.items():
            assert val == want[job.rmap.rank_of(proc)]
        # the crashed process did not finish
        assert job.rmap.phys(1, 1) not in res.app_results
        assert len(res.app_results) == 3

    def test_substitute_resends_unacked_messages(self):
        job, res = _run_with_crashes([(1, 1, 60e-6)])
        # p^0_1 must have resent whatever p^1_0 was missing
        sub = job.protocols[job.rmap.phys(1, 0)]
        assert sub.failovers_handled >= 1
        assert res.stat_total("resends") >= 1

    def test_survivor_stops_sending_to_dead_replica(self):
        job, res = _run_with_crashes([(1, 1, 60e-6)])
        peer = job.protocols[job.rmap.phys(0, 1)]  # p^1_0
        dead = job.rmap.phys(1, 1)
        assert dead not in peer.physical_dests.get(1, [])
        assert peer.physical_src[1] == job.rmap.phys(1, 0)

    def test_substitute_adopts_bereaved_destinations(self):
        job, res = _run_with_crashes([(1, 1, 60e-6)])
        sub = job.protocols[job.rmap.phys(1, 0)]  # p^0_1 elected
        assert sub.substitute[1] == 0
        # it now also sends to p^1_0 (the bereaved world-1 peer)
        assert job.rmap.phys(0, 1) in sub.physical_dests.get(0, [])

    def test_crash_of_replica_zero(self):
        """Election must pick replica 1 when replica 0 dies."""
        job, res = _run_with_crashes([(1, 0, 60e-6)])
        want = _expected()
        for proc, val in res.app_results.items():
            assert val == want[job.rmap.rank_of(proc)]
        survivor = job.protocols[job.rmap.phys(1, 1)]
        assert survivor.substitute[0] == 1

    def test_two_crashes_on_different_ranks(self):
        job, res = _run_with_crashes([(1, 1, 40e-6), (0, 0, 90e-6)])
        want = _expected()
        for proc, val in res.app_results.items():
            assert val == want[job.rmap.rank_of(proc)]
        assert len(res.app_results) == 2  # one survivor per rank

    def test_crash_during_rendezvous(self):
        """Large (rendezvous) messages in flight toward the dead process
        must be cancelled, not wedge the sender."""

        def app(mpi, iters=10):
            big = np.zeros(8192)  # 64 KiB > eager limit
            for it in range(iters):
                if mpi.rank == 1:
                    yield from mpi.send(big, dest=0, tag=1)
                    yield from mpi.recv(source=0, tag=2)
                else:
                    yield from mpi.recv(source=1, tag=1)
                    yield from mpi.send(big, dest=1, tag=2)
            return it

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        job.launch(app)
        job.crash(1, 1, at=100e-6)
        res = job.run()
        assert all(v == 9 for v in res.app_results.values())


class TestCollectivesUnderFailure:
    def test_allreduce_survives_replica_crash(self):
        def app(mpi, iters=30):
            acc = 0.0
            for it in range(iters):
                acc = yield from mpi.allreduce(float(mpi.rank + it), op="sum")
                yield from mpi.compute(2e-6)
            return acc

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(4, cfg=cfg, cluster=cluster_for(4, 2))
        job.launch(app)
        job.crash(2, 1, at=80e-6)
        res = job.run()
        want = sum(r + 29 for r in range(4))
        assert all(v == want for v in res.app_results.values())

    def test_anysource_app_survives_crash(self):
        def app(mpi, rounds=20):
            total = 0.0
            for r in range(rounds):
                if mpi.rank == 0:
                    for _ in range(mpi.size - 1):
                        d, st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=3)
                        total += float(d[0])
                    for dst in range(1, mpi.size):
                        yield from mpi.send(np.array([total]), dest=dst, tag=4)
                else:
                    yield from mpi.send(np.array([float(mpi.rank)]), dest=0, tag=3)
                    d, _ = yield from mpi.recv(source=0, tag=4)
                    total = float(d[0])
            return total

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(3, cfg=cfg, cluster=cluster_for(3, 2))
        job.launch(app)
        job.crash(0, 1, at=100e-6)
        res = job.run()
        vals = set(res.app_results.values())
        assert len(vals) == 1  # all survivors agree


class TestFaultSchedule:
    def test_schedule_applies_all_crashes(self):
        sched = CrashSchedule().add(1, 1, 40e-6).add(0, 0, 90e-6)
        assert len(sched) == 2
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        job.launch(exchange_loop, iters=50)
        sched.apply(job)
        res = job.run()
        want = _expected()
        for proc, val in res.app_results.items():
            assert val == want[job.rmap.rank_of(proc)]

    def test_crashspec_is_frozen(self):
        spec = CrashSpec(1, 1, 2.0)
        with pytest.raises(Exception):
            spec.rank = 2  # type: ignore[misc]
