"""Open-loop traffic engine: determinism, accounting balance, goldens.

Three contracts pinned here:

* **traffic-off compatibility** — the scenario-registry refactor and the
  ``JobResult`` request counters must leave every closed-loop run
  byte-identical: the ``GOLDEN_CLOSED_LOOP`` fingerprints below were
  captured on the pre-refactor tree and must reproduce forever;
* **traffic-on determinism** — arrival plans, admission, and the whole
  run fingerprint are pure functions of the seed, byte-identical between
  serial and pooled sweep execution, under fault mixes included;
* **zero-leak request accounting** — ``offered == admitted + rejected``
  and ``completed + lost == admitted`` on every run, audited exactly like
  the arena balance.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.harness.campaign import CampaignConfig, run_case
from repro.harness.sweep import MIX_PROFILES, SweepSpec, run_sweep
from repro.sim.traffic import (
    ARRIVAL_PROCESSES,
    TrafficBook,
    TrafficConfig,
    TrafficError,
    build_plans,
    expected_traffic_results,
    scaled_config,
)

# ------------------------------------------------------- golden traffic-off
#: (protocol, seed, workload, mix) -> run_case fingerprint, captured before
#: the scenario registry and the traffic engine landed.  Byte-identity here
#: is the "traffic defaults off" acceptance criterion.
GOLDEN_CLOSED_LOOP = {
    ("sdr", 1, "ring", "full"): '{"bytes":3184,"frames":164,"metrics":{"crashes":1,"detection_latency_max":5.665582323543048e-05,"duplicates_dropped":5,"events":873,"false_suspicions":1,"fault_delays":0,"fault_drops":0,"fault_dups":4,"lost_ranks":[],"notify_drops":1,"resends":0,"runtime":0.002,"speculative_failovers":7,"stranded_envs":4,"stranded_frames":0,"unfinished":7},"outcome":"deadlocked","protocol":"sdr","seed":1,"sites":{"abandoned_pipeline":{"envs":1,"frames":0},"reorder_reap":{"envs":3,"frames":0}}}',  # noqa: E501
    ("native", 0, "ring", "full"): '{"bytes":392,"frames":49,"metrics":{"crashes":1,"detection_latency_max":5.8570862795929784e-05,"duplicates_dropped":0,"events":264,"false_suspicions":0,"fault_delays":9,"fault_drops":0,"fault_dups":1,"lost_ranks":[0],"notify_drops":0,"resends":0,"runtime":2.7700283702063594e-05,"speculative_failovers":0,"stranded_envs":0,"stranded_frames":0,"unfinished":0},"outcome":"failed","protocol":"native","seed":0,"sites":{}}',  # noqa: E501
    ("mirror", 2, "allreduce", "crash"): '{"bytes":2824,"frames":353,"metrics":{"crashes":1,"detection_latency_max":6.586913933074988e-05,"duplicates_dropped":166,"events":1232,"false_suspicions":0,"fault_delays":0,"fault_drops":0,"fault_dups":0,"lost_ranks":[],"notify_drops":2,"resends":0,"runtime":3.6181199999999965e-05,"speculative_failovers":0,"stranded_envs":2,"stranded_frames":2,"unfinished":0},"outcome":"degraded","protocol":"mirror","seed":2,"sites":{"dead_endpoint":{"envs":1,"frames":1},"inbox_clear":{"envs":1,"frames":1}}}',  # noqa: E501
    ("redmpi", 3, "hpccg", "network"): '{"bytes":16896,"frames":1248,"metrics":{"crashes":0,"detection_latency_max":0.0,"duplicates_dropped":0,"events":3910,"false_suspicions":0,"fault_delays":0,"fault_drops":0,"fault_dups":0,"lost_ranks":[],"notify_drops":0,"resends":0,"runtime":9.307119999999979e-05,"speculative_failovers":0,"stranded_envs":0,"stranded_frames":0,"unfinished":0},"outcome":"completed","protocol":"redmpi","seed":3,"sites":{}}',  # noqa: E501
    ("leader", 4, "allreduce", "clean"): '{"bytes":7680,"frames":384,"metrics":{"crashes":0,"detection_latency_max":0.0,"duplicates_dropped":0,"events":1950,"false_suspicions":0,"fault_delays":0,"fault_drops":0,"fault_dups":0,"lost_ranks":[],"notify_drops":0,"resends":0,"runtime":7.88447999999999e-05,"speculative_failovers":0,"stranded_envs":0,"stranded_frames":0,"unfinished":0},"outcome":"completed","protocol":"leader","seed":4,"sites":{}}',  # noqa: E501
}


@pytest.mark.parametrize("case", sorted(GOLDEN_CLOSED_LOOP))
def test_closed_loop_fingerprints_match_pre_refactor_goldens(case):
    protocol, seed, workload, mix = case
    cfg = CampaignConfig(workload=workload, **MIX_PROFILES[mix])
    rec = run_case(protocol, seed, cfg)
    assert rec.fingerprint == GOLDEN_CLOSED_LOOP[case]
    assert rec.invariant_error is None
    # and the fingerprint never grew request keys while traffic is off
    assert "requests_offered" not in rec.metrics


# ------------------------------------------------------------ plan sampling
@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_ranks=st.integers(min_value=1, max_value=8),
    process=st.sampled_from(ARRIVAL_PROCESSES),
    capacity=st.integers(min_value=1, max_value=20),
)
def test_plans_are_seed_deterministic_and_balanced(seed, n_ranks, process, capacity):
    cfg = TrafficConfig(process=process, queue_capacity=capacity, epochs=6)
    a = build_plans(cfg, n_ranks, seed)
    b = build_plans(cfg, n_ranks, seed)
    assert a == b  # pure function of (cfg, n_ranks, seed)
    for plan in a:
        assert len(plan.offered) == cfg.epochs
        for o, adm, rej in zip(plan.offered, plan.admitted, plan.rejected):
            assert adm == min(o, capacity)
            assert o == adm + rej
            assert rej >= 0


def test_adding_clients_never_shifts_existing_plans():
    """Per-client RNG streams: rank r's plan is independent of world size."""
    cfg = TrafficConfig(epochs=6)
    small = build_plans(cfg, 2, seed=7)
    large = build_plans(cfg, 6, seed=7)
    assert large[:2] == small


@settings(max_examples=50, deadline=None)
@given(
    process=st.sampled_from(ARRIVAL_PROCESSES),
    t=st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
)
def test_peak_rate_bounds_instantaneous_rate(process, t):
    cfg = TrafficConfig(process=process)
    assert cfg.rate_at(t) <= cfg.peak_rate() * (1 + 1e-12)
    assert cfg.rate_at(t) >= 0.0


def test_bursty_profile_preserves_mean_rate():
    cfg = TrafficConfig(process="bursty")
    on, off = cfg._burst_rates()
    assert on == pytest.approx(cfg.burst_ratio * off)
    mean = cfg.burst_duty * on + (1.0 - cfg.burst_duty) * off
    assert mean == pytest.approx(cfg.rate)


@pytest.mark.parametrize(
    "bad",
    [
        dict(process="fractal"),
        dict(rate=0.0),
        dict(epoch=-1e-6),
        dict(epochs=0),
        dict(queue_capacity=0),
        dict(skew_sigma=-1.0),
        dict(burst_duty=1.0),
        dict(burst_ratio=0.5),
        dict(diurnal_amplitude=1.0),
    ],
)
def test_invalid_traffic_config_rejected(bad):
    with pytest.raises(TrafficError):
        TrafficConfig(**bad).validate()


def test_scaled_config_fits_campaign_grid():
    base = TrafficConfig()
    cfg = scaled_config(base, steps=10, active=50e-6)
    assert cfg.epochs == 10
    assert cfg.epoch == pytest.approx(5e-6)
    with pytest.raises(TrafficError):
        scaled_config(base, steps=0, active=50e-6)


# ------------------------------------------------------------- request book
def test_book_commit_is_monotone_and_idempotent():
    plans = build_plans(TrafficConfig(epochs=4), 2, seed=0)
    book = TrafficBook(plans)
    book.commit(0, 2)
    book.commit(0, 1)  # a recovery fork replaying an older epoch
    book.commit(0, 2)  # a replica repeating the commit
    assert book.committed_epochs(0) == 2
    t = book.totals()
    assert t["requests_completed"] == sum(plans[0].admitted[:2])
    book.audit()


def test_expected_traffic_results_match_clean_run():
    cfg = CampaignConfig(workload="traffic-poisson", **MIX_PROFILES["clean"])
    for protocol in ("native", "sdr"):
        rec = run_case(protocol, 3, cfg)
        assert rec.outcome == "completed"  # app results matched bound.expected
        assert rec.invariant_error is None
        assert rec.metrics["requests_lost"] == 0
        assert rec.metrics["requests_completed"] == rec.metrics["requests_admitted"]


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=500),
    protocol=st.sampled_from(("native", "sdr", "mirror", "leader", "redmpi")),
    mix=st.sampled_from(("clean", "crash", "network", "full")),
    workload=st.sampled_from(("traffic-poisson", "traffic-bursty", "traffic-diurnal")),
)
def test_request_accounting_balances_under_fault_mixes(seed, protocol, mix, workload):
    cfg = CampaignConfig(workload=workload, **MIX_PROFILES[mix])
    rec = run_case(protocol, seed, cfg)
    assert rec.invariant_error is None  # arena + traffic-book audits clean
    m = rec.metrics
    assert m["requests_offered"] == m["requests_admitted"] + m["requests_rejected"]
    assert m["requests_completed"] + m["requests_lost"] == m["requests_admitted"]
    assert m["requests_lost"] >= 0
    # loss needs a cause: a clean mix never loses admitted requests
    if mix == "clean":
        assert m["requests_lost"] == 0


@settings(max_examples=6, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=200),
    protocol=st.sampled_from(("native", "sdr", "mirror", "leader", "redmpi")),
    mix=st.sampled_from(("clean", "full")),
)
def test_traffic_fingerprint_reproducible_from_seed(seed, protocol, mix):
    cfg = CampaignConfig(workload="traffic-poisson", **MIX_PROFILES[mix])
    assert run_case(protocol, seed, cfg).fingerprint == run_case(protocol, seed, cfg).fingerprint


def test_traffic_sweep_serial_vs_pooled_byte_identical():
    """The sweep determinism contract extends to open-loop runs, fault
    mixes included: every config fingerprint is byte-identical whether the
    matrix ran serially or across a worker pool."""
    spec = SweepSpec(
        protocols=("native", "sdr", "mirror"),
        workloads=("traffic-poisson", "traffic-bursty"),
        mixes=("clean", "full"),
        seeds=(0, 1),
    )
    serial = run_sweep(spec, workers=1)
    pooled = run_sweep(spec, workers=3)
    assert serial.fingerprints == pooled.fingerprints
    assert all(f for f in serial.fingerprints)
    assert not serial.violations and not pooled.violations
    # and the request counters rode into the sweep records
    for rec in serial.records:
        assert "requests_offered" in rec["metrics"]


def test_expected_results_are_global_admitted_totals():
    plans = build_plans(TrafficConfig(epochs=5), 3, seed=11)
    expected = expected_traffic_results(plans)
    want = float(sum(sum(p.admitted) for p in plans))
    assert set(expected) == {0, 1, 2}
    assert all(v == want for v in expected.values())
