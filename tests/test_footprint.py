"""The flyweight footprint contract (PR 5).

Everything immutable and identical across a job's simulated processes is
allocated once per :class:`~repro.harness.runner.Job` and shared — the
world communicator's member tuple and rank map, the fabric's
:class:`~repro.network.fabric.CostTable` rows, the protocols'
:class:`~repro.core.replicated.ProtocolShared` config — while the
per-process residue is slotted and lazy.  These tests pin three things:

* **equivalence** — ``Job(shared_state=False)`` keeps the seed-shaped
  private-copies construction as the executable spec, and the shared
  engine must produce bit-identical fingerprints across all five
  protocols, crash-free and crashy;
* **budget** — a tracemalloc-measured bytes-per-process ceiling at the
  paper tier, with generous headroom (the seed construction was ~42 KB
  per process; the flyweight engine is ~4 KB — the budget catches a
  regression back toward per-proc copies, not allocator noise);
* **attribution & guard** — the strand-attribution satellite
  (``JobResult.stranded_by_site``) reports per-mechanism losses, and the
  ``incoming_filter`` ownership guard turns a silently-stranding custom
  filter into a loud, named failure.
"""

from __future__ import annotations

import tracemalloc

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.core.interpose import set_filter_guard
from repro.core.recovery import RecoveryManager
from repro.core.sdr import SdrProtocol
from repro.harness.runner import Job, _PROTOCOL_CLASSES, cluster_for
from repro.mpi.datatypes import Phantom
from repro.mpi.errors import DeadlockError

PROTOCOLS = ["native", "sdr", "mirror", "leader", "redmpi"]


def _job(protocol="native", n=2, **kwargs):
    if protocol == "native":
        cfg = ReplicationConfig(degree=1, protocol="native")
    else:
        cfg = ReplicationConfig(degree=2, protocol=protocol)
    return Job(n, cfg=cfg, cluster=cluster_for(n, cfg.degree), **kwargs)


def mixed_traffic(mpi, rounds=4, nbytes=65536):
    """Eager p2p + ANY_SOURCE + rendezvous + collectives: every path the
    shared state could possibly influence."""
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    acc = 0.0
    for r in range(rounds):
        yield from mpi.sendrecv(Phantom(nbytes), dest=right, source=left, sendtag=1)
        if mpi.rank == 0:
            for _ in range(mpi.size - 1):
                d, _st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                acc += float(d[0])
        else:
            yield from mpi.send(np.array([float(mpi.rank + r)]), dest=0, tag=2)
        acc += float((yield from mpi.allreduce(float(mpi.rank), op="sum")))
        yield from mpi.compute(1e-6)
    return acc


def _norm(value):
    if isinstance(value, np.ndarray):
        return ("ndarray", value.dtype.str, value.tolist())
    if isinstance(value, (list, tuple)):
        return [_norm(v) for v in value]
    return value


def _fingerprint(res):
    return {
        "results": {proc: _norm(v) for proc, v in sorted(res.app_results.items())},
        "runtime": repr(res.runtime),
        "finish": {p: repr(t) for p, t in sorted(res.finish_times.items())},
        "events": res.events,
        "frames": res.fabric["frames"],
        "bytes": res.fabric["bytes"],
        "by_kind": dict(sorted(res.fabric["by_kind"].items())),
        "unexpected": res.stat_total("unexpected_count"),
        "acks": res.stat_total("acks_sent"),
        "stranded": dict(sorted(res.stranded_by_site.items())),
    }


class TestSharedStateEquivalence:
    """Shared-config stacks ≡ seed-shaped per-proc construction."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_crash_free_fingerprints_identical(self, protocol):
        def run(shared):
            job = _job(protocol, n=4, shared_state=shared)
            return job.launch(mixed_traffic, rounds=3).run()

        assert _fingerprint(run(True)) == _fingerprint(run(False)), (
            f"shared-state engine diverged from per-proc spec ({protocol})"
        )

    @pytest.mark.parametrize("protocol", ["sdr", "mirror", "leader"])
    @pytest.mark.parametrize("crash_at", [2e-5, 9e-5])
    def test_failover_fingerprints_identical(self, protocol, crash_at):
        """Failover exercises the lazily-materialized scratch (substitute
        maps, early acks, reorder buffers) — shared and private stacks
        must still agree bit-for-bit.  Some (protocol, crash-time) pairs
        legitimately wedge (a mirror crash mid-rendezvous has no failover
        resend); a deadlock is then the *outcome* both modes must agree
        on, down to the blocked-process set — and the arenas must still
        balance once survivors are abandoned."""

        def run(shared):
            job = _job(protocol, n=4, shared_state=shared)
            job.launch(mixed_traffic, rounds=3)
            job.crash(1, 1, at=crash_at)
            try:
                return _fingerprint(job.run())
            except DeadlockError as err:
                job._assert_arenas_balanced()
                return ("deadlock", sorted(err.blocked.items()))

        assert run(True) == run(False), (
            f"shared-state engine diverged under failover ({protocol})"
        )

    def test_shared_objects_are_actually_shared(self):
        job = _job("sdr", n=4)
        protos = list(job.protocols.values())
        pmls = list(job.pmls.values())
        assert all(p.shared is protos[0].shared for p in protos)
        # every world communicator references the one job-level tuple
        worlds = [m.world for m in job.mpis.values()]
        assert all(w.members is worlds[0].members for w in worlds)
        assert all(w._world_to_rank is worlds[0]._world_to_rank for w in worlds)
        # PMLs on the same node share cost rows; all rows come from the table
        by_node = {}
        for pml in pmls:
            by_node.setdefault(pml._node_of[pml.proc], []).append(pml)
        for node_pmls in by_node.values():
            first = node_pmls[0]
            assert all(p._send_row is first._send_row for p in node_pmls)
            assert all(p._recv_row is first._recv_row for p in node_pmls)

    def test_seed_shaped_objects_are_private(self):
        job = _job("sdr", n=4, shared_state=False)
        protos = list(job.protocols.values())
        assert len({id(p.shared) for p in protos}) == len(protos)
        pmls = list(job.pmls.values())
        assert len({id(p._send_row) for p in pmls}) == len(pmls)


class TestFootprintBudget:
    """tracemalloc-based bytes-per-process ceilings."""

    #: 2x headroom over the measured ~3.8 KB/proc — tight enough that the
    #: fully-unshared seed-shaped construction (~15.4 KB/proc at this
    #: tier) *fails* it, so a silent slide back toward per-proc copies is
    #: caught, while allocator noise is not
    BYTES_PER_PROC_BUDGET = 8 * 1024

    def test_paper_tier_construction_budget(self):
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        cluster = cluster_for(256, 2)
        tracemalloc.start()
        job = Job(256, cfg=cfg, cluster=cluster)
        current, _peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        per_proc = current / job.rmap.n_procs
        assert per_proc <= self.BYTES_PER_PROC_BUDGET, (
            f"job construction costs {per_proc:.0f} B/proc "
            f"(budget {self.BYTES_PER_PROC_BUDGET}) — per-proc copies of "
            "shared state have crept back in"
        )

    def test_shared_construction_beats_seed_shaped(self):
        """The flyweight engine must stay well under the per-proc spec —
        a 3x floor on an ~11x measured gap."""
        cfg = ReplicationConfig(degree=2, protocol="sdr")

        def measure(shared):
            tracemalloc.start()
            Job(256, cfg=cfg, cluster=cluster_for(256, 2), shared_state=shared)
            current, _peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            return current

        assert measure(True) * 3 < measure(False)


class TestStrandAttribution:
    """Per-drop-site stranded counters surfaced in JobResult."""

    def _eager_env(self, pml, dst=1):
        return pml.acquire_env("eager", ("w",), 0, 1, 0, dst, 0, 8, b"x" * 8, dst)

    def test_dead_source_site(self):
        job = _job(n=2)
        fab = job.fabric
        env = self._eager_env(job.pmls[0])
        fab.crash(0)
        fab.send(0, 1, 8, env, "eager")
        assert fab.strands_by_site == {"dead_source": [1, 1]}

    def test_dead_endpoint_site(self):
        job = _job(n=2)
        fab = job.fabric
        frame = fab.acquire_frame(0, 1, 8, self._eager_env(job.pmls[0]), kind="eager")
        fab.crash(1)
        fab.endpoints[1].deliver(frame)
        # crash(1) cleared an (empty) inbox; the in-flight arrival lands at
        # the dead endpoint
        assert fab.strands_by_site.get("dead_endpoint") == [1, 1]

    def test_inbox_clear_site(self):
        job = _job(n=2)
        fab = job.fabric
        fab.endpoints[1].deliver(fab.acquire_frame(0, 1, 8, self._eager_env(job.pmls[0]), kind="eager"))
        fab.endpoints[1].deliver(fab.acquire_frame(-1, 1, 0, ("failure", 0), kind="svc"))
        fab.crash(1)  # clears both queued frames
        # the svc frame carries no envelope: 2 frames, 1 envelope
        assert fab.strands_by_site == {"inbox_clear": [2, 1]}

    def test_abandoned_pipeline_site_in_jobresult(self):
        """A crash landing mid-traffic strands pipeline-owned envelopes;
        the result attributes them instead of lumping them into a total."""

        def fanin(mpi, rounds=12):
            if mpi.rank == 0:
                total = 0.0
                for _ in range(rounds):
                    for _ in range(mpi.size - 1):
                        d, _st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                        total += float(d[0])
                    for dst in range(1, mpi.size):
                        yield from mpi.send(np.array([total]), dest=dst, tag=3)
                return total
            for _ in range(rounds):
                yield from mpi.send(np.array([float(mpi.rank)]), dest=0, tag=2)
                yield from mpi.recv(source=0, tag=3)

        job = _job("sdr", n=4)
        job.launch(fanin)
        job.crash(1, 1, at=2e-5)
        res = job.run()
        total_envs = sum(cell["envs"] for cell in res.stranded_by_site.values())
        total_frames = sum(cell["frames"] for cell in res.stranded_by_site.values())
        # attribution is complete: sites sum to the arena-balance totals
        assert total_frames == res.fabric["frames_stranded"]
        assert total_envs == (
            res.fabric["envs_stranded"]
            + res.stat_total("env_stranded")
            + job._reap_sites["reorder_reap"]
            + job._reap_sites["retired_stack"]
        )
        assert total_envs > 0

    def test_crash_free_run_has_empty_attribution(self):
        def app(mpi):
            yield from mpi.allreduce(float(mpi.rank), op="sum")

        res = _job("sdr", n=2).launch(app).run()
        assert res.stranded_by_site == {}

    def test_reorder_reap_site(self):
        """An early arrival orphaned in a reorder buffer is reaped at
        teardown and attributed to ``reorder_reap``."""

        def app(mpi):
            yield from mpi.allreduce(float(mpi.rank), op="sum")

        job = _job("sdr", n=2)
        proto = job.protocols[0]
        pml = job.pmls[0]
        # Park seq 5 while 0 is expected: the filter holds it in the
        # reorder buffer; the sender of 0..4 "never existed", so the gap
        # never fills and teardown must reap it.
        env = pml.acquire_env("eager", ("w",), 1, 7, 1, 0, 5, 8, b"y" * 8, 0)
        gen = proto._filter_incoming(env)
        for _ in gen:
            pass
        res = job.launch(app).run()
        assert res.stranded_by_site.get("reorder_reap") == {"frames": 0, "envs": 1}

    def test_retired_stack_site(self):
        """A stack replaced by a respawn carries its parked envelopes into
        the ``retired_stack`` attribution."""

        def app(mpi):
            yield from mpi.allreduce(float(mpi.rank), op="sum")

        job = _job("sdr", n=2)
        proto = job.protocols[0]
        pml = job.pmls[0]
        env = pml.acquire_env("eager", ("w",), 1, 7, 1, 0, 5, 8, b"y" * 8, 0)
        gen = proto._filter_incoming(env)
        for _ in gen:
            pass
        job._build_stack(0)  # respawn-style replacement retires the stack
        res = job.launch(app).run()
        assert res.stranded_by_site.get("retired_stack") == {"frames": 0, "envs": 1}

    def test_recovery_respawn_attributes_retired_stacks(self):
        """End-to-end §3.4 recovery: the attribution keys stay consistent
        with the balance totals through a real respawn."""

        class IterState:
            def __init__(self):
                self.it = 0
                self.acc = 0.0

        def app(mpi, iters=40, state=None):
            st_ = state or IterState()
            mpi.register_state(st_)
            while st_.it < iters:
                it = st_.it
                if mpi.rank == 1:
                    yield from mpi.send(np.array([float(it)]), dest=0, tag=1)
                    got, _ = yield from mpi.recv(source=0, tag=2)
                else:
                    got, _ = yield from mpi.recv(source=1, tag=1)
                    yield from mpi.send(np.array([2.0 * it]), dest=1, tag=2)
                st_.acc += float(got[0])
                st_.it += 1
                yield from mpi.recovery_point()
                yield from mpi.compute(1e-6)
            return st_.acc

        cfg = ReplicationConfig(degree=2, protocol="sdr")
        job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
        job.launch(app)
        manager = RecoveryManager(job)
        job.crash(1, 1, at=60e-6)
        job.sim.call_at(100e-6, lambda: manager.request_respawn(1))
        res = job.run()
        assert job._retired_stacks
        total_frames = sum(cell["frames"] for cell in res.stranded_by_site.values())
        total_envs = sum(cell["envs"] for cell in res.stranded_by_site.values())
        assert total_frames == res.fabric["frames_stranded"]
        stranded_pml = sum(
            pml.env_stranded for pml in list(job.pmls.values()) + [p for p, _ in job._retired_stacks]
        )
        assert total_envs == (
            res.fabric["envs_stranded"]
            + stranded_pml
            + job._reap_sites["reorder_reap"]
            + job._reap_sites["retired_stack"]
        )


class UnguardedFilterProtocol(SdrProtocol):
    """The contract violation the guard exists for: an envelope-owning
    charge yielded with no strand guard around it."""

    name = "sdr-unguarded"

    def _filter_incoming(self, env):
        yield 100e-6  # owns env across this yield — unguarded!
        yield from super()._filter_incoming(env)
        return False


class TestFilterGuard:
    """Runtime assert catching filters that strand silently."""

    def _run_guarded(self, protocol_cls, crash_at=None):
        previous = set_filter_guard(True)
        try:
            _PROTOCOL_CLASSES["_guard_test"] = protocol_cls
            cfg = ReplicationConfig(degree=2, protocol="sdr")
            object.__setattr__(cfg, "protocol", "_guard_test")
            job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))
            del _PROTOCOL_CLASSES["_guard_test"]

            def app(mpi, rounds=6):
                peer = 1 - mpi.rank
                for r in range(rounds):
                    if mpi.rank == 0:
                        yield from mpi.send(np.ones(2), dest=peer, tag=r)
                    else:
                        yield from mpi.recv(source=peer, tag=r)
                return mpi.rank

            job.launch(app)
            if crash_at is not None:
                job.crash(1, 0, at=crash_at)
            return job.run(allow_lost_ranks=True)
        finally:
            set_filter_guard(previous)

    def test_unguarded_filter_fails_loudly_on_crash(self):
        """The receiver crashes mid-filter-charge: without the guard this
        would strand silently; with it, the run dies naming the filter."""
        with pytest.raises(AssertionError, match="incoming_filter.*_filter_incoming"):
            self._run_guarded(UnguardedFilterProtocol, crash_at=50e-6)

    def test_guarded_intree_filter_passes(self):
        """The stock replicated filter strands properly — the guard stays
        silent through the same crash, and the run balances."""
        res = self._run_guarded(SdrProtocol, crash_at=50e-6)
        assert res.runtime > 0

    def test_guard_transparent_on_crash_free_run(self):
        guarded = self._run_guarded(SdrProtocol)
        # same cluster shape as _run_guarded builds
        cfg = ReplicationConfig(degree=2, protocol="sdr")
        plain_job = Job(2, cfg=cfg, cluster=cluster_for(2, 2, cores_per_node=1))

        def app(mpi, rounds=6):
            peer = 1 - mpi.rank
            for r in range(rounds):
                if mpi.rank == 0:
                    yield from mpi.send(np.ones(2), dest=peer, tag=r)
                else:
                    yield from mpi.recv(source=peer, tag=r)
            return mpi.rank

        plain = plain_job.launch(app).run()
        assert guarded.events == plain.events
        assert repr(guarded.runtime) == repr(plain.runtime)

    def test_violations_surface_even_on_wedged_runs(self):
        """A wedged run (deadlock) is exactly where an unguarded filter
        stranded something — the recorded violation must outrank the
        DeadlockError, not be lost to it."""
        job = _job("sdr", n=2)

        def app(mpi):
            if mpi.rank == 0:
                yield from mpi.recv(source=1, tag=9)  # never sent: wedges
            return 0

        job.launch(app)
        job.pmls[0].guard_violations = ["synthetic violation"]
        with pytest.raises(AssertionError, match="synthetic violation"):
            job.run()

    def test_guard_off_by_default(self):
        job = _job("sdr", n=2)
        pml = job.pmls[0]
        # no wrapper: the installed filter is the protocol's bound method
        assert pml.incoming_filter.__func__ is SdrProtocol._filter_incoming
