"""Network fault model: the seeded adversary the reliable-wire assumption
is tested against (drop/dup/delay windows, healing partitions).

Every probabilistic decision draws from the job's dedicated ``net.faults``
rng stream, so a faulty run is reproducible from its seed; an absent (or
empty) plan leaves the fabric byte-identical to the reliable wire.  Drops
route through the strand accounting — ``link_drop`` and ``partition`` are
first-class sites in the zero-leak balance, never silent losses.
"""

import numpy as np
import pytest

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from repro.network.model import (
    FaultPlan,
    FaultPlanError,
    LinkFaultWindow,
    PartitionWindow,
)


def pingpong(mpi, rounds=6):
    peer = 1 - mpi.rank
    acc = 0.0
    for k in range(rounds):
        if mpi.rank == 0:
            yield from mpi.send(np.array([float(k)]), dest=peer, tag=7)
            got, _ = yield from mpi.recv(source=peer, tag=7)
        else:
            got, _ = yield from mpi.recv(source=peer, tag=7)
            yield from mpi.send(got, dest=peer, tag=7)
        acc += float(got[0])
    return acc


def delayed_pingpong(mpi, rounds=4, after=60e-6):
    yield from mpi.compute(after)
    acc = yield from pingpong(mpi, rounds=rounds)
    return acc


def _native_job(plan=None, n=2, seed=0):
    cfg = ReplicationConfig(degree=1, protocol="native")
    return Job(
        n, cfg=cfg, cluster=cluster_for(n, 1, cores_per_node=1), seed=seed, fault_plan=plan
    )


def _sdr_job(plan=None, n=2, seed=0):
    cfg = ReplicationConfig(degree=2, protocol="sdr")
    return Job(
        n, cfg=cfg, cluster=cluster_for(n, 2, cores_per_node=1), seed=seed, fault_plan=plan
    )


class TestFaultPlanValidation:
    def test_inverted_window_rejected(self):
        with pytest.raises(FaultPlanError, match="start < end"):
            LinkFaultWindow(5e-6, 2e-6, drop_p=0.1).validate()

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(FaultPlanError, match="drop_p"):
            LinkFaultWindow(0.0, 1e-6, drop_p=1.5).validate()
        with pytest.raises(FaultPlanError, match="dup_p"):
            LinkFaultWindow(0.0, 1e-6, dup_p=-0.1).validate()

    def test_negative_delay_rejected(self):
        with pytest.raises(FaultPlanError, match="delay"):
            LinkFaultWindow(0.0, 1e-6, delay=-1e-6).validate()

    def test_no_effect_window_rejected(self):
        with pytest.raises(FaultPlanError, match="no effect"):
            LinkFaultWindow(0.0, 1e-6).validate()

    def test_empty_node_filter_rejected(self):
        with pytest.raises(FaultPlanError, match="src_nodes"):
            LinkFaultWindow(0.0, 1e-6, drop_p=0.5, src_nodes=()).validate()

    def test_partition_needs_groups(self):
        with pytest.raises(FaultPlanError, match="node group"):
            PartitionWindow(0.0, 1e-6).validate()
        with pytest.raises(FaultPlanError, match="not be empty"):
            PartitionWindow(0.0, 1e-6, groups=((),)).validate()

    def test_partition_groups_must_be_disjoint(self):
        with pytest.raises(FaultPlanError, match="more than one"):
            PartitionWindow(0.0, 1e-6, groups=((0, 1), (1, 2))).validate()

    def test_plan_validate_chains_and_bool(self):
        assert not FaultPlan()
        plan = FaultPlan(windows=(LinkFaultWindow(0.0, 1e-6, dup_p=0.5),)).validate()
        assert plan
        with pytest.raises(FaultPlanError):
            FaultPlan(windows=(LinkFaultWindow(0.0, 1e-6),)).validate()


class TestDefaultOff:
    def test_empty_plan_is_byte_identical_to_no_plan(self):
        baseline = _native_job(plan=None).launch(pingpong).run()
        empty = _native_job(plan=FaultPlan()).launch(pingpong).run()
        assert empty.runtime == baseline.runtime
        assert empty.events == baseline.events
        assert empty.fabric["frames"] == baseline.fabric["frames"]
        assert empty.app_results == baseline.app_results


class TestDropWindows:
    def test_certain_drop_is_stranded_and_wedges(self):
        plan = FaultPlan(windows=(LinkFaultWindow(0.0, 1e-3, drop_p=1.0),)).validate()
        job = _native_job(plan=plan).launch(pingpong)
        res = job.run(until=1e-3, audit=True)
        assert res.fabric["fault_drops"] >= 1
        assert res.stranded_by_site["link_drop"]["frames"] >= 1
        assert res.finish_times == {}  # both ranks blocked: no retransmission path

    def test_drops_balance_the_arena_books(self):
        plan = FaultPlan(windows=(LinkFaultWindow(0.0, 1e-3, drop_p=1.0),)).validate()
        job = _native_job(plan=plan).launch(pingpong)
        job.run(until=1e-3, audit=True)  # audit() raises on any imbalance
        sites = job._strand_attribution()
        frame_sum = sum(cell["frames"] for cell in sites.values())
        assert frame_sum == job.fabric.stats()["frames_stranded"]


class TestDupWindows:
    def test_replicated_protocol_absorbs_duplicates(self):
        plan = FaultPlan(windows=(LinkFaultWindow(0.0, 1e-3, dup_p=1.0),)).validate()
        clean = _sdr_job().launch(pingpong).run()
        faulty = _sdr_job(plan=plan).launch(pingpong).run()
        assert faulty.fabric["fault_dups"] >= 1
        assert faulty.fabric["envs_duplicated"] >= 1
        # per-channel dedup drops every injected clone; results untouched
        assert faulty.stat_total("duplicates_dropped") >= 1
        assert faulty.app_results == clean.app_results


class TestDelayWindows:
    def test_delay_spikes_slow_the_run_but_preserve_results(self):
        plan = FaultPlan(windows=(LinkFaultWindow(0.0, 1e-3, delay=5e-6),)).validate()
        clean = _native_job().launch(pingpong).run()
        slow = _native_job(plan=plan).launch(pingpong).run()
        assert slow.fabric["fault_delays"] >= 1
        assert slow.runtime > clean.runtime
        assert slow.app_results == clean.app_results


class TestPartitions:
    def test_partition_strands_inter_group_frames(self):
        plan = FaultPlan(
            partitions=(PartitionWindow(0.0, 1e-3, groups=((0,), (1,))),)
        ).validate()
        job = _native_job(plan=plan).launch(pingpong)
        res = job.run(until=1e-3, audit=True)
        assert res.stranded_by_site["partition"]["frames"] >= 1
        assert res.finish_times == {}  # frames lost in the window stay lost

    def test_partition_heals(self):
        # All traffic starts after the window closes: nothing is lost.
        plan = FaultPlan(
            partitions=(PartitionWindow(0.0, 50e-6, groups=((0,), (1,))),)
        ).validate()
        clean = _native_job().launch(delayed_pingpong).run()
        healed = _native_job(plan=plan).launch(delayed_pingpong).run()
        assert healed.fabric["frames_stranded"] == 0
        assert healed.app_results == clean.app_results


class TestSeededReproducibility:
    def test_same_seed_same_faulty_run(self):
        plan = FaultPlan(
            windows=(LinkFaultWindow(0.0, 1e-3, drop_p=0.3, dup_p=0.3),)
        ).validate()
        runs = []
        for _ in range(2):
            job = _sdr_job(plan=plan, seed=7).launch(pingpong)
            res = job.run(until=1e-3, audit=True)
            runs.append(
                (
                    res.events,
                    res.fabric["fault_drops"],
                    res.fabric["fault_dups"],
                    res.stranded_by_site,
                    sorted(res.app_results.items()),
                )
            )
        assert runs[0] == runs[1]

    def test_different_seed_different_draws(self):
        plan = FaultPlan(
            windows=(LinkFaultWindow(0.0, 1e-3, drop_p=0.5, dup_p=0.5),)
        ).validate()
        outcomes = set()
        for seed in range(4):
            job = _sdr_job(plan=plan, seed=seed).launch(pingpong)
            res = job.run(until=1e-3, audit=True)
            outcomes.add((res.fabric["fault_drops"], res.fabric["fault_dups"]))
        assert len(outcomes) > 1
