"""Per-process event capture.

A :class:`Recorder` is installed on an :class:`~repro.mpi.api.MpiProcess`
(the harness wires one per physical process when tracing is requested); the
API facade calls :meth:`Recorder.record_send` for every application-level
send.  A :class:`TraceSet` aggregates one execution's recorders for
comparison across executions.

Ownership note: captures record **scalar fields only** (ranks, tags, byte
counts), never ``Envelope``/``Frame`` objects — those recycle through the
engine's arenas (see :mod:`repro.mpi.pml`) and would be reused under any
retained reference.  A future delivery-side tracer must follow the same
rule, or snapshot via ``Envelope.copy()``.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.trace.events import SendEvent

__all__ = ["Recorder", "TraceSet"]


class Recorder:
    """Send-sequence capture for one physical process."""

    def __init__(self, proc: int, rank: int) -> None:
        self.proc = proc
        self.rank = rank
        self.sends: List[SendEvent] = []

    def record_send(
        self, ctx: Any, src_rank: int, dest_rank: int, world_dst: int, tag: int, nbytes: int
    ) -> None:
        self.sends.append(SendEvent(ctx, src_rank, dest_rank, world_dst, tag, nbytes))

    def send_keys(self) -> List[tuple]:
        return [e.key() for e in self.sends]


class TraceSet:
    """All recorders of one execution, keyed by physical process."""

    def __init__(self) -> None:
        self.recorders: Dict[int, Recorder] = {}

    def factory(self, proc: int, rank: int) -> Recorder:
        """Recorder factory compatible with Job(recorder_factory=...)."""
        rec = Recorder(proc, rank)
        self.recorders[proc] = rec
        return rec

    def send_sequences(self) -> Dict[int, List[tuple]]:
        """proc -> ordered send keys (S|p of Definition 1)."""
        return {proc: rec.send_keys() for proc, rec in sorted(self.recorders.items())}
