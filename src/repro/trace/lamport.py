"""Lamport logical clocks and the happened-before relation [Lamport 78].

The paper's execution model (§2.1) orders events by a total order
compatible with happened-before; this module provides the machinery used
by trace analyses and their tests.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Tuple

import networkx as nx

__all__ = ["LamportClock", "happened_before", "causal_order_violations"]


class LamportClock:
    """A per-process scalar logical clock."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def tick(self) -> int:
        """Local event: advance and return the new timestamp."""
        self.value += 1
        return self.value

    def stamp_send(self) -> int:
        """Timestamp attached to an outgoing message."""
        return self.tick()

    def merge(self, received: int) -> int:
        """Receive rule: clock = max(local, received) + 1."""
        self.value = max(self.value, received) + 1
        return self.value


def happened_before(
    edges: Iterable[Tuple[Hashable, Hashable]], a: Hashable, b: Hashable
) -> bool:
    """True iff a →* b in the event graph given program-order and
    message-order *edges* (each edge is (earlier, later))."""
    graph = nx.DiGraph(edges)
    if a not in graph or b not in graph:
        return False
    return nx.has_path(graph, a, b)


def causal_order_violations(
    stamps: Dict[Hashable, int], edges: Iterable[Tuple[Hashable, Hashable]]
) -> List[Tuple[Hashable, Hashable]]:
    """Edges (a, b) whose Lamport stamps do not satisfy C(a) < C(b).

    An empty list is the clock-condition invariant the property tests
    assert for every simulated execution.
    """
    return [(a, b) for a, b in edges if stamps[a] >= stamps[b]]
