"""Definition 1, operationally.

    An algorithm A is send-deterministic if, for a fixed initial state,
    every execution produces the same per-process sub-sequence of send
    events.

We cannot enumerate all executions, so we sample: replay the application
several times under perturbed message timing (random arrival jitter drawn
from differently-seeded streams).  Jitter changes arrival interleavings,
which flips the outcomes of ANY_SOURCE matches, MPI_Test polls and Waitany
races — precisely the internal non-determinism send-deterministic
applications must tolerate without externally visible divergence.

The checker is used two ways:

* positively, on the paper's workloads (NAS kernels, HPCCG, CM1 — all
  SPMD and send-deterministic per [Cappello et al. 2010]);
* negatively, on the master-worker pattern
  (:func:`repro.apps.patterns.master_worker`), the canonical
  non-send-deterministic counterexample from the same study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.harness.runner import Job, cluster_for
from repro.network.topology import Cluster
from repro.sim.rng import RngRegistry
from repro.trace.recorder import TraceSet

__all__ = ["DeterminismReport", "check_send_determinism"]


@dataclass
class DeterminismReport:
    """Outcome of a sampled send-determinism check."""

    send_deterministic: bool
    replays: int
    #: (proc, first differing send index, baseline key, divergent key)
    divergences: List[Tuple[int, int, Any, Any]] = field(default_factory=list)
    #: per-replay per-proc sequence lengths (diagnostics)
    lengths: List[Dict[int, int]] = field(default_factory=list)

    def __bool__(self) -> bool:  # truthy iff deterministic
        return self.send_deterministic


def _first_divergence(base: List[tuple], other: List[tuple]) -> Optional[Tuple[int, Any, Any]]:
    for i, (a, b) in enumerate(zip(base, other)):
        if a != b:
            return i, a, b
    if len(base) != len(other):
        i = min(len(base), len(other))
        return (
            i,
            base[i] if i < len(base) else "<end>",
            other[i] if i < len(other) else "<end>",
        )
    return None


def check_send_determinism(
    app_factory: Callable[..., Any],
    n_ranks: int,
    replays: int = 4,
    jitter_scale: float = 0.5e-6,
    cluster: Optional[Cluster] = None,
    **app_kwargs: Any,
) -> DeterminismReport:
    """Replay *app_factory* under perturbed timing; compare send sequences.

    Replay 0 runs without jitter (the reference execution); replays 1..n-1
    add exponential arrival jitter from independently seeded streams.
    """
    sequences: List[Dict[int, List[tuple]]] = []
    lengths: List[Dict[int, int]] = []
    for replay in range(replays):
        traces = TraceSet()
        if replay == 0:
            jitter = None
        else:
            rng = RngRegistry(seed=1000 + replay).stream("net.jitter")
            jitter = lambda rng=rng: float(rng.exponential(jitter_scale))
        job = Job(
            n_ranks,
            cluster=cluster or cluster_for(n_ranks),
            jitter=jitter,
            recorder_factory=traces.factory,
        )
        job.launch(app_factory, **app_kwargs).run()
        seqs = traces.send_sequences()
        sequences.append(seqs)
        lengths.append({p: len(s) for p, s in seqs.items()})

    base = sequences[0]
    divergences: List[Tuple[int, int, Any, Any]] = []
    for replay_seqs in sequences[1:]:
        for proc, seq in replay_seqs.items():
            diff = _first_divergence(base[proc], seq)
            if diff is not None:
                divergences.append((proc, diff[0], diff[1], diff[2]))
    return DeterminismReport(
        send_deterministic=not divergences,
        replays=replays,
        divergences=divergences,
        lengths=lengths,
    )
