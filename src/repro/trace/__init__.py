"""Observability and the send-determinism formalism (§2.1).

* :mod:`repro.trace.events`      — typed event records (the paper's e^k_i)
* :mod:`repro.trace.lamport`     — Lamport clocks / happened-before [14]
* :mod:`repro.trace.recorder`    — per-process send/receive sequence capture
* :mod:`repro.trace.determinism` — Definition 1 as an executable check:
  replay an application under perturbed message timing and verify that
  every process emits the identical send sequence.
"""

from repro.trace.events import RecvEvent, SendEvent
from repro.trace.lamport import LamportClock, happened_before
from repro.trace.recorder import Recorder, TraceSet
from repro.trace.determinism import DeterminismReport, check_send_determinism

__all__ = [
    "DeterminismReport",
    "LamportClock",
    "RecvEvent",
    "Recorder",
    "SendEvent",
    "TraceSet",
    "check_send_determinism",
    "happened_before",
]
