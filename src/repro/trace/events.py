"""Typed event records.

A :class:`SendEvent` is the observable unit of Definition 1: the identity
of a send is (matching context, destination, tag, size) — *not* its wall
time, which legitimately varies across correct executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

__all__ = ["SendEvent", "RecvEvent"]


@dataclass(frozen=True)
class SendEvent:
    """One application-level send, as identified for send-determinism."""

    ctx: Any
    src_rank: int
    dest_rank: int
    world_dst: int
    tag: int
    nbytes: int

    def key(self) -> Tuple:
        """The comparison key for Definition 1 (timing excluded)."""
        return (self.ctx, self.src_rank, self.dest_rank, self.world_dst, self.tag, self.nbytes)


@dataclass(frozen=True)
class RecvEvent:
    """One completed application-level receive (source resolved)."""

    ctx: Any
    source_rank: int
    tag: int
    nbytes: int
    time: float
