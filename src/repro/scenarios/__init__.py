"""Scenario registry: the single workload abstraction (docs/workloads.md).

Importing this package registers every in-tree scenario family:

* :mod:`repro.scenarios.spmd` — ring / allreduce / hpccg (the original
  campaign workloads);
* :mod:`repro.scenarios.ablation` — anysource / collectives (the bench
  and ablation-driver shapes), plus the shared ablation workload
  functions;
* :mod:`repro.scenarios.nas` — the NAS kernels mg / cg / ft at campaign
  scale;
* :mod:`repro.scenarios.traffic` — the open-loop client-traffic family
  (traffic-poisson / traffic-bursty / traffic-diurnal).

Out-of-tree workloads register the same way: subclass or instantiate
:class:`~repro.scenarios.base.Scenario` and call
:func:`~repro.scenarios.base.register` at import time.
"""

from repro.scenarios.base import (
    BoundScenario,
    ClosedLoopScenario,
    Scenario,
    ScenarioError,
    get_scenario,
    register,
    scenario_names,
    scenarios,
)
from repro.scenarios.spmd import (
    RingState,
    allreduce_app,
    allreduce_expected,
    campaign_app,
    expected_results,
    hpccg_app,
    hpccg_expected,
)
from repro.scenarios.ablation import (
    anysource_fanin,
    bandwidth_exchange,
    redmpi_fanin,
    ring_collectives,
    stencil,
)
from repro.scenarios import nas as _nas  # noqa: F401  (registers mg/cg/ft)
from repro.scenarios import traffic as _traffic  # noqa: F401  (registers traffic-*)

__all__ = [
    "BoundScenario",
    "ClosedLoopScenario",
    "Scenario",
    "ScenarioError",
    "get_scenario",
    "register",
    "scenario_names",
    "scenarios",
    "RingState",
    "campaign_app",
    "expected_results",
    "allreduce_app",
    "allreduce_expected",
    "hpccg_app",
    "hpccg_expected",
    "anysource_fanin",
    "ring_collectives",
    "bandwidth_exchange",
    "redmpi_fanin",
    "stencil",
]
