"""The Scenario protocol and registry: one workload abstraction.

Before this package, workloads were wired into the harness three
different ways — the ``WORKLOADS`` dict in ``harness/campaign.py``, the
ad-hoc workload functions in ``tools/bench.py``, and per-file app
definitions in the ``benchmarks/`` ablation drivers.  A
:class:`Scenario` replaces all three: it owns the per-rank entrypoint
(the generator factory ``Job.launch`` consumes), declares its valid
rank/degree envelope (checked at *build* time, like the sweep axes), and
binds a campaign configuration + seed to a :class:`BoundScenario` — the
launch kwargs, the closed-form per-rank expected results, and (for the
open-loop family) the seeded :class:`~repro.sim.traffic.TrafficBook`.

Registration is declarative (module import registers the scenario); the
campaign runner, the sweep orchestrator, ``tools/bench.py`` and the
ablation drivers all resolve names through :func:`get_scenario`, so a
new workload lands everywhere at once.  See ``docs/workloads.md``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

__all__ = [
    "ScenarioError",
    "BoundScenario",
    "Scenario",
    "ClosedLoopScenario",
    "register",
    "get_scenario",
    "scenario_names",
    "scenarios",
]


class ScenarioError(ValueError):
    """Unknown scenario, invalid registration, or rank/degree envelope
    violation — raised when the matrix is built, not when config #1731
    finally executes."""


@dataclass(frozen=True)
class BoundScenario:
    """One scenario resolved against a concrete ``(config, seed)``.

    ``factory`` + ``kwargs`` feed ``Job.launch``; ``expected`` is the
    ground truth every finished rank is classified against; ``traffic``
    (open-loop scenarios only) is the request ledger the job surfaces in
    ``JobResult`` and the campaign audits for zero-loss accounting.
    """

    factory: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)
    expected: Dict[int, float] = field(default_factory=dict)
    traffic: Optional[Any] = None


class Scenario:
    """One registered workload: entrypoint, validity envelope, binding.

    Subclasses implement :meth:`bind`.  ``supports_respawn`` declares
    whether the factory accepts ``state=`` (recovery forks); the fault
    sampler gates respawn/churn draws on it so a scenario that cannot
    fork is never asked to.
    """

    def __init__(
        self,
        name: str,
        description: str,
        *,
        min_ranks: int = 2,
        max_ranks: Optional[int] = None,
        pow2_ranks: bool = False,
        supports_respawn: bool = False,
    ) -> None:
        self.name = name
        self.description = description
        self.min_ranks = min_ranks
        self.max_ranks = max_ranks
        self.pow2_ranks = pow2_ranks
        self.supports_respawn = supports_respawn

    def check(self, n_ranks: int, degree: int) -> None:
        """Validate a ``(n_ranks, degree)`` shape against the envelope."""
        if n_ranks < self.min_ranks:
            raise ScenarioError(
                f"scenario {self.name!r} needs >= {self.min_ranks} ranks, got {n_ranks}"
            )
        if self.max_ranks is not None and n_ranks > self.max_ranks:
            raise ScenarioError(
                f"scenario {self.name!r} supports <= {self.max_ranks} ranks, got {n_ranks}"
            )
        if self.pow2_ranks and (n_ranks & (n_ranks - 1)):
            raise ScenarioError(
                f"scenario {self.name!r} needs a power-of-two rank count, got {n_ranks}"
            )
        if degree < 1:
            raise ScenarioError(
                f"scenario {self.name!r}: replication degree must be >= 1, got {degree}"
            )

    def bind(self, cfg: Any, seed: int) -> BoundScenario:
        """Resolve against a campaign config (duck-typed: ``n_ranks``,
        ``degree``, ``steps``, ``horizon``, ``active``) and a seed."""
        raise NotImplementedError


class ClosedLoopScenario(Scenario):
    """The classic SPMD shape: a factory taking ``steps=``, a closed-form
    ``expected_fn(cfg)``, no traffic ledger."""

    def __init__(
        self,
        name: str,
        description: str,
        factory: Callable[..., Any],
        expected_fn: Callable[[Any], Dict[int, float]],
        kwargs_fn: Optional[Callable[[Any], Dict[str, Any]]] = None,
        **env: Any,
    ) -> None:
        super().__init__(name, description, **env)
        self.factory = factory
        self.expected_fn = expected_fn
        self.kwargs_fn = kwargs_fn or (lambda cfg: {"steps": cfg.steps})

    def bind(self, cfg: Any, seed: int) -> BoundScenario:
        return BoundScenario(
            factory=self.factory,
            kwargs=self.kwargs_fn(cfg),
            expected=self.expected_fn(cfg),
        )


# ----------------------------------------------------------------- registry
_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add *scenario* to the registry; collides loudly on a name reuse."""
    if scenario.name in _REGISTRY:
        raise ScenarioError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ScenarioError(
            f"unknown workload {name!r}; have {scenario_names()}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def scenarios() -> List[Scenario]:
    return [_REGISTRY[name] for name in scenario_names()]
