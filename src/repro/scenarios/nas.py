"""NAS kernels (mg, cg, ft) as sweepable scenarios.

The communication skeletons live in :mod:`repro.apps.nas`; this module
wraps them with the campaign-scale binding and the closed-form expected
results the degradation taxonomy classifies against:

* **compute scaling** — the kernels model class-S compute for 2.5 GF/s
  cores, which alone (~10⁻¹ s/iteration) dwarfs the campaign's 2 ms
  horizon.  The scenario binding models :data:`CAMPAIGN_FLOPS_PER_CORE`
  (10⁴× faster cores) so a class-S iteration fits the campaign's fault
  window while the message pattern stays untouched — the virtual-time
  ratio between protocols, not the absolute seconds, is what sweeps
  compare.
* **rank envelopes** — ``mg`` needs a 3-D processor grid with every
  dimension ≥ 2 (a dimension of 1 would make a face partner the rank
  itself), hence ≥ 8 power-of-two ranks; ``cg`` needs the 2-D grid and
  power-of-two ranks for its exact rho recurrence; ``ft``'s all-to-all
  accepts any world ≥ 2.  The envelopes are enforced when the sweep
  matrix is built.
* **expected values** — ``mg``/``ft`` return their final iteration-index
  sum-allreduce: ``(steps - 1) · n`` exactly (small integers).  ``cg``
  returns the rho recurrence ``rho' = allreduce(rho · 0.99)``; with
  identical contributions and a power-of-two world, recursive doubling
  sums n equal addends exactly, so the recurrence replays in pure Python
  as ``rho = (rho * 0.99) * n``.

The kernels take no ``state=`` (no recovery forks), so
``supports_respawn=False`` keeps the fault sampler from drawing
churn/respawn mixes for them.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.nas.cg import cg_rank
from repro.apps.nas.ft import ft_rank
from repro.apps.nas.mg import mg_rank
from repro.scenarios.base import ClosedLoopScenario, register

__all__ = ["CAMPAIGN_FLOPS_PER_CORE", "CAMPAIGN_FT_PAYLOAD_SCALE"]

#: modelled core speed for campaign-scale NAS runs (see module docstring)
CAMPAIGN_FLOPS_PER_CORE = 2.5e13

#: ft's class-S transpose moves 256 KB per peer per iteration — hundreds
#: of times the campaign horizon's drain capacity.  Scaling the wire
#: bytes (pattern untouched: same chunks, same peers, same collective
#: schedule) keeps the all-to-all stress representative at campaign scale.
CAMPAIGN_FT_PAYLOAD_SCALE = 1.0 / 512.0


def _nas_kwargs(cfg) -> Dict[str, object]:
    return {
        "klass": "S",
        "iters": cfg.steps,
        "flops_per_core": CAMPAIGN_FLOPS_PER_CORE,
    }


def _ft_kwargs(cfg) -> Dict[str, object]:
    return {**_nas_kwargs(cfg), "payload_scale": CAMPAIGN_FT_PAYLOAD_SCALE}


def _iteration_sum_expected(cfg) -> Dict[int, float]:
    """mg/ft both end on ``allreduce(float(steps - 1), sum)``."""
    value = float((cfg.steps - 1) * cfg.n_ranks)
    return {rank: value for rank in range(cfg.n_ranks)}


def _cg_expected(cfg) -> Dict[int, float]:
    """Pure-Python replay of cg's rho recurrence (exact for 2^k ranks)."""
    rho = 1.0
    for _ in range(cfg.steps):
        rho = (rho * 0.99) * cfg.n_ranks
    return {rank: rho for rank in range(cfg.n_ranks)}


register(ClosedLoopScenario(
    "mg",
    "NAS MG V-cycles: six-face halos per level + residual allreduce",
    mg_rank, _iteration_sum_expected, kwargs_fn=_nas_kwargs,
    min_ranks=8, pow2_ranks=True,
))
register(ClosedLoopScenario(
    "cg",
    "NAS CG: row-wise partial sums, transpose exchange, two dot products",
    cg_rank, _cg_expected, kwargs_fn=_nas_kwargs,
    min_ranks=4, pow2_ranks=True,
))
register(ClosedLoopScenario(
    "ft",
    "NAS FT: global transpose all-to-all + checksum allreduce",
    ft_rank, _iteration_sum_expected, kwargs_fn=_ft_kwargs,
    min_ranks=2,
))
