"""Bench/ablation workload scenarios, shared by every driver.

These used to live as private copies in ``tools/bench.py`` and the
``benchmarks/test_ablation_*.py`` drivers; the scenario registry makes
them one definition each.  ``tests/test_determinism_regression.py``
imports the same functions, so the goldens pin exactly the workload
shapes ``BENCH_engine.json``'s trajectory is measured on.

``anysource`` and ``collectives`` are additionally registered as
sweepable scenarios (closed-form expecteds; no ``state=`` support, so
the fault sampler never draws respawns/churn for them).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.mpi.datatypes import Phantom
from repro.scenarios.base import ClosedLoopScenario, register

__all__ = [
    "anysource_fanin",
    "ring_collectives",
    "bandwidth_exchange",
    "redmpi_fanin",
    "stencil",
]


def anysource_fanin(mpi, rounds=100):
    """The leader-ablation workload: ANY_SOURCE fan-in/fan-out (§3.1)."""
    if mpi.rank == 0:
        total = 0.0
        for _ in range(rounds):
            for _ in range(mpi.size - 1):
                d, _st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                total += float(d[0])
            for dst in range(1, mpi.size):
                yield from mpi.send(np.array([total]), dest=dst, tag=3)
        return total
    acc = 0.0
    for _ in range(rounds):
        yield from mpi.send(np.array([float(mpi.rank)]), dest=0, tag=2)
        d, _ = yield from mpi.recv(source=0, tag=3)
        acc = float(d[0])
    return acc


def anysource_expected(cfg) -> Dict[int, float]:
    """Per-rank return of :func:`anysource_fanin` with ``rounds=cfg.steps``:
    every round adds the integer fan-in sum, so all ranks converge on
    ``rounds * n(n-1)/2`` (exact in binary floating point)."""
    tri = cfg.n_ranks * (cfg.n_ranks - 1) / 2.0
    return {rank: cfg.steps * tri for rank in range(cfg.n_ranks)}


def ring_collectives(mpi, iters=40, nbytes=65536):
    """Modeled-payload ring sendrecv + allreduce (collective/rendezvous path)."""
    acc = 0.0
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    for _ in range(iters):
        yield from mpi.sendrecv(Phantom(nbytes), dest=right, source=left, sendtag=1)
        s = yield from mpi.allreduce(float(mpi.rank), op="sum")
        acc += float(s)
        yield from mpi.compute(1e-6)
    return acc


def collectives_expected(cfg) -> Dict[int, float]:
    """Per-rank return of :func:`ring_collectives` with ``iters=cfg.steps``."""
    tri = cfg.n_ranks * (cfg.n_ranks - 1) / 2.0
    return {rank: cfg.steps * tri for rank in range(cfg.n_ranks)}


def bandwidth_exchange(mpi, iters=30, nbytes=512 * 1024):
    """All ranks stream large halos both ways simultaneously (the mirror
    ablation's bandwidth workload)."""
    payload = Phantom(nbytes)
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    for it in range(iters):
        got, _ = yield from mpi.sendrecv(payload, dest=right, source=left, sendtag=1, recvtag=1)
        got, _ = yield from mpi.sendrecv(payload, dest=left, source=right, sendtag=2, recvtag=2)
    return mpi.wtime()


def redmpi_fanin(mpi, rounds=150, anonymous=True, compute=30e-6):
    """The redMPI ablation's fan-in: wildcard vs named sources under
    per-round compute (non-determinism sensitivity, §2.3)."""
    if mpi.rank == 0:
        total = 0.0
        for r in range(rounds):
            if anonymous:
                for _ in range(mpi.size - 1):
                    d, _ = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=2)
                    total += float(d[0])
            else:
                for src in range(1, mpi.size):
                    d, _ = yield from mpi.recv(source=src, tag=2)
                    total += float(d[0])
            yield from mpi.compute(compute)
            for dst in range(1, mpi.size):
                yield from mpi.send(np.array([total]), dest=dst, tag=3)
        return total
    acc = 0.0
    for r in range(rounds):
        yield from mpi.send(np.array([float(mpi.rank)]), dest=0, tag=2)
        d, _ = yield from mpi.recv(source=0, tag=3)
        acc = float(d[0])
        yield from mpi.compute(compute)
    return acc


def stencil(mpi, iters=40):
    """1-D stencil sweep ending in one sum-allreduce (the partial-
    replication ablation's workload)."""
    total = 0.0
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    for it in range(iters):
        got, _ = yield from mpi.sendrecv(
            np.array([float(mpi.rank + it)]), dest=right, source=left, sendtag=1, recvtag=1
        )
        total += float(got[0])
        yield from mpi.compute(5e-6)
    return (yield from mpi.allreduce(total, op="sum"))


register(ClosedLoopScenario(
    "anysource",
    "ANY_SOURCE fan-in/fan-out rounds (leader-ablation shape)",
    anysource_fanin, anysource_expected,
    kwargs_fn=lambda cfg: {"rounds": cfg.steps},
))
register(ClosedLoopScenario(
    "collectives",
    "modeled-payload ring sendrecv + allreduce per iteration",
    ring_collectives, collectives_expected,
    kwargs_fn=lambda cfg: {"iters": cfg.steps, "nbytes": 4096},
))
