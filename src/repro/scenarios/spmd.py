"""Closed-loop SPMD scenarios: ring, allreduce, hpccg.

The original campaign workloads (PR 6–8), migrated out of
``harness/campaign.py`` into the scenario registry.  All three factories
accept ``(mpi, steps=..., state=...)`` so respawned replicas can fork
from a recovery point, and all have closed-form expected values so every
run classifies against ground truth.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.scenarios.base import ClosedLoopScenario, register

__all__ = [
    "RingState",
    "campaign_app",
    "expected_results",
    "allreduce_app",
    "allreduce_expected",
    "hpccg_app",
    "hpccg_expected",
]


class RingState:
    """Snapshot/restore-able workload state (recovery support, §3.4)."""

    def __init__(self) -> None:
        self.step = 0
        self.acc = 0.0


def campaign_app(mpi, steps: int = 12, state: Optional[RingState] = None):
    """Ring exchange under churn: rank r sends ``r·1000 + step`` right and
    accumulates what arrives from the left, with a recovery point per
    step so pending respawns can fork.  Expected per-rank result:
    :func:`expected_results`."""
    st = state or RingState()
    mpi.register_state(st)
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    while st.step < steps:
        k = st.step
        out = np.array([float(mpi.rank * 1000 + k)])
        if mpi.rank % 2 == 0:
            yield from mpi.send(out, dest=right, tag=1)
            got, _ = yield from mpi.recv(source=left, tag=1)
        else:
            got, _ = yield from mpi.recv(source=left, tag=1)
            yield from mpi.send(out, dest=right, tag=1)
        st.acc += float(got[0])
        st.step += 1
        yield from mpi.recovery_point()
        yield from mpi.compute(1e-6)
    return st.acc


def expected_results(cfg) -> Dict[int, float]:
    """Correct per-logical-rank return value of :func:`campaign_app`."""
    tri = cfg.steps * (cfg.steps - 1) / 2.0
    return {
        rank: ((rank - 1) % cfg.n_ranks) * 1000.0 * cfg.steps + tri
        for rank in range(cfg.n_ranks)
    }


def allreduce_app(mpi, steps: int = 12, state: Optional[RingState] = None):
    """Collective workload under churn: every rank contributes ``rank + step``
    to a sum-allreduce per step and accumulates the global total, with a
    recovery point per step.  Exercises the protocols' collective paths —
    the ring workload never leaves pt2pt — so a sweep can ask whether a
    fault mix that pt2pt absorbs also spares the collective towers."""
    st = state or RingState()
    mpi.register_state(st)
    while st.step < steps:
        k = st.step
        total = yield from mpi.allreduce(float(mpi.rank + k), op="sum")
        st.acc += float(total)
        st.step += 1
        yield from mpi.recovery_point()
        yield from mpi.compute(1e-6)
    return st.acc


def allreduce_expected(cfg) -> Dict[int, float]:
    """Correct per-logical-rank return value of :func:`allreduce_app`."""
    tri_n = cfg.n_ranks * (cfg.n_ranks - 1) / 2.0
    tri_s = cfg.steps * (cfg.steps - 1) / 2.0
    value = cfg.steps * tri_n + cfg.n_ranks * tri_s
    return {rank: value for rank in range(cfg.n_ranks)}


def hpccg_app(mpi, steps: int = 12, state: Optional[RingState] = None):
    """HPCCG-shaped workload under churn (the paper's Table 2 app).

    Each step is one CG-iteration skeleton, shrunk to campaign scale:
    a 1-D halo exchange with **ANY_SOURCE** direction-tagged nonblocking
    receives (the matching pattern that distinguishes HPCCG from the ring
    workload — under leader-based replication this is exactly the traffic
    §3.1 says inflates the unexpected queue), followed by the iteration's
    two allreduces (the dot product's sum and the residual check's max),
    with a recovery point per step.  Every exchanged value is a small
    integer-valued float, so the accumulated result is exact in binary
    floating point and :func:`hpccg_expected` is closed-form.
    """
    st = state or RingState()
    mpi.register_state(st)
    up = (mpi.rank + 1) % mpi.size
    down = (mpi.rank - 1) % mpi.size
    while st.step < steps:
        k = st.step
        # Halo faces: tag encodes direction, source stays wild.  Only the
        # down neighbour ever sends tag 500 (and only the up neighbour
        # tag 501), so values are deterministic despite ANY_SOURCE.
        r_lo = yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=500)
        r_hi = yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=501)
        face = np.array([float(mpi.rank * 100 + k)])
        s_up = yield from mpi.isend(face, dest=up, tag=500)
        s_down = yield from mpi.isend(face, dest=down, tag=501)
        yield from mpi.waitall([r_lo, r_hi, s_up, s_down])
        halo = float(r_lo.data[0]) + float(r_hi.data[0])
        rtrans = yield from mpi.allreduce(float(mpi.rank + k), op="sum")
        rmax = yield from mpi.allreduce(float(mpi.rank), op="max")
        st.acc += halo + float(rtrans) + float(rmax)
        st.step += 1
        yield from mpi.recovery_point()
        yield from mpi.compute(1e-6)
    return st.acc


def hpccg_expected(cfg) -> Dict[int, float]:
    """Correct per-logical-rank return value of :func:`hpccg_app`."""
    n, s = cfg.n_ranks, cfg.steps
    tri_s = s * (s - 1) / 2.0
    tri_n = n * (n - 1) / 2.0
    # per step: sum-allreduce of (rank + k) plus max-allreduce of rank
    coll = s * tri_n + n * tri_s + s * (n - 1)
    return {
        rank: s * 100.0 * (((rank - 1) % n) + ((rank + 1) % n)) + 2.0 * tri_s + coll
        for rank in range(n)
    }


register(ClosedLoopScenario(
    "ring",
    "pt2pt ring exchange with per-step recovery points",
    campaign_app, expected_results,
    supports_respawn=True,
))
register(ClosedLoopScenario(
    "allreduce",
    "per-step sum-allreduce through the collective towers",
    allreduce_app, allreduce_expected,
    supports_respawn=True,
))
register(ClosedLoopScenario(
    "hpccg",
    "CG-iteration skeleton: ANY_SOURCE halo + two allreduces per step",
    hpccg_app, hpccg_expected,
    supports_respawn=True,
))
