"""Open-loop traffic scenarios: Poisson, bursty on/off, diurnal.

Each scenario binds the :mod:`repro.sim.traffic` engine onto the
campaign's batching grid: ``steps`` epochs spanning the fault-active
window (so seeded fault mixes land under live client load), a bounded
admission queue per client, and the seeded arrival plans drawn from the
dedicated ``traffic.*`` RNG streams.  The bound scenario carries the
:class:`~repro.sim.traffic.TrafficBook` the job surfaces in
``JobResult`` and the campaign audits for request-accounting balance.

The default rate (3.2 M req/s per client over 5 µs epochs) offers a mean
of ~16 requests per epoch against a 12-slot queue — a mild structural
overload, so every run exercises the rejection path, while fault-induced
loss (``requests_lost``) stays attributable to the mix, not the load.
"""

from __future__ import annotations

from repro.scenarios.base import BoundScenario, Scenario, register
from repro.sim.traffic import (
    TrafficBook,
    TrafficConfig,
    build_plans,
    expected_traffic_results,
    open_loop_app,
    scaled_config,
)

__all__ = ["TrafficScenario"]


class TrafficScenario(Scenario):
    """One open-loop client population, parameterized by arrival shape."""

    def __init__(self, name: str, description: str, template: TrafficConfig) -> None:
        super().__init__(
            name, description,
            min_ranks=2,
            # clients carry TrafficState through recovery points
            supports_respawn=True,
        )
        self.template = template.validate()

    def bind(self, cfg, seed: int) -> BoundScenario:
        tcfg = scaled_config(self.template, cfg.steps, cfg.active)
        plans = build_plans(tcfg, cfg.n_ranks, seed)
        book = TrafficBook(plans)
        return BoundScenario(
            factory=open_loop_app,
            kwargs={"book": book},
            expected=expected_traffic_results(plans),
            traffic=book,
        )


register(TrafficScenario(
    "traffic-poisson",
    "open-loop Poisson arrivals, epoch-batched through one commit allreduce",
    TrafficConfig(process="poisson"),
))
register(TrafficScenario(
    "traffic-bursty",
    "open-loop bursty on/off arrivals (8:1 burst ratio, 4-epoch period)",
    TrafficConfig(process="bursty"),
))
register(TrafficScenario(
    "traffic-diurnal",
    "open-loop diurnal sinusoidal arrivals (0.9 amplitude over the run)",
    TrafficConfig(process="diurnal"),
))
