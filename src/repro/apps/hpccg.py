"""HPCCG: the Mantevo conjugate-gradient miniapp (27-point stencil).

Chosen by the paper (with CM1) because its halo exchange posts
**anonymous receptions**: neighbour contributions are received with
``MPI_ANY_SOURCE`` and disambiguated by direction tags.  Reception order
is timing-dependent — internally non-deterministic — yet the sends are
fixed, so the application is send-deterministic and SDR-MPI needs no
leader agreement (Table 2: 0.002 % overhead).

Skeleton: 1-D z decomposition (HPCCG's default), two face halos of
``nx·ny·8`` bytes, three scalar allreduces per CG iteration, with compute
calibrated to the paper's 91.13 s native (256 ranks, 128×128×64 local
grid, 149 iterations).

``validate=True`` runs a real distributed CG whose halo uses ANY_SOURCE
receives, returning the converged residual.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.mpi.datatypes import Phantom

__all__ = ["hpccg_rank", "HPCCG_DEFAULT"]

#: paper problem: per-rank grid and iteration count
HPCCG_DEFAULT = {"nx": 128, "ny": 128, "nz": 64, "iters": 149}

#: calibrated per-rank flops per CG iteration: 91.13 s / 149 it × 2.5 GF/s
_FLOPS_PER_ITER_PER_RANK = 1.53e9


def hpccg_rank(
    mpi,
    nx: int = 128,
    ny: int = 128,
    nz: int = 64,
    iters: int = 149,
    flops_per_core: float = 2.5e9,
    validate: bool = False,
) -> Generator:
    if validate:
        return (yield from hpccg_validate_rank(mpi))
    up = (mpi.rank + 1) % mpi.size
    down = (mpi.rank - 1) % mpi.size
    face = Phantom(nx * ny * 8)
    scale = (nx * ny * nz) / (128 * 128 * 64)
    compute = _FLOPS_PER_ITER_PER_RANK * scale / flops_per_core
    rtrans = 1.0
    for it in range(iters):
        # exchange_externals: anonymous receives, direction-tagged.
        r_lo = yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=500)
        r_hi = yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=501)
        s_lo = yield from mpi.isend(face, dest=down, tag=501)
        s_hi = yield from mpi.isend(face, dest=up, tag=500)
        yield from mpi.waitall([r_lo, r_hi, s_lo, s_hi])
        # sparse matvec + waxpby's
        yield from mpi.compute(compute)
        # ddot reductions (r·r, p·Ap, convergence check)
        rtrans = yield from mpi.allreduce(rtrans * 0.995, op="sum")
        _ = yield from mpi.allreduce(float(it), op="sum")
        _ = yield from mpi.allreduce(1.0, op="max")
    return rtrans


def hpccg_validate_rank(mpi, n_per_rank: int = 48, tol: float = 1e-8, max_iter: int = 300) -> Generator:
    """Real CG on the 1-D Laplacian with ANY_SOURCE halo receives."""
    rank, size = mpi.rank, mpi.size
    b = np.ones(n_per_rank)
    x = np.zeros(n_per_rank)

    def matvec(v: np.ndarray) -> Generator:
        reqs = []
        if rank > 0:
            reqs.append((yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=510)))
        if rank < size - 1:
            reqs.append((yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=511)))
        sends = []
        if rank > 0:
            sends.append((yield from mpi.isend(v[:1].copy(), dest=rank - 1, tag=511)))
        if rank < size - 1:
            sends.append((yield from mpi.isend(v[-1:].copy(), dest=rank + 1, tag=510)))
        yield from mpi.waitall(reqs + sends)
        lo = float(reqs[0].data[0]) if rank > 0 else 0.0
        hi = float(reqs[-1].data[0]) if rank < size - 1 else 0.0
        out = 2.0 * v
        out[1:] -= v[:-1]
        out[:-1] -= v[1:]
        out[0] -= lo
        out[-1] -= hi
        return out

    r = b - (yield from matvec(x))
    p = r.copy()
    rs = yield from mpi.allreduce(float(r @ r), op="sum")
    for _ in range(max_iter):
        ap = yield from matvec(p)
        pap = yield from mpi.allreduce(float(p @ ap), op="sum")
        alpha = rs / pap
        x += alpha * p
        r -= alpha * ap
        rs_new = yield from mpi.allreduce(float(r @ r), op="sum")
        if rs_new < tol * tol:
            rs = rs_new
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return float(np.sqrt(rs))
