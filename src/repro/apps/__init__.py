"""Workloads: the paper's benchmark set, rebuilt as simulator applications.

Every application is a generator factory ``app(mpi, **params)`` usable with
:class:`repro.harness.runner.Job`.  Applications run in one of two modes:

* ``validate=True`` — real numpy payloads and real numerics (small sizes;
  used by the test suite to check the math and the data movement);
* ``validate=False`` — phantom payloads (sizes only) plus an analytic
  compute-time model calibrated against the paper's native class-D runtimes
  (used by the benchmark harness at scale).
"""

from repro.apps.netpipe import netpipe_rank, netpipe_sweep
from repro.apps import patterns
from repro.apps.hpccg import hpccg_rank
from repro.apps.cm1 import cm1_rank

__all__ = ["cm1_rank", "hpccg_rank", "netpipe_rank", "netpipe_sweep", "patterns"]
