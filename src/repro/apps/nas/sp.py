"""NAS SP: scalar-pentadiagonal ADI solver.

Same multi-partition sweep topology as BT but with scalar (not block)
lines: roughly half the per-sweep compute and thinner boundary messages,
iterated twice as many times (class D: 500 iterations) — which is why SP's
absolute runtime exceeds BT's while its per-iteration cost is lower.

``validate=True`` runs a backward pipelined suffix sweep (the mirror image
of BT's validation kernel).
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.nas.common import PROBLEMS, payload
from repro.apps.nas.bt import sweep_grid

__all__ = ["sp_rank", "sp_validate_rank"]


def sp_rank(
    mpi,
    klass: str = "S",
    iters: int = None,
    flops_per_core: float = 2.5e9,
    validate: bool = False,
) -> Generator:
    if validate:
        return (yield from sp_validate_rank(mpi))
    prob = PROBLEMS["SP"][klass]
    n = prob.dims[0]
    niter = iters if iters is not None else prob.iterations
    edge = sweep_grid(mpi.size)
    row, col = divmod(mpi.rank, edge)
    compute = prob.compute_seconds(mpi.size, flops_per_core)
    face_bytes = 2 * (n / edge) ** 2 * 8  # scalar lines: thinner than BT's
    norm = 0.0
    for it in range(niter):
        for direction in range(3):
            yield from mpi.compute(compute / 3)
            if direction == 0:
                fwd = row * edge + (col + 1) % edge
                bwd = row * edge + (col - 1) % edge
            elif direction == 1:
                fwd = ((row + 1) % edge) * edge + col
                bwd = ((row - 1) % edge) * edge + col
            else:
                fwd = ((row + 1) % edge) * edge + (col + 1) % edge
                bwd = ((row - 1) % edge) * edge + (col - 1) % edge
            yield from mpi.sendrecv(
                payload(face_bytes), dest=fwd, source=bwd, sendtag=400 + direction, recvtag=400 + direction
            )
            yield from mpi.sendrecv(
                payload(face_bytes), dest=bwd, source=fwd, sendtag=410 + direction, recvtag=410 + direction
            )
        if (it + 1) % 50 == 0 or it == niter - 1:
            norm = yield from mpi.allreduce(float(it), op="sum")
    return norm


def sp_validate_rank(mpi, rounds: int = 3) -> Generator:
    """Backward pipelined sweep: suffix sums right-to-left along grid rows."""
    edge = sweep_grid(mpi.size)
    row, col = divmod(mpi.rank, edge)
    total = 0.0
    for r in range(rounds):
        acc = float(mpi.rank)
        if col < edge - 1:
            data, _ = yield from mpi.recv(source=row * edge + col + 1, tag=420)
            acc += float(data[0])
        if col > 0:
            yield from mpi.send(np.array([acc]), dest=row * edge + col - 1, tag=420)
        else:
            expected = sum(row * edge + c for c in range(edge))
            if abs(acc - expected) > 1e-9:
                raise AssertionError(f"SP sweep mismatch: {acc} != {expected}")
        total += acc
    return total
