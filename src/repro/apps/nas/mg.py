"""NAS MG: multigrid V-cycles on a 3-D grid hierarchy.

Per NPB MG, ranks form a 3-D grid; every V-cycle smooths at each level and
exchanges the six face halos, with face sizes shrinking 4× per level on
the way down and growing back on the way up.  A residual-norm allreduce
closes each iteration.  Many small-to-medium messages per iteration with
modest compute — the paper's Table 1 shows 2.56 % overhead.

``validate=True`` runs a real 1-D two-level correction scheme whose halo
exchange and restriction/prolongation arithmetic is verified.
"""

from __future__ import annotations

from typing import Generator, List, Tuple

import numpy as np

from repro.apps.nas.common import PROBLEMS, decompose_3d, payload

__all__ = ["mg_rank", "mg_validate_rank"]


def _face_partners(rank: int, grid: Tuple[int, int, int]) -> List[Tuple[int, int]]:
    """(partner, direction-tag) for the six 3-D faces, periodic."""
    px, py, pz = grid
    x = rank % px
    y = (rank // px) % py
    z = rank // (px * py)

    def at(i: int, j: int, k: int) -> int:
        return (i % px) + (j % py) * px + (k % pz) * px * py

    return [
        (at(x - 1, y, z), 0),
        (at(x + 1, y, z), 1),
        (at(x, y - 1, z), 2),
        (at(x, y + 1, z), 3),
        (at(x, y, z - 1), 4),
        (at(x, y, z + 1), 5),
    ]


def mg_rank(
    mpi,
    klass: str = "S",
    iters: int = None,
    flops_per_core: float = 2.5e9,
    validate: bool = False,
) -> Generator:
    if validate:
        return (yield from mg_validate_rank(mpi))
    prob = PROBLEMS["MG"][klass]
    nx, ny, nz = prob.dims
    niter = iters if iters is not None else prob.iterations
    grid = decompose_3d(mpi.size)
    partners = _face_partners(mpi.rank, grid)
    compute_total = prob.compute_seconds(mpi.size, flops_per_core)
    # local box
    lx, ly, lz = nx // grid[0], ny // grid[1], nz // grid[2]
    levels = max(2, min(int(np.log2(max(2, min(lx, ly, lz)))), 8))
    # distribute per-iteration compute across levels, 8x less per level down
    weights = [8.0 ** (-lvl) for lvl in range(levels)]
    wsum = sum(weights) * 2  # down + up
    norm = 0.0
    for it in range(niter):
        for phase in (0, 1):  # 0 = restriction leg, 1 = prolongation leg
            level_range = range(levels) if phase == 0 else range(levels - 1, -1, -1)
            for level in level_range:
                yield from mpi.compute(compute_total * weights[level] / wsum)
                shrink = 2**level
                face_bytes = max(64.0, (ly / shrink) * (lz / shrink) * 8)
                reqs = []
                for partner, direction in partners:
                    r = yield from mpi.irecv(source=partner, tag=200 + (direction ^ 1))
                    reqs.append(r)
                for partner, direction in partners:
                    s = yield from mpi.isend(payload(face_bytes), dest=partner, tag=200 + direction)
                    reqs.append(s)
                yield from mpi.waitall(reqs)
        norm = yield from mpi.allreduce(float(it), op="sum")
    return norm


def mg_validate_rank(mpi, n_local: int = 32, cycles: int = 3) -> Generator:
    """Real 1-D smoother with verified halos and a contracting residual.

    Damped Jacobi averaging on a periodic ring: every non-mean Fourier
    mode has contraction factor (1+cosθ)/2 < 1, so the per-cycle change
    norm strictly decreases — asserted by the tests.  Halo payloads are
    cross-checked against the true neighbour boundary values.
    """
    left = (mpi.rank - 1) % mpi.size
    right = (mpi.rank + 1) % mpi.size
    u = np.full(n_local, float(mpi.rank), dtype=np.float64)
    norms = []
    first = True
    for _ in range(cycles):
        change = 0.0
        for _smooth in range(4):
            rl = yield from mpi.irecv(source=left, tag=210)
            rr = yield from mpi.irecv(source=right, tag=211)
            sl = yield from mpi.isend(u[:1].copy(), dest=left, tag=211)
            sr = yield from mpi.isend(u[-1:].copy(), dest=right, tag=210)
            yield from mpi.waitall([rl, rr, sl, sr])
            lo, hi = float(rl.data[0]), float(rr.data[0])
            if first:
                # everyone started block-constant at its rank id
                if lo != float(left) or hi != float(right):
                    raise AssertionError("halo exchange delivered wrong boundary")
                first = False
            padded = np.concatenate(([lo], u, [hi]))
            new = 0.5 * u + 0.25 * (padded[:-2] + padded[2:])
            change = float(np.abs(new - u).sum())
            u = new
        total = yield from mpi.allreduce(change, op="sum")
        norms.append(total)
    return norms
