"""NAS CG: conjugate gradient with irregular sparse matvec.

Communication skeleton per NPB CG: ranks form an (nprows × npcols) grid;
every matvec performs log₂(npcols) partial-sum exchange rounds along the
row (each of size na/nprows elements) followed by a transpose exchange,
and every CG iteration closes with two scalar dot-product allreduces.
CG has the heaviest communication:compute ratio of the five, which is why
it shows the paper's largest Table 1 overhead (4.92 %).

``validate=True`` runs a real distributed CG on the 1-D Laplacian
(rows-partitioned, halo matvec) and returns the final residual norm —
checked for convergence by the test suite.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.nas.common import PROBLEMS, decompose_2d, payload

__all__ = ["cg_rank", "cg_validate_rank"]


def cg_rank(
    mpi,
    klass: str = "S",
    iters: int = None,
    flops_per_core: float = 2.5e9,
    validate: bool = False,
) -> Generator:
    if validate:
        return (yield from cg_validate_rank(mpi))
    prob = PROBLEMS["CG"][klass]
    na = prob.dims[0]
    niter = iters if iters is not None else prob.iterations
    nprows, npcols = decompose_2d(mpi.size)
    row = mpi.rank // npcols
    col = mpi.rank % npcols
    compute = prob.compute_seconds(mpi.size, flops_per_core)
    # Partial-vector exchange size along the reduction row (bytes).
    chunk = (na / nprows) * 8
    rho = 1.0
    for it in range(niter):
        # Sparse matvec compute.
        yield from mpi.compute(compute)
        # Row-wise partial sum reduction: log2(npcols) pairwise exchanges.
        k = 1
        while k < npcols:
            partner_col = col ^ k
            if partner_col < npcols:
                partner = row * npcols + partner_col
                yield from mpi.sendrecv(
                    payload(chunk), dest=partner, source=partner, sendtag=100 + it % 8, recvtag=100 + it % 8
                )
            k <<= 1
        # Transpose exchange (send my reduced segment to the transpose rank).
        if nprows == npcols:
            transpose = col * npcols + row
            if transpose != mpi.rank:
                yield from mpi.sendrecv(
                    payload(chunk), dest=transpose, source=transpose, sendtag=110, recvtag=110
                )
        # Two dot products per CG iteration (rho, pAp).
        rho = yield from mpi.allreduce(rho * 0.99, op="sum")
        _ = yield from mpi.allreduce(float(it), op="sum")
    return rho


def cg_validate_rank(mpi, n_per_rank: int = 64, tol: float = 1e-8, max_iter: int = 400) -> Generator:
    """Real distributed CG on the 1-D Laplacian (Dirichlet), rows split
    contiguously across ranks; halo matvec via neighbour exchange."""
    n_local = n_per_rank
    rank, size = mpi.rank, mpi.size
    b = np.ones(n_local)
    x = np.zeros(n_local)

    def matvec(v: np.ndarray) -> Generator:
        lo = hi = 0.0
        reqs = []
        if rank > 0:
            r1 = yield from mpi.irecv(source=rank - 1, tag=120)
            s1 = yield from mpi.isend(v[:1].copy(), dest=rank - 1, tag=121)
            reqs += [r1, s1]
        if rank < size - 1:
            r2 = yield from mpi.irecv(source=rank + 1, tag=121)
            s2 = yield from mpi.isend(v[-1:].copy(), dest=rank + 1, tag=120)
            reqs += [r2, s2]
        yield from mpi.waitall(reqs)
        if rank > 0:
            lo = float(reqs[0].data[0])
        if rank < size - 1:
            hi = float(reqs[-2].data[0])
        out = 2.0 * v
        out[1:] -= v[:-1]
        out[:-1] -= v[1:]
        out[0] -= lo
        out[-1] -= hi
        return out

    r = b - (yield from matvec(x))
    p = r.copy()
    rs = yield from mpi.allreduce(float(r @ r), op="sum")
    for _ in range(max_iter):
        ap = yield from matvec(p)
        pap = yield from mpi.allreduce(float(p @ ap), op="sum")
        alpha = rs / pap
        x += alpha * p
        r -= alpha * ap
        rs_new = yield from mpi.allreduce(float(r @ r), op="sum")
        if rs_new < tol * tol:
            rs = rs_new
            break
        p = r + (rs_new / rs) * p
        rs = rs_new
    return float(np.sqrt(rs))
