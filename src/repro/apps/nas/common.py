"""Shared NAS problem definitions and decomposition helpers.

``flops_per_iter`` values are calibrated so that a native class-D run on
256 ranks of 2.5 GF/s cores reproduces the paper's Table 1 native
runtimes (e.g. CG: 210.37 s / 100 iterations ≈ 2.1 s/iter ≈ 1.35 TF/iter
across the machine).  Smaller classes use the official NPB problem sizes
with flops scaled by the size ratio, so scaled-down bench runs keep a
class-D-like compute:communication balance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.mpi.datatypes import Phantom

__all__ = ["NasProblem", "PROBLEMS", "decompose_2d", "decompose_3d", "payload"]


@dataclass(frozen=True)
class NasProblem:
    """One (benchmark, class) cell of the NPB suite."""

    name: str
    klass: str
    #: problem dimensions (semantic depends on the benchmark)
    dims: Tuple[int, ...]
    #: official NPB iteration count for this class
    iterations: int
    #: machine-total useful flops per iteration (calibrated, see module doc)
    flops_per_iter: float

    def compute_seconds(self, n_ranks: int, flops_per_core: float) -> float:
        """Modelled local compute time per rank per iteration."""
        return self.flops_per_iter / (n_ranks * flops_per_core)


def _scaled(base_flops: float, base_dims: Tuple[int, ...], dims: Tuple[int, ...]) -> float:
    ratio = 1.0
    for b, d in zip(base_dims, dims):
        ratio *= d / b
    return base_flops * ratio


# Class-D anchors derived from Table 1 natives (256 ranks x 2.5 GF/s):
#   BT 267.24s/250it -> 6.84e11   CG 210.37s/100it -> 1.35e12
#   FT 130.61s/25it  -> 3.34e12   MG  35.14s/50it  -> 4.50e11
#   SP 418.62s/500it -> 5.36e11
_D = {
    "BT": ((408, 408, 408), 250, 6.84e11),
    "SP": ((408, 408, 408), 500, 5.36e11),
    "CG": ((1_500_000,), 100, 1.35e12),
    "FT": ((2048, 1024, 1024), 25, 3.34e12),
    "MG": ((1024, 1024, 1024), 50, 4.50e11),
}

_DIMS: Dict[str, Dict[str, Tuple[Tuple[int, ...], int]]] = {
    "BT": {
        "S": ((12, 12, 12), 60),
        "W": ((24, 24, 24), 200),
        "A": ((64, 64, 64), 200),
        "B": ((102, 102, 102), 200),
        "C": ((162, 162, 162), 200),
        "D": ((408, 408, 408), 250),
    },
    "SP": {
        "S": ((12, 12, 12), 100),
        "W": ((36, 36, 36), 400),
        "A": ((64, 64, 64), 400),
        "B": ((102, 102, 102), 400),
        "C": ((162, 162, 162), 400),
        "D": ((408, 408, 408), 500),
    },
    "CG": {
        "S": ((1400,), 15),
        "W": ((7000,), 15),
        "A": ((14000,), 15),
        "B": ((75000,), 75),
        "C": ((150000,), 75),
        "D": ((1_500_000,), 100),
    },
    "FT": {
        "S": ((64, 64, 64), 6),
        "W": ((128, 128, 32), 6),
        "A": ((256, 256, 128), 6),
        "B": ((512, 256, 256), 20),
        "C": ((512, 512, 512), 20),
        "D": ((2048, 1024, 1024), 25),
    },
    "MG": {
        "S": ((32, 32, 32), 4),
        "W": ((128, 128, 128), 4),
        "A": ((256, 256, 256), 4),
        "B": ((256, 256, 256), 20),
        "C": ((512, 512, 512), 20),
        "D": ((1024, 1024, 1024), 50),
    },
}

PROBLEMS: Dict[str, Dict[str, NasProblem]] = {}
for _name, _classes in _DIMS.items():
    _base_dims, _base_iter, _base_flops = _D[_name]
    PROBLEMS[_name] = {}
    for _klass, (_dims, _iters) in _classes.items():
        PROBLEMS[_name][_klass] = NasProblem(
            name=_name,
            klass=_klass,
            dims=_dims,
            iterations=_iters,
            flops_per_iter=_scaled(_base_flops, _base_dims, _dims),
        )


def decompose_2d(n: int) -> Tuple[int, int]:
    """Near-square 2D factorization, power-of-two friendly (NPB CG style)."""
    rows = 1
    while rows * rows < n:
        rows *= 2
    while rows > 1 and n % rows != 0:
        rows //= 2
    return rows, n // rows


def decompose_3d(n: int) -> Tuple[int, int, int]:
    """Near-cubic 3D factorization (NPB MG style)."""
    best = (1, 1, n)
    best_score = n * n
    for a in range(1, int(round(n ** (1 / 3))) + 2):
        if n % a:
            continue
        rem = n // a
        for b in range(a, int(rem**0.5) + 2):
            if rem % b:
                continue
            c = rem // b
            score = max(a, b, c) - min(a, b, c)
            if score < best_score:
                best_score = score
                best = tuple(sorted((a, b, c)))  # type: ignore[assignment]
    return best  # type: ignore[return-value]


def payload(nbytes: float) -> Phantom:
    """Phantom payload of (at least one) bytes."""
    return Phantom(max(1, int(nbytes)))
