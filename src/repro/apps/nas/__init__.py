"""NAS Parallel Benchmark communication skeletons (BT, CG, FT, MG, SP).

Each module reproduces the benchmark's dominant communication pattern —
message partners, counts, and sizes per iteration as functions of problem
class and rank count — with an analytic compute model calibrated so the
native class-D/256-rank runtimes land on the paper's Table 1 natives
(DESIGN.md, substitution table).  ``validate=True`` switches to a small
real-data kernel with a checkable numerical result.
"""

from repro.apps.nas.common import NasProblem, PROBLEMS, decompose_2d, decompose_3d
from repro.apps.nas.bt import bt_rank
from repro.apps.nas.cg import cg_rank
from repro.apps.nas.ft import ft_rank
from repro.apps.nas.mg import mg_rank
from repro.apps.nas.sp import sp_rank

NAS_APPS = {"BT": bt_rank, "CG": cg_rank, "FT": ft_rank, "MG": mg_rank, "SP": sp_rank}

__all__ = [
    "NAS_APPS",
    "NasProblem",
    "PROBLEMS",
    "bt_rank",
    "cg_rank",
    "decompose_2d",
    "decompose_3d",
    "ft_rank",
    "mg_rank",
    "sp_rank",
]
