"""NAS FT: 3-D FFT dominated by the global transpose all-to-all.

Per NPB FT, each iteration evolves the spectrum and performs a full 3-D
FFT whose distributed dimension requires an all-to-all transpose: every
rank exchanges ``local_bytes / n_ranks`` with every other rank.  The
collective is built on the interposed point-to-point layer, so under
SDR-MPI every constituent message is acked — the heaviest collective
stress among the five benchmarks.

``validate=True`` performs a real distributed matrix transpose via
alltoall and checks the result against numpy.
"""

from __future__ import annotations

from typing import Generator

import numpy as np

from repro.apps.nas.common import PROBLEMS, payload

__all__ = ["ft_rank", "ft_validate_rank"]


def ft_rank(
    mpi,
    klass: str = "S",
    iters: int = None,
    flops_per_core: float = 2.5e9,
    validate: bool = False,
    payload_scale: float = 1.0,
) -> Generator:
    if validate:
        return (yield from ft_validate_rank(mpi))
    prob = PROBLEMS["FT"][klass]
    nx, ny, nz = prob.dims
    niter = iters if iters is not None else prob.iterations
    compute = prob.compute_seconds(mpi.size, flops_per_core)
    # complex128 grid split across ranks; alltoall chunk per peer.
    # ``payload_scale`` shrinks the wire bytes without touching the
    # message pattern — campaign-scale sweeps use it to fit the class-S
    # transpose inside the fault-campaign horizon (see repro.scenarios.nas).
    total_bytes = nx * ny * nz * 16 * payload_scale
    chunk_bytes = total_bytes / (mpi.size * mpi.size)
    chunks = [payload(chunk_bytes) for _ in range(mpi.size)]
    checksum = 0.0
    for it in range(niter):
        # evolve + local 2-D FFTs
        yield from mpi.compute(compute)
        # global transpose
        _ = yield from mpi.alltoall(chunks)
        # checksum reduction (NPB prints one per iteration)
        checksum = yield from mpi.allreduce(float(it), op="sum")
    return checksum


def ft_validate_rank(mpi, n: int = 8) -> Generator:
    """Distributed transpose of an (n·size × n·size) matrix; each rank owns
    n contiguous rows blocks and verifies its transposed block."""
    size, rank = mpi.size, mpi.rank
    full = np.arange(n * size * n * size, dtype=np.float64).reshape(n * size, n * size)
    mine = full[rank * n : (rank + 1) * n, :]
    chunks = [np.ascontiguousarray(mine[:, r * n : (r + 1) * n]) for r in range(size)]
    got = yield from mpi.alltoall(chunks)
    # Peer p contributed full[p·n:(p+1)·n, rank·n:(rank+1)·n]; stacking them
    # reassembles my column slice of the original matrix.
    stacked = np.vstack(got)
    want = full[:, rank * n : (rank + 1) * n]
    if not np.array_equal(stacked, want):
        raise AssertionError("distributed transpose mismatch")
    return float(stacked.sum())
