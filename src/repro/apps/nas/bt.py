"""NAS BT: block-tridiagonal ADI solver on a square process grid.

Per NPB BT, each iteration sweeps the three spatial dimensions; every
sweep pipelines block boundary data forward and backward along the
process-grid rows/columns/diagonals.  We model the multi-partition scheme
as, per direction, a forward and a backward boundary exchange of
``5 · (N/√p)² · 8`` bytes plus the dominant block-solve compute.

``validate=True`` runs a real pipelined prefix sweep along grid rows whose
result (prefix sums of rank ids) is exactly checkable.
"""

from __future__ import annotations

import math
from typing import Generator

import numpy as np

from repro.apps.nas.common import PROBLEMS, payload

__all__ = ["bt_rank", "bt_validate_rank", "sweep_grid"]


def sweep_grid(size: int) -> int:
    """Square process grid edge (NPB BT/SP require a perfect square)."""
    edge = int(round(math.sqrt(size)))
    if edge * edge != size:
        raise ValueError(f"BT/SP need a square process count, got {size}")
    return edge


def bt_rank(
    mpi,
    klass: str = "S",
    iters: int = None,
    flops_per_core: float = 2.5e9,
    validate: bool = False,
) -> Generator:
    if validate:
        return (yield from bt_validate_rank(mpi))
    prob = PROBLEMS["BT"][klass]
    n = prob.dims[0]
    niter = iters if iters is not None else prob.iterations
    edge = sweep_grid(mpi.size)
    row, col = divmod(mpi.rank, edge)
    compute = prob.compute_seconds(mpi.size, flops_per_core)
    face_bytes = 5 * (n / edge) ** 2 * 8
    norm = 0.0
    for it in range(niter):
        for direction in range(3):  # x, y, z sweeps
            yield from mpi.compute(compute / 3)
            if direction == 0:
                fwd = row * edge + (col + 1) % edge
                bwd = row * edge + (col - 1) % edge
            elif direction == 1:
                fwd = ((row + 1) % edge) * edge + col
                bwd = ((row - 1) % edge) * edge + col
            else:  # z sweep: diagonal neighbours in the multi-partition scheme
                fwd = ((row + 1) % edge) * edge + (col + 1) % edge
                bwd = ((row - 1) % edge) * edge + (col - 1) % edge
            # forward substitution boundary, then backward
            yield from mpi.sendrecv(
                payload(face_bytes), dest=fwd, source=bwd, sendtag=300 + direction, recvtag=300 + direction
            )
            yield from mpi.sendrecv(
                payload(face_bytes), dest=bwd, source=fwd, sendtag=310 + direction, recvtag=310 + direction
            )
        if (it + 1) % 20 == 0 or it == niter - 1:
            norm = yield from mpi.allreduce(float(it), op="sum")
    return norm


def bt_validate_rank(mpi, rounds: int = 3) -> Generator:
    """Pipelined forward sweep: each grid row computes a prefix sum of rank
    ids left-to-right; the rightmost column verifies the closed form."""
    edge = sweep_grid(mpi.size)
    row, col = divmod(mpi.rank, edge)
    total = 0.0
    for r in range(rounds):
        acc = float(mpi.rank)
        if col > 0:
            data, _ = yield from mpi.recv(source=row * edge + col - 1, tag=320)
            acc += float(data[0])
        if col < edge - 1:
            yield from mpi.send(np.array([acc]), dest=row * edge + col + 1, tag=320)
        else:
            expected = sum(row * edge + c for c in range(edge))
            if abs(acc - expected) > 1e-9:
                raise AssertionError(f"BT sweep mismatch: {acc} != {expected}")
        total += acc
    return total
