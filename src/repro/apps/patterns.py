"""Generic communication patterns.

Used by tests, examples, and the determinism checker:

* :func:`ring` — token circulation (send-deterministic)
* :func:`halo_1d` — nearest-neighbour exchange (send-deterministic)
* :func:`anysource_reduce` — fan-in with ANY_SOURCE receptions: internally
  non-deterministic reception order, externally send-deterministic — the
  Fig. 2 situation
* :func:`master_worker` — dynamic work distribution: **not**
  send-deterministic (the master's send targets depend on which worker
  answers first), the counterexample class from [Cappello et al. 2010]
* :func:`stencil_allreduce` — compute/halo/allreduce loop, the canonical
  SPMD shape of the paper's applications
"""

from __future__ import annotations

from typing import Generator, List

import numpy as np

from repro.mpi.datatypes import Phantom

__all__ = ["ring", "halo_1d", "anysource_reduce", "master_worker", "stencil_allreduce"]


def ring(mpi, laps: int = 2, nbytes: int = 64) -> Generator:
    """Pass a token around the ring *laps* times; returns hop count."""
    hops = 0
    right = (mpi.rank + 1) % mpi.size
    left = (mpi.rank - 1) % mpi.size
    token = Phantom(nbytes)
    for _ in range(laps):
        if mpi.rank == 0:
            yield from mpi.send(token, dest=right, tag=3)
            _, _ = yield from mpi.recv(source=left, tag=3)
        else:
            _, _ = yield from mpi.recv(source=left, tag=3)
            yield from mpi.send(token, dest=right, tag=3)
        hops += 1
    return hops


def halo_1d(mpi, iters: int = 5, width: int = 128, validate: bool = True) -> Generator:
    """1-D periodic halo exchange; returns the final local checksum."""
    left = (mpi.rank - 1) % mpi.size
    right = (mpi.rank + 1) % mpi.size
    local = np.full(width, float(mpi.rank), dtype=np.float64)
    for it in range(iters):
        rreqs = [
            (yield from mpi.irecv(source=left, tag=10)),
            (yield from mpi.irecv(source=right, tag=11)),
        ]
        sreqs = [
            (yield from mpi.isend(local[:1].copy(), dest=left, tag=11)),
            (yield from mpi.isend(local[-1:].copy(), dest=right, tag=10)),
        ]
        yield from mpi.waitall(sreqs + rreqs)
        if validate:
            lo, hi = rreqs[0].data, rreqs[1].data
            local[0] = 0.5 * (local[0] + lo[0])
            local[-1] = 0.5 * (local[-1] + hi[0])
    return float(local.sum())


def anysource_reduce(mpi, rounds: int = 4, nbytes: int = 32) -> Generator:
    """Everyone sends to rank 0; rank 0 receives with ANY_SOURCE.

    The reception *order* at rank 0 varies with timing, but the values it
    sends back (and their order) do not — send-deterministic despite the
    wildcard, which is exactly the property SDR-MPI exploits (Fig. 2).
    """
    total = 0.0
    for r in range(rounds):
        if mpi.rank == 0:
            acc = 0.0
            for _ in range(mpi.size - 1):
                data, st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=20)
                acc += float(data[0]) if isinstance(data, np.ndarray) else 0.0
            # Broadcast the result: same sends in every execution.
            for dst in range(1, mpi.size):
                yield from mpi.send(np.array([acc]), dest=dst, tag=21)
            total += acc
        else:
            yield from mpi.send(np.array([float(mpi.rank * (r + 1))]), dest=0, tag=20)
            data, _ = yield from mpi.recv(source=0, tag=21)
            total += float(data[0])
    return total


def master_worker(mpi, tasks: int = 12, task_cost: float = 2e-6) -> Generator:
    """Dynamic master-worker scheduling — NOT send-deterministic.

    The master hands the next task to whichever worker reports first, so
    the master's sequence of send destinations depends on message timing.
    The determinism checker must flag this pattern.
    """
    if mpi.rank == 0:
        next_task = 0
        results: List[float] = []
        active = mpi.size - 1
        # Seed one task per worker.
        for w in range(1, mpi.size):
            if next_task < tasks:
                yield from mpi.send(np.array([float(next_task)]), dest=w, tag=30)
                next_task += 1
            else:
                yield from mpi.send(np.array([-1.0]), dest=w, tag=30)
                active -= 1
        while active > 0:
            data, st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=31)
            results.append(float(data[0]))
            if next_task < tasks:
                yield from mpi.send(np.array([float(next_task)]), dest=st.source, tag=30)
                next_task += 1
            else:
                yield from mpi.send(np.array([-1.0]), dest=st.source, tag=30)
                active -= 1
        return sum(results)
    done = 0.0
    while True:
        data, _ = yield from mpi.recv(source=0, tag=30)
        task = float(data[0])
        if task < 0:
            return done
        # Rank-dependent task duration: later workers are slower, so the
        # completion order genuinely races.
        yield from mpi.compute(task_cost * (1 + 0.3 * mpi.rank))
        yield from mpi.send(np.array([task * 2]), dest=0, tag=31)
        done += task


def stencil_allreduce(mpi, iters: int = 10, width: int = 256, compute: float = 5e-6) -> Generator:
    """Halo exchange + local compute + convergence allreduce per iteration."""
    left = (mpi.rank - 1) % mpi.size
    right = (mpi.rank + 1) % mpi.size
    buf = Phantom(width * 8)
    norm = 0.0
    for it in range(iters):
        got_l, _ = yield from mpi.sendrecv(buf, dest=right, source=left, sendtag=40, recvtag=40)
        got_r, _ = yield from mpi.sendrecv(buf, dest=left, source=right, sendtag=41, recvtag=41)
        yield from mpi.compute(compute)
        norm = yield from mpi.allreduce(float(mpi.rank + it), op="sum")
    return norm
