"""NetPipe: the ping-pong microbenchmark behind Fig. 7.

Two ranks on distinct nodes bounce a message of each size back and forth;
reported latency is half the round-trip, throughput is bits moved per
second of half-round-trip — NetPipe's convention.
"""

from __future__ import annotations

from typing import Dict, Generator, Sequence

import numpy as np

from repro.core.config import ReplicationConfig
from repro.harness.runner import Job, cluster_for
from repro.mpi.datatypes import Phantom

__all__ = ["DEFAULT_SIZES", "netpipe_rank", "netpipe_sweep"]

#: the paper's Fig. 7 x-axis: 1 B .. 8 MB
DEFAULT_SIZES = tuple(
    int(x) for x in (1, 8, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304, 8388608)
)


def netpipe_rank(
    mpi,
    nbytes: int = 1,
    iters: int = 10,
    warmup: int = 2,
    validate: bool = False,
) -> Generator:
    """One size point of the ping-pong.  Returns the per-direction latency."""
    if mpi.size != 2:
        raise ValueError("NetPipe runs on exactly 2 ranks")
    if validate:
        payload = np.full(max(1, nbytes // 8), float(mpi.rank + 1))
    else:
        payload = Phantom(nbytes)
    peer = 1 - mpi.rank
    t0 = 0.0
    for it in range(warmup + iters):
        if it == warmup:
            t0 = mpi.wtime()
        if mpi.rank == 0:
            yield from mpi.send(payload, dest=peer, tag=0)
            got, _ = yield from mpi.recv(source=peer, tag=0)
        else:
            got, _ = yield from mpi.recv(source=peer, tag=0)
            yield from mpi.send(payload, dest=peer, tag=0)
        if validate and isinstance(got, np.ndarray):
            assert got[0] == float(peer + 1), "ping-pong payload corrupted"
    return (mpi.wtime() - t0) / (2 * iters)


def netpipe_sweep(
    protocol: str = "native",
    sizes: Sequence[int] = DEFAULT_SIZES,
    iters: int = 10,
    degree: int = 2,
) -> Dict[int, Dict[str, float]]:
    """Run the full Fig. 7 sweep for one protocol.

    Returns ``{size: {"latency_s", "throughput_mbps"}}``.  One process per
    node, as in the paper's NetPipe setup (§4.2).
    """
    results: Dict[int, Dict[str, float]] = {}
    for nbytes in sizes:
        if protocol == "native":
            cfg = ReplicationConfig(degree=1, protocol="native")
            cluster = cluster_for(2, 1, cores_per_node=1)
        else:
            cfg = ReplicationConfig(degree=degree, protocol=protocol)
            cluster = cluster_for(2, degree, cores_per_node=1)
        job = Job(2, cfg=cfg, cluster=cluster).launch(netpipe_rank, nbytes=nbytes, iters=iters)
        res = job.run()
        latency = res.app_results[0]
        results[nbytes] = {
            "latency_s": latency,
            "throughput_mbps": (nbytes * 8) / latency / 1e6,
        }
    return results
