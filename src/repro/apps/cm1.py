"""CM1: cloud-model miniature (Bryan & Fritsch 2002).

CM1 models small-scale atmospheric phenomena (thunderstorms, tornadoes)
with a split-explicit time stepper on a 2-D horizontally decomposed 3-D
grid.  The paper runs 160³ on 256 ranks and reports 3.14 % overhead
(Table 2) — like HPCCG it posts **ANY_SOURCE** boundary receives, which is
what makes it interesting for the send-determinism argument.

Skeleton: per timestep, several prognostic fields exchange four lateral
halos (anonymous receives, direction tags) and small sub-stepped acoustic
exchanges; one CFL/diagnostic allreduce per step.  Compute is calibrated
to the paper's 210.21 s native over 200 modelled steps.

``validate=True`` runs a real 2-D periodic advection step with verified
halos and a conserved-mass check.
"""

from __future__ import annotations

import math
from typing import Generator, Tuple

import numpy as np

from repro.mpi.datatypes import Phantom

__all__ = ["cm1_rank", "CM1_DEFAULT"]

#: paper problem: global grid and modelled step count
CM1_DEFAULT = {"n": 160, "steps": 200}

#: calibrated per-rank flops per step: 210.21 s / 200 steps × 2.5 GF/s
_FLOPS_PER_STEP_PER_RANK = 2.63e9

#: prognostic fields whose halos are exchanged every large step
_FIELDS = 6
#: acoustic sub-steps per large step (small messages)
_SUBSTEPS = 4


def _grid2d(size: int) -> Tuple[int, int]:
    edge = int(round(math.sqrt(size)))
    while size % edge:
        edge -= 1
    return edge, size // edge


def cm1_rank(
    mpi,
    n: int = 160,
    steps: int = 200,
    flops_per_core: float = 2.5e9,
    validate: bool = False,
) -> Generator:
    if validate:
        return (yield from cm1_validate_rank(mpi))
    px, py = _grid2d(mpi.size)
    ix, iy = mpi.rank % px, mpi.rank // px
    west = (ix - 1) % px + iy * px
    east = (ix + 1) % px + iy * px
    south = ix + ((iy - 1) % py) * px
    north = ix + ((iy + 1) % py) * px
    # lateral face: (local y-extent × full z) doubles, ghost width 1
    face_x = Phantom(max(64, (n // py) * n * 8))
    face_y = Phantom(max(64, (n // px) * n * 8))
    small_x = Phantom(max(64, (n // py) * 8 * 8))
    small_y = Phantom(max(64, (n // px) * 8 * 8))
    scale = (n**3 / mpi.size) / (160**3 / 256)
    compute = _FLOPS_PER_STEP_PER_RANK * scale / flops_per_core
    cfl = 0.0
    for step in range(steps):
        # prognostic field halos: anonymous receives, direction-tagged
        for field in range(_FIELDS):
            reqs = []
            for d in range(4):
                reqs.append((yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=600 + d)))
            reqs.append((yield from mpi.isend(face_x, dest=east, tag=600 + 0)))
            reqs.append((yield from mpi.isend(face_x, dest=west, tag=600 + 1)))
            reqs.append((yield from mpi.isend(face_y, dest=north, tag=600 + 2)))
            reqs.append((yield from mpi.isend(face_y, dest=south, tag=600 + 3)))
            yield from mpi.waitall(reqs)
        # acoustic sub-steps: thin exchanges
        for sub in range(_SUBSTEPS):
            got_w, _ = yield from mpi.sendrecv(small_x, dest=east, source=west, sendtag=610, recvtag=610)
            got_s, _ = yield from mpi.sendrecv(small_y, dest=north, source=south, sendtag=611, recvtag=611)
        yield from mpi.compute(compute)
        cfl = yield from mpi.allreduce(0.5 + 1e-3 * step, op="max")
    return cfl


def cm1_validate_rank(mpi, n_local: int = 16, steps: int = 5) -> Generator:
    """Real 2-D periodic upwind advection with ANY_SOURCE halos.

    Advects a rank-indexed field one cell east per step on a ring of
    column blocks; mass conservation and the exact rotation are verified.
    """
    px, py = _grid2d(mpi.size)
    if py != 1:
        # validation kernel uses a 1-D ring of column blocks
        px, py = mpi.size, 1
    west = (mpi.rank - 1) % px
    east = (mpi.rank + 1) % px
    field = np.full((n_local,), float(mpi.rank), dtype=np.float64)
    mass0 = yield from mpi.allreduce(float(field.sum()), op="sum")
    for step in range(steps):
        r = yield from mpi.irecv(source=mpi.ANY_SOURCE, tag=620)
        s = yield from mpi.isend(field[-1:].copy(), dest=east, tag=620)
        yield from mpi.waitall([r, s])
        incoming = float(r.data[0])
        field = np.concatenate(([incoming], field[:-1]))
    mass1 = yield from mpi.allreduce(float(field.sum()), op="sum")
    if abs(mass0 - mass1) > 1e-9:
        raise AssertionError(f"CM1 advection lost mass: {mass0} -> {mass1}")
    return mass1
