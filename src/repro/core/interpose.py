"""The vProtocol-style interposition contract.

Open MPI's vProtocol framework lets a fault-tolerance layer wrap the PML
without reimplementing it (§4.1): it adds pre/post-treatment around
``pml_send`` and subscribes to the ``pml_match`` / ``pml_recv_complete``
events.  :class:`BaseProtocol` is that surface here.  The API facade calls
``app_isend`` / ``app_irecv``; protocols return :class:`SendHandle` /
:class:`RecvHandle` objects whose ``done`` predicate encodes any extra
completion conditions (SDR-MPI: "all r-1 acks collected").

:class:`NativeProtocol` is the identity interposition — unmodified Open
MPI — used for every "Native" column in the paper's tables.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.mpi.pml import Pml, PmlRecvRequest, PmlSendRequest
from repro.mpi.status import Status

__all__ = ["SendHandle", "RecvHandle", "BaseProtocol", "NativeProtocol"]


def _noop() -> Generator:
    """An empty generator (the default, cost-free advance)."""
    return
    yield  # pragma: no cover


class SendHandle:
    """Application-level send completion handle.

    ``done`` is MPI_Wait's predicate for the send: the library-level sends
    have completed *and* every protocol condition holds.  ``needs_ack`` is
    populated by parallel protocols (empty for native/mirror).
    """

    __slots__ = ("pml_reqs", "needs_ack", "status", "world_dst", "seq", "payload", "nbytes")

    def __init__(
        self,
        pml_reqs: List[PmlSendRequest],
        world_dst: int,
        seq: int,
        payload: Any = None,
        nbytes: int = 0,
    ) -> None:
        self.pml_reqs = pml_reqs
        self.needs_ack: set = set()
        self.status: Optional[Status] = None
        self.world_dst = world_dst
        self.seq = seq
        self.payload = payload
        self.nbytes = nbytes

    @property
    def done(self) -> bool:
        return not self.needs_ack and all(r.done for r in self.pml_reqs)

    def advance(self) -> Generator:
        return _noop()


class RecvHandle:
    """Application-level receive handle wrapping a PML receive request."""

    __slots__ = ("pml_req",)

    def __init__(self, pml_req: PmlRecvRequest) -> None:
        self.pml_req = pml_req

    @property
    def done(self) -> bool:
        return self.pml_req.done

    @property
    def data(self) -> Any:
        return self.pml_req.data

    @property
    def status(self) -> Optional[Status]:
        return self.pml_req.status

    def advance(self) -> Generator:
        return _noop()


class BaseProtocol:
    """Common state: per-destination application-message sequence numbers.

    ``seq`` is the per (my world rank → destination world rank) counter of
    application messages in program order.  Send-determinism (Definition 1)
    guarantees replicas assign identical numbers to corresponding messages —
    the invariant every replication protocol here keys on.
    """

    name = "base"

    def __init__(self, pml: Pml, world_rank: int) -> None:
        self.pml = pml
        self.world_rank = world_rank
        self._send_seq: Dict[int, int] = {}
        #: messages sent/received at the application level (metrics)
        self.app_sends = 0
        self.app_recvs = 0

    def next_seq(self, world_dst: int) -> int:
        seq = self._send_seq.get(world_dst, 0)
        self._send_seq[world_dst] = seq + 1
        return seq

    # ------------------------------------------------------------- interface
    def app_isend(
        self, ctx: Any, src_rank: int, tag: int, data: Any, world_dst: int,
        synchronous: bool = False,
    ) -> Generator[Any, Any, SendHandle]:  # pragma: no cover - abstract
        raise NotImplementedError

    def app_irecv(
        self, ctx: Any, source: int, tag: int, buf: Any = None
    ) -> Generator[Any, Any, RecvHandle]:  # pragma: no cover - abstract
        raise NotImplementedError

    def stats(self) -> dict:
        return {
            "app_sends": self.app_sends,
            "app_recvs": self.app_recvs,
            **self.pml.matching.stats(),
        }


class NativeProtocol(BaseProtocol):
    """Identity interposition: world rank == physical process."""

    name = "native"

    def app_isend(self, ctx, src_rank, tag, data, world_dst, synchronous=False) -> Generator:
        self.app_sends += 1
        seq = self.next_seq(world_dst)
        req = yield from self.pml.isend(
            ctx=ctx,
            src_rank=src_rank,
            tag=tag,
            data=data,
            world_src=self.world_rank,
            world_dst=world_dst,
            seq=seq,
            dst_phys=world_dst,
            synchronous=synchronous,
        )
        return SendHandle([req], world_dst, seq, nbytes=req.nbytes)

    def app_irecv(self, ctx, source, tag, buf=None) -> Generator:
        self.app_recvs += 1
        req = yield from self.pml.irecv(ctx=ctx, source=source, tag=tag, buf=buf)
        return RecvHandle(req)
