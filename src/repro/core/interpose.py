"""The vProtocol-style interposition contract.

Open MPI's vProtocol framework lets a fault-tolerance layer wrap the PML
without reimplementing it (§4.1): it adds pre/post-treatment around
``pml_send`` and subscribes to the ``pml_match`` / ``pml_recv_complete``
events.  :class:`BaseProtocol` is that surface here.  The API facade calls
``app_isend`` / ``app_irecv``; protocols return :class:`SendHandle` /
:class:`RecvHandle` objects whose ``done`` predicate encodes any extra
completion conditions (SDR-MPI: "all r-1 acks collected").

:class:`NativeProtocol` is the identity interposition — unmodified Open
MPI — used for every "Native" column in the paper's tables.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, TYPE_CHECKING

from repro.mpi.datatypes import copy_payload, nbytes_of
from repro.mpi.handles import RecvHandle, SendHandle

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.mpi.pml import Pml

__all__ = ["SendHandle", "RecvHandle", "BaseProtocol", "NativeProtocol"]


class BaseProtocol:
    """Common state: per-destination application-message sequence numbers.

    ``seq`` is the per (my world rank → destination world rank) counter of
    application messages in program order.  Send-determinism (Definition 1)
    guarantees replicas assign identical numbers to corresponding messages —
    the invariant every replication protocol here keys on.
    """

    name = "base"

    def __init__(self, pml: Pml, world_rank: int) -> None:
        self.pml = pml
        self.world_rank = world_rank
        self._send_seq: Dict[int, int] = {}
        #: messages sent/received at the application level (metrics)
        self.app_sends = 0
        self.app_recvs = 0

    def next_seq(self, world_dst: int) -> int:
        seq = self._send_seq.get(world_dst, 0)
        self._send_seq[world_dst] = seq + 1
        return seq

    # ------------------------------------------------------------- interface
    def app_isend(
        self, ctx: Any, src_rank: int, tag: int, data: Any, world_dst: int,
        synchronous: bool = False,
    ) -> Generator[Any, Any, SendHandle]:  # pragma: no cover - abstract
        raise NotImplementedError

    def app_irecv(
        self, ctx: Any, source: int, tag: int, buf: Any = None
    ) -> Generator[Any, Any, RecvHandle]:  # pragma: no cover - abstract
        raise NotImplementedError

    def stats(self) -> dict:
        return {
            "app_sends": self.app_sends,
            "app_recvs": self.app_recvs,
            **self.pml.matching.stats(),
        }


class NativeProtocol(BaseProtocol):
    """Identity interposition: world rank == physical process."""

    name = "native"

    def app_isend(self, ctx, src_rank, tag, data, world_dst, synchronous=False) -> Generator:
        self.app_sends += 1
        seq = self.next_seq(world_dst)
        # charge-then-post split of pml.isend (see Pml.post_send)
        pml = self.pml
        payload = copy_payload(data)
        nbytes = nbytes_of(payload)
        overhead = pml.send_cost(world_dst)
        if overhead > 0.0:
            yield overhead
        req = pml.post_send(
            ctx, src_rank, tag, payload, self.world_rank, world_dst,
            seq, world_dst, nbytes, synchronous,
        )
        return SendHandle([req], world_dst, seq, nbytes=nbytes)

    def app_irecv(self, ctx, source, tag, buf=None) -> Generator:
        self.app_recvs += 1
        req = yield from self.pml.irecv(ctx=ctx, source=source, tag=tag, buf=buf)
        return RecvHandle(req)
