"""The vProtocol-style interposition contract.

Open MPI's vProtocol framework lets a fault-tolerance layer wrap the PML
without reimplementing it (§4.1): it adds pre/post-treatment around
``pml_send`` and subscribes to the ``pml_match`` / ``pml_recv_complete``
events.  :class:`BaseProtocol` is that surface here.  The API facade calls
``app_isend`` / ``app_irecv``; protocols return :class:`SendHandle` /
:class:`RecvHandle` objects whose ``done`` predicate encodes any extra
completion conditions (SDR-MPI: "all r-1 acks collected").

:class:`NativeProtocol` is the identity interposition — unmodified Open
MPI — used for every "Native" column in the paper's tables.

Envelope ownership across this surface
--------------------------------------
Every envelope a protocol sees through the interposition surface is
**owned by the PML's recycling arena** (see :mod:`repro.mpi.pml`).  The
contract, per entry point:

* ``on_match(recv, env)`` / ``on_recv_complete(env, recv)`` / a
  ``ctrl_handlers`` callable — *env* is a **borrow**: valid while the
  handler runs (through every resumption, for generator handlers), recycled
  the moment it returns.  Handlers copy out the fields they need; to hold
  the whole message past the handler, call ``env.retain()`` (balanced later
  by ``pml.release_env(env)``) or take an arena-independent snapshot with
  ``env.copy()`` → :class:`~repro.mpi.pml.MessageView`.  When the runtime
  guard is enabled, :func:`guard_hook` audits the retain discipline: a
  hook whose retain is never balanced is named at end of run
  (``unbalanced_retain`` strand site) instead of leaking anonymously.
* ``incoming_filter(env)`` — ownership **transfers** to the filter when it
  returns False: the filter must hand the envelope to
  ``pml.deliver_to_matching`` (now or later — reorder buffers hold
  ownership while an envelope is parked) or return it via
  ``pml.release_env`` (duplicate drops).  A filter that *owns* an
  envelope across a ``yield`` must additionally route it to
  ``pml.strand_env`` if the generator is torn down mid-suspension (a
  fail-stop crash of the owning process) — see
  :meth:`repro.core.replicated.ReplicatedBase._filter_incoming` for the
  pattern — or the crash-aware arena balance will name the leak.
* ``pml.deliver_to_matching(env)`` — consumes the envelope: it ends up
  recycled after completion hooks, or parked in the unexpected queue
  (which the PML owns and reaps).

Payload references obtained inside the window (``env.data``,
``recv.data``) follow the copy-on-write snapshot discipline and stay valid
after recycling — only the envelope *shell* is recycled.  Protocol-side
retention (SDR's resend store, redMPI's vote state) therefore keeps
payloads, digests, or :class:`~repro.mpi.pml.MessageView` snapshots, never
raw envelopes.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Generator, TYPE_CHECKING

from repro.mpi.datatypes import copy_payload, nbytes_of
from repro.mpi.handles import RecvHandle, SendHandle
from repro.mpi.pml import MessageView

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.mpi.pml import Envelope, Pml

__all__ = [
    "SendHandle",
    "RecvHandle",
    "MessageView",
    "BaseProtocol",
    "NativeProtocol",
    "filter_guard_enabled",
    "set_filter_guard",
    "guard_incoming_filter",
    "guard_hook",
]

#: runtime ownership guard for ``incoming_filter`` implementations (see
#: :func:`guard_incoming_filter`); defaults to the REPRO_FILTER_GUARD
#: environment variable so test/debug runs can flip it without code changes
_FILTER_GUARD = os.environ.get("REPRO_FILTER_GUARD", "") not in ("", "0")


def filter_guard_enabled() -> bool:
    """True when newly installed incoming filters get the runtime guard."""
    return _FILTER_GUARD


def set_filter_guard(enabled: bool) -> bool:
    """Flip the filter guard; returns the previous setting.

    Applies to filters installed *after* the call — ``Pml.incoming_filter``
    wraps at assignment time.  Debug aid, not a production switch: the
    guard adds one generator frame and a set operation per application
    frame received.
    """
    global _FILTER_GUARD
    previous = _FILTER_GUARD
    _FILTER_GUARD = enabled
    return previous


def guard_incoming_filter(
    pml: "Pml", fn: Callable[["Envelope"], Generator]
) -> Callable[["Envelope"], Generator]:
    """Wrap *fn* so an envelope-owning yield abandoned unguarded fails loudly.

    The ownership contract (below) requires a filter that *owns* an
    envelope across a ``yield`` to route it to ``pml.strand_env`` when the
    generator is torn down mid-suspension (a fail-stop crash of the owning
    process).  A filter that forgets strands silently — the leak only
    surfaces as an unattributed imbalance in the end-of-run arena check.
    This wrapper tracks the hand-off points (``deliver_to_matching``,
    ``release_env``, ``strand_env`` all clear the pending token) and, when
    the filter is torn down still holding the token, strands the envelope
    itself (keeping the balance provable) and raises an ``AssertionError``
    naming the filter — turning a silent leak into a pointed diagnostic.

    Installed automatically at ``pml.incoming_filter = ...`` assignment
    when :func:`filter_guard_enabled` is true.
    """

    def guarded(env: "Envelope") -> Generator[Any, Any, bool]:
        pending = pml._guard_pending
        if pending is None:
            pending = pml._guard_pending = set()
        token = id(env)
        pending.add(token)
        try:
            deliver = yield from fn(env)
        except BaseException as exc:
            if token in pending:
                pending.discard(token)
                pml.strand_env(env, "unguarded_filter")
                message = (
                    f"incoming_filter {getattr(fn, '__qualname__', fn)!r} on proc "
                    f"{pml.proc} was torn down while owning an envelope without "
                    "routing it to pml.strand_env — every envelope-owning yield "
                    "must be guarded (see the ownership contract in "
                    "repro.core.interpose)"
                )
                # Crash unwinding swallows exceptions raised during
                # teardown (the crash wins), so record the violation for
                # the harness to re-raise at end of run as well.
                if pml.guard_violations is None:
                    pml.guard_violations = []
                pml.guard_violations.append(message)
                raise AssertionError(message) from exc
            raise
        pending.discard(token)
        return deliver

    guarded.__wrapped__ = fn
    return guarded


#: env argument position per hook event: ``on_match(recv, env)`` vs
#: ``on_recv_complete(env, recv)``
_HOOK_ENV_INDEX = {"on_match": 1, "on_recv_complete": 0}


def guard_hook(pml: "Pml", fn: Callable[..., Any], kind: str) -> Callable[..., Generator]:
    """Wrap an ``on_match``/``on_recv_complete`` hook in retain accounting.

    Hooks receive the envelope as a *borrow*; ``env.retain()`` is the
    escape hatch, balanced later by ``pml.release_env``.  A hook that
    retains and forgets the release leaks silently — the shell never
    returns to the arena, and the end-of-run imbalance carries no clue
    about who held it.  This wrapper extends the ``incoming_filter``
    guard's token discipline to the hook surface: it snapshots the
    envelope's refcount around the hook invocation, and a net increase
    records the (envelope, hook) pair in the PML's retain ledger.  The
    ledger entry is cleared when the envelope finally recycles (the
    balancing release arrived, in whatever order); entries still present
    at end of run are stranded at the ``unbalanced_retain`` site and
    re-raised by the harness naming the hook —
    :meth:`repro.mpi.pml.Pml.reap_retain_ledger`.

    Installed automatically at ``pml.on_match.append(...)`` /
    ``pml.on_recv_complete.append(...)`` when :func:`filter_guard_enabled`
    is true (hook lists wrap at append time, like filters at assignment).
    """
    env_index = _HOOK_ENV_INDEX[kind]
    hook_name = getattr(fn, "__qualname__", repr(fn))

    def guarded(*args: Any) -> Generator:
        env = args[env_index]
        before = env._refs
        result = fn(*args)
        if result is not None:
            yield from result
        if env._refs > before:
            ledger = pml._retain_ledger
            if ledger is None:
                ledger = pml._retain_ledger = {}
            ledger[id(env)] = (env, hook_name)

    guarded.__wrapped__ = fn
    return guarded


class BaseProtocol:
    """Common state: per-destination application-message sequence numbers.

    ``seq`` is the per (my world rank → destination world rank) counter of
    application messages in program order.  Send-determinism (Definition 1)
    guarantees replicas assign identical numbers to corresponding messages —
    the invariant every replication protocol here keys on.
    """

    name = "base"

    #: protocols are one-per-physical-process; slots keep the per-instance
    #: footprint to the mutable residue (see ``ProtocolShared`` in
    #: :mod:`repro.core.replicated` for the shared read-only half)
    __slots__ = ("pml", "world_rank", "_send_seq", "app_sends", "app_recvs")

    def __init__(self, pml: Pml, world_rank: int) -> None:
        self.pml = pml
        self.world_rank = world_rank
        self._send_seq: Dict[int, int] = {}
        #: messages sent/received at the application level (metrics)
        self.app_sends = 0
        self.app_recvs = 0

    def next_seq(self, world_dst: int) -> int:
        seq = self._send_seq.get(world_dst, 0)
        self._send_seq[world_dst] = seq + 1
        return seq

    # ------------------------------------------------------------- interface
    def app_isend(
        self, ctx: Any, src_rank: int, tag: int, data: Any, world_dst: int,
        synchronous: bool = False,
    ) -> Generator[Any, Any, SendHandle]:  # pragma: no cover - abstract
        raise NotImplementedError

    def app_irecv(
        self, ctx: Any, source: int, tag: int, buf: Any = None
    ) -> Generator[Any, Any, RecvHandle]:  # pragma: no cover - abstract
        raise NotImplementedError

    def stats(self) -> dict:
        return {
            "app_sends": self.app_sends,
            "app_recvs": self.app_recvs,
            **self.pml.stats(),
        }


class NativeProtocol(BaseProtocol):
    """Identity interposition: world rank == physical process."""

    name = "native"

    __slots__ = ()

    def app_isend(self, ctx, src_rank, tag, data, world_dst, synchronous=False) -> Generator:
        self.app_sends += 1
        seq = self.next_seq(world_dst)
        # charge-then-post split of pml.isend (see Pml.post_send)
        pml = self.pml
        payload = copy_payload(data)
        nbytes = nbytes_of(payload)
        overhead = pml.send_cost(world_dst)
        if overhead > 0.0:
            yield overhead
        req = pml.post_send(
            ctx, src_rank, tag, payload, self.world_rank, world_dst, seq, world_dst, nbytes, synchronous
        )
        return SendHandle([req], world_dst, seq, nbytes=nbytes)

    def app_irecv(self, ctx, source, tag, buf=None) -> Generator:
        self.app_recvs += 1
        req = yield from self.pml.irecv(ctx=ctx, source=source, tag=tag, buf=buf)
        return RecvHandle(req)
