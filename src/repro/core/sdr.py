"""SDR-MPI: the paper's send-deterministic parallel replication protocol.

Protocol summary (§3.2, Algorithm 1):

* **Parallel sends** — replica *k* of rank *i* sends each application
  message only to replica *k* of the destination rank (``physicalDests``).
* **Receiver-side acks** — when a message is fully received at the library
  level (``pml_recv_complete``), the receiver sends an ack to every *other*
  alive replica of the sending rank.  Acking at ``irecvComplete`` rather
  than at application-level completion is what breaks the
  Irecv/Send/Wait deadlock (§3.3).
* **Gated send completion** — a send request completes only when its
  library-level sends are done *and* acks from all other alive replicas of
  the destination rank have been collected (``MPI_Wait`` lines 12-14).
* **Retention** — the payload of every message still missing acks is
  retained; if a replica of my own rank fails and I am elected substitute,
  I transmit the retained messages its receivers never got (lines 18-27)
  and take over its send duties.
* **No leader** — anonymous receptions (``MPI_ANY_SOURCE``) are resolved
  locally on each replica; send-determinism guarantees the externally
  visible behaviour cannot diverge (§3.1, Fig. 2).

Differences from Algorithm 1, all behaviour-preserving:

* acks are handled through a table keyed by (destination rank, sequence
  number) instead of posting one ``irecv`` per expected ack — arithmetic
  instead of request objects, same completion condition;
* acks that arrive before their send is posted (the other replica pair
  running ahead) are parked in an early-ack table;
* duplicate suppression + per-channel in-order release (see
  :class:`repro.core.replicated.ReplicatedBase`) make failover and recovery
  hand-offs idempotent.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from repro.core.config import ReplicationConfig
from repro.core.interpose import SendHandle, RecvHandle
from repro.core.membership import MembershipService
from repro.core.replicated import ReplicatedBase
from repro.core.worlds import ReplicaMap
from repro.mpi.datatypes import copy_payload, nbytes_of
from repro.mpi.pml import Envelope, Pml, PmlRecvRequest

__all__ = ["SdrProtocol", "SdrSendHandle"]

#: ctrl key for acknowledgement frames
ACK = "sdr.ack"
#: ctrl key for recovery notifications (§3.4)
RECOVERED = "sdr.recovered"


class SdrSendHandle(SendHandle):
    """Send handle retaining what a substitute resend needs."""

    __slots__ = ("ctx", "src_rank", "tag")

    def __init__(
        self,
        world_dst: int,
        seq: int,
        ctx: Any,
        src_rank: int,
        tag: int,
        payload: Any,
        nbytes: Optional[int] = None,
    ) -> None:
        super().__init__(
            [], world_dst, seq, payload=payload, nbytes=nbytes_of(payload) if nbytes is None else nbytes
        )
        self.ctx = ctx
        self.src_rank = src_rank
        self.tag = tag


class SdrProtocol(ReplicatedBase):
    """Per-physical-process SDR-MPI state machine.

    Per-instance state is the slotted mutable residue of the protocol —
    send cursors, retention, failover scratch — while everything identical
    across the job's stacks (replica arithmetic, cfg cost knobs) lives in
    the shared :class:`~repro.core.replicated.ProtocolShared` object.  The
    failover scratch (``substitute``, ``_early_acks``) is lazy: a
    crash-free run never materializes it.
    """

    name = "sdr"

    __slots__ = (
        "physical_dests",
        "physical_src",
        "_substitute",
        "retention",
        "_early_acks",
        "recovery_hook",
        "acks_sent",
        "acks_received",
        "resends",
        "failovers_handled",
        "_suspended",
        "speculative_failovers",
    )

    def __init__(
        self,
        pml: Pml,
        rmap: ReplicaMap,
        membership: MembershipService,
        cfg: ReplicationConfig,
        shared: Optional[Any] = None,
    ) -> None:
        super().__init__(pml, rmap, membership, cfg, shared=shared)
        #: physicalDests_p[rank]: replicas of `rank` I send application
        #: messages to (Algorithm 1 line 1); lazily defaulted to my pair.
        self.physical_dests: Dict[int, List[int]] = {}
        #: physicalSrc_p[rank] (line 2) — informational under logical-rank
        #: matching, kept for introspection and tests.
        self.physical_src: Dict[int, int] = {}
        #: substitute_p[rep] (line 3) storage, materialized on first use —
        #: identity until a failover rewrites it (see the property).
        self._substitute: Optional[Dict[int, int]] = None
        #: messages awaiting acks: (world_dst, seq) -> handle
        self.retention: Dict[Tuple[int, int], SdrSendHandle] = {}
        #: acks that arrived before their send was posted (lazy: only the
        #: replica pair running behind ever parks one)
        self._early_acks: Optional[Dict[Tuple[int, int], Set[int]]] = None
        #: recovery manager callback (installed by the harness when enabled)
        self.recovery_hook = None
        #: per-suspect reversal state for speculative failovers (lazy — a
        #: run without false suspicions never materializes it); see
        #: :meth:`on_suspicion`
        self._suspended: Optional[Dict[int, dict]] = None
        # metrics
        self.acks_sent = 0
        self.acks_received = 0
        self.resends = 0
        self.failovers_handled = 0
        self.speculative_failovers = 0
        pml.ctrl_handlers[ACK] = self._on_ack
        pml.ctrl_handlers[RECOVERED] = self._on_recovered
        pml.on_recv_complete.append(self._ack_on_recv_complete)

    @property
    def substitute(self) -> Dict[int, int]:
        """substitute_p[rep]: who sends on behalf of each replica of MY
        rank — identity until a failover, so the per-proc dict is built on
        first access rather than for all 8192+ stacks up front."""
        sub = self._substitute
        if sub is None:
            sub = self._substitute = {rep: rep for rep in range(self.rmap.degree)}
        return sub

    # ----------------------------------------------------------- destinations
    def _default_dests(self, world_dst: int) -> List[int]:
        pair = self.rmap.phys(world_dst, self.rep)
        return [pair] if self.membership.is_alive(pair) else []

    def dests_for(self, world_dst: int) -> List[int]:
        dests = self.physical_dests.get(world_dst)
        if dests is None:
            dests = self._default_dests(world_dst)
            self.physical_dests[world_dst] = dests
        return dests

    # ------------------------------------------------------------------ send
    def app_isend(
        self, ctx, src_rank, tag, data, world_dst, synchronous=False
    ) -> Generator[Any, Any, SdrSendHandle]:
        self.app_sends += 1
        seq = self.next_seq(world_dst)
        payload = copy_payload(data)
        nbytes = nbytes_of(payload)
        handle = SdrSendHandle(world_dst, seq, ctx, src_rank, tag, payload, nbytes=nbytes)
        # Algorithm 1 lines 5-9, in replica-index order: transmit to my
        # physicalDests, post an expected-ack receive for every other alive
        # replica of the destination rank.  Posting the ack receive costs
        # CPU (request management) — a real, measurable part of the
        # protocol's small-message overhead.
        # dests_for inlined (one dict probe per application send)
        dests = self.physical_dests.get(world_dst)
        if dests is None:
            dests = self.dests_for(world_dst)
        pml = self.pml
        endpoints = pml.fabric.endpoints
        shared = self.shared
        ack_post = shared.ack_post_overhead
        for base in shared.rep_bases:
            ph = base + world_dst  # rmap.phys, replica-major
            if ph in dests:
                if not endpoints[ph].alive:
                    continue
                # charge-then-post split of pml.isend (hot: one per
                # application message per destination replica)
                overhead = pml.send_cost(ph)
                if overhead > 0.0:
                    yield overhead
                handle.pml_reqs.append(
                    pml.post_send(
                        ctx, src_rank, tag, payload, self.rank, world_dst, seq, ph, nbytes, synchronous
                    )
                )
            elif endpoints[ph].alive:
                handle.needs_ack.add(ph)
                if ack_post > 0:
                    yield ack_post
        suspended = self._suspended
        if suspended and handle.needs_ack:
            self._forgive_suspects(handle, suspended)
        early_acks = self._early_acks
        early = early_acks.pop((world_dst, seq), None) if early_acks else None
        if early:
            handle.needs_ack -= early
        if handle.needs_ack:
            self.retention[(world_dst, seq)] = handle
        return handle

    def _forgive_suspects(self, handle: SdrSendHandle, suspended: Dict[int, dict]) -> None:
        """A suspected replica cannot be waited on: drop it from the ack
        gate so sends complete, and — when the suspect would have been my
        pairwise destination — park the handle for replay at clear time
        (the suspect missed the physical copy my pair-send would have
        carried).  Suspects of other replica indices get the message from
        their own pair once its backlog replays; only the forgiveness is
        needed there."""
        n_ranks = self.shared.n_ranks
        for s in list(handle.needs_ack):
            snap = suspended.get(s)
            if snap is None:
                continue
            handle.needs_ack.discard(s)
            if s // n_ranks == self.rep:  # rmap.rep_of, replica-major
                snap["backlog"].append(handle)

    # ------------------------------------------------------------------ recv
    def app_irecv(self, ctx, source, tag, buf=None) -> Generator[Any, Any, RecvHandle]:
        self.app_recvs += 1
        req = yield from self.pml.irecv(ctx=ctx, source=source, tag=tag, buf=buf)
        return RecvHandle(req)

    # ------------------------------------------------------------------ acks
    def _ack_on_recv_complete(self, env: Envelope, recv: Optional[PmlRecvRequest]) -> Generator:
        """Algorithm 1 lines 15-17: on irecvComplete, ack the other senders.

        Body of :meth:`_send_acks` inlined — this hook runs once per
        received application message, and the sub-generator delegation is
        measurable at that rate.  *env* is a borrow (see
        :mod:`repro.core.interpose`): every field the acks need is read
        while the hook runs; nothing retains the envelope.
        """
        shared = self.shared
        n_ranks = shared.n_ranks
        sender_rep = env.src_phys // n_ranks  # rmap.rep_of, unchecked
        pml = self.pml
        endpoints = pml.fabric.endpoints
        send_row = pml._send_row
        node_of = pml._node_of
        src_rank = env.world_src
        seq = env.seq
        ack_bytes = shared.ack_bytes
        for rep, base in enumerate(shared.rep_bases):
            if rep == sender_rep:
                continue
            ph = base + src_rank  # rmap.phys, replica-major
            if endpoints[ph].alive:
                self.acks_sent += 1
                # pml.send_cost inlined: one row probe per ack sent
                cost = send_row.get(node_of[ph])
                if cost is None:
                    cost = pml._send_cost_to(ph)
                if cost[0] > 0.0:
                    yield cost[0]
                pml.inject_ctrl(ph, ACK, (self.rank, seq), ack_bytes)

    def _send_acks(self, src_rank: int, sender_rep: int, seq: int) -> Generator:
        n_ranks = self.rmap.n_ranks
        is_alive = self.membership.is_alive
        for rep in range(self.rmap.degree):
            if rep == sender_rep:
                continue
            ph = rep * n_ranks + src_rank  # rmap.phys, replica-major
            if is_alive(ph):
                self.acks_sent += 1
                yield from self.pml.send_ctrl(
                    ph, ACK, (self.rank, seq), nbytes=self.cfg.ack_bytes
                )

    def _on_duplicate(self, env: Envelope) -> Generator:
        # Re-ack so a substitute that resent (its ack was in flight at
        # failover time) can still clear its retention.
        yield from super()._on_duplicate(env)
        yield from self._send_acks(env.world_src, self.rmap.rep_of(env.src_phys), env.seq)

    def _on_ack(self, env: Envelope) -> Generator:
        # ctrl borrow: (world_dst, seq) is unpacked out of the envelope
        # up front; the PML recycles it when this generator finishes.
        world_dst, seq = env.data
        self.acks_received += 1
        overhead = self.shared.ack_handle_overhead
        if overhead > 0:
            yield overhead
        handle = self.retention.get((world_dst, seq))
        if handle is not None:
            handle.needs_ack.discard(env.src_phys)
            if not handle.needs_ack:
                del self.retention[(world_dst, seq)]
        elif seq >= self._send_seq.get(world_dst, 0):
            # The other replica pair ran ahead: park the ack.
            early_acks = self._early_acks
            if early_acks is None:
                early_acks = self._early_acks = {}
            early_acks.setdefault((world_dst, seq), set()).add(env.src_phys)
        # else: late ack for a fully-acked message (after a re-ack) — drop.
        yield from ()

    # -------------------------------------------------------------- failures
    def on_failure(self, failed: int) -> Generator:
        """Algorithm 1 lines 18-35."""
        rank_f = self.rmap.rank_of(failed)
        rep_f = self.rmap.rep_of(failed)
        self.failovers_handled += 1
        sub = self.membership.substitute_rep(rank_f)  # line 19
        if sub is None:
            # All replicas of rank_f are gone; the application is lost.
            # The harness surfaces this; nothing a protocol can do (§1:
            # this is when you fall back to checkpoint restart).
            return
        if self.rank == rank_f:
            covered = [rep_l for rep_l, s in self.substitute.items() if s == rep_f]
            if sub == self.rep:
                # Lines 21-25: I am the substitute — adopt the bereaved
                # receivers and resend whatever they are missing.
                for rep_l in covered:
                    for j in range(self.rmap.n_ranks):
                        ph = self.rmap.phys(j, rep_l)
                        if ph == self.pml.proc or not self.membership.is_alive(ph):
                            continue
                        dests = self.dests_for(j)
                        if ph not in dests:
                            dests.append(ph)
                    for (j, seq), handle in list(self.retention.items()):
                        ph = self.rmap.phys(j, rep_l)
                        if ph in handle.needs_ack and self.membership.is_alive(ph):
                            handle.needs_ack.discard(ph)
                            self.resends += 1
                            req = yield from self.pml.isend(
                                ctx=handle.ctx,
                                src_rank=handle.src_rank,
                                tag=handle.tag,
                                data=handle.payload,
                                world_src=self.rank,
                                world_dst=j,
                                seq=seq,
                                dst_phys=ph,
                                already_copied=True,
                            )
                            handle.pml_reqs.append(req)
                            if not handle.needs_ack:
                                del self.retention[(j, seq)]
            # Lines 26-27: whoever was covered by the failed replica is now
            # covered by the substitute (every replica of rank_f tracks this).
            for rep_l in covered:
                self.substitute[rep_l] = sub
        else:
            # Lines 28-35: a replica of another rank.
            if self.physical_src.get(rank_f, self.rmap.phys(rank_f, self.rep)) == failed:
                self.physical_src[rank_f] = self.rmap.phys(rank_f, sub)  # line 30
            dests = self.dests_for(rank_f)
            if failed in dests:
                dests.remove(failed)  # stop sending to the dead replica (Fig. 3)
            self.pml.cancel_sends_to(failed)  # line 32
            # Line 33: cancel ack expectations from the dead process.
            for (j, seq), handle in list(self.retention.items()):
                if failed in handle.needs_ack:
                    handle.needs_ack.discard(failed)
                    if not handle.needs_ack:
                        del self.retention[(j, seq)]
            # Lines 34-35 (retargeting posted receives) are implicit:
            # matching is keyed on logical ranks, so the substitute's
            # messages match the already-posted receive requests.

    # ------------------------------------------------------------- suspicion
    def on_suspicion(self, suspect: int) -> Generator:
        """Speculative failover: treat a suspected-but-alive replica as
        failed *reversibly*.

        The full Algorithm 1 failover runs (substitute adoption, retained
        resends, ack forgiveness) so the job keeps progressing at detection
        speed — but everything needed to hand the suspect its missed
        traffic back is snapshotted first: which coverage the substitute
        map held, whether the suspect was my pairwise destination, and
        every retained handle whose physical copy the suspect will miss.
        :meth:`on_suspicion_cleared` replays from that snapshot; the
        per-channel dedup filter absorbs anything the suspect did receive.
        """
        if suspect == self.pml.proc or not self.membership.is_alive(suspect):
            yield from ()
            return
        suspended = self._suspended
        if suspended is None:
            suspended = self._suspended = {}
        if suspect in suspended:
            return
        rank_f = self.rmap.rank_of(suspect)
        rep_f = self.rmap.rep_of(suspect)
        snap: dict = {
            "backlog": [],
            "covered": [],
            "sub": rep_f,
            "had_in_dests": False,
            "physical_src": self.physical_src.get(rank_f),
        }
        if self.rank == rank_f:
            snap["covered"] = [rep_l for rep_l, s in self.substitute.items() if s == rep_f]
        else:
            snap["had_in_dests"] = suspect in self.dests_for(rank_f)
            if rep_f == self.rep:
                # The suspect is my pairwise destination: every message to
                # its rank that is still retained may have been cancelled
                # mid-flight by the failover below — park them all, the
                # suspect's dedup filter drops the ones it already has.
                for (j, _seq), handle in list(self.retention.items()):
                    if j == rank_f:
                        snap["backlog"].append(handle)
        suspended[suspect] = snap
        self.speculative_failovers += 1
        yield from self.on_failure(suspect)
        if self.rank == rank_f:
            snap["sub"] = self.substitute.get(rep_f, rep_f)

    def on_suspicion_cleared(self, suspect: int) -> Generator:
        """Reverse a speculative failover: the suspect was alive all along.

        Restores the substitute identity (handing adopted receivers back),
        resumes the pairwise send pattern, and replays — in sequence order
        — every parked handle the suspect missed while it was written off.
        """
        suspended = self._suspended
        snap = suspended.pop(suspect, None) if suspended else None
        if snap is None:
            yield from ()
            return
        if not self.membership.is_alive(suspect):
            return  # died while suspected: the definitive failure path governs
        rank_f = self.rmap.rank_of(suspect)
        rep_f = self.rmap.rep_of(suspect)
        if self.rank == rank_f:
            sub = snap["sub"]
            restored = False
            for rep_l in snap["covered"]:
                if self.substitute.get(rep_l) == sub:
                    self.substitute[rep_l] = rep_f
                    restored = True
            if restored and sub == self.rep and sub != rep_f:
                # I adopted the suspect's receivers speculatively (lines
                # 21-25) — hand them back, exactly as after a recovery.
                for j in range(self.rmap.n_ranks):
                    dests = self.physical_dests.get(j)
                    if not dests:
                        continue
                    my_pair = self.rmap.phys(j, self.rep)
                    for rep_l in snap["covered"]:
                        ph = self.rmap.phys(j, rep_l)
                        if ph in dests and ph != my_pair:
                            dests.remove(ph)
            return
        # Peer of another rank: resume the pairwise pattern...
        if snap["physical_src"] is None:
            self.physical_src.pop(rank_f, None)
        else:
            self.physical_src[rank_f] = snap["physical_src"]
        if snap["had_in_dests"]:
            dests = self.dests_for(rank_f)
            if suspect not in dests:
                dests.append(suspect)
        # ... and replay what the suspect missed, in send order (its
        # in-order filter dedups whatever did get through before the
        # speculative cancel).
        for handle in snap["backlog"]:
            self.resends += 1
            req = yield from self.pml.isend(
                ctx=handle.ctx,
                src_rank=handle.src_rank,
                tag=handle.tag,
                data=handle.payload,
                world_src=self.rank,
                world_dst=handle.world_dst,
                seq=handle.seq,
                dst_phys=suspect,
                already_copied=True,
            )
            handle.pml_reqs.append(req)

    # -------------------------------------------------------------- recovery
    def recovery_point(self) -> Generator:
        """Application-declared safe point for a pending respawn (§3.4).

        The harness's :class:`~repro.core.recovery.RecoveryManager` installs
        ``recovery_hook``; if this process is the substitute for a rank with
        a pending respawn, the fork + notification broadcast happen here.
        """
        if self.recovery_hook is not None:
            yield from self.recovery_hook(self)
        else:
            yield from ()

    def broadcast_recovery(self, new_proc: int, rep_f: int) -> Generator:
        """Substitute side of §3.4: notify every alive process over the
        regular FIFO channels, then stop sending on the dead replica's
        behalf (its duties move to the respawned process)."""
        for p, ep in enumerate(self.pml.fabric.endpoints):
            if p != self.pml.proc and ep.alive:
                yield from self.pml.send_ctrl(p, RECOVERED, (self.rank, new_proc, rep_f))
        self.substitute[rep_f] = rep_f
        for j in range(self.rmap.n_ranks):
            dests = self.physical_dests.get(j)
            ph = self.rmap.phys(j, rep_f)
            if dests and ph in dests and ph != self.rmap.phys(j, self.rep):
                dests.remove(ph)

    def _on_recovered(self, env: Envelope) -> Generator:
        """Peer side of §3.4: resume the pairwise pattern toward the new
        replica and replay everything the substitute has not acked."""
        rank_f, new_proc, rep_f = env.data
        if self.rank == rank_f:
            self.substitute[rep_f] = rep_f
            return
        self.physical_src[rank_f] = self.rmap.phys(rank_f, self.rep)
        dests = self.dests_for(rank_f)
        if self.rep == rep_f and new_proc not in dests:
            dests.append(new_proc)
        # Messages to rank_f not yet acked by the substitute existed before
        # the fork (FIFO channels order the sub's acks against its
        # notification), so the new replica's cloned state lacks them.
        if self.rep == rep_f:
            sub_phys = env.src_phys  # the notification sender IS the substitute
            for (j, seq), handle in list(self.retention.items()):
                if j != rank_f:
                    continue
                if sub_phys in handle.needs_ack:
                    # Not yet acked by the substitute at notification time
                    # (FIFO: the sub's acks for anything it received before
                    # the fork arrive before this notification), so the
                    # clone is missing it: transmit directly.
                    self.resends += 1
                    req = yield from self.pml.isend(
                        ctx=handle.ctx,
                        src_rank=handle.src_rank,
                        tag=handle.tag,
                        data=handle.payload,
                        world_src=self.rank,
                        world_dst=j,
                        seq=seq,
                        dst_phys=new_proc,
                        already_copied=True,
                    )
                    handle.pml_reqs.append(req)
                # Either way the new replica owes us no ack: we have now
                # transmitted to it ourselves, or its cloned state already
                # contains the message (receivers never ack the physical
                # process they got the message from).
                handle.needs_ack.discard(new_proc)
                if not handle.needs_ack:
                    del self.retention[(j, seq)]

    def substitute_of(self, rank: int, rep: int) -> int:
        """Current substitute replica index for (rank, rep) as seen here."""
        if rank == self.rank:
            return self.substitute[rep]
        sub = self.membership.substitute_rep(rank)
        return rep if sub is None else sub

    # ----------------------------------------------------------------- state
    def clone_state_for_respawn(self) -> dict:
        """Protocol state a forked replica inherits from the substitute."""
        return {
            "expected": dict(self._expected),
            "send_seq": dict(self._send_seq),
            "retention": {
                key: (h.ctx, h.src_rank, h.tag, h.payload, set(h.needs_ack))
                for key, h in self.retention.items()
            },
        }

    def adopt_state(self, state: dict) -> None:
        """Install forked state on a freshly respawned replica."""
        self._expected = dict(state["expected"])
        self._send_seq = dict(state["send_seq"])
        for (j, seq), (ctx, src_rank, tag, payload, needs) in state["retention"].items():
            handle = SdrSendHandle(j, seq, ctx, src_rank, tag, payload)
            handle.needs_ack = set(needs)
            self.retention[(j, seq)] = handle

    def stats(self) -> dict:
        base = super().stats()
        base.update(
            acks_sent=self.acks_sent,
            acks_received=self.acks_received,
            resends=self.resends,
            retained=len(self.retention),
            failovers_handled=self.failovers_handled,
            speculative_failovers=self.speculative_failovers,
        )
        return base
