"""redMPI-style silent-data-corruption (SDC) detection (§2.4).

Each replica sends its application message to its pairwise receiver, plus a
small **hash** of the payload to every other replica of the receiving rank.
A receiver therefore holds, for each logical message, its own full copy and
r-1 foreign hashes; disagreement flags a silent fault.  Crashes are *not*
tolerated (no acks, no retention) — redMPI targets data integrity, which is
why it can skip the synchronization SDR-MPI needs for crash coverage.

Non-determinism is handled with the same leader-based agreement as rMPI
(the paper: "redMPI also adopts a leader-based approach to deal with
non-determinism"), so its overhead grows on ANY_SOURCE-heavy applications —
the ``abl-redmpi`` experiment.

Fault injection: :meth:`RedMpiProtocol.corrupt_next_send` flips the payload
digest of the next outgoing message of this replica, modelling a silent
bit-flip between computation and transmission.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.core.baselines.leader import LeaderDecideMixin
from repro.core.interpose import RecvHandle, SendHandle
from repro.core.replicated import ReplicatedBase
from repro.mpi.datatypes import Phantom, copy_payload, nbytes_of
from repro.mpi.pml import Envelope, PmlRecvRequest
from repro.mpi.status import ANY_SOURCE

__all__ = ["RedMpiProtocol", "SdcEvent"]

#: ctrl key for payload-hash frames
HASH = "red.hash"


@dataclass
class SdcEvent:
    """A detected silent-data-corruption: hashes disagreed."""

    src_rank: int
    seq: int
    own_digest: int
    foreign_digest: int
    detected_at: float


def payload_digest(payload: Any) -> int:
    """64-bit digest of a payload (size-keyed for phantom buffers)."""
    if payload is None:
        return 0
    if isinstance(payload, Phantom):
        return hash(("phantom", payload.nbytes)) & 0xFFFFFFFFFFFFFFFF
    if isinstance(payload, np.ndarray):
        raw = payload.tobytes()
    elif isinstance(payload, (bytes, bytearray)):
        raw = bytes(payload)
    else:
        raw = repr(payload).encode()
    return int.from_bytes(hashlib.blake2b(raw, digest_size=8).digest(), "little")


class RedMpiProtocol(LeaderDecideMixin, ReplicatedBase):
    name = "redmpi"

    __slots__ = LeaderDecideMixin.DECIDER_SLOTS + (
        "_own_digests",
        "_foreign_digests",
        "_compared",
        "sdc_events",
        "hashes_sent",
        "_corrupt_pending",
    )

    def __init__(self, pml, rmap, membership, cfg, shared=None) -> None:
        ReplicatedBase.__init__(self, pml, rmap, membership, cfg, shared=shared)
        self._init_decider()
        #: (src_rank, seq) -> digest of my own received copy
        self._own_digests: Dict[Tuple[int, int], int] = {}
        #: (src_rank, seq) -> list of foreign digests not yet compared
        self._foreign_digests: Dict[Tuple[int, int], List[int]] = {}
        #: (src_rank, seq) -> number of foreign digests already compared
        self._compared: Dict[Tuple[int, int], int] = {}
        self.sdc_events: List[SdcEvent] = []
        self.hashes_sent = 0
        self._corrupt_pending = 0
        pml.ctrl_handlers[HASH] = self._on_hash
        pml.on_recv_complete.append(self._check_on_recv_complete)

    # --------------------------------------------------------------- sending
    def corrupt_next_send(self, count: int = 1) -> None:
        """Inject SDC: the next *count* sends of this replica carry payloads
        whose transmitted digest will not match the other replica's."""
        self._corrupt_pending += count

    def app_isend(
        self, ctx, src_rank, tag, data, world_dst, synchronous=False
    ) -> Generator[Any, Any, SendHandle]:
        self.app_sends += 1
        seq = self.next_seq(world_dst)
        payload = copy_payload(data)
        digest = payload_digest(payload)
        if self._corrupt_pending > 0:
            self._corrupt_pending -= 1
            digest ^= 0xDEADBEEF  # the silent bit-flip
        handle = SendHandle([], world_dst, seq, payload=payload, nbytes=nbytes_of(payload))
        pair = self.pair_of(world_dst)
        if self.membership.is_alive(pair):
            req = yield from self.pml.isend(
                ctx=ctx,
                src_rank=src_rank,
                tag=tag,
                data=payload,
                world_src=self.rank,
                world_dst=world_dst,
                seq=seq,
                dst_phys=pair,
                already_copied=True,
                synchronous=synchronous,
            )
            handle.pml_reqs.append(req)
        # Hash to all *other* replicas of the receiving rank.
        for rep in range(self.rmap.degree):
            if rep == self.rep:
                continue
            ph = self.rmap.phys(world_dst, rep)
            if self.membership.is_alive(ph):
                self.hashes_sent += 1
                yield from self.pml.send_ctrl(
                    ph, HASH, (self.rank, seq, digest), nbytes=self.cfg.hash_bytes
                )
        return handle

    # -------------------------------------------------------------- receiving
    def app_irecv(self, ctx, source, tag, buf=None) -> Generator[Any, Any, RecvHandle]:
        self.app_recvs += 1
        if source == ANY_SOURCE:
            return (yield from self.leader_irecv(ctx, source, tag, buf))
        req = yield from self.pml.irecv(ctx=ctx, source=source, tag=tag, buf=buf)
        return RecvHandle(req)

    def _check_on_recv_complete(self, env: Envelope, recv: Optional[PmlRecvRequest]) -> Generator:
        # Vote state digests the payload *inside* the borrow window: the
        # retained comparison record is a 64-bit digest, never the
        # envelope (env.copy() is the escape hatch if a protocol variant
        # ever needs the full message for its votes).
        key = (env.world_src, env.seq)
        own = payload_digest(env.data)
        self._own_digests[key] = own
        self._compare(key)
        yield from ()

    def _on_hash(self, env: Envelope) -> Generator:
        src_rank, seq, digest = env.data
        self._foreign_digests.setdefault((src_rank, seq), []).append(digest)
        self._compare((src_rank, seq))
        yield from ()

    def _compare(self, key: Tuple[int, int]) -> None:
        own = self._own_digests.get(key)
        foreign = self._foreign_digests.get(key)
        if own is None or not foreign:
            return
        for digest in foreign:
            if digest != own:
                self.sdc_events.append(
                    SdcEvent(
                        src_rank=key[0],
                        seq=key[1],
                        own_digest=own,
                        foreign_digest=digest,
                        detected_at=self.pml.sim.now,
                    )
                )
        compared = self._compared.get(key, 0) + len(foreign)
        del self._foreign_digests[key]
        if compared >= self.rmap.degree - 1:
            # All r-1 foreign digests checked: forget the message.
            self._own_digests.pop(key, None)
            self._compared.pop(key, None)
        else:
            self._compared[key] = compared

    def stats(self) -> dict:
        base = ReplicatedBase.stats(self)
        base.update(
            hashes_sent=self.hashes_sent,
            sdc_detected=len(self.sdc_events),
            decisions_sent=self.decisions_sent,
            anonymous_recvs=self.anonymous_recvs,
        )
        return base
