"""MR-MPI-style mirror replication protocol (§2.4).

Every replica of rank A sends each application message to **all** replicas
of rank B: as long as one replica of A survives, every replica of B keeps
receiving.  No acknowledgements or retention are needed — reliability is
bought with bandwidth: O(q·r²) application messages versus the parallel
protocol's O(q·r).  Receivers see r copies of every logical message and
keep the first (the shared dedup filter drops the rest).

Failure handling is trivial: nothing to elect, nothing to resend.  This is
the protocol's selling point and its cost — both measurable in the
``abl-mirror`` experiment.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.core.interpose import RecvHandle, SendHandle
from repro.core.replicated import ReplicatedBase
from repro.mpi.datatypes import copy_payload, nbytes_of

__all__ = ["MirrorProtocol"]


class MirrorProtocol(ReplicatedBase):
    name = "mirror"

    __slots__ = ()

    def app_isend(
        self, ctx, src_rank, tag, data, world_dst, synchronous=False
    ) -> Generator[Any, Any, SendHandle]:
        self.app_sends += 1
        seq = self.next_seq(world_dst)
        payload = copy_payload(data)
        handle = SendHandle([], world_dst, seq, payload=payload, nbytes=nbytes_of(payload))
        for rep in range(self.rmap.degree):
            dst_phys = self.rmap.phys(world_dst, rep)
            if not self.membership.is_alive(dst_phys):
                continue
            req = yield from self.pml.isend(
                ctx=ctx,
                src_rank=src_rank,
                tag=tag,
                data=payload,
                world_src=self.rank,
                world_dst=world_dst,
                seq=seq,
                dst_phys=dst_phys,
                already_copied=True,
                synchronous=synchronous,
            )
            handle.pml_reqs.append(req)
        return handle

    def app_irecv(self, ctx, source, tag, buf=None) -> Generator[Any, Any, RecvHandle]:
        self.app_recvs += 1
        req = yield from self.pml.irecv(ctx=ctx, source=source, tag=tag, buf=buf)
        return RecvHandle(req)

    def on_failure(self, failed: int) -> Generator:
        """Mirror needs only to stop targeting the dead endpoint."""
        self.pml.cancel_sends_to(failed)
        yield from ()
