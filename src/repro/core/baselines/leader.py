"""rMPI-style leader-based parallel protocol (§2.4, §3.1).

Identical to SDR-MPI on the send/ack path, but non-deterministic receive
outcomes are **agreed** instead of resolved locally: the leader replica of
a rank posts anonymous receives normally; when one matches (``pml_match`` —
the source is now known), the leader sends the decided ``(source, tag)`` to
its follower replicas.  A follower holds its anonymous receive *deferred*
until the decision arrives, then posts a specific-source receive.

Cost structure the paper predicts (Fig. 2, §3.1) and the ``abl-leader``
experiment measures:

* an extra leader→follower control message on the critical path of every
  anonymous reception;
* followers post their receives late, so messages land in the unexpected
  queue (extra copy in a real MPI; counted by the matching engine here).

Deterministic receives take the SDR fast path unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.core.interpose import RecvHandle
from repro.core.sdr import SdrProtocol
from repro.mpi.pml import Envelope, PmlRecvRequest
from repro.mpi.status import ANY_SOURCE

__all__ = ["LeaderProtocol", "LeaderDecideMixin", "DeferredRecvHandle"]

#: ctrl key for leader decisions on anonymous receptions
DECIDE = "ldr.decide"


class DeferredRecvHandle(RecvHandle):
    """A follower's anonymous receive, parked until the leader decides."""

    __slots__ = ("proto", "anon_id", "ctx", "tag", "buf", "_posted")

    #: deferred receives do real work in advance() (posting on decision)
    needs_advance = True

    def __init__(self, proto: "LeaderDecideMixin", anon_id: int, ctx: Any, tag: int, buf: Any) -> None:
        super().__init__(PmlRecvRequest(ctx, ANY_SOURCE, tag, buf))  # placeholder
        self.proto = proto
        self.anon_id = anon_id
        self.ctx = ctx
        self.tag = tag
        self.buf = buf
        self._posted = False

    @property
    def done(self) -> bool:
        return self._posted and self.pml_req.done

    def advance(self) -> Optional[Generator]:
        if self._posted:
            return None
        decision = self.proto.decisions.pop(self.anon_id, None)
        if decision is None:
            return None
        return self._post_decided(decision)

    def _post_decided(self, decision: Tuple[int, int]) -> Generator:
        source, tag = decision
        self.pml_req = yield from self.proto.pml.irecv(
            ctx=self.ctx, source=source, tag=tag, buf=self.buf
        )
        self._posted = True


class LeaderDecideMixin:
    """Leader election + decision plumbing for anonymous receptions.

    Mixed into protocols that must agree on non-deterministic outcomes
    (this baseline and redMPI).  Requires the host protocol to provide
    ``pml``, ``rmap``, ``membership``, ``rank``, ``rep``.

    Empty ``__slots__``: the decider attributes (see ``DECIDER_SLOTS``)
    are declared by each slotted host class — Python forbids two bases
    with non-empty slot layouts, so the mixin contributes behaviour only.
    """

    __slots__ = ()

    #: per-instance decider state, declared in each host class's __slots__
    DECIDER_SLOTS = (
        "_anon_seq",
        "decisions",
        "_anon_pending",
        "_arming_anon",
        "decisions_sent",
        "anonymous_recvs",
    )

    def _init_decider(self) -> None:
        self._anon_seq = 0
        #: follower side: anon_id -> decided (source, tag)
        self.decisions: Dict[int, Tuple[int, int]] = {}
        #: leader side: pml request -> anon_id, resolved at pml_match
        self._anon_pending: Dict[int, int] = {}
        #: anon_id being posted right now (an anonymous receive can match an
        #: unexpected message *during* irecv, before we learn the request id)
        self._arming_anon: Optional[int] = None
        self.decisions_sent = 0
        self.anonymous_recvs = 0
        self.pml.ctrl_handlers[DECIDE] = self._on_decide
        self.pml.on_match.append(self._decide_on_match)

    def _is_leader(self) -> bool:
        """The leader is the lowest alive replica of my rank.

        Runs once per anonymous reception: scan replica slots directly
        instead of materializing the alive-replica list.
        """
        rmap = self.rmap
        n_ranks = rmap.n_ranks
        endpoints = self.pml.fabric.endpoints
        for rep in range(rmap.degree):
            if endpoints[rep * n_ranks + self.rank].alive:
                return rep == self.rep
        return False

    def _next_anon_id(self) -> int:
        self._anon_seq += 1
        return self._anon_seq

    def _decide_on_match(self, recv: PmlRecvRequest, env: Envelope) -> Optional[Generator]:
        anon_id = self._anon_pending.pop(id(recv), None)
        if anon_id is None:
            # Matched from the unexpected queue while still inside irecv.
            anon_id, self._arming_anon = self._arming_anon, None
        if anon_id is None:
            return None
        return self._broadcast_decision(anon_id, env)

    def _broadcast_decision(self, anon_id: int, env: Envelope) -> Generator:
        # Charge-then-inject split (see Pml.inject_ctrl): one decision per
        # anonymous reception puts this on the leader ablation's hot path.
        pml = self.pml
        endpoints = pml.fabric.endpoints
        n_ranks = self.rmap.n_ranks
        for rep in range(self.rmap.degree):
            if rep == self.rep:
                continue
            ph = rep * n_ranks + self.rank  # rmap.phys, replica-major
            if endpoints[ph].alive:
                self.decisions_sent += 1
                overhead = pml.send_cost(ph)
                if overhead > 0.0:
                    yield overhead
                pml.inject_ctrl(ph, DECIDE, (anon_id, env.src_rank, env.tag))

    def _on_decide(self, env: Envelope) -> None:
        # Plain ctrl handler (no charge, no yields): returning None lets
        # the PML skip driving a generator per decision frame.  The
        # decision tuple is unpacked out of the borrowed envelope here.
        anon_id, source, tag = env.data
        self.decisions[anon_id] = (source, tag)
        return None

    def leader_irecv(self, ctx, source, tag, buf) -> Generator[Any, Any, RecvHandle]:
        """Anonymous-reception entry point used by app_irecv overrides."""
        self.anonymous_recvs += 1
        anon_id = self._next_anon_id()
        if self._is_leader():
            self._arming_anon = anon_id
            req = yield from self.pml.irecv(ctx=ctx, source=source, tag=tag, buf=buf)
            if self._arming_anon is None:
                # Decision already broadcast from the in-irecv match.
                return RecvHandle(req)
            self._arming_anon = None
            self._anon_pending[id(req)] = anon_id
            return RecvHandle(req)
        return DeferredRecvHandle(self, anon_id, ctx, tag, buf)


class LeaderProtocol(LeaderDecideMixin, SdrProtocol):
    """SDR's send/ack machinery + leader-based anonymous receptions."""

    name = "leader"

    __slots__ = LeaderDecideMixin.DECIDER_SLOTS

    def __init__(self, pml, rmap, membership, cfg, shared=None) -> None:
        SdrProtocol.__init__(self, pml, rmap, membership, cfg, shared=shared)
        self._init_decider()

    def app_irecv(self, ctx, source, tag, buf=None) -> Generator[Any, Any, RecvHandle]:
        if source == ANY_SOURCE:
            self.app_recvs += 1
            return (yield from self.leader_irecv(ctx, source, tag, buf))
        return (yield from SdrProtocol.app_irecv(self, ctx, source, tag, buf))

    def stats(self) -> dict:
        base = SdrProtocol.stats(self)
        base.update(
            decisions_sent=self.decisions_sent,
            anonymous_recvs=self.anonymous_recvs,
        )
        return base
