"""rMPI-style leader-based parallel protocol (§2.4, §3.1).

Identical to SDR-MPI on the send/ack path, but non-deterministic receive
outcomes are **agreed** instead of resolved locally: the leader replica of
a rank posts anonymous receives normally; when one matches (``pml_match`` —
the source is now known), the leader sends the decided ``(source, tag)`` to
its follower replicas.  A follower holds its anonymous receive *deferred*
until the decision arrives, then posts a specific-source receive.

Cost structure the paper predicts (Fig. 2, §3.1) and the ``abl-leader``
experiment measures:

* an extra leader→follower control message on the critical path of every
  anonymous reception;
* followers post their receives late, so messages land in the unexpected
  queue (extra copy in a real MPI; counted by the matching engine here).

Deterministic receives take the SDR fast path unchanged.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Tuple

from repro.core.interpose import RecvHandle, SendHandle
from repro.core.sdr import SdrProtocol
from repro.mpi.pml import Envelope, Pml, PmlRecvRequest
from repro.mpi.status import ANY_SOURCE, Status

__all__ = ["LeaderProtocol", "LeaderDecideMixin", "DeferredRecvHandle"]

#: ctrl key for leader decisions on anonymous receptions
DECIDE = "ldr.decide"


class DeferredRecvHandle(RecvHandle):
    """A follower's anonymous receive, parked until the leader decides."""

    __slots__ = ("proto", "anon_id", "ctx", "tag", "buf", "_posted")

    def __init__(self, proto: "LeaderDecideMixin", anon_id: int, ctx: Any, tag: int, buf: Any) -> None:
        super().__init__(PmlRecvRequest(ctx, ANY_SOURCE, tag, buf))  # placeholder
        self.proto = proto
        self.anon_id = anon_id
        self.ctx = ctx
        self.tag = tag
        self.buf = buf
        self._posted = False

    @property
    def done(self) -> bool:
        return self._posted and self.pml_req.done

    def advance(self) -> Generator:
        if not self._posted:
            decision = self.proto.decisions.pop(self.anon_id, None)
            if decision is not None:
                source, tag = decision
                self.pml_req = yield from self.proto.pml.irecv(
                    ctx=self.ctx, source=source, tag=tag, buf=self.buf
                )
                self._posted = True


class LeaderDecideMixin:
    """Leader election + decision plumbing for anonymous receptions.

    Mixed into protocols that must agree on non-deterministic outcomes
    (this baseline and redMPI).  Requires the host protocol to provide
    ``pml``, ``rmap``, ``membership``, ``rank``, ``rep``.
    """

    def _init_decider(self) -> None:
        self._anon_seq = 0
        #: follower side: anon_id -> decided (source, tag)
        self.decisions: Dict[int, Tuple[int, int]] = {}
        #: leader side: pml request -> anon_id, resolved at pml_match
        self._anon_pending: Dict[int, int] = {}
        #: anon_id being posted right now (an anonymous receive can match an
        #: unexpected message *during* irecv, before we learn the request id)
        self._arming_anon: Optional[int] = None
        self.decisions_sent = 0
        self.anonymous_recvs = 0
        self.pml.ctrl_handlers[DECIDE] = self._on_decide
        self.pml.on_match.append(self._decide_on_match)

    def _is_leader(self) -> bool:
        """The leader is the lowest alive replica of my rank."""
        alive = self.membership.alive_replicas(self.rank)
        return bool(alive) and self.rmap.rep_of(alive[0]) == self.rep

    def _next_anon_id(self) -> int:
        self._anon_seq += 1
        return self._anon_seq

    def _decide_on_match(self, recv: PmlRecvRequest, env: Envelope) -> Optional[Generator]:
        anon_id = self._anon_pending.pop(id(recv), None)
        if anon_id is None:
            # Matched from the unexpected queue while still inside irecv.
            anon_id, self._arming_anon = self._arming_anon, None
        if anon_id is None:
            return None
        return self._broadcast_decision(anon_id, env)

    def _broadcast_decision(self, anon_id: int, env: Envelope) -> Generator:
        for rep in range(self.rmap.degree):
            if rep == self.rep:
                continue
            ph = self.rmap.phys(self.rank, rep)
            if self.membership.is_alive(ph):
                self.decisions_sent += 1
                yield from self.pml.send_ctrl(ph, DECIDE, (anon_id, env.src_rank, env.tag))

    def _on_decide(self, env: Envelope) -> Generator:
        anon_id, source, tag = env.data
        self.decisions[anon_id] = (source, tag)
        yield from ()

    def leader_irecv(self, ctx, source, tag, buf) -> Generator[Any, Any, RecvHandle]:
        """Anonymous-reception entry point used by app_irecv overrides."""
        self.anonymous_recvs += 1
        anon_id = self._next_anon_id()
        if self._is_leader():
            self._arming_anon = anon_id
            req = yield from self.pml.irecv(ctx=ctx, source=source, tag=tag, buf=buf)
            if self._arming_anon is None:
                # Decision already broadcast from the in-irecv match.
                return RecvHandle(req)
            self._arming_anon = None
            self._anon_pending[id(req)] = anon_id
            return RecvHandle(req)
        return DeferredRecvHandle(self, anon_id, ctx, tag, buf)


class LeaderProtocol(LeaderDecideMixin, SdrProtocol):
    """SDR's send/ack machinery + leader-based anonymous receptions."""

    name = "leader"

    def __init__(self, pml, rmap, membership, cfg) -> None:
        SdrProtocol.__init__(self, pml, rmap, membership, cfg)
        self._init_decider()

    def app_irecv(self, ctx, source, tag, buf=None) -> Generator[Any, Any, RecvHandle]:
        if source == ANY_SOURCE:
            self.app_recvs += 1
            return (yield from self.leader_irecv(ctx, source, tag, buf))
        return (yield from SdrProtocol.app_irecv(self, ctx, source, tag, buf))

    def stats(self) -> dict:
        base = SdrProtocol.stats(self)
        base.update(
            decisions_sent=self.decisions_sent,
            anonymous_recvs=self.anonymous_recvs,
        )
        return base
