"""Comparator protocols from the related work (§2.4).

* :class:`~repro.core.baselines.mirror.MirrorProtocol` — MR-MPI-style
  mirror protocol: every replica of the sender transmits to every replica
  of the receiver (O(q·r²) application messages).
* :class:`~repro.core.baselines.leader.LeaderProtocol` — rMPI-style
  parallel protocol where a leader replica decides the outcome of
  non-deterministic calls (ANY_SOURCE receptions) and broadcasts it.
* :class:`~repro.core.baselines.redmpi.RedMpiProtocol` — redMPI-style
  silent-data-corruption detection: payload hashes are cross-checked
  between replica sets; leader-based ANY_SOURCE; no crash tolerance.
"""

from repro.core.baselines.leader import LeaderProtocol
from repro.core.baselines.mirror import MirrorProtocol
from repro.core.baselines.redmpi import RedMpiProtocol, SdcEvent

__all__ = ["LeaderProtocol", "MirrorProtocol", "RedMpiProtocol", "SdcEvent"]
