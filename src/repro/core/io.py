"""File I/O for replicated execution (the paper's planned integration, §4.1).

    "Since I/O operations are often used to save intermediate results and
    implement application-level checkpointing, we plan to integrate
    application level checkpointing using the solution proposed in [1]
    to handle IO in a replicated MPI application."

[1] Böhm & Engelmann, "File I/O for MPI applications in redundant execution
scenarios" (PDP 2012) describe the problem: with r replicas, naive file
output happens r times (corrupting appends, r× PFS traffic).  This module
implements their two practical strategies on a simulated parallel file
system:

* ``leader``  — only the current leader replica of each rank physically
  writes; other replicas' writes are suppressed (a crash promotes the
  survivor to writer, so output continues across failures);
* ``compare`` — like ``leader``, plus every replica's payload digest is
  cross-checked, turning file output into a free silent-data-corruption
  detector (the redMPI idea applied at the I/O boundary).

Reads are served to every replica identically, so a send-deterministic
application stays send-deterministic when it does I/O.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.mpi.datatypes import Phantom, nbytes_of
from repro.sim.kernel import Simulator
from repro.sim.sync import Timeout

__all__ = ["VirtualFileSystem", "IoDivergence", "ReplicatedIo", "NativeIo"]


def _digest(data: Any) -> int:
    if data is None:
        return 0
    if isinstance(data, Phantom):
        return hash(("phantom", data.nbytes)) & 0xFFFFFFFFFFFFFFFF
    if isinstance(data, np.ndarray):
        raw = data.tobytes()
    elif isinstance(data, (bytes, bytearray)):
        raw = bytes(data)
    elif isinstance(data, str):
        raw = data.encode()
    else:
        raw = repr(data).encode()
    return int.from_bytes(hashlib.blake2b(raw, digest_size=8).digest(), "little")


@dataclass
class IoDivergence:
    """Two replicas tried to write different content for the same logical
    write — a silent fault caught at the I/O boundary."""

    rank: int
    op_seq: int
    path: str
    digest_a: int
    digest_b: int
    detected_at: float


@dataclass
class VirtualFileSystem:
    """A job-wide parallel-file-system stand-in.

    Files are append logs of (writer world rank, payload) records; a
    physical write costs ``latency + nbytes / bandwidth`` of virtual time,
    modelling PFS pressure (the paper's intro: checkpoint traffic contends
    exactly here).
    """

    sim: Simulator
    bandwidth: float = 1.0e9  # 1 GB/s per writer
    latency: float = 50e-6
    files: Dict[str, List[Tuple[int, Any]]] = field(default_factory=dict)
    #: idempotence: one physical record per (rank, logical write) — lets a
    #: promoted writer replay history without duplicating output
    seen_ops: set = field(default_factory=set)
    #: (rank, op_seq) -> {replica: digest}, compare-mode bookkeeping
    digests: Dict[Tuple[int, int], Dict[int, Tuple[str, int]]] = field(default_factory=dict)
    divergences: List[IoDivergence] = field(default_factory=list)
    physical_writes: int = 0
    suppressed_writes: int = 0

    def write_cost(self, data: Any) -> float:
        return self.latency + nbytes_of(data) / self.bandwidth

    def append(self, path: str, rank: int, op_seq: int, data: Any) -> bool:
        """Record a logical write once; duplicates (replays) are no-ops."""
        key = (rank, op_seq)
        if key in self.seen_ops:
            return False
        self.seen_ops.add(key)
        self.files.setdefault(path, []).append((rank, data))
        self.physical_writes += 1
        return True

    def read(self, path: str) -> List[Tuple[int, Any]]:
        return list(self.files.get(path, []))

    def offer_digest(self, rank: int, op_seq: int, rep: int, path: str, digest: int) -> None:
        """Compare-mode: collect one replica's digest, flag disagreements."""
        entry = self.digests.setdefault((rank, op_seq), {})
        for other_rep, (other_path, other_digest) in entry.items():
            if other_digest != digest or other_path != path:
                self.divergences.append(
                    IoDivergence(rank, op_seq, path, other_digest, digest, self.sim.now)
                )
        entry[rep] = (path, digest)


class NativeIo:
    """Unreplicated I/O: every process writes directly."""

    def __init__(self, vfs: VirtualFileSystem, rank: int) -> None:
        self.vfs = vfs
        self.rank = rank
        self.op_seq = 0

    def write(self, path: str, data: Any) -> Generator:
        self.op_seq += 1
        yield Timeout(self.vfs.sim, self.vfs.write_cost(data))
        self.vfs.append(path, self.rank, self.op_seq, data)

    def read(self, path: str) -> Generator:
        yield Timeout(self.vfs.sim, self.vfs.latency)
        return self.vfs.read(path)


class ReplicatedIo:
    """Replica-aware I/O: one physical write per logical write.

    The writer is the rank's current leader replica (lowest alive index),
    so a crash transparently promotes the survivor — file output never
    stops and never duplicates.  ``op_seq`` counts logical writes in
    program order; send-determinism makes it identical across replicas,
    which is what lets the compare mode pair digests without any extra
    messages.
    """

    def __init__(self, vfs: VirtualFileSystem, protocol, mode: str = "compare") -> None:
        if mode not in ("leader", "compare"):
            raise ValueError(f"unknown replicated-IO mode {mode!r}")
        self.vfs = vfs
        self.protocol = protocol  # a ReplicatedBase: rank, rep, membership, rmap
        self.mode = mode
        self.op_seq = 0
        self._was_writer: Optional[bool] = None
        #: suppressed writes retained for replay on writer promotion —
        #: Böhm & Engelmann's buffering requirement: the leader may die
        #: having written less than the survivor has already suppressed.
        self._history: List[Tuple[int, str, Any]] = []
        self.replayed = 0

    def _is_writer(self) -> bool:
        alive = self.protocol.membership.alive_replicas(self.protocol.rank)
        return bool(alive) and self.protocol.rmap.rep_of(alive[0]) == self.protocol.rep

    def _maybe_promote(self) -> Generator:
        writer = self._is_writer()
        if writer and self._was_writer is False:
            # Promotion: the old leader may not have flushed everything we
            # already suppressed — replay; the VFS dedups by (rank, op).
            for op_seq, path, data in self._history:
                if self.vfs.append(path, self.protocol.rank, op_seq, data):
                    self.replayed += 1
                    yield Timeout(self.vfs.sim, self.vfs.write_cost(data))
            self._history.clear()
        self._was_writer = writer
        yield from ()

    def write(self, path: str, data: Any) -> Generator:
        yield from self._maybe_promote()
        self.op_seq += 1
        rank, rep = self.protocol.rank, self.protocol.rep
        if self.mode == "compare":
            self.vfs.offer_digest(rank, self.op_seq, rep, path, _digest(data))
        if self._is_writer():
            yield Timeout(self.vfs.sim, self.vfs.write_cost(data))
            self.vfs.append(path, rank, self.op_seq, data)
        else:
            self.vfs.suppressed_writes += 1
            self._history.append((self.op_seq, path, data))

    def read(self, path: str) -> Generator:
        yield from self._maybe_promote()
        yield Timeout(self.vfs.sim, self.vfs.latency)
        return self.vfs.read(path)
