"""Replication run configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

__all__ = ["ReplicationConfig", "PROTOCOLS"]

#: protocols selectable by name in the harness
PROTOCOLS = ("native", "sdr", "mirror", "leader", "redmpi")


@dataclass(frozen=True)
class ReplicationConfig:
    """Knobs of a replicated execution.

    ``degree`` is the paper's *r*.  The experiments all use ``degree=2``
    ("dual replication, which is the common case to deal with crashes",
    §3.4); the SDR and mirror protocols work for any r ≥ 2, but recovery is
    dual-replication-only by the paper's own impossibility argument.
    """

    degree: int = 2
    protocol: str = "sdr"
    #: failure-detector notification latency (external service, §3.2)
    detection_delay: float = 10e-6
    #: wire size of an acknowledgement frame
    ack_bytes: int = 32
    #: wire size of a redMPI payload-hash frame
    hash_bytes: int = 16
    #: CPU cost of posting one expected-ack receive (Algorithm 1 line 9 —
    #: the sender posts an irecv per other destination replica)
    ack_post_overhead: float = 0.35e-6
    #: CPU cost of matching an arriving ack to its pending send request
    #: (the waitall(sendReq.acks) bookkeeping, Algorithm 1 line 14)
    ack_handle_overhead: float = 0.35e-6
    #: Partial replication (§5 research direction / MR-MPI feature): only
    #: these ranks get replicas; None means every rank is replicated.
    #: Unreplicated ranks run a single copy whose crash loses the rank —
    #: the resilience/resource trade-off of Elliott et al. [6].
    replicated_ranks: Optional[FrozenSet[int]] = None

    def rank_is_replicated(self, rank: int) -> bool:
        return self.replicated_ranks is None or rank in self.replicated_ranks

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}; have {PROTOCOLS}")
        if self.protocol == "native":
            if self.degree != 1:
                raise ValueError("native protocol runs with degree=1")
        elif self.degree < 2:
            raise ValueError(f"replication protocol {self.protocol!r} needs degree >= 2")
        if self.detection_delay < 0:
            raise ValueError("detection delay cannot be negative")
        if self.replicated_ranks is not None:
            if self.protocol == "native":
                raise ValueError("partial replication requires a replication protocol")
            object.__setattr__(self, "replicated_ranks", frozenset(self.replicated_ranks))
            if any(r < 0 for r in self.replicated_ranks):
                raise ValueError("replicated_ranks must be non-negative rank ids")
