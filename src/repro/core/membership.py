"""Failure detection and substitute election.

The paper assumes "failures are detected by an external service provided in
the system" delivering a consistent view to all processes (§3.2).  This
module is that service: by default a perfect (no false positives),
eventually-notifying detector.  When a process crashes, every live process
receives a notification ``detection_delay`` seconds later, processed — like
everything else — at its next MPI call (no asynchronous progress).

An opt-in :class:`DetectorConfig` replaces the instant oracle with an
*imperfect* heartbeat detector: detection happens only after the victim
misses ``suspicion_threshold`` consecutive heartbeats plus a timeout, each
notification delivery can be lost and is retried with backoff, and
:meth:`MembershipService.inject_suspicion` models the detector's false
positives — a live process reported suspect, later cleared.  Detection
latency, per-target notification loss and false-suspicion survival all
become measurable.  ``detector=None`` (the default) keeps the oracle path
byte-identical.

Substitute election (Algorithm 1 line 19) is deterministic: the lowest
replica index still alive for the failed rank.  Every process computes the
same answer from the same notification without extra communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import floor
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.worlds import ReplicaMap
from repro.network.fabric import Fabric
from repro.sim.kernel import Simulator

__all__ = ["MembershipService", "DetectorConfig", "elect_substitute"]


@dataclass(frozen=True)
class DetectorConfig:
    """Imperfect heartbeat failure detector (opt-in).

    Every process is assumed to heartbeat the detector each
    ``heartbeat_period`` seconds.  A crash at time *t* is *declared* once
    ``suspicion_threshold`` consecutive heartbeats have been missed and a
    further ``timeout`` has elapsed — analytically::

        declare(t) = (floor(t / period) + 1 + (threshold - 1)) * period + timeout

    Declaration then fans out per live target; each delivery attempt is
    lost with probability ``notify_drop_p`` (drawn from the membership rng
    stream) and retried up to ``notify_attempts`` times, ``notify_backoff``
    apart.  A target whose every attempt is lost never learns of the crash
    — that pathology is recorded in ``notify_failures``, not hidden.
    """

    heartbeat_period: float = 25e-6
    timeout: float = 50e-6
    suspicion_threshold: int = 2
    notify_attempts: int = 3
    notify_backoff: float = 5e-6
    notify_drop_p: float = 0.0

    def __post_init__(self) -> None:
        if self.heartbeat_period <= 0.0:
            raise ValueError(f"heartbeat_period must be positive, got {self.heartbeat_period}")
        if self.timeout < 0.0:
            raise ValueError(f"timeout must be non-negative, got {self.timeout}")
        if self.suspicion_threshold < 1:
            raise ValueError(f"suspicion_threshold must be >= 1, got {self.suspicion_threshold}")
        if self.notify_attempts < 1:
            raise ValueError(f"notify_attempts must be >= 1, got {self.notify_attempts}")
        if self.notify_backoff < 0.0:
            raise ValueError(f"notify_backoff must be non-negative, got {self.notify_backoff}")
        if not (0.0 <= self.notify_drop_p < 1.0):
            raise ValueError(f"notify_drop_p must be in [0, 1), got {self.notify_drop_p}")

    def declare_at(self, crash_time: float) -> float:
        """Virtual time at which a crash at *crash_time* is declared."""
        missed = floor(crash_time / self.heartbeat_period) + self.suspicion_threshold
        return missed * self.heartbeat_period + self.timeout


def elect_substitute(rmap: ReplicaMap, rank: int, alive: Callable[[int], bool]) -> Optional[int]:
    """Lowest alive replica index of *rank*, or None if all replicas died."""
    for rep in range(rmap.degree):
        if alive(rmap.phys(rank, rep)):
            return rep
    return None


class MembershipService:
    """Job-wide crash bookkeeping + per-process notification fan-out."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        rmap: ReplicaMap,
        detection_delay: float = 10e-6,
        detector: Optional[DetectorConfig] = None,
        rng=None,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.rmap = rmap
        self.detection_delay = detection_delay
        #: opt-in imperfect detector; ``None`` keeps the instant oracle
        self.detector = detector
        #: dedicated numpy Generator for notification-loss draws (required
        #: when ``detector.notify_drop_p > 0``)
        self.rng = rng
        self.failed: List[int] = []
        #: ranks whose every replica has failed (application is lost)
        self.lost_ranks: Set[int] = set()
        self.on_rank_lost: List[Callable[[int], None]] = []
        #: live processes currently reported suspect by the detector
        self.suspected: Set[int] = set()
        #: detector observability: crash → declaration latency per victim,
        #: (proc, at) false suspicions injected, notification bookkeeping
        self.detection_latency: Dict[int, float] = {}
        self.false_suspicions: List[Tuple[int, float]] = []
        self.notify_attempts_made = 0
        self.notify_drops = 0
        #: (target, failed_proc) pairs where every delivery attempt was
        #: lost — the target never learns of the crash
        self.notify_failures: List[Tuple[int, int]] = []
        #: sharded-parallel filter (:mod:`repro.sim.shard`): when set, the
        #: oracle's notification fan-out schedules callbacks only for
        #: targets in this set.  A crash is replayed in *every* shard (the
        #: bookkeeping above must agree globally), but each svc delivery
        #: must fire exactly once — in the shard that owns the target.
        #: ``None`` (serial) notifies every live process.
        self.local_procs: Optional[Set[int]] = None
        fabric.on_crash.append(self._on_crash)

    def is_alive(self, proc: int) -> bool:
        return self.fabric.endpoints[proc].alive

    def alive_replicas(self, rank: int) -> List[int]:
        return [p for p in self.rmap.replicas_of(rank) if self.is_alive(p)]

    def substitute_rep(self, rank: int) -> Optional[int]:
        # Suspected replicas are not electable: a speculative failover that
        # elected the suspect itself would be a no-op, and a real failover
        # must not route duties to a process the detector distrusts.  With
        # the oracle detector `suspected` is always empty.
        if not self.suspected:
            return elect_substitute(self.rmap, rank, self.is_alive)
        return elect_substitute(
            self.rmap, rank, lambda p: self.is_alive(p) and p not in self.suspected
        )

    def crash(self, proc: int) -> None:
        """Inject a fail-stop crash (used by fault schedules)."""
        self.fabric.crash(proc)  # triggers _on_crash via the fabric listener

    def _on_crash(self, proc: int) -> None:
        self.failed.append(proc)
        self.suspected.discard(proc)  # a suspect that dies is a true positive
        rank = self.rmap.rank_of(proc)
        if not self.alive_replicas(rank):
            self.lost_ranks.add(rank)
            for cb in list(self.on_rank_lost):
                cb(rank)
        # Notify every live process.  Delivery is a service frame straight
        # into the endpoint (the detector is not an MPI peer), handled at
        # the victim's next MPI call.  The instant oracle notifies after a
        # fixed detection_delay; the imperfect detector only declares after
        # missed heartbeats + timeout, and each per-target delivery can be
        # lost and retried with backoff.
        detector = self.detector
        now = self.sim.now
        if detector is None:
            when = now + self.detection_delay
            fabric = self.fabric
            local = self.local_procs
            for p, ep in enumerate(fabric.endpoints):
                if p != proc and ep.alive and (local is None or p in local):
                    self.sim.call_at(
                        when,
                        lambda ep=ep, proc=proc: ep.deliver(
                            fabric.acquire_frame(-1, ep.proc, 0, ("failure", proc), kind="svc")
                        ),
                    )
            return
        declare = detector.declare_at(now)
        self.detection_latency[proc] = declare - now
        for p, ep in enumerate(self.fabric.endpoints):
            if p != proc and ep.alive:
                self._notify(ep, ("failure", proc), declare)

    def _notify(self, ep, payload: tuple, when: float) -> None:
        """Deliver *payload* to *ep* at *when*, retrying per DetectorConfig.

        Attempt outcomes are drawn *now* (schedule time) from the dedicated
        membership rng stream, in deterministic target order — the schedule
        of a seeded campaign is reproducible from the seed alone.  Only the
        first surviving attempt is scheduled; a target whose every attempt
        is lost is recorded in :attr:`notify_failures`.
        """
        detector = self.detector
        fabric = self.fabric
        drop_p = detector.notify_drop_p
        for attempt in range(detector.notify_attempts):
            self.notify_attempts_made += 1
            if drop_p > 0.0 and self.rng.random() < drop_p:
                self.notify_drops += 1
                continue
            self.sim.call_at(
                when + attempt * detector.notify_backoff,
                lambda ep=ep, payload=payload: ep.deliver(
                    fabric.acquire_frame(-1, ep.proc, 0, payload, kind="svc")
                ),
            )
            return
        self.notify_failures.append((ep.proc, payload[1]))

    def inject_suspicion(self, proc: int, clear_after: Optional[float] = None) -> None:
        """False positive: report live *proc* suspect to every other live
        process now; optionally clear the suspicion *clear_after* seconds
        later.  Suspect/clear notifications ride the same unreliable
        delivery path as failure declarations.  No-op if *proc* is already
        dead (that is a true positive, handled by :meth:`_on_crash`).
        """
        if self.detector is None:
            raise RuntimeError("inject_suspicion requires an imperfect detector (DetectorConfig)")
        if not self.is_alive(proc):
            return
        now = self.sim.now
        self.suspected.add(proc)
        self.false_suspicions.append((proc, now))
        for p, ep in enumerate(self.fabric.endpoints):
            if p != proc and ep.alive:
                self._notify(ep, ("suspect", proc), now)
        if clear_after is not None:
            self.sim.call_at(now + clear_after, lambda proc=proc: self.clear_suspicion(proc))

    def clear_suspicion(self, proc: int) -> None:
        """The detector retracts its suspicion of *proc* (still alive)."""
        if proc not in self.suspected:
            return
        self.suspected.discard(proc)
        if not self.is_alive(proc):
            return
        now = self.sim.now
        for p, ep in enumerate(self.fabric.endpoints):
            if p != proc and ep.alive:
                self._notify(ep, ("clear", proc), now)

    def announce_recovery(self, proc: int) -> None:
        """Re-admit a respawned physical process (recovery, §3.4).

        Only fabric-level revival; the protocol-level notification is
        broadcast by the substitute over FIFO channels, as the paper
        requires — see :mod:`repro.core.recovery`.
        """
        self.fabric.revive(proc)
        if proc in self.failed:
            self.failed.remove(proc)
        self.suspected.discard(proc)
        self.lost_ranks.discard(self.rmap.rank_of(proc))
