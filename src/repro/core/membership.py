"""Failure detection and substitute election.

The paper assumes "failures are detected by an external service provided in
the system" delivering a consistent view to all processes (§3.2).  This
module is that service: a perfect (no false positives), eventually-notifying
detector.  When a process crashes, every live process receives a
notification ``detection_delay`` seconds later, processed — like everything
else — at its next MPI call (no asynchronous progress).

Substitute election (Algorithm 1 line 19) is deterministic: the lowest
replica index still alive for the failed rank.  Every process computes the
same answer from the same notification without extra communication.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.core.worlds import ReplicaMap
from repro.network.fabric import Fabric
from repro.sim.kernel import Simulator

__all__ = ["MembershipService", "elect_substitute"]


def elect_substitute(rmap: ReplicaMap, rank: int, alive: Callable[[int], bool]) -> Optional[int]:
    """Lowest alive replica index of *rank*, or None if all replicas died."""
    for rep in range(rmap.degree):
        if alive(rmap.phys(rank, rep)):
            return rep
    return None


class MembershipService:
    """Job-wide crash bookkeeping + per-process notification fan-out."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        rmap: ReplicaMap,
        detection_delay: float = 10e-6,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.rmap = rmap
        self.detection_delay = detection_delay
        self.failed: List[int] = []
        #: ranks whose every replica has failed (application is lost)
        self.lost_ranks: Set[int] = set()
        self.on_rank_lost: List[Callable[[int], None]] = []
        fabric.on_crash.append(self._on_crash)

    def is_alive(self, proc: int) -> bool:
        return self.fabric.endpoints[proc].alive

    def alive_replicas(self, rank: int) -> List[int]:
        return [p for p in self.rmap.replicas_of(rank) if self.is_alive(p)]

    def substitute_rep(self, rank: int) -> Optional[int]:
        return elect_substitute(self.rmap, rank, self.is_alive)

    def crash(self, proc: int) -> None:
        """Inject a fail-stop crash (used by fault schedules)."""
        self.fabric.crash(proc)  # triggers _on_crash via the fabric listener

    def _on_crash(self, proc: int) -> None:
        self.failed.append(proc)
        rank = self.rmap.rank_of(proc)
        if not self.alive_replicas(rank):
            self.lost_ranks.add(rank)
            for cb in list(self.on_rank_lost):
                cb(rank)
        # Notify every live process after the detection delay.  Delivery is
        # a service frame straight into the endpoint (the detector is not an
        # MPI peer), handled at the victim's next MPI call.
        when = self.sim.now + self.detection_delay
        fabric = self.fabric
        for p, ep in enumerate(fabric.endpoints):
            if p != proc and ep.alive:
                self.sim.call_at(
                    when,
                    lambda ep=ep, proc=proc: ep.deliver(
                        fabric.acquire_frame(-1, ep.proc, 0, ("failure", proc), kind="svc")
                    ),
                )

    def announce_recovery(self, proc: int) -> None:
        """Re-admit a respawned physical process (recovery, §3.4).

        Only fabric-level revival; the protocol-level notification is
        broadcast by the substitute over FIFO channels, as the paper
        requires — see :mod:`repro.core.recovery`.
        """
        self.fabric.revive(proc)
        if proc in self.failed:
            self.failed.remove(proc)
        self.lost_ranks.discard(self.rmap.rank_of(proc))
