"""Replica/world bookkeeping: the Fig. 6 COMM_WORLD separation.

The job launches ``r·n`` physical processes.  SDR-MPI duplicates the real
COMM_WORLD (kept internal for cross-world acks) and splits it into *r*
application worlds; the application only ever sees its own world of *n*
ranks.  :class:`ReplicaMap` is the arithmetic of that split, replica-major:

    physical process id  =  replica * n_ranks + rank

so replica set 0 is procs ``[0, n)``, replica set 1 is ``[n, 2n)`` — which,
combined with :func:`repro.network.topology.split_halves_placement`, puts
the two replicas of every rank on different nodes exactly as in §4.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["ReplicaMap"]


@dataclass(frozen=True)
class ReplicaMap:
    """Bidirectional (rank, replica) <-> physical-process arithmetic."""

    n_ranks: int
    degree: int

    @property
    def n_procs(self) -> int:
        return self.n_ranks * self.degree

    def phys(self, rank: int, rep: int) -> int:
        """Physical id of replica *rep* of logical *rank* (p^rep_rank)."""
        if not (0 <= rank < self.n_ranks):
            raise ValueError(f"rank {rank} outside [0, {self.n_ranks})")
        if not (0 <= rep < self.degree):
            raise ValueError(f"replica {rep} outside [0, {self.degree})")
        return rep * self.n_ranks + rank

    def rank_of(self, proc: int) -> int:
        self._check(proc)
        return proc % self.n_ranks

    def rep_of(self, proc: int) -> int:
        self._check(proc)
        return proc // self.n_ranks

    def replicas_of(self, rank: int) -> List[int]:
        """All physical ids hosting *rank*, in replica order."""
        return [self.phys(rank, rep) for rep in range(self.degree)]

    def pair(self, proc: int) -> Tuple[int, int]:
        return self.rank_of(proc), self.rep_of(proc)

    def _check(self, proc: int) -> None:
        if not (0 <= proc < self.n_procs):
            raise ValueError(f"physical id {proc} outside [0, {self.n_procs})")
