"""Replica recovery for dual replication (§3.4).

Sequence, exactly as the paper specifies:

1. The substitute of the failed replica **forks** a fresh process at the
   failed replica's slot.  In the paper this is a POSIX fork (memory clone);
   here — where application state lives in generator frames — the fork
   happens at an application-declared quiescent point
   (``yield from mpi.recovery_point()``) and clones (a) the application's
   registered state object and (b) the protocol state that matters: the
   receive-side sequence cursors, the send counters, and the retention
   table.  DESIGN.md records this substitution.
2. The substitute **broadcasts a notification** to every alive process over
   the regular FIFO channels.
3. FIFO ordering between the substitute's earlier acks and the notification
   lets every peer decide which messages the new replica is missing: every
   retained message toward the recovered rank not yet acked by the
   substitute is (re)sent to the new replica
   (:meth:`repro.core.sdr.SdrProtocol._on_recovered`).
4. Acks toward the new replica resume for messages received after the
   notification (automatic: ack fan-out targets all alive replicas).

The paper's restrictions are enforced: recovery requires ``degree == 2``
(the single-broadcast FIFO argument fails for r ≥ 3 — an explicit error
here), and the substitute must not fail between fork and broadcast (both
happen within one uninterrupted recovery-point call).
"""

from __future__ import annotations

import copy
from typing import Generator, List, TYPE_CHECKING

from repro.core.membership import MembershipService
from repro.core.sdr import SdrProtocol
from repro.core.worlds import ReplicaMap
from repro.mpi.errors import MpiError

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.runner import Job

__all__ = ["RecoveryManager", "RecoveryUnsupported"]


class RecoveryUnsupported(MpiError):
    """Raised when recovery is requested outside its validity envelope."""


class RecoveryManager:
    """Orchestrates §3.4 respawns for a replicated job."""

    def __init__(self, job: "Job") -> None:
        if job.cfg.degree != 2:
            raise RecoveryUnsupported(
                f"recovery works only for dual replication (degree=2), got "
                f"degree={job.cfg.degree}: with more replicas a single broadcast "
                "cannot order messages relative to the fork (§3.4)"
            )
        if job.cfg.protocol != "sdr":
            raise RecoveryUnsupported(f"recovery requires the SDR protocol, got {job.cfg.protocol!r}")
        self.job = job
        self.rmap: ReplicaMap = job.rmap
        self.membership: MembershipService = job.membership
        #: ranks whose dead replica should be respawned at the next
        #: recovery point of the substitute
        self.pending: List[int] = []
        self.respawns_done: List[int] = []
        for proto in job.protocols.values():
            if isinstance(proto, SdrProtocol):
                proto.recovery_hook = self._at_recovery_point

    def request_respawn(self, rank: int) -> None:
        """Ask for the dead replica of *rank* to be recovered."""
        if rank not in self.pending:
            self.pending.append(rank)

    # ------------------------------------------------------------------ hook
    def _at_recovery_point(self, proto: SdrProtocol) -> Generator:
        """Runs inside every SDR process at each app recovery point; acts
        only on the substitute of a pending rank."""
        for rank in list(self.pending):
            if proto.rank != rank:
                continue
            if not self.job.cfg.rank_is_replicated(rank):
                continue  # partial replication: nothing to respawn
            dead = [
                rep
                for rep in range(self.rmap.degree)
                if not self.membership.is_alive(self.rmap.phys(rank, rep))
            ]
            if len(dead) != 1:
                continue  # nothing to do (not failed) or rank fully lost
            rep_f = dead[0]
            if self.membership.substitute_rep(rank) != proto.rep:
                continue  # not the substitute
            if proto.substitute.get(rep_f) != proto.rep:
                # The failure notification has not reached this process yet
                # (Algorithm 1 lines 26-27 have not run): forking now would
                # race the failover itself.  Try again at the next point.
                continue
            self.pending.remove(rank)
            yield from self._respawn(proto, rank, rep_f)

    def _respawn(self, proto: SdrProtocol, rank: int, rep_f: int) -> Generator:
        new_proc = self.rmap.phys(rank, rep_f)
        mpi = self.job.mpis[proto.pml.proc]
        if mpi.app_state is None:
            raise RecoveryUnsupported(
                f"rank {rank}: application did not register a recoverable state "
                "object (mpi.register_state) — cannot fork"
            )
        # (1) fork: clone application + protocol state at this quiescent point.
        app_state = copy.deepcopy(mpi.app_state)
        proto_state = proto.clone_state_for_respawn()
        self.membership.announce_recovery(new_proc)
        self.job.spawn_replica(new_proc, app_state, proto_state)
        # (2) notify everyone over FIFO channels; substitute drops its
        # on-behalf duties in the same breath.
        yield from proto.broadcast_recovery(new_proc, rep_f)
        self.respawns_done.append(new_proc)
