"""Shared machinery for all replication protocols.

Every replication protocol (SDR, mirror, leader-based, redMPI) needs the
same receive-side discipline:

* **logical-channel sequencing** — application message *s* on the logical
  channel (rank i → rank j) carries the same sequence number on every
  replica (send-determinism, Definition 1), regardless of which physical
  process transmitted it;
* **duplicate suppression** — mirror copies, substitute resends after a
  failover, and recovery replays may deliver the same logical message more
  than once;
* **in-order release** — MPI's non-overtaking guarantee must hold per
  logical channel even when the transmitting physical process changes
  mid-stream (failover, recovery), so envelopes are released to matching in
  sequence order, with a reorder buffer for early arrivals.

On the steady-state path (no failures) frames already arrive in order on a
single FIFO channel, so the filter is pure bookkeeping.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List

from repro.core.config import ReplicationConfig
from repro.core.interpose import BaseProtocol
from repro.core.membership import MembershipService
from repro.core.worlds import ReplicaMap
from repro.mpi.pml import CTS_BYTES, Envelope, Pml

__all__ = ["ReplicatedBase"]


class ReplicatedBase(BaseProtocol):
    """Replica-aware protocol base: dedup + reorder + failure plumbing."""

    name = "replicated"

    def __init__(
        self,
        pml: Pml,
        rmap: ReplicaMap,
        membership: MembershipService,
        cfg: ReplicationConfig,
    ) -> None:
        rank = rmap.rank_of(pml.proc)
        super().__init__(pml, world_rank=rank)
        self.rmap = rmap
        self.membership = membership
        self.cfg = cfg
        self.rank = rank
        self.rep = rmap.rep_of(pml.proc)
        #: next expected seq per sending logical rank (receive-side cursor)
        self._expected: Dict[int, int] = {}
        #: early arrivals per sending logical rank: seq -> envelope
        self._reorder: Dict[int, Dict[int, Envelope]] = {}
        self.duplicates_dropped = 0
        pml.incoming_filter = self._filter_incoming
        pml.svc_handlers["failure"] = self._svc_failure

    # --------------------------------------------------------- receive side
    def _filter_incoming(self, env: Envelope) -> Generator[Any, Any, bool]:
        """Release application envelopes to matching in per-channel order.

        Always returns False: delivery (if any) is performed here so that
        held-back successors can be flushed in the right order.  Ownership
        contract: the PML hands this filter the envelope; every path below
        accounts for it — in-order and flushed envelopes are consumed by
        ``deliver_to_matching``, early arrivals are *owned by the reorder
        buffer* until flushed, and duplicates are returned to the arena
        once :meth:`_on_duplicate` has finished with the borrow.
        """
        src = env.world_src
        expected = self._expected.get(src, 0)
        if env.seq == expected:
            self._expected[src] = expected + 1
            yield from self.pml.deliver_to_matching(env)
            held = self._reorder.get(src)
            while held:
                nxt = self._expected[src]
                early = held.pop(nxt, None)
                if early is None:
                    break
                self._expected[src] = nxt + 1
                yield from self.pml.deliver_to_matching(early)
            return False
        if env.seq > expected:
            self._reorder.setdefault(src, {})[env.seq] = env
            return False
        # Duplicate: mirror copy, substitute resend, or recovery replay.
        self.duplicates_dropped += 1
        try:
            yield from self._on_duplicate(env)
        except BaseException:
            # Fail-stop crash mid-handling: the filter owns the duplicate
            # and is being abandoned — account the strand.
            self.pml.strand_env(env)
            raise
        self.pml.release_env(env)
        return False

    def _on_duplicate(self, env: Envelope) -> Generator:
        """Default duplicate handling (*env* is a borrow — the filter
        releases it when this returns).

        A duplicate RTS must still be answered with a CTS so the sender's
        rendezvous request can complete; the DATA frame then finds no
        pending receive and is dropped by the PML.
        """
        if env.kind == "rts":
            pml = self.pml
            cts = pml.acquire_env(
                "cts", env.ctx, -1, -1, -1, -1, env.seq, CTS_BYTES, None, env.src_phys, msg_id=env.msg_id
            )
            yield from pml.inject(cts, CTS_BYTES)

    # ---------------------------------------------------------- replica math
    def alive_replicas_of(self, rank: int) -> List[int]:
        return self.membership.alive_replicas(rank)

    def pair_of(self, rank: int) -> int:
        """My same-index replica of *rank* (the parallel-protocol partner)."""
        return self.rmap.phys(rank, self.rep)

    # -------------------------------------------------------------- failures
    def _svc_failure(self, failed: int) -> Generator:
        """Failure-notification entry point; protocols override on_failure."""
        yield from self.on_failure(failed)

    def on_failure(self, failed: int) -> Generator:
        yield from ()

    # --------------------------------------------------------------- teardown
    def reap(self) -> None:
        """End-of-run teardown: release envelopes parked in the reorder
        buffers.

        On a crash-free run the buffers drain naturally (every gap fills).
        After a fail-stop, gaps can persist forever — the peer that would
        have sent the missing sequence number is dead, or this very
        process crashed with early arrivals parked — and the buffered
        envelopes are well-defined leftovers the arena-balance check reaps,
        exactly like the PML's unexpected queue.
        """
        for held in self._reorder.values():
            for env in held.values():
                self.pml.release_env(env)
            held.clear()

    def stats(self) -> dict:
        base = super().stats()
        base["duplicates_dropped"] = self.duplicates_dropped
        return base
