"""Shared machinery for all replication protocols.

Every replication protocol (SDR, mirror, leader-based, redMPI) needs the
same receive-side discipline:

* **logical-channel sequencing** — application message *s* on the logical
  channel (rank i → rank j) carries the same sequence number on every
  replica (send-determinism, Definition 1), regardless of which physical
  process transmitted it;
* **duplicate suppression** — mirror copies, substitute resends after a
  failover, and recovery replays may deliver the same logical message more
  than once;
* **in-order release** — MPI's non-overtaking guarantee must hold per
  logical channel even when the transmitting physical process changes
  mid-stream (failover, recovery), so envelopes are released to matching in
  sequence order, with a reorder buffer for early arrivals.

On the steady-state path (no failures) frames already arrive in order on a
single FIFO channel, so the filter is pure bookkeeping.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from repro.core.config import ReplicationConfig
from repro.core.interpose import BaseProtocol
from repro.core.membership import MembershipService
from repro.core.worlds import ReplicaMap
from repro.mpi.pml import CTS_BYTES, Envelope, Pml

__all__ = ["ReplicatedBase", "ProtocolShared"]


class ProtocolShared:
    """Job-wide read-only flyweight of the replica stacks' common state.

    Every replicated protocol instance used to re-derive (and hold) the
    same handful of values: the replica map, membership service, config
    object, the cfg cost knobs it cached for its hot paths, and the
    replica-major base offsets its send/ack fan-outs recompute per message.
    None of that is per-process — it is immutable after job setup — so one
    instance per :class:`~repro.harness.runner.Job` is built and every
    stack references it; the protocol instances keep only their mutable
    residue (cursors, retention, counters) in ``__slots__``.

    Protocols constructed without a shared object (``shared=None``) build
    a private one — the seed-shaped per-process construction the
    equivalence suite compares against (``Job(shared_state=False)``).
    """

    __slots__ = (
        "rmap",
        "membership",
        "cfg",
        "n_ranks",
        "degree",
        "rep_bases",
        "ack_bytes",
        "hash_bytes",
        "ack_post_overhead",
        "ack_handle_overhead",
    )

    def __init__(self, rmap: ReplicaMap, membership: MembershipService, cfg: ReplicationConfig) -> None:
        self.rmap = rmap
        self.membership = membership
        self.cfg = cfg
        self.n_ranks = rmap.n_ranks
        self.degree = rmap.degree
        #: replica-major base offset per replica index: phys(rank, rep) ==
        #: rep_bases[rep] + rank — the arithmetic table the fan-out loops use
        self.rep_bases = tuple(rep * rmap.n_ranks for rep in range(rmap.degree))
        self.ack_bytes = cfg.ack_bytes
        self.hash_bytes = cfg.hash_bytes
        self.ack_post_overhead = cfg.ack_post_overhead
        self.ack_handle_overhead = cfg.ack_handle_overhead

    def rebound(self, membership: MembershipService) -> "ProtocolShared":
        """Per-job copy bound to a fresh membership service.

        Everything else — rmap, cfg, the rep_bases tuple, the cost knobs —
        is immutable and shared *by reference*, so a sweep's shape cache
        can hand one template to every same-shape job and pay only this
        O(1) rebinding per job instead of re-deriving the table.
        """
        new = ProtocolShared.__new__(ProtocolShared)
        for slot in ProtocolShared.__slots__:
            setattr(new, slot, getattr(self, slot))
        new.membership = membership
        return new


class ReplicatedBase(BaseProtocol):
    """Replica-aware protocol base: dedup + reorder + failure plumbing."""

    name = "replicated"

    __slots__ = (
        "shared",
        "rmap",
        "membership",
        "cfg",
        "rank",
        "rep",
        "_expected",
        "_reorder",
        "duplicates_dropped",
        "suspicions_seen",
        "suspicion_clears_seen",
    )

    def __init__(
        self,
        pml: Pml,
        rmap: ReplicaMap,
        membership: MembershipService,
        cfg: ReplicationConfig,
        shared: Optional[ProtocolShared] = None,
    ) -> None:
        rank = rmap.rank_of(pml.proc)
        super().__init__(pml, world_rank=rank)
        if shared is None:
            shared = ProtocolShared(rmap, membership, cfg)
        self.shared = shared
        # Hot aliases (the same objects the shared table references).
        self.rmap = rmap
        self.membership = membership
        self.cfg = cfg
        self.rank = rank
        self.rep = rmap.rep_of(pml.proc)
        #: next expected seq per sending logical rank (receive-side cursor)
        self._expected: Dict[int, int] = {}
        #: early arrivals per sending logical rank: seq -> envelope;
        #: lazy — crash-free single-channel traffic never reorders
        self._reorder: Optional[Dict[int, Dict[int, Envelope]]] = None
        self.duplicates_dropped = 0
        self.suspicions_seen = 0
        self.suspicion_clears_seen = 0
        pml.incoming_filter = self._filter_incoming
        pml.svc_handlers["failure"] = self._svc_failure
        pml.svc_handlers["suspect"] = self._svc_suspect
        pml.svc_handlers["clear"] = self._svc_clear

    # --------------------------------------------------------- receive side
    def _filter_incoming(self, env: Envelope) -> Generator[Any, Any, bool]:
        """Release application envelopes to matching in per-channel order.

        Always returns False: delivery (if any) is performed here so that
        held-back successors can be flushed in the right order.  Ownership
        contract: the PML hands this filter the envelope; every path below
        accounts for it — in-order and flushed envelopes are consumed by
        ``deliver_to_matching``, early arrivals are *owned by the reorder
        buffer* until flushed, and duplicates are returned to the arena
        once :meth:`_on_duplicate` has finished with the borrow.
        """
        src = env.world_src
        expected = self._expected.get(src, 0)
        if env.seq == expected:
            self._expected[src] = expected + 1
            yield from self.pml.deliver_to_matching(env)
            reorder = self._reorder
            held = reorder.get(src) if reorder else None
            while held:
                nxt = self._expected[src]
                early = held.pop(nxt, None)
                if early is None:
                    break
                self._expected[src] = nxt + 1
                yield from self.pml.deliver_to_matching(early)
            return False
        if env.seq > expected:
            reorder = self._reorder
            if reorder is None:
                reorder = self._reorder = {}
            reorder.setdefault(src, {})[env.seq] = env
            return False
        # Duplicate: mirror copy, substitute resend, or recovery replay.
        self.duplicates_dropped += 1
        try:
            yield from self._on_duplicate(env)
        except BaseException:
            # Fail-stop crash mid-handling: the filter owns the duplicate
            # and is being abandoned — account the strand.
            self.pml.strand_env(env)
            raise
        self.pml.release_env(env)
        return False

    def _on_duplicate(self, env: Envelope) -> Generator:
        """Default duplicate handling (*env* is a borrow — the filter
        releases it when this returns).

        A duplicate RTS must still be answered with a CTS so the sender's
        rendezvous request can complete; the DATA frame then finds no
        pending receive and is dropped by the PML.
        """
        if env.kind == "rts":
            pml = self.pml
            cts = pml.acquire_env(
                "cts", env.ctx, -1, -1, -1, -1, env.seq, CTS_BYTES, None, env.src_phys, msg_id=env.msg_id
            )
            yield from pml.inject(cts, CTS_BYTES)

    # ---------------------------------------------------------- replica math
    def alive_replicas_of(self, rank: int) -> List[int]:
        return self.membership.alive_replicas(rank)

    def pair_of(self, rank: int) -> int:
        """My same-index replica of *rank* (the parallel-protocol partner)."""
        return self.rmap.phys(rank, self.rep)

    # -------------------------------------------------------------- failures
    def _svc_failure(self, failed: int) -> Generator:
        """Failure-notification entry point; protocols override on_failure."""
        yield from self.on_failure(failed)

    def on_failure(self, failed: int) -> Generator:
        yield from ()

    # ------------------------------------------------------------- suspicion
    def _svc_suspect(self, suspect: int) -> Generator:
        self.suspicions_seen += 1
        yield from self.on_suspicion(suspect)

    def _svc_clear(self, suspect: int) -> Generator:
        self.suspicion_clears_seen += 1
        yield from self.on_suspicion_cleared(suspect)

    def on_suspicion(self, suspect: int) -> Generator:
        """An imperfect detector reported *suspect* — which may be alive.

        The default is advisory (count, change nothing): correctness never
        depends on suspicion, only on the definitive failure notification.
        Protocols with per-message retention (SDR, leader) override this to
        fail over speculatively — and must implement the reversal in
        :meth:`on_suspicion_cleared`.  Mirror/redMPI have no retention to
        replay from, so reacting would wedge a false positive; they stay
        advisory by design.
        """
        yield from ()

    def on_suspicion_cleared(self, suspect: int) -> Generator:
        yield from ()

    # --------------------------------------------------------------- teardown
    def reap(self) -> int:
        """End-of-run teardown: release envelopes parked in the reorder
        buffers.  Returns how many were reaped (strand attribution:
        the ``reorder_reap`` site in ``JobResult.stranded_by_site``).

        On a crash-free run the buffers drain naturally (every gap fills).
        After a fail-stop, gaps can persist forever — the peer that would
        have sent the missing sequence number is dead, or this very
        process crashed with early arrivals parked — and the buffered
        envelopes are well-defined leftovers the arena-balance check reaps,
        exactly like the PML's unexpected queue.
        """
        reorder = self._reorder
        if not reorder:
            return 0
        reaped = 0
        for held in reorder.values():
            for env in held.values():
                self.pml.release_env(env)
            reaped += len(held)
            held.clear()
        return reaped

    def stats(self) -> dict:
        base = super().stats()
        base["duplicates_dropped"] = self.duplicates_dropped
        base["suspicions_seen"] = self.suspicions_seen
        base["suspicion_clears_seen"] = self.suspicion_clears_seen
        return base
