"""The paper's contribution: SDR-MPI and its comparator protocols.

* :mod:`repro.core.interpose`  — the vProtocol-style interposition contract
* :mod:`repro.core.worlds`     — replica/world bookkeeping (Fig. 6)
* :mod:`repro.core.membership` — failure detection + substitute election
* :mod:`repro.core.sdr`        — the SDR-MPI protocol (§3, Algorithm 1)
* :mod:`repro.core.recovery`   — dual-replication replica respawn (§3.4)
* :mod:`repro.core.baselines`  — mirror (MR-MPI), leader-based (rMPI),
  redMPI-style SDC detection
"""

from repro.core.config import PROTOCOLS, ReplicationConfig
from repro.core.interpose import BaseProtocol, NativeProtocol, RecvHandle, SendHandle
from repro.core.membership import MembershipService
from repro.core.sdr import SdrProtocol
from repro.core.worlds import ReplicaMap

__all__ = [
    "BaseProtocol",
    "MembershipService",
    "NativeProtocol",
    "PROTOCOLS",
    "RecvHandle",
    "ReplicaMap",
    "ReplicationConfig",
    "SdrProtocol",
    "SendHandle",
]
