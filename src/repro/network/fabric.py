"""The wire: reliable FIFO channels between physical processes.

Semantics match the paper's system model (§2.1):

* channels exist between every ordered pair of processes,
* channels are FIFO and reliable,
* no synchrony assumption — the cost model decides arrival times, and
  correctness never depends on them.

Crash semantics are fail-stop.  A crashed process injects nothing further;
frames already in flight are still delivered to live destinations (protocol
layers dedup via per-channel sequence numbers).  Frames addressed to a
crashed process are dropped on arrival.

Every fail-stop drop site **counts what it strands**: the frame (and the
envelope riding in it) is accounted in ``frames_stranded``/``envs_stranded``
instead of silently vanishing, so the harness can assert
``acquired == released + stranded`` for both arenas even on crashy runs —
the zero-leak proof covers the failover/recovery scenarios the replication
protocols exist for, not just the happy path.  The sites are
:meth:`Fabric.crash`/:meth:`Fabric.revive` (dead-rank inbox clears),
:meth:`Endpoint.deliver` (arrival at a dead endpoint) and
:meth:`Fabric.inject` (send attempt by a dead source).

Hot-path notes
--------------
:meth:`Fabric.inject` runs once per frame and is kept allocation-lean:
:class:`Frame` is a ``__slots__`` class, delivery is a dedicated slotted
event (:class:`_Delivery`) instead of a per-frame closure wrapped in a
kernel callback, and cost-model resolution goes through the job-level
:class:`CostTable` (proc → node resolved once; models and cost rows
memoized per *node pair* and shared by every PML) instead of chasing
placement dictionaries per frame.  The per-channel FIFO clamp (``_last_arrival``) applies to *both*
the intra-node path (keyed per channel) and the inter-node path (whose
contention state is keyed per node uplink/downlink): with jitter enabled,
arrivals on one ordered channel are clamped to be non-decreasing whatever
path priced them.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.network.topology import Placement
from repro.sim.kernel import Simulator
from repro.sim.sync import Event

__all__ = ["Frame", "Endpoint", "Fabric", "CostTable"]


class CostTable:
    """Job-level flyweight of every (src, dst) → cost-model resolution.

    Topology and cost parameters are immutable once a placement exists, so
    nothing about pricing needs to live per process: the cost model for a
    channel depends only on the *node pair* it crosses, and every process
    on a node shares the same row of send/recv costs toward every other
    node.  The seed engine cached these per endpoint — one
    ``{dst_proc: (overhead, eager_limit)}`` dict per PML, O(peers) entries
    × n_procs dicts — which at 8192+ processes is pure working-set growth
    for values that are all identical per node pair.

    One table per :class:`Fabric` (i.e. per job) replaces all of that:

    * :meth:`model` memoizes ``cluster.model_for`` per (src_node, dst_node);
    * :meth:`send_row` / :meth:`recv_row` hand out **shared, lazily filled**
      per-node dicts keyed by peer *node* — every PML on the node holds a
      reference to the same row, so the first PML to price a peer fills it
      for all of them (values are deterministic, so fill order is
      irrelevant);
    * :attr:`node_of` is the one proc → node list every hot path indexes.

    ``Job(shared_state=False)`` keeps the seed-shaped private-dicts
    construction as the executable spec the equivalence suite compares
    against.
    """

    __slots__ = ("placement", "node_of", "_models", "_send_rows", "_recv_rows")

    def __init__(self, placement: Placement) -> None:
        self.placement = placement
        self.node_of: List[int] = [placement.node_of(p) for p in range(len(placement))]
        self._models: Dict[Tuple[int, int], Any] = {}
        self._send_rows: Dict[int, Dict[int, Tuple[float, int]]] = {}
        self._recv_rows: Dict[int, Dict[int, float]] = {}

    def model(self, src_node: int, dst_node: int):
        key = (src_node, dst_node)
        model = self._models.get(key)
        if model is None:
            model = self.placement.cluster.model_for(src_node, dst_node)
            self._models[key] = model
        return model

    def model_for(self, src: int, dst: int):
        node_of = self.node_of
        return self.model(node_of[src], node_of[dst])

    def send_row(self, src_node: int) -> Dict[int, Tuple[float, int]]:
        """Shared ``{dst_node: (send_overhead, eager_limit)}`` row."""
        row = self._send_rows.get(src_node)
        if row is None:
            row = self._send_rows[src_node] = {}
        return row

    def recv_row(self, dst_node: int) -> Dict[int, float]:
        """Shared ``{src_node: recv_overhead}`` row."""
        row = self._recv_rows.get(dst_node)
        if row is None:
            row = self._recv_rows[dst_node] = {}
        return row


class Frame:
    """One unit of transfer on the wire.

    ``payload`` is opaque to the fabric; the PML owns its meaning.  ``size``
    is the number of bytes used for costing (header + payload).

    A frame doubles as its own *delivery event*: :meth:`Fabric.inject`
    stamps the owning fabric and pushes the frame straight onto the kernel
    heap; :meth:`fire` lands it in the destination inbox.  The seed engine
    allocated a ``_deliver`` closure plus a ``_Callback`` wrapper per frame
    — this is zero extra allocations on the same event count.

    Frames are *pooled*: the PML releases a frame back to the owning
    fabric's free list (:meth:`Fabric.release_frame`) the moment it has
    extracted the payload during frame handling, and :meth:`Fabric.send`
    recycles released instances instead of allocating.  Nothing outside
    the fabric/PML pair may retain a frame past ``Pml.handle_frame`` —
    inbox inspection (tests, diagnostics) is fine because release happens
    strictly after the frame leaves the inbox.
    """

    __slots__ = ("src", "dst", "size", "payload", "kind", "sent_at", "arrived_at", "fabric")

    cancelled = False  # deliveries are never revoked; crash drops at deliver()

    def __init__(
        self,
        src: int,
        dst: int,
        size: int,
        payload: Any,
        kind: str = "data",
        sent_at: float = -1.0,
        arrived_at: float = -1.0,
    ) -> None:
        self.src = src
        self.dst = dst
        self.size = size
        self.payload = payload
        self.kind = kind
        #: stamped by the fabric at injection / delivery (virtual seconds)
        self.sent_at = sent_at
        self.arrived_at = arrived_at
        #: owning fabric, stamped at injection (delivery-event plumbing)
        self.fabric: Optional["Fabric"] = None

    def fire(self) -> None:
        fabric = self.fabric
        self.arrived_at = fabric.sim._now
        fabric.endpoints[self.dst].deliver(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Frame(src={self.src}, dst={self.dst}, size={self.size}, "
            f"kind={self.kind!r}, sent_at={self.sent_at}, arrived_at={self.arrived_at})"
        )


class Endpoint:
    """Per-physical-process attachment point.

    The inbox is a FIFO of delivered frames.  The armed waiter event is
    re-armed by the progress engine: it fires whenever a new frame lands,
    waking a process blocked inside an MPI call.  Frames landing while the
    process is computing simply accumulate (no asynchronous progress — §3.3).

    Concurrent waiters collapse onto one armed head event plus a waiter
    list: the head is succeeded by :meth:`deliver`, and the listed waiters
    are succeeded — in registration order — when the head fires.  The seed
    engine built the same wake-up cascade out of one nested closure per
    waiter; the list form does it with a single callback per armed head.
    """

    __slots__ = (
        "sim",
        "proc",
        "inbox",
        "alive",
        "_waiter",
        "_pwaiter",
        "_chain",
        "_chain_head",
        "_frame_label",
        "frames_received",
        "frames_sent",
        "bytes_received",
        "bytes_sent",
    )

    #: blocker-protocol attribute (see Process._wait_on): an endpoint is
    #: never "triggered" — a parked process is woken by deliver()
    triggered = False

    def __init__(self, sim: Simulator, proc: int) -> None:
        self.sim = sim
        self.proc = proc
        #: diagnostics label, built lazily — one f-string per endpoint is
        #: pure construction footprint at 8192+ processes, and the label
        #: is only read when a process actually parks on a waiter event
        self._frame_label: Optional[str] = None
        self.inbox: Deque[Frame] = deque()
        self.alive = True
        self._waiter: Optional[Event] = None
        #: a process parked directly on this endpoint (blocker protocol:
        #: the allocation-free fast path the MPI wait loops use by
        #: yielding the endpoint itself instead of a waiter event)
        self._pwaiter: Optional[Any] = None
        #: waiters chained behind the armed head (see class docstring)
        self._chain: List[Event] = []
        self._chain_head: Optional[Event] = None
        #: observability counters
        self.frames_received = 0
        self.frames_sent = 0
        self.bytes_received = 0
        self.bytes_sent = 0

    @property
    def label(self) -> str:
        """Diagnostics label (deadlock reports show what blocks a process)."""
        label = self._frame_label
        if label is None:
            label = self._frame_label = f"frame@{self.proc}"
        return label

    def block_process(self, process: Any) -> None:
        """Park *process* until a frame lands (Process blocker protocol)."""
        self._pwaiter = process

    def deliver(self, frame: Frame) -> None:
        if not self.alive:
            # Fail-stop drop site: the frame (and any envelope it carries)
            # is stranded, never released — count it so the arena-balance
            # proof extends to crashy runs.
            fabric = frame.fabric
            if fabric is not None:
                fabric.strand_frame(frame)
            return
        self.inbox.append(frame)
        self.frames_received += 1
        self.bytes_received += frame.size
        pwaiter = self._pwaiter
        if pwaiter is not None:
            # Wake the parked process exactly as a waiter event would: one
            # queue entry at the current time (bucket append, or the
            # seed-shaped heap push in heap-only mode).
            self._pwaiter = None
            sim = self.sim
            if sim._bucketed:
                sim._bucket.append(pwaiter)
            else:
                sim._seq += 1
                heappush(sim._queue, (sim._now, sim._seq, pwaiter))
            return
        waiter = self._waiter
        if waiter is not None and not waiter.triggered:
            self._waiter = None
            waiter.succeed(None)

    def wait_for_frame(self) -> Event:
        """Event that fires as soon as the inbox is (or becomes) non-empty."""
        ev = Event(self.sim, label=self.label)
        if self.inbox:
            ev.succeed(None)
            return ev
        head = self._waiter
        if head is not None and not head.triggered:
            # Chain: multiple waiters collapse onto one underlying arm and
            # wake, in order, when the head fires (after the head's own
            # waiter has resumed — preserving the seed engine's wake order).
            if self._chain_head is not head:
                self._chain_head = head
                chain: List[Event] = []
                self._chain = chain
                head.add_callback(lambda _e, chain=chain: _wake_chain(chain))
            self._chain.append(ev)
        else:
            self._waiter = ev
        return ev


def _wake_chain(chain: List[Event]) -> None:
    for ev in chain:
        if not ev.triggered:
            ev.succeed(None)


class Fabric:
    """Delivers frames between endpoints according to a placement's models.

    Serialization: each ordered (src, dst) channel carries one frame at a
    time; a frame occupies the channel for ``model.serialization(size)``
    seconds, giving LogGP gap behaviour for streams without simulating
    individual packets.
    """

    def __init__(
        self,
        sim: Simulator,
        placement: Placement,
        jitter: Optional[Callable[[], float]] = None,
        cost_table: Optional[CostTable] = None,
    ) -> None:
        self.sim = sim
        self.placement = placement
        n_procs = len(placement)
        #: indexed by physical process id (ids are dense 0..n-1; a list
        #: makes the two lookups per frame cheaper than a dict)
        self.endpoints: List[Endpoint] = [Endpoint(sim, proc) for proc in range(n_procs)]
        # Per ordered-channel pricing state, one dict lookup per inject:
        #   [model, src_node_busy | None, dst_node_busy | None,
        #    channel_free, last_arrival]
        # Inter-node channels share per-node [uplink_free, downlink_free]
        # cells (8 ranks per node share one HCA in the paper's testbed;
        # cut-through: latency overlaps serialization); intra-node channels
        # use the per-channel ``channel_free`` slot.  ``last_arrival`` is
        # the per-channel FIFO clamp, initialized here rather than lazily.
        self._chan: Dict[Tuple[int, int], list] = {}
        self._node_busy: Dict[int, list] = {}
        self._jitter = jitter
        # Job-level shared pricing state: proc → node resolved once, cost
        # models memoized per *node pair* (see CostTable), and per-node
        # cost rows the PMLs share instead of keeping per-proc dicts.
        # A sweep executor may pass a prebuilt table so same-shape jobs
        # reuse one memoized pricing resolution (every cached value is a
        # pure function of the placement, so warmth cannot change results).
        if cost_table is not None and cost_table.placement is not placement:
            raise ValueError("cost_table was built for a different placement")
        self.cost_table = cost_table if cost_table is not None else CostTable(placement)
        self._node_of: List[int] = self.cost_table.node_of
        self.on_crash: List[Callable[[int], None]] = []
        #: free list of recycled Frame instances (see Frame docstring);
        #: bounded so pathological bursts cannot pin memory forever
        self._frame_pool: List[Frame] = []
        #: ``False`` bypasses frame recycling (arena-equivalence tests)
        #: while keeping the acquire/release accounting intact
        self.pool_frames = True
        #: free-list accounting: every acquired frame must be released
        #: (checked at end-of-run by the harness on crash-free jobs)
        self.frames_acquired = 0
        self.frames_allocated = 0  # pool misses (fresh constructions)
        self.frames_released = 0
        # Frame-arena high-water tracking, windowed exactly like the PML
        # envelope arena (see Pml.trim_env_pool): acquire sites bump the
        # window, the quiescent-point trimmer folds it into the run
        # high-water and caps the free list at the recent burst height.
        self.frame_hw_window = 0
        self.frame_high_water = 0
        #: pooled frames dropped by quiescent-point trims
        self.frames_trimmed = 0
        #: crashes ever injected (sticky; observability — since the strand
        #: accounting below, crashy runs keep the arena-balance proof)
        self.crashes = 0
        #: fail-stop strand accounting: frames dropped at the drop sites
        #: (dead-rank inbox clears, arrivals at dead endpoints, sends by
        #: dead sources) and the envelopes those frames carried.  The
        #: harness asserts acquired == released + stranded on every run.
        self.frames_stranded = 0
        self.envs_stranded = 0
        #: strand *attribution*: {site: (frames, envelopes)} per fail-stop
        #: drop site (``inbox_clear``, ``dead_endpoint``, ``dead_source``)
        #: — surfaced in :attr:`JobResult.stranded_by_site` so failover
        #: experiments can report which mechanism stranded what
        self.strands_by_site: Dict[str, List[int]] = {}
        #: totals for message-complexity ablations (mirror vs parallel)
        self.total_frames = 0
        self.total_bytes = 0
        self.frames_by_kind: Dict[str, int] = {}
        #: seeded adversary (see :meth:`install_faults`); ``None`` — the
        #: default — keeps :meth:`inject` byte-identical to the reliable
        #: wire (one predictable-branch check per frame)
        self._faults: Optional[_FaultRuntime] = None
        #: envelopes *created* by link duplication: they enter the arena
        #: without an acquire_env, so the balance proof counts them on the
        #: acquired side (acquired + duplicated == released + stranded)
        self.envs_duplicated = 0
        #: fault observability: frames dropped / cloned / delay-spiked by
        #: the fault runtime (drops are also attributed per strand site)
        self.fault_drops = 0
        self.fault_dups = 0
        self.fault_delays = 0
        #: conservative-window shard router (:mod:`repro.sim.shard`).
        #: ``None`` — the default — keeps :meth:`inject` byte-identical to
        #: the serial wire.  When set, every inter-node frame's downlink
        #: pricing and delivery are *deferred* to the window barrier: the
        #: uplink is priced locally (the source node's procs all live in
        #: this shard), and the router collects the frame so the shard
        #: owning the destination node can price the shared downlink in
        #: canonical order (see ``shard.py``).
        self.shard_router: Optional[Any] = None
        #: cross-shard relay accounting: frames (and the envelopes they
        #: carry) handed to another shard / received from one.  An import
        #: routes through :meth:`acquire_frame` (so it already counts as
        #: acquired), an export leaves this arena's custody, making the
        #: per-shard frame balance
        #: ``acquired == released + stranded + exported``; imported
        #: *envelopes* are minted without an acquire_env and join the
        #: acquired side like :attr:`envs_duplicated`.  Globally exports
        #: equal imports, and the merged balance reduces to the serial
        #: ``acquired == released + stranded``.
        self.frames_exported = 0
        self.frames_imported = 0
        self.envs_exported = 0
        self.envs_imported = 0

    # ----------------------------------------------------------- attachment
    def endpoint(self, proc: int) -> Endpoint:
        return self.endpoints[proc]

    def model_for(self, src: int, dst: int):
        node_of = self._node_of
        return self.cost_table.model(node_of[src], node_of[dst])

    def is_alive(self, proc: int) -> bool:
        return self.endpoints[proc].alive

    def _chan_state(self, key: Tuple[int, int]) -> list:
        src, dst = key
        node_of = self._node_of
        src_node = node_of[src]
        dst_node = node_of[dst]
        model = self.cost_table.model(src_node, dst_node)
        if src_node != dst_node:
            node_busy = self._node_busy
            src_busy = node_busy.get(src_node)
            if src_busy is None:
                src_busy = node_busy[src_node] = [0.0, 0.0]
            dst_busy = node_busy.get(dst_node)
            if dst_busy is None:
                dst_busy = node_busy[dst_node] = [0.0, 0.0]
            state = [model, src_busy, dst_busy, 0.0, 0.0]
        else:
            state = [model, None, None, 0.0, 0.0]
        self._chan[key] = state
        return state

    # ------------------------------------------------------------ transfers
    def acquire_frame(self, src: int, dst: int, size: int, payload: Any, kind: str = "data") -> Frame:
        """Pool-backed frame for out-of-band senders (the failure detector's
        svc frames bypass :meth:`send` — they are not wire traffic — but
        still recycle through the free list so the accounting balances)."""
        acquired = self.frames_acquired + 1
        self.frames_acquired = acquired
        outstanding = acquired - self.frames_released - self.frames_stranded
        if outstanding > self.frame_hw_window:
            self.frame_hw_window = outstanding
        pool = self._frame_pool
        if pool:
            frame = pool.pop()
            frame.src = src
            frame.dst = dst
            frame.size = size
            frame.payload = payload
            frame.kind = kind
            frame.arrived_at = -1.0
        else:
            self.frames_allocated += 1
            frame = Frame(src, dst, size, payload, kind)
        # Stamped here as well as in inject(): out-of-band frames are
        # delivered straight to an endpoint, and the dead-endpoint drop
        # site needs the owning fabric to account the strand.
        frame.fabric = self
        return frame

    def send(self, src: int, dst: int, size: int, payload: Any, kind: str = "data") -> float:
        """Acquire a (possibly recycled) frame and put it on the wire.

        The hot-path entry every PML send site uses (acquire_frame's body
        is inlined here — one call per frame is measurable): one pool pop
        replaces the per-message Frame allocation once the pool has warmed
        up.  Returns the arrival time (see :meth:`inject`).
        """
        acquired = self.frames_acquired + 1
        self.frames_acquired = acquired
        outstanding = acquired - self.frames_released - self.frames_stranded
        if outstanding > self.frame_hw_window:
            self.frame_hw_window = outstanding
        pool = self._frame_pool
        if pool:
            frame = pool.pop()
            frame.src = src
            frame.dst = dst
            frame.size = size
            frame.payload = payload
            frame.kind = kind
            frame.arrived_at = -1.0
        else:
            self.frames_allocated += 1
            frame = Frame(src, dst, size, payload, kind)
        return self.inject(frame)

    def strand_frame(self, frame: Frame, site: str = "dead_endpoint") -> None:
        """Account a frame dropped at a fail-stop site (and the envelope it
        carries, if any).  Stranded objects are *not* pooled — behaviour is
        byte-identical to the silent drop, only the counters move — and the
        references are cleared so the dead frame pins nothing.  *site*
        attributes the drop to its mechanism for per-site reporting.
        """
        self.frames_stranded += 1
        cell = self.strands_by_site.get(site)
        if cell is None:
            cell = self.strands_by_site[site] = [0, 0]
        cell[0] += 1
        payload = frame.payload
        if payload is not None and frame.kind != "svc":
            # Application/protocol frames carry exactly one arena-owned
            # envelope; svc frames carry a plain tuple.
            self.envs_stranded += 1
            cell[1] += 1
        frame.payload = None
        frame.fabric = None

    def release_frame(self, frame: Frame) -> None:
        """Return a fully-consumed frame to the free list (explicit reset:
        drop the payload and fabric references so recycled frames never
        keep envelopes or simulators alive)."""
        self.frames_released += 1
        frame.payload = None
        frame.fabric = None
        pool = self._frame_pool
        if self.pool_frames and len(pool) < 4096:
            pool.append(frame)

    # Same cushion rationale as Pml.TRIM_SLACK.
    TRIM_SLACK = 32

    def trim_frame_pool(self) -> int:
        """Quiescent-point frame-arena trim (see :meth:`Pml.trim_env_pool`):
        cap the free list at the recent windowed high-water plus slack,
        fold the window into the run high-water, restart the window."""
        window = self.frame_hw_window
        if window > self.frame_high_water:
            self.frame_high_water = window
        pool = self._frame_pool
        bound = window + self.TRIM_SLACK
        dropped = len(pool) - bound
        if dropped > 0:
            del pool[bound:]
            self.frames_trimmed += dropped
        else:
            dropped = 0
        self.frame_hw_window = self.frames_acquired - self.frames_released - self.frames_stranded
        return dropped

    def stats(self) -> dict:
        """Free-list accounting (the harness asserts acquired == released
        at the end of every crash-free run) plus wire totals."""
        return {
            "frames_acquired": self.frames_acquired,
            "frames_allocated": self.frames_allocated,
            "frames_released": self.frames_released,
            "frames_stranded": self.frames_stranded,
            "envs_stranded": self.envs_stranded,
            "envs_duplicated": self.envs_duplicated,
            "fault_drops": self.fault_drops,
            "fault_dups": self.fault_dups,
            "fault_delays": self.fault_delays,
            "strands_by_site": {k: tuple(v) for k, v in self.strands_by_site.items()},
            "frames_exported": self.frames_exported,
            "frames_imported": self.frames_imported,
            "envs_exported": self.envs_exported,
            "envs_imported": self.envs_imported,
            "frame_pool_size": len(self._frame_pool),
            "frame_high_water": max(self.frame_high_water, self.frame_hw_window),
            "frames_trimmed": self.frames_trimmed,
            "total_frames": self.total_frames,
            "total_bytes": self.total_bytes,
        }

    def install_faults(self, plan, rng) -> None:
        """Arm the seeded network adversary described by *plan*.

        *plan* is a validated :class:`repro.network.model.FaultPlan`; *rng*
        is a dedicated ``numpy.random.Generator`` (campaigns hand out one
        named stream per concern, so arming faults never perturbs jitter or
        fault-schedule draws).  An empty plan disarms — ``inject`` falls
        back to the single ``_faults is None`` check and the wire is
        byte-identical to the reliable default.
        """
        plan.validate()
        self._faults = _FaultRuntime(plan, rng) if plan else None

    def inject(self, frame: Frame) -> float:
        """Put *frame* on the wire now.  Returns the arrival time.

        The caller (PML) is responsible for charging sender CPU overhead;
        the fabric charges wire serialization and propagation only.
        """
        src = frame.src
        dst = frame.dst
        src_ep = self.endpoints[src]
        if not src_ep.alive:
            # A crashed process cannot send; drop (the process is being
            # torn down and no correctness property may depend on it) —
            # but the frame was acquired, so account the strand.
            self.strand_frame(frame, "dead_source")
            return self.sim._now
        faults = self._faults
        if faults is not None:
            site, extra_delay, dup = faults.decide(frame, self.sim._now, self._node_of)
            if site is not None:
                # Lossy-wire drop site: the frame dies on the link, its
                # envelope is stranded under the fault mechanism's name,
                # and the sender is none the wiser (that is what the
                # replication protocols are for).
                self.fault_drops += 1
                self.strand_frame(frame, site)
                return self.sim._now
        else:
            extra_delay = 0.0
            dup = False
        key = (src, dst)
        state = self._chan.get(key)
        if state is None:
            state = self._chan_state(key)
        model = state[0]
        now = self.sim._now
        size = frame.size
        ser = model.serialization(size)
        src_busy = state[1]
        if src_busy is not None:
            # Uplink occupancy at the source node.
            t_up = src_busy[0]
            if t_up < now:
                t_up = now
            src_busy[0] = t_up + ser
            router = self.shard_router
            if router is not None:
                # Sharded-parallel mode: the destination node's downlink
                # cell may be owned by another shard, and even when it is
                # local its pricing order must be canonical across shards.
                # Price the uplink above (exclusively ours), count the
                # frame as sent, and defer downlink pricing + delivery to
                # the window barrier.  Lookahead guarantees the arrival
                # lands strictly after the current window, so deferral is
                # unobservable.  Callers discard the return value on every
                # PML send path; -1.0 marks "arrival priced at barrier".
                frame.sent_at = now
                src_ep.frames_sent += 1
                src_ep.bytes_sent += size
                self.total_frames += 1
                self.total_bytes += size
                by_kind = self.frames_by_kind
                kind = frame.kind
                by_kind[kind] = by_kind.get(kind, 0) + 1
                frame.fabric = self
                if extra_delay > 0.0:
                    self.fault_delays += 1
                router.defer(frame, now, t_up + model.latency, ser, extra_delay, self.sim._seq)
                return -1.0
            # Head reaches the destination NIC after the wire latency;
            # the frame then drains through the shared downlink.
            t_down = t_up + model.latency
            dst_busy = state[2]
            if t_down < dst_busy[1]:
                t_down = dst_busy[1]
            arrival = t_down + ser
            dst_busy[1] = arrival
        else:
            depart = state[3]
            if depart < now:
                depart = now
            arrival = depart + ser + model.latency
            state[3] = arrival
        if self._jitter is not None:
            jit = self._jitter()
            if jit > 0.0:
                arrival += jit
        if extra_delay > 0.0:
            # Delay spike: added before the FIFO clamp below, so a spiked
            # frame pushes the channel's arrival floor instead of being
            # overtaken — degradation never breaks per-channel ordering.
            self.fault_delays += 1
            arrival += extra_delay
        # FIFO guarantee: serialization already enforces non-decreasing
        # arrivals per channel when jitter is zero; with jitter, clamp —
        # per ordered channel, covering the per-node-priced inter-node path.
        if arrival < state[4]:
            arrival = state[4]
        state[4] = arrival
        frame.sent_at = now
        src_ep.frames_sent += 1
        src_ep.bytes_sent += size
        self.total_frames += 1
        self.total_bytes += size
        by_kind = self.frames_by_kind
        kind = frame.kind
        by_kind[kind] = by_kind.get(kind, 0) + 1
        frame.fabric = self
        sim = self.sim
        if arrival > now or not sim._bucketed:
            sim._seq += 1
            heappush(sim._queue, (arrival, sim._seq, frame))
        else:
            # Zero-cost model: the frame arrives at the current time.
            sim._bucket.append(frame)
        if dup:
            self._inject_duplicate(frame)
        return arrival

    def _inject_duplicate(self, frame: Frame) -> None:
        """Clone *frame* and put the clone on the wire right behind it.

        The clone carries a *fresh* envelope (same wire identity, shared
        copy-on-write payload) so both copies can flow through the arena's
        single-owner release discipline independently; it is counted in
        :attr:`envs_duplicated` on the acquired side of the balance proof.
        The fault runtime is disarmed around the nested inject so a
        duplicate can never itself duplicate (or be dropped — one fault per
        original frame keeps campaign accounting legible).  Non-envelope
        payloads (raw-fabric tests, svc tuples) are never duplicated.
        """
        env = frame.payload
        if frame.kind != "eager" or env is None or not isinstance(env, _envelope_class()):
            return
        clone = type(env)(
            env.kind,
            env.ctx,
            env.src_rank,
            env.tag,
            env.world_src,
            env.world_dst,
            env.seq,
            env.nbytes,
            env.data,
            env.src_phys,
            env.dst_phys,
            env.msg_id,
            env.ctrl_key,
        )
        self.envs_duplicated += 1
        self.fault_dups += 1
        faults = self._faults
        self._faults = None
        try:
            dup_frame = self.acquire_frame(frame.src, frame.dst, frame.size, clone, frame.kind)
            self.inject(dup_frame)
        finally:
            self._faults = faults

    # ---------------------------------------------------- shard relay hooks
    def price_deferred(self, src: int, dst: int, t_head: float, ser: float, extra_delay: float) -> float:
        """Window-barrier downlink pricing for one deferred inter-node frame.

        Mirrors the tail of :meth:`inject` exactly: the frame's head
        reached the destination NIC at *t_head* (uplink + latency, priced
        in the source shard), drains through the shared downlink
        (``dst_busy[1]`` — owned by this shard, the destination node's
        owner), then the fault delay spike and the per-channel FIFO clamp
        apply in that order.  Callers must invoke this in canonical
        cross-shard order (see :mod:`repro.sim.shard`) so the downlink
        occupancy evolves exactly as the serial engine's inject-order
        pricing would.
        """
        key = (src, dst)
        state = self._chan.get(key)
        if state is None:
            state = self._chan_state(key)
        dst_busy = state[2]
        t_down = t_head
        if t_down < dst_busy[1]:
            t_down = dst_busy[1]
        arrival = t_down + ser
        dst_busy[1] = arrival
        if extra_delay > 0.0:
            arrival += extra_delay
        if arrival < state[4]:
            arrival = state[4]
        state[4] = arrival
        return arrival

    def export_frame(self, frame: Frame) -> None:
        """Hand *frame* (and its envelope) to another shard's custody.

        The local counters record the departure so the per-shard balance
        ``acquired == released + stranded + exported`` stays exact; the
        shell is recycled locally (the wire record, not the object,
        crosses the process boundary).
        """
        self.frames_exported += 1
        payload = frame.payload
        if payload is not None and frame.kind != "svc":
            self.envs_exported += 1
        frame.payload = None
        frame.fabric = None
        pool = self._frame_pool
        if self.pool_frames and len(pool) < 4096:
            pool.append(frame)

    def import_frame(self, src: int, dst: int, size: int, payload: Any, kind: str) -> Frame:
        """Materialize a relayed frame received from another shard."""
        self.frames_imported += 1
        if payload is not None and kind != "svc":
            self.envs_imported += 1
        return self.acquire_frame(src, dst, size, payload, kind)

    # --------------------------------------------------------------- faults
    def _strand_inbox(self, ep: Endpoint) -> None:
        """Strand-account and drop every frame queued at *ep* (dead-rank
        inbox clear — the frames will never be handled)."""
        inbox = ep.inbox
        while inbox:
            self.strand_frame(inbox.popleft(), "inbox_clear")

    def crash(self, proc: int) -> None:
        """Fail-stop endpoint *proc* and notify crash listeners."""
        ep = self.endpoints[proc]
        if not ep.alive:
            return
        self.crashes += 1
        ep.alive = False
        self._strand_inbox(ep)
        for listener in list(self.on_crash):
            listener(proc)

    def revive(self, proc: int) -> None:
        """Re-attach a respawned process (recovery, §3.4)."""
        ep = self.endpoints[proc]
        ep.alive = True
        self._strand_inbox(ep)


_ENVELOPE_CLASS: Optional[type] = None


def _envelope_class() -> type:
    """The PML's Envelope type, resolved lazily (pml imports fabric, so the
    reverse import must happen at first duplication, never at module load)."""
    global _ENVELOPE_CLASS
    if _ENVELOPE_CLASS is None:
        from repro.mpi.pml import Envelope

        _ENVELOPE_CLASS = Envelope
    return _ENVELOPE_CLASS


class _FaultRuntime:
    """Interprets a :class:`repro.network.model.FaultPlan` per injected frame.

    One seeded generator drives every probabilistic decision; draws happen
    in plan order (windows first-to-last, drop before dup per window), and
    windows that cannot affect a frame (closed, filtered out, zero
    probability) consume no draws — so adding a delay-only window to a plan
    never reshuffles the drop pattern of the windows before it.

    Duplication is drawn only for ``eager`` frames: eager messages are the
    fire-and-forget kind the protocols' per-channel sequence dedup covers.
    The rendezvous handshake (rts/cts/data) and protocol ctrl traffic are
    per-``msg_id`` stateful — the wire model delivers them exactly-once,
    while drops and partitions still apply to every kind (a dropped CTS is
    precisely how a lossy link wedges a rendezvous).
    """

    __slots__ = ("windows", "partitions", "rng", "_group_of")

    def __init__(self, plan, rng) -> None:
        self.windows = tuple(plan.windows)
        self.partitions = tuple(plan.partitions)
        self.rng = rng
        # node → group index per partition window (dict per window, built
        # once; nodes absent from every group share implicit group -1)
        self._group_of: List[Dict[int, int]] = [
            {node: gi for gi, group in enumerate(p.groups) for node in group}
            for p in self.partitions
        ]

    def decide(self, frame: Frame, now: float, node_of: List[int]) -> Tuple[Optional[str], float, bool]:
        """(strand site | None, extra arrival delay, duplicate?) for *frame*."""
        src_node = node_of[frame.src] if frame.src >= 0 else -1
        dst_node = node_of[frame.dst]
        if src_node != dst_node:
            for p, group_of in zip(self.partitions, self._group_of):
                if p.start <= now < p.end and group_of.get(src_node, -1) != group_of.get(dst_node, -1):
                    return "partition", 0.0, False
        delay = 0.0
        dup = False
        rng = self.rng
        for w in self.windows:
            if not (w.start <= now < w.end):
                continue
            if w.src_nodes is not None and src_node not in w.src_nodes:
                continue
            if w.dst_nodes is not None and dst_node not in w.dst_nodes:
                continue
            if w.drop_p > 0.0 and rng.random() < w.drop_p:
                return "link_drop", 0.0, False
            if not dup and w.dup_p > 0.0 and frame.kind == "eager" and rng.random() < w.dup_p:
                dup = True
            delay += w.delay
        return None, delay, dup
