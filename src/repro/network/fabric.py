"""The wire: reliable FIFO channels between physical processes.

Semantics match the paper's system model (§2.1):

* channels exist between every ordered pair of processes,
* channels are FIFO and reliable,
* no synchrony assumption — the cost model decides arrival times, and
  correctness never depends on them.

Crash semantics are fail-stop.  A crashed process injects nothing further;
frames already in flight are still delivered to live destinations (protocol
layers dedup via per-channel sequence numbers).  Frames addressed to a
crashed process are dropped on arrival.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.network.topology import Placement
from repro.sim.kernel import Simulator
from repro.sim.sync import Event, Mailbox

__all__ = ["Frame", "Endpoint", "Fabric"]


@dataclass
class Frame:
    """One unit of transfer on the wire.

    ``payload`` is opaque to the fabric; the PML owns its meaning.  ``size``
    is the number of bytes used for costing (header + payload).
    """

    src: int
    dst: int
    size: int
    payload: Any
    kind: str = "data"
    #: stamped by the fabric at injection / delivery (virtual seconds)
    sent_at: float = -1.0
    arrived_at: float = -1.0


class Endpoint:
    """Per-physical-process attachment point.

    The inbox is a FIFO of delivered frames.  ``arrival_event`` is re-armed
    by the progress engine: it fires whenever a new frame lands, waking a
    process blocked inside an MPI call.  Frames landing while the process is
    computing simply accumulate (no asynchronous progress — §3.3).
    """

    def __init__(self, sim: Simulator, proc: int) -> None:
        self.sim = sim
        self.proc = proc
        self.inbox: Deque[Frame] = deque()
        self.alive = True
        self._waiter: Optional[Event] = None
        #: observability counters
        self.frames_received = 0
        self.frames_sent = 0
        self.bytes_received = 0
        self.bytes_sent = 0

    def deliver(self, frame: Frame) -> None:
        if not self.alive:
            return
        self.inbox.append(frame)
        self.frames_received += 1
        self.bytes_received += frame.size
        if self._waiter is not None and not self._waiter.triggered:
            waiter, self._waiter = self._waiter, None
            waiter.succeed(None)

    def wait_for_frame(self) -> Event:
        """Event that fires as soon as the inbox is (or becomes) non-empty."""
        ev = Event(self.sim, label=f"frame@{self.proc}")
        if self.inbox:
            ev.succeed(None)
        else:
            if self._waiter is not None and not self._waiter.triggered:
                # Chain: multiple waiters collapse onto one underlying arm.
                prev = self._waiter

                def fanout(e: Event, a: Event = prev, b: Event = ev) -> None:
                    if not b.triggered:
                        b.succeed(None)

                prev.add_callback(fanout)
            else:
                self._waiter = ev
        return ev


class Fabric:
    """Delivers frames between endpoints according to a placement's models.

    Serialization: each ordered (src, dst) channel carries one frame at a
    time; a frame occupies the channel for ``model.serialization(size)``
    seconds, giving LogGP gap behaviour for streams without simulating
    individual packets.
    """

    def __init__(
        self,
        sim: Simulator,
        placement: Placement,
        jitter: Optional[Callable[[], float]] = None,
    ) -> None:
        self.sim = sim
        self.placement = placement
        self.endpoints: Dict[int, Endpoint] = {
            proc: Endpoint(sim, proc) for proc in range(len(placement))
        }
        self._channel_free: Dict[Tuple[int, int], float] = {}
        # Shared per-node NIC: all inter-node traffic of a node serializes
        # through its uplink/downlink (8 ranks per node share one HCA in the
        # paper's testbed).  Cut-through: latency overlaps serialization.
        self._uplink_free: Dict[int, float] = {}
        self._downlink_free: Dict[int, float] = {}
        self._jitter = jitter
        self.on_crash: List[Callable[[int], None]] = []
        #: totals for message-complexity ablations (mirror vs parallel)
        self.total_frames = 0
        self.total_bytes = 0
        self.frames_by_kind: Dict[str, int] = {}

    # ----------------------------------------------------------- attachment
    def endpoint(self, proc: int) -> Endpoint:
        return self.endpoints[proc]

    def model_for(self, src: int, dst: int):
        return self.placement.cluster.model_for(
            self.placement.node_of(src), self.placement.node_of(dst)
        )

    def is_alive(self, proc: int) -> bool:
        return self.endpoints[proc].alive

    # ------------------------------------------------------------ transfers
    def inject(self, frame: Frame) -> float:
        """Put *frame* on the wire now.  Returns the arrival time.

        The caller (PML) is responsible for charging sender CPU overhead;
        the fabric charges wire serialization and propagation only.
        """
        src_ep = self.endpoints[frame.src]
        if not src_ep.alive:
            # A crashed process cannot send; drop silently (the process is
            # being torn down and no correctness property may depend on it).
            return self.sim.now
        model = self.model_for(frame.src, frame.dst)
        key = (frame.src, frame.dst)
        ser = model.serialization(frame.size)
        src_node = self.placement.node_of(frame.src)
        dst_node = self.placement.node_of(frame.dst)
        if src_node != dst_node:
            # Uplink occupancy at the source node.
            t_up = max(self.sim.now, self._uplink_free.get(src_node, 0.0))
            self._uplink_free[src_node] = t_up + ser
            # Head reaches the destination NIC after the wire latency;
            # the frame then drains through the shared downlink.
            t_down = max(t_up + model.latency, self._downlink_free.get(dst_node, 0.0))
            arrival = t_down + ser
            self._downlink_free[dst_node] = arrival
        else:
            depart = max(self.sim.now, self._channel_free.get(key, 0.0))
            arrival = depart + ser + model.latency
            self._channel_free[key] = arrival
        if self._jitter is not None:
            arrival += max(0.0, self._jitter())
        # FIFO guarantee: serialization already enforces non-decreasing
        # arrivals per channel when jitter is zero; with jitter, clamp.
        frame.sent_at = self.sim.now
        src_ep.frames_sent += 1
        src_ep.bytes_sent += frame.size
        self.total_frames += 1
        self.total_bytes += frame.size
        self.frames_by_kind[frame.kind] = self.frames_by_kind.get(frame.kind, 0) + 1
        last = getattr(self, "_last_arrival", None)
        if last is None:
            self._last_arrival = {}
        prev = self._last_arrival.get(key, 0.0)
        arrival = max(arrival, prev)
        self._last_arrival[key] = arrival

        def _deliver() -> None:
            frame.arrived_at = self.sim.now
            self.endpoints[frame.dst].deliver(frame)

        self.sim.call_at(arrival, _deliver)
        return arrival

    # --------------------------------------------------------------- faults
    def crash(self, proc: int) -> None:
        """Fail-stop endpoint *proc* and notify crash listeners."""
        ep = self.endpoints[proc]
        if not ep.alive:
            return
        ep.alive = False
        ep.inbox.clear()
        for listener in list(self.on_crash):
            listener(proc)

    def revive(self, proc: int) -> None:
        """Re-attach a respawned process (recovery, §3.4)."""
        ep = self.endpoints[proc]
        ep.alive = True
        ep.inbox.clear()
