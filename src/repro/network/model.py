"""Analytic network cost models (LogGP family).

The paper's testbed is InfiniBand-20G (Mellanox ConnectX, 20 Gbps) where
native Open MPI achieves a 1-byte ping-pong latency of 1.67 µs.  The
:class:`InfiniBand20G` preset is calibrated so that:

* native one-way small-message latency  = o_send + L + o_recv = 1.67 µs,
* peak achievable bandwidth            ~ 2.5 GB/s (20 Gbps),
* SDR-MPI's per-message ack adds ~2·o to the small-message critical path,
  reproducing the paper's 2.37 µs replicated 1-byte latency (+42 %) and the
  ">25 % only below 100 B" shape of Fig. 7.

The model decomposes a message transfer into:

* ``send_overhead`` (o_s): CPU busy time on the sender per message,
* ``recv_overhead`` (o_r): CPU busy time on the receiver per frame handled,
* ``latency``       (L)  : wire propagation per frame,
* ``byte_time``     (G)  : serialization seconds per byte (1/bandwidth),

with store-and-forward serialization per ordered channel (a channel cannot
carry two frames at once), which yields LogGP's gap behaviour for streams.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "NetworkCostModel",
    "LogGPModel",
    "LinearCostModel",
    "SharedMemoryModel",
    "InfiniBand20G",
]


@dataclass(frozen=True)
class NetworkCostModel:
    """Base cost model: alpha/beta with explicit CPU overheads.

    All times in seconds, sizes in bytes.
    """

    #: CPU busy time on the sender per injected frame.
    send_overhead: float = 0.35e-6
    #: CPU busy time on the receiver per handled frame.
    recv_overhead: float = 0.35e-6
    #: Wire propagation latency per frame.
    latency: float = 0.97e-6
    #: Serialization time per byte (1 / bandwidth).
    byte_time: float = 1.0 / 2.5e9
    #: Eager/rendezvous switchover used by the PML for this network.
    eager_limit: int = 12 * 1024

    def serialization(self, nbytes: int) -> float:
        """Time the channel is occupied by a frame of *nbytes* payload."""
        return nbytes * self.byte_time

    def one_way(self, nbytes: int) -> float:
        """Analytic uncontended one-way time (diagnostics/calibration)."""
        return self.send_overhead + self.serialization(nbytes) + self.latency + self.recv_overhead


class LogGPModel(NetworkCostModel):
    """Alias making the LogGP correspondence explicit (o, L, G)."""


@dataclass(frozen=True)
class LinearCostModel(NetworkCostModel):
    """Plain alpha-beta model with zero CPU overhead (teaching/testing)."""

    send_overhead: float = 0.0
    recv_overhead: float = 0.0
    latency: float = 1.0e-6
    byte_time: float = 1.0 / 1.0e9


@dataclass(frozen=True)
class SharedMemoryModel(NetworkCostModel):
    """Intra-node transfers through shared memory: lower latency, higher bw."""

    send_overhead: float = 0.15e-6
    recv_overhead: float = 0.15e-6
    latency: float = 0.20e-6
    byte_time: float = 1.0 / 5.0e9
    eager_limit: int = 4 * 1024


@dataclass(frozen=True)
class InfiniBand20G(NetworkCostModel):
    """Calibrated to the paper's Grid'5000 Nancy testbed (Fig. 7 natives)."""

    send_overhead: float = 0.35e-6
    recv_overhead: float = 0.35e-6
    latency: float = 0.97e-6
    byte_time: float = 1.0 / 2.5e9
    eager_limit: int = 12 * 1024
