"""Analytic network cost models (LogGP family).

The paper's testbed is InfiniBand-20G (Mellanox ConnectX, 20 Gbps) where
native Open MPI achieves a 1-byte ping-pong latency of 1.67 µs.  The
:class:`InfiniBand20G` preset is calibrated so that:

* native one-way small-message latency  = o_send + L + o_recv = 1.67 µs,
* peak achievable bandwidth            ~ 2.5 GB/s (20 Gbps),
* SDR-MPI's per-message ack adds ~2·o to the small-message critical path,
  reproducing the paper's 2.37 µs replicated 1-byte latency (+42 %) and the
  ">25 % only below 100 B" shape of Fig. 7.

The model decomposes a message transfer into:

* ``send_overhead`` (o_s): CPU busy time on the sender per message,
* ``recv_overhead`` (o_r): CPU busy time on the receiver per frame handled,
* ``latency``       (L)  : wire propagation per frame,
* ``byte_time``     (G)  : serialization seconds per byte (1/bandwidth),

with store-and-forward serialization per ordered channel (a channel cannot
carry two frames at once), which yields LogGP's gap behaviour for streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "NetworkCostModel",
    "LogGPModel",
    "LinearCostModel",
    "SharedMemoryModel",
    "InfiniBand20G",
    "LinkFaultWindow",
    "PartitionWindow",
    "FaultPlan",
    "FaultPlanError",
]


@dataclass(frozen=True)
class NetworkCostModel:
    """Base cost model: alpha/beta with explicit CPU overheads.

    All times in seconds, sizes in bytes.
    """

    #: CPU busy time on the sender per injected frame.
    send_overhead: float = 0.35e-6
    #: CPU busy time on the receiver per handled frame.
    recv_overhead: float = 0.35e-6
    #: Wire propagation latency per frame.
    latency: float = 0.97e-6
    #: Serialization time per byte (1 / bandwidth).
    byte_time: float = 1.0 / 2.5e9
    #: Eager/rendezvous switchover used by the PML for this network.
    eager_limit: int = 12 * 1024

    def serialization(self, nbytes: int) -> float:
        """Time the channel is occupied by a frame of *nbytes* payload."""
        return nbytes * self.byte_time

    def one_way(self, nbytes: int) -> float:
        """Analytic uncontended one-way time (diagnostics/calibration)."""
        return self.send_overhead + self.serialization(nbytes) + self.latency + self.recv_overhead


class LogGPModel(NetworkCostModel):
    """Alias making the LogGP correspondence explicit (o, L, G)."""


@dataclass(frozen=True)
class LinearCostModel(NetworkCostModel):
    """Plain alpha-beta model with zero CPU overhead (teaching/testing)."""

    send_overhead: float = 0.0
    recv_overhead: float = 0.0
    latency: float = 1.0e-6
    byte_time: float = 1.0 / 1.0e9


@dataclass(frozen=True)
class SharedMemoryModel(NetworkCostModel):
    """Intra-node transfers through shared memory: lower latency, higher bw."""

    send_overhead: float = 0.15e-6
    recv_overhead: float = 0.15e-6
    latency: float = 0.20e-6
    byte_time: float = 1.0 / 5.0e9
    eager_limit: int = 4 * 1024


@dataclass(frozen=True)
class InfiniBand20G(NetworkCostModel):
    """Calibrated to the paper's Grid'5000 Nancy testbed (Fig. 7 natives)."""

    send_overhead: float = 0.35e-6
    recv_overhead: float = 0.35e-6
    latency: float = 0.97e-6
    byte_time: float = 1.0 / 2.5e9
    eager_limit: int = 12 * 1024


# --------------------------------------------------------------- fault model
#
# The paper assumes reliable FIFO channels (§2.1); the fault plan below is
# the *adversary* that assumption is tested against.  A plan is pure data —
# validated at construction, interpreted by the fabric's fault runtime — and
# every probabilistic decision draws from one seeded generator, so a
# campaign run is reproducible from its seed alone.  An empty plan (the
# default everywhere) leaves the fabric byte-identical to the reliable wire.


class FaultPlanError(ValueError):
    """A fault plan that cannot mean anything sensible (bad probability,
    inverted window, empty partition...) — raised at build time, before any
    simulation runs, so a campaign never silently executes a typo."""


@dataclass(frozen=True)
class LinkFaultWindow:
    """Transient link degradation over ``[start, end)``.

    Each frame injected while the window is open (and matching the optional
    node filters) independently suffers:

    * drop with probability ``drop_p`` — the frame is stranded at the
      ``link_drop`` site, its envelope accounted, nothing arrives;
    * duplication with probability ``dup_p`` — a clone (fresh envelope,
      shared copy-on-write payload) is injected right behind the original;
    * a delay spike of ``delay`` seconds added to the arrival time (the
      per-channel FIFO clamp still applies, so ordering survives).

    ``src_nodes``/``dst_nodes`` restrict the window to frames whose source
    / destination *node* is listed; ``None`` means any.  Intra-node traffic
    is subject to the window too when its node matches both filters.
    """

    start: float
    end: float
    drop_p: float = 0.0
    dup_p: float = 0.0
    delay: float = 0.0
    src_nodes: Optional[Tuple[int, ...]] = None
    dst_nodes: Optional[Tuple[int, ...]] = None

    def validate(self) -> None:
        if not (0.0 <= self.start < self.end):
            raise FaultPlanError(
                f"link-fault window must satisfy 0 <= start < end, got [{self.start}, {self.end})"
            )
        for name in ("drop_p", "dup_p"):
            p = getattr(self, name)
            if not (0.0 <= p <= 1.0):
                raise FaultPlanError(f"link-fault {name}={p} outside [0, 1]")
        if self.delay < 0.0:
            raise FaultPlanError(f"link-fault delay={self.delay} is negative")
        if self.drop_p == 0.0 and self.dup_p == 0.0 and self.delay == 0.0:
            raise FaultPlanError("link-fault window with no effect (all of drop_p/dup_p/delay zero)")
        for name in ("src_nodes", "dst_nodes"):
            nodes = getattr(self, name)
            if nodes is not None and (len(nodes) == 0 or any(n < 0 for n in nodes)):
                raise FaultPlanError(f"link-fault {name}={nodes!r} must be a non-empty tuple of node ids")


@dataclass(frozen=True)
class PartitionWindow:
    """Healing network partition over ``[start, end)``.

    ``groups`` are disjoint sets of node ids.  While the window is open,
    inter-group frames are stranded at the ``partition`` site; intra-group
    (and intra-node) traffic flows normally.  Nodes not named in any group
    form one implicit extra group.  At ``end`` the partition heals — the
    fabric drops nothing further, but frames lost during the window stay
    lost (fail-stop channels have no replay; recovery is the protocols'
    job, which is the point of the experiment).
    """

    start: float
    end: float
    groups: Tuple[Tuple[int, ...], ...] = ()

    def validate(self) -> None:
        if not (0.0 <= self.start < self.end):
            raise FaultPlanError(
                f"partition window must satisfy 0 <= start < end, got [{self.start}, {self.end})"
            )
        if not self.groups:
            raise FaultPlanError("partition window needs at least one node group")
        seen: set = set()
        for group in self.groups:
            if len(group) == 0:
                raise FaultPlanError("partition group must not be empty")
            for node in group:
                if node < 0:
                    raise FaultPlanError(f"partition group names negative node {node}")
                if node in seen:
                    raise FaultPlanError(f"node {node} appears in more than one partition group")
                seen.add(node)


@dataclass(frozen=True)
class FaultPlan:
    """A validated, seedable description of everything the wire does wrong."""

    windows: Tuple[LinkFaultWindow, ...] = field(default_factory=tuple)
    partitions: Tuple[PartitionWindow, ...] = field(default_factory=tuple)

    def validate(self) -> "FaultPlan":
        for w in self.windows:
            w.validate()
        for p in self.partitions:
            p.validate()
        return self

    def __bool__(self) -> bool:
        return bool(self.windows or self.partitions)
