"""Cluster topology and process placement.

The paper's setup: 64 nodes, two quad-core Xeon L5420 each (8 cores/node),
256 MPI ranks with dual replication = 512 physical processes; "the first set
of 256 replicas run on the first half of the nodes, and the second set on
the other half" (§4.2).  :func:`split_halves_placement` reproduces exactly
that policy; :func:`round_robin_placement` is the unreplicated default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.network.model import NetworkCostModel, InfiniBand20G, SharedMemoryModel

__all__ = [
    "Cluster",
    "Placement",
    "round_robin_placement",
    "split_halves_placement",
]


@dataclass
class Cluster:
    """A homogeneous cluster: *nodes* × *cores_per_node* cores.

    ``inter_node`` prices frames between distinct nodes; ``intra_node``
    prices frames between cores of the same node.
    """

    nodes: int = 64
    cores_per_node: int = 8
    inter_node: NetworkCostModel = field(default_factory=InfiniBand20G)
    intra_node: NetworkCostModel = field(default_factory=SharedMemoryModel)
    #: Per-core sustained compute rate used by workload compute models.
    flops_per_core: float = 2.5e9
    #: OS/system noise: lognormal sigma multiplying every compute phase.
    #: Replication couples each rank to its replica's timing through acks,
    #: so noise is amplified under replication — the dominant source of the
    #: paper's application-level overhead (cf. rMPI's scale results).
    compute_noise: float = 0.0

    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    def model_for(self, node_a: int, node_b: int) -> NetworkCostModel:
        return self.intra_node if node_a == node_b else self.inter_node


@dataclass
class Placement:
    """Mapping of physical process id -> (node, core)."""

    cluster: Cluster
    slots: List[Tuple[int, int]]

    def node_of(self, proc: int) -> int:
        return self.slots[proc][0]

    def core_of(self, proc: int) -> int:
        return self.slots[proc][1]

    def __len__(self) -> int:
        return len(self.slots)

    def validate(self) -> None:
        """Check one process per core and bounds."""
        seen: Dict[Tuple[int, int], int] = {}
        for proc, (node, core) in enumerate(self.slots):
            if not (0 <= node < self.cluster.nodes):
                raise ValueError(f"proc {proc}: node {node} out of range")
            if not (0 <= core < self.cluster.cores_per_node):
                raise ValueError(f"proc {proc}: core {core} out of range")
            if (node, core) in seen:
                raise ValueError(
                    f"procs {seen[(node, core)]} and {proc} share core {(node, core)}"
                )
            seen[(node, core)] = proc


def round_robin_placement(cluster: Cluster, nprocs: int, fill_node_first: bool = True) -> Placement:
    """Pack processes onto cores; by-node filling is the common MPI default."""
    if nprocs > cluster.total_cores:
        raise ValueError(
            f"{nprocs} processes do not fit on {cluster.total_cores} cores"
        )
    slots: List[Tuple[int, int]] = []
    for proc in range(nprocs):
        if fill_node_first:
            slots.append((proc // cluster.cores_per_node, proc % cluster.cores_per_node))
        else:
            slots.append((proc % cluster.nodes, proc // cluster.nodes))
    return Placement(cluster, slots)


def split_halves_placement(cluster: Cluster, n_ranks: int, degree: int) -> Placement:
    """The paper's replicated placement (§4.2).

    Replica set *k* occupies the *k*-th slice of ``nodes/degree`` nodes, so
    the two replicas of a logical rank always live on different nodes.
    Physical process ids are ordered replica-major: proc = rep * n_ranks + rank,
    matching :mod:`repro.core.worlds`.
    """
    if cluster.nodes % degree != 0:
        raise ValueError(f"{cluster.nodes} nodes not divisible by degree {degree}")
    nodes_per_set = cluster.nodes // degree
    if n_ranks > nodes_per_set * cluster.cores_per_node:
        raise ValueError(
            f"{n_ranks} ranks do not fit on {nodes_per_set} nodes "
            f"({cluster.cores_per_node} cores each)"
        )
    slots: List[Tuple[int, int]] = []
    for rep in range(degree):
        base = rep * nodes_per_set
        for rank in range(n_ranks):
            slots.append((base + rank // cluster.cores_per_node, rank % cluster.cores_per_node))
    return Placement(cluster, slots)
