"""Simulated cluster substrate: cost models, topology, and the wire fabric.

The fabric provides exactly the channel abstraction the paper assumes
(§2.1): reliable FIFO channels between every ordered pair of physical
processes, with no synchrony assumption.  Crash semantics are fail-stop: a
crashed endpoint stops sending; frames already on the wire are still
delivered (the SDR protocol's sequence-number dedup handles any overlap with
substitute resends).
"""

from repro.network.model import (
    InfiniBand20G,
    LinearCostModel,
    LogGPModel,
    NetworkCostModel,
    SharedMemoryModel,
)
from repro.network.topology import Cluster, Placement, round_robin_placement, split_halves_placement
from repro.network.fabric import Endpoint, Fabric, Frame

__all__ = [
    "Cluster",
    "Endpoint",
    "Fabric",
    "Frame",
    "InfiniBand20G",
    "LinearCostModel",
    "LogGPModel",
    "NetworkCostModel",
    "Placement",
    "SharedMemoryModel",
    "round_robin_placement",
    "split_halves_placement",
]
