"""Crash schedules for fault-injection experiments.

The paper's Fig. 3 scenario (replica p¹₁ crashes mid-run, its substitute
p⁰₁ takes over sending duties) and Fig. 4 (subsequent respawn) are driven
from here.  Times are virtual seconds; ``fraction`` schedules relative to
an estimated run length when absolute times are awkward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.harness.runner import Job

__all__ = ["CrashSpec", "CrashSchedule"]


@dataclass(frozen=True)
class CrashSpec:
    """One fail-stop crash: replica *rep* of logical *rank* at time *at*."""

    rank: int
    rep: int
    at: float


@dataclass
class CrashSchedule:
    """An ordered set of crashes applied to a job before running it."""

    crashes: List[CrashSpec] = field(default_factory=list)

    def add(self, rank: int, rep: int, at: float) -> "CrashSchedule":
        self.crashes.append(CrashSpec(rank, rep, at))
        return self

    def apply(self, job: "Job") -> "Job":
        for spec in self.crashes:
            job.crash(spec.rank, spec.rep, at=spec.at)
        return job

    def __len__(self) -> int:
        return len(self.crashes)
