"""Fault schedules for fault-injection experiments and campaigns.

The paper's Fig. 3 scenario (replica p¹₁ crashes mid-run, its substitute
p⁰₁ takes over sending duties) and Fig. 4 (subsequent respawn) are driven
from here.  Times are virtual seconds.

Beyond the single scripted crash, a :class:`FaultSchedule` composes:

* replica-level crashes (:class:`CrashSpec`),
* **node-level crashes** (:class:`NodeCrashSpec`) that take every
  co-located replica down at once — the correlated-failure shape the
  paper's disjoint-node-halves placement (§4.2) exists to survive,
* **false suspicions** (:class:`SuspicionSpec`) delivered through the
  imperfect detector (requires ``Job(detector=...)``),
* **respawns** (:class:`RespawnSpec`) driven through
  :class:`repro.core.recovery.RecoveryManager`, so crash+respawn pairs
  compose into rolling churn waves (:meth:`FaultSchedule.rolling_churn`)
  and cascades (:meth:`FaultSchedule.cascade`).

Every schedule validates at build/apply time — a duplicate crash of the
same ``(rank, rep)``, a negative or post-horizon time, or a respawn that
precedes every crash of its rank raises :class:`FaultScheduleError`
instead of producing a silently weird run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.recovery import RecoveryManager
    from repro.harness.runner import Job

__all__ = [
    "CrashSpec",
    "CrashSchedule",
    "NodeCrashSpec",
    "RespawnSpec",
    "SuspicionSpec",
    "FaultSchedule",
    "FaultScheduleError",
]


class FaultScheduleError(ValueError):
    """A fault schedule that cannot mean anything sensible — caught before
    the simulation runs, naming the offending spec."""


@dataclass(frozen=True)
class CrashSpec:
    """One fail-stop crash: replica *rep* of logical *rank* at time *at*."""

    rank: int
    rep: int
    at: float


@dataclass(frozen=True)
class NodeCrashSpec:
    """Fail-stop of a whole node at time *at*: every process placed on it
    crashes together (correlated failure — co-located replicas die as one).
    Expanded against the job's placement at apply time."""

    node: int
    at: float


@dataclass(frozen=True)
class RespawnSpec:
    """Request a respawn of *rank*'s dead replica at time *at* (honoured at
    the application's next recovery point, §3.4)."""

    rank: int
    at: float


@dataclass(frozen=True)
class SuspicionSpec:
    """False positive from the imperfect detector: replica *rep* of *rank*
    is reported suspect at *at* and — unless ``clear_after`` is None —
    cleared ``clear_after`` seconds later."""

    rank: int
    rep: int
    at: float
    clear_after: Optional[float] = None


@dataclass
class CrashSchedule:
    """An ordered set of crashes applied to a job before running it."""

    crashes: List[CrashSpec] = field(default_factory=list)

    def add(self, rank: int, rep: int, at: float) -> "CrashSchedule":
        self.crashes.append(CrashSpec(rank, rep, at))
        return self

    def validate(self, horizon: Optional[float] = None) -> "CrashSchedule":
        """Reject schedules that cannot mean anything sensible: duplicate
        crashes of one ``(rank, rep)``, negative times, times at or past
        the campaign horizon."""
        seen = set()
        for spec in self.crashes:
            _check_time(spec.at, horizon, f"crash of ({spec.rank}, {spec.rep})")
            key = (spec.rank, spec.rep)
            if key in seen:
                raise FaultScheduleError(
                    f"duplicate crash of (rank={spec.rank}, rep={spec.rep}): "
                    "a fail-stop process dies exactly once"
                )
            seen.add(key)
        return self

    def apply(self, job: "Job") -> "Job":
        self.validate()
        for spec in self.crashes:
            job.crash(spec.rank, spec.rep, at=spec.at)
        return job

    def __len__(self) -> int:
        return len(self.crashes)


def _check_time(at: float, horizon: Optional[float], what: str) -> None:
    if at < 0.0:
        raise FaultScheduleError(f"{what} scheduled at negative time {at}")
    if horizon is not None and at >= horizon:
        raise FaultScheduleError(
            f"{what} scheduled at {at}, at or past the campaign horizon {horizon} "
            "(it would never fire)"
        )


@dataclass
class FaultSchedule:
    """A composed fault scenario: crashes, node losses, suspicions, respawns.

    ``validate`` runs the static checks (no placement needed);
    :meth:`apply` re-validates, expands node crashes against the job's
    placement (checking the correlated kills collide with nothing), and
    wires every spec into the job's clock.
    """

    crashes: List[CrashSpec] = field(default_factory=list)
    node_crashes: List[NodeCrashSpec] = field(default_factory=list)
    suspicions: List[SuspicionSpec] = field(default_factory=list)
    respawns: List[RespawnSpec] = field(default_factory=list)

    # ------------------------------------------------------------- builders
    def crash(self, rank: int, rep: int, at: float) -> "FaultSchedule":
        self.crashes.append(CrashSpec(rank, rep, at))
        return self

    def crash_node(self, node: int, at: float) -> "FaultSchedule":
        self.node_crashes.append(NodeCrashSpec(node, at))
        return self

    def suspect(self, rank: int, rep: int, at: float, clear_after: Optional[float] = None) -> "FaultSchedule":
        self.suspicions.append(SuspicionSpec(rank, rep, at, clear_after))
        return self

    def respawn(self, rank: int, at: float) -> "FaultSchedule":
        self.respawns.append(RespawnSpec(rank, at))
        return self

    @classmethod
    def rolling_churn(
        cls,
        ranks: Iterable[int],
        start: float,
        period: float,
        downtime: float,
        rep: int = 1,
    ) -> "FaultSchedule":
        """Rolling crash+respawn wave: rank *i* in *ranks* loses replica
        *rep* at ``start + i·period`` and a respawn is requested
        ``downtime`` later — membership churn under live traffic."""
        if period <= 0.0 or downtime <= 0.0:
            raise FaultScheduleError(
                f"rolling churn needs positive period/downtime, got {period}/{downtime}"
            )
        sched = cls()
        for i, rank in enumerate(ranks):
            at = start + i * period
            sched.crash(rank, rep, at)
            sched.respawn(rank, at + downtime)
        return sched

    @classmethod
    def cascade(cls, nodes: Iterable[int], start: float, gap: float) -> "FaultSchedule":
        """Cascading node failures: each node in *nodes* fails *gap* after
        the previous one (correlated loss spreading through the system)."""
        if gap <= 0.0:
            raise FaultScheduleError(f"cascade needs a positive gap, got {gap}")
        sched = cls()
        for i, node in enumerate(nodes):
            sched.crash_node(node, start + i * gap)
        return sched

    # ----------------------------------------------------------- validation
    def validate(self, horizon: Optional[float] = None) -> "FaultSchedule":
        seen = set()
        for spec in self.crashes:
            _check_time(spec.at, horizon, f"crash of ({spec.rank}, {spec.rep})")
            key = (spec.rank, spec.rep)
            if key in seen:
                raise FaultScheduleError(
                    f"duplicate crash of (rank={spec.rank}, rep={spec.rep}): "
                    "a fail-stop process dies exactly once"
                )
            seen.add(key)
        node_seen = set()
        for nspec in self.node_crashes:
            _check_time(nspec.at, horizon, f"crash of node {nspec.node}")
            if nspec.node in node_seen:
                raise FaultScheduleError(f"duplicate crash of node {nspec.node}")
            node_seen.add(nspec.node)
        for sspec in self.suspicions:
            _check_time(sspec.at, horizon, f"suspicion of ({sspec.rank}, {sspec.rep})")
            if sspec.clear_after is not None and sspec.clear_after <= 0.0:
                raise FaultScheduleError(
                    f"suspicion of ({sspec.rank}, {sspec.rep}) clears after "
                    f"{sspec.clear_after} — must be positive (or None to never clear)"
                )
        crash_time_by_rank: dict = {}
        for spec in self.crashes:
            t = crash_time_by_rank.get(spec.rank)
            crash_time_by_rank[spec.rank] = spec.at if t is None else min(t, spec.at)
        for rspec in self.respawns:
            _check_time(rspec.at, horizon, f"respawn of rank {rspec.rank}")
            first_crash = crash_time_by_rank.get(rspec.rank)
            if first_crash is None and not self.node_crashes:
                raise FaultScheduleError(
                    f"respawn of rank {rspec.rank} at {rspec.at}: no crash of that "
                    "rank anywhere in the schedule"
                )
            if first_crash is not None and rspec.at <= first_crash:
                raise FaultScheduleError(
                    f"respawn of rank {rspec.rank} at {rspec.at} precedes its first "
                    f"crash at {first_crash} (respawn-before-crash)"
                )
        return self

    # ---------------------------------------------------------- application
    def apply(
        self,
        job: "Job",
        horizon: Optional[float] = None,
        recovery: Optional["RecoveryManager"] = None,
    ) -> "Job":
        """Validate against *job* and wire every spec into its clock.

        Node crashes are expanded against the job's placement here (the
        only point a placement exists); the expansion is checked against
        the replica-level crashes so one process is never killed twice.
        Suspicions require the job to run an imperfect detector; respawns
        require a :class:`RecoveryManager` (pass one in, or one is built —
        which itself validates protocol support).
        """
        self.validate(horizon)
        rmap = job.rmap
        placement = job.placement
        crashed_procs = {}
        for spec in self.crashes:
            if spec.rank >= rmap.n_ranks or spec.rep >= rmap.degree:
                raise FaultScheduleError(
                    f"crash of (rank={spec.rank}, rep={spec.rep}) outside the job "
                    f"({rmap.n_ranks} ranks × degree {rmap.degree})"
                )
            crashed_procs[rmap.phys(spec.rank, spec.rep)] = spec
            job.crash(spec.rank, spec.rep, at=spec.at)
        for nspec in self.node_crashes:
            if nspec.node >= job.cluster.nodes:
                raise FaultScheduleError(
                    f"crash of node {nspec.node}: cluster has {job.cluster.nodes} nodes"
                )
            victims = [p for p in range(rmap.n_procs) if placement.node_of(p) == nspec.node]
            for proc in victims:
                prior = crashed_procs.get(proc)
                if prior is not None:
                    raise FaultScheduleError(
                        f"node {nspec.node} crash at {nspec.at} kills proc {proc} "
                        f"already crashed by {prior}"
                    )
                crashed_procs[proc] = nspec
                rank, rep = rmap.pair(proc)
                job.crash(rank, rep, at=nspec.at)
        if self.suspicions:
            if job.membership.detector is None:
                raise FaultScheduleError(
                    "suspicion specs require an imperfect detector "
                    "(Job(detector=DetectorConfig(...)))"
                )
            for sspec in self.suspicions:
                proc = rmap.phys(sspec.rank, sspec.rep)
                job.sim.call_at(
                    sspec.at,
                    lambda proc=proc, clear=sspec.clear_after: job.membership.inject_suspicion(
                        proc, clear_after=clear
                    ),
                )
        if self.respawns:
            detector = job.membership.detector
            if detector is not None:
                # With the imperfect detector, a crash is declared only
                # after missed heartbeats + timeout (+ notification
                # retries).  A respawn that lands before the declaration
                # revives the slot first, and the stale declaration then
                # condemns the live, respawned process — peers fail over
                # away from a healthy replica and the run wedges.  Reject
                # the schedule instead of producing that silently weird
                # run: respawn requests must follow failure declaration.
                notify_lag = (detector.notify_attempts - 1) * detector.notify_backoff
                for rspec in self.respawns:
                    for spec in self.crashes:
                        if spec.rank != rspec.rank or spec.at > rspec.at:
                            continue
                        declared = detector.declare_at(spec.at) + notify_lag
                        if rspec.at < declared:
                            raise FaultScheduleError(
                                f"respawn of rank {rspec.rank} at {rspec.at} precedes "
                                f"the detector's declaration of its crash at {spec.at} "
                                f"(declared by {declared}): respawn requests must "
                                "follow failure declaration"
                            )
            if recovery is None:
                from repro.core.recovery import RecoveryManager

                recovery = RecoveryManager(job)
            for rspec in self.respawns:
                job.sim.call_at(
                    rspec.at, lambda rank=rspec.rank: recovery.request_respawn(rank)
                )
        return job

    def __len__(self) -> int:
        return (
            len(self.crashes)
            + len(self.node_crashes)
            + len(self.suspicions)
            + len(self.respawns)
        )
