"""Experiment definitions: one entry per paper table/figure plus ablations.

Scales
------
``quick`` (default) runs class C on 64 ranks with capped iterations so the
whole bench suite finishes in minutes on a laptop; ``paper`` runs the
paper's exact configuration (class D, 256 ranks, full iteration counts) —
select with ``REPRO_SCALE=paper``.  Overheads are ratios, so the shape
claims survive the scaling; EXPERIMENTS.md records both.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from repro.apps.cm1 import cm1_rank
from repro.apps.hpccg import hpccg_rank
from repro.apps.nas import NAS_APPS
from repro.apps.netpipe import DEFAULT_SIZES, netpipe_sweep
from repro.core.config import ReplicationConfig
from repro.harness.metrics import overhead_pct
from repro.harness.runner import Job, cluster_for

__all__ = [
    "Scale",
    "current_scale",
    "run_nas",
    "run_hpccg",
    "run_cm1",
    "table1",
    "table2",
    "fig7",
    "nas_overhead",
    "app_overhead",
]


@dataclass(frozen=True)
class Scale:
    """One evaluation scale."""

    name: str
    n_ranks: int
    nas_class: str
    nas_iter_cap: Optional[int]
    hpccg_iters: int
    cm1_steps: int
    netpipe_iters: int
    #: OS-noise sigma applied to compute phases (see Cluster.compute_noise)
    noise: float = 0.08

    def nas_iters(self, default: int) -> Optional[int]:
        if self.nas_iter_cap is None:
            return None  # use the class's official count
        return min(default, self.nas_iter_cap)


SCALES: Dict[str, Scale] = {
    "quick": Scale("quick", n_ranks=64, nas_class="C", nas_iter_cap=10,
                   hpccg_iters=20, cm1_steps=10, netpipe_iters=10),
    "small": Scale("small", n_ranks=16, nas_class="A", nas_iter_cap=5,
                   hpccg_iters=10, cm1_steps=5, netpipe_iters=5),
    "paper": Scale("paper", n_ranks=256, nas_class="D", nas_iter_cap=None,
                   hpccg_iters=149, cm1_steps=200, netpipe_iters=10),
}


def current_scale() -> Scale:
    return SCALES[os.environ.get("REPRO_SCALE", "quick")]


def _cfg(protocol: str, degree: int = 2) -> ReplicationConfig:
    if protocol == "native":
        return ReplicationConfig(degree=1, protocol="native")
    return ReplicationConfig(degree=degree, protocol=protocol)


def _run(
    app: Callable, n_ranks: int, protocol: str, degree: int = 2, noise: float = 0.0, **kwargs
) -> Tuple[float, Any]:
    cfg = _cfg(protocol, degree)
    cluster = cluster_for(n_ranks, cfg.degree, compute_noise=noise)
    job = Job(n_ranks, cfg=cfg, cluster=cluster)
    res = job.launch(app, **kwargs).run()
    return res.runtime, res


def run_nas(name: str, protocol: str, scale: Optional[Scale] = None, degree: int = 2) -> Tuple[float, Any]:
    scale = scale or current_scale()
    from repro.apps.nas.common import PROBLEMS

    prob = PROBLEMS[name][scale.nas_class]
    return _run(
        NAS_APPS[name],
        scale.n_ranks,
        protocol,
        degree,
        noise=scale.noise,
        klass=scale.nas_class,
        iters=scale.nas_iters(prob.iterations),
    )


def run_hpccg(protocol: str, scale: Optional[Scale] = None, degree: int = 2) -> Tuple[float, Any]:
    scale = scale or current_scale()
    return _run(hpccg_rank, scale.n_ranks, protocol, degree, noise=scale.noise, iters=scale.hpccg_iters)


def run_cm1(protocol: str, scale: Optional[Scale] = None, degree: int = 2) -> Tuple[float, Any]:
    scale = scale or current_scale()
    return _run(cm1_rank, scale.n_ranks, protocol, degree, noise=scale.noise, steps=scale.cm1_steps)


def nas_overhead(name: str, scale: Optional[Scale] = None, protocol: str = "sdr") -> Dict[str, float]:
    """One Table 1 row: native vs replicated runtime and overhead %."""
    native, _ = run_nas(name, "native", scale)
    replicated, res = run_nas(name, protocol, scale)
    return {
        "native_s": native,
        "replicated_s": replicated,
        "overhead_pct": overhead_pct(native, replicated),
        "acks": res.stat_total("acks_sent"),
    }


def app_overhead(which: str, scale: Optional[Scale] = None, protocol: str = "sdr") -> Dict[str, float]:
    """One Table 2 row (HPCCG or CM1)."""
    runner = {"HPCCG": run_hpccg, "CM1": run_cm1}[which]
    native, _ = runner("native", scale)
    replicated, res = runner(protocol, scale)
    return {
        "native_s": native,
        "replicated_s": replicated,
        "overhead_pct": overhead_pct(native, replicated),
        "unexpected": res.stat_total("unexpected_count"),
        "acks": res.stat_total("acks_sent"),
    }


def table1(scale: Optional[Scale] = None) -> Dict[str, Dict[str, float]]:
    """Regenerate Table 1 (all five NAS benchmarks)."""
    return {name: nas_overhead(name, scale) for name in ("BT", "CG", "FT", "MG", "SP")}


def table2(scale: Optional[Scale] = None) -> Dict[str, Dict[str, float]]:
    """Regenerate Table 2 (HPCCG + CM1, the ANY_SOURCE applications)."""
    return {name: app_overhead(name, scale) for name in ("HPCCG", "CM1")}


def fig7(sizes=DEFAULT_SIZES, iters: Optional[int] = None) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Regenerate Fig. 7a/7b: NetPipe sweeps, native and SDR-MPI."""
    iters = iters if iters is not None else current_scale().netpipe_iters
    return {
        "native": netpipe_sweep("native", sizes=sizes, iters=iters),
        "sdr": netpipe_sweep("sdr", sizes=sizes, iters=iters),
    }
