"""Command-line interface: regenerate any paper artefact from the shell.

Examples::

    sdr-mpi fig7                     # Fig. 7a/7b latency + throughput sweep
    sdr-mpi table1                   # all five NAS rows
    sdr-mpi table1 --app CG          # one row
    sdr-mpi table2                   # HPCCG + CM1
    sdr-mpi determinism --app hpccg  # send-determinism check
    sdr-mpi campaign --seeds 10      # seeded fault campaign, all protocols
    REPRO_SCALE=paper sdr-mpi table1 # the paper's exact configuration

(Also runnable as ``python -m repro <command>``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.report import (
    PAPER_FIG7_POINTS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    overhead_row,
    render_series,
    render_table,
)

_OVH_HEADER = ["app", "native s", "repl s", "ovh %", "paper nat", "paper repl", "paper ovh%"]


def _cmd_fig7(args) -> int:
    from repro.apps.netpipe import DEFAULT_SIZES, netpipe_sweep

    sizes = tuple(args.sizes) if args.sizes else DEFAULT_SIZES
    native = netpipe_sweep("native", sizes=sizes, iters=args.iters)
    sdr = netpipe_sweep(args.protocol, sizes=sizes, iters=args.iters)
    lat_n = {s: native[s]["latency_s"] * 1e6 for s in sizes}
    lat_s = {s: sdr[s]["latency_s"] * 1e6 for s in sizes}
    dec = {s: 100 * (lat_s[s] / lat_n[s] - 1) for s in sizes}
    print(render_series("Fig. 7a — latency (us)", "bytes",
                        {"native": lat_n, args.protocol: lat_s, "decrease%": dec}))
    tp_n = {s: native[s]["throughput_mbps"] for s in sizes}
    tp_s = {s: sdr[s]["throughput_mbps"] for s in sizes}
    print()
    print(render_series("Fig. 7b — throughput (Mbps)", "bytes",
                        {"native": tp_n, args.protocol: tp_s}, fmt="{:.4g}"))
    print(f"\npaper 1-byte anchors: native {PAPER_FIG7_POINTS['native_1B_us']} us, "
          f"SDR-MPI {PAPER_FIG7_POINTS['sdr_1B_us']} us")
    return 0


def _cmd_table1(args) -> int:
    from repro.harness.experiments import current_scale, nas_overhead

    scale = current_scale()
    apps = [args.app] if args.app else ["BT", "CG", "FT", "MG", "SP"]
    rows = []
    for app in apps:
        r = nas_overhead(app, scale, protocol=args.protocol)
        rows.append(overhead_row(app, r["native_s"], r["replicated_s"], PAPER_TABLE1[app]))
        print(f"  ... {app} done", file=sys.stderr)
    print(render_table(
        f"Table 1 — NAS benchmarks ({scale.name}: class {scale.nas_class}, "
        f"{scale.n_ranks} ranks, protocol={args.protocol}, r=2)",
        _OVH_HEADER, rows))
    return 0


def _cmd_table2(args) -> int:
    from repro.harness.experiments import app_overhead, current_scale

    scale = current_scale()
    apps = [args.app] if args.app else ["HPCCG", "CM1"]
    rows = []
    for app in apps:
        r = app_overhead(app, scale, protocol=args.protocol)
        rows.append(overhead_row(app, r["native_s"], r["replicated_s"], PAPER_TABLE2[app]))
        print(f"  ... {app} done", file=sys.stderr)
    print(render_table(
        f"Table 2 — ANY_SOURCE applications ({scale.name}, {scale.n_ranks} ranks, "
        f"protocol={args.protocol}, r=2)",
        _OVH_HEADER, rows))
    return 0


def _cmd_determinism(args) -> int:
    from repro.apps.cm1 import cm1_rank
    from repro.apps.hpccg import hpccg_rank
    from repro.apps.nas import NAS_APPS
    from repro.apps.patterns import master_worker
    from repro.trace.determinism import check_send_determinism

    registry = {
        "hpccg": (hpccg_rank, dict(nx=8, ny=8, nz=8, iters=3)),
        "cm1": (cm1_rank, dict(n=16, steps=2)),
        "master_worker": (master_worker, dict(tasks=9)),
        **{name.lower(): (fn, dict(klass="S", iters=2)) for name, fn in NAS_APPS.items()},
    }
    if args.app not in registry:
        print(f"unknown app {args.app!r}; have {sorted(registry)}", file=sys.stderr)
        return 2
    fn, kwargs = registry[args.app]
    report = check_send_determinism(fn, args.ranks, replays=args.replays, **kwargs)
    verdict = "send-deterministic" if report else "NOT send-deterministic"
    print(f"{args.app}: {verdict} over {report.replays} perturbed replays")
    for proc, idx, base, other in report.divergences[:5]:
        print(f"  divergence at proc {proc}, send #{idx}: {base} vs {other}")
    return 0 if report or args.app == "master_worker" else 1


def _cmd_campaign(args) -> int:
    from repro.harness.campaign import DEFAULT_PROTOCOLS, run_campaign

    if args.seeds < 1:
        print(f"--seeds must be >= 1, got {args.seeds}", file=sys.stderr)
        return 2
    protocols = tuple(args.protocols) if args.protocols else DEFAULT_PROTOCOLS
    seeds = range(args.seed_base, args.seed_base + args.seeds)
    result = run_campaign(protocols=protocols, seeds=seeds)
    print(result.table(
        f"Fault campaign — {len(seeds)} seeded mixes x {len(protocols)} protocols "
        f"(seeds {seeds.start}..{seeds.stop - 1})"
    ))
    if args.json:
        from repro.harness.store import atomic_write_text

        atomic_write_text(args.json, result.to_json())
        print(f"\nwrote {len(result.records)} run records to {args.json}", file=sys.stderr)
    violations = result.violations
    for rec in violations:
        print(
            f"INVARIANT VIOLATION: {rec.protocol} seed {rec.seed}: {rec.invariant_error}",
            file=sys.stderr,
        )
    return 1 if violations else 0


def _cmd_sweep(args) -> int:
    from repro.harness.store import StoreError, SweepStore
    from repro.harness.sweep import (
        SweepError,
        SweepSpec,
        render_sweep_report,
        run_sweep,
        verify_sample,
    )

    if args.report:
        if not args.store:
            print("--report requires --store BASE", file=sys.stderr)
            return 2
        try:
            with SweepStore.open(args.store) as store:
                print(render_sweep_report(store.records(), store.summary,
                                          title="Sweep (from store)"))
        except StoreError as exc:
            print(f"store error: {exc}", file=sys.stderr)
            return 2
        return 0

    if args.seeds < 1:
        print(f"--seeds must be >= 1, got {args.seeds}", file=sys.stderr)
        return 2
    kwargs = {"seeds": tuple(range(args.seed_base, args.seed_base + args.seeds)),
              "steps": args.steps}
    for axis in ("protocols", "degrees", "ranks", "workloads", "mixes",
                 "detectors", "intensities"):
        values = getattr(args, axis)
        if values:
            kwargs[axis] = tuple(values)
    try:
        spec = SweepSpec(**kwargs).validate()
    except SweepError as exc:
        print(f"invalid sweep matrix: {exc}", file=sys.stderr)
        return 2

    workers = max(1, args.workers)
    print(f"sweep: {spec.n_configs} configs on {workers} worker(s)", file=sys.stderr)
    try:
        result = run_sweep(spec, workers=workers, store_base=args.store,
                           overwrite=args.overwrite)
    except (SweepError, StoreError) as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 2

    print(render_sweep_report(result.records, result.summary(), title="Sweep"))
    rc = 0
    for rec in result.violations:
        print(
            f"INVARIANT VIOLATION: config #{rec['index']} "
            f"{rec['protocol']}/r{rec['degree']}/n{rec['n_ranks']}"
            f"/{rec['workload']}/{rec['mix']}/s{rec['seed']}: "
            f"{rec['invariant_error']}",
            file=sys.stderr,
        )
        rc = 1
    if result.worker_crashes:
        print(f"{result.worker_crashes} config(s) lost to worker crashes", file=sys.stderr)
        rc = 1
    if args.verify:
        mismatches = verify_sample(spec, result.records, args.verify)
        if mismatches:
            for m in mismatches:
                print(f"VERIFY MISMATCH: {m}", file=sys.stderr)
            rc = 1
        else:
            print(
                f"verified {min(args.verify, spec.n_configs)} sampled config(s) "
                f"against serial re-execution",
                file=sys.stderr,
            )
    if args.store:
        print(f"store: {args.store}.jsonl / {args.store}.sqlite", file=sys.stderr)
    return rc


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="sdr-mpi", description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig7", help="NetPipe latency/throughput sweep (Fig. 7)")
    p.add_argument("--protocol", default="sdr", choices=["sdr", "mirror", "leader", "redmpi"])
    p.add_argument("--iters", type=int, default=10)
    p.add_argument("--sizes", type=int, nargs="*")
    p.set_defaults(fn=_cmd_fig7)

    p = sub.add_parser("table1", help="NAS benchmark overheads (Table 1)")
    p.add_argument("--app", choices=["BT", "CG", "FT", "MG", "SP"])
    p.add_argument("--protocol", default="sdr", choices=["sdr", "mirror", "leader", "redmpi"])
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("table2", help="HPCCG + CM1 overheads (Table 2)")
    p.add_argument("--app", choices=["HPCCG", "CM1"])
    p.add_argument("--protocol", default="sdr", choices=["sdr", "mirror", "leader", "redmpi"])
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser(
        "campaign", help="seeded fault campaign with audited degradation taxonomy"
    )
    p.add_argument(
        "--protocols", nargs="*",
        choices=["native", "sdr", "mirror", "leader", "redmpi"],
        help="protocols to campaign (default: all five)",
    )
    p.add_argument("--seeds", type=int, default=5, help="number of seeded fault mixes")
    p.add_argument("--seed-base", type=int, default=0, help="first campaign seed")
    p.add_argument("--json", metavar="PATH", help="write per-run records as JSON")
    p.set_defaults(fn=_cmd_campaign)

    p = sub.add_parser(
        "sweep", help="config-matrix sweep across a multiprocessing worker pool"
    )
    p.add_argument(
        "--protocols", nargs="*",
        choices=["native", "sdr", "mirror", "leader", "redmpi"],
        help="protocol axis (default: all five)",
    )
    from repro.harness.sweep import DETECTOR_PROFILES
    from repro.scenarios import scenario_names

    p.add_argument("--degrees", type=int, nargs="*", help="replication-degree axis")
    p.add_argument("--ranks", type=int, nargs="*", help="world-size axis")
    p.add_argument(
        "--workloads", nargs="*",
        help=f"workload axis ({', '.join(scenario_names())})",
    )
    p.add_argument(
        "--mixes", nargs="*", help="fault-mix axis (clean, crash, network, full)"
    )
    p.add_argument(
        "--detectors", nargs="*",
        help=f"failure-detector axis ({', '.join(sorted(DETECTOR_PROFILES))})",
    )
    p.add_argument(
        "--intensities", type=float, nargs="*",
        help="adversary-intensity axis: scales network fault-window odds (1.0 = as named)",
    )
    p.add_argument("--seeds", type=int, default=3, help="seeds per config group")
    p.add_argument("--seed-base", type=int, default=0, help="first campaign seed")
    p.add_argument("--steps", type=int, default=12, help="application steps per run")
    p.add_argument("--workers", type=int, default=1, help="worker processes")
    p.add_argument("--store", metavar="BASE", help="stream results to BASE.jsonl + BASE.sqlite")
    p.add_argument("--overwrite", action="store_true", help="replace an existing store")
    p.add_argument(
        "--verify", type=int, default=0, metavar="K",
        help="re-run K sampled configs serially and compare fingerprints",
    )
    p.add_argument(
        "--report", action="store_true",
        help="render tables from an existing --store instead of running",
    )
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("determinism", help="send-determinism check (Definition 1)")
    p.add_argument("--app", default="hpccg")
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--replays", type=int, default=4)
    p.set_defaults(fn=_cmd_determinism)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
