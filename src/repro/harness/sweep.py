"""Sweep orchestrator: from one Job to thousands of audited configurations.

The campaign runner (PR 6) answers one matrix — N seeds × the five
protocols at a fixed shape.  A *sweep* generalizes it into the
capacity-planning service the ROADMAP names: a validated config matrix
over every axis the paper's claims compare —

====================  =====================================================
axis                  values
====================  =====================================================
``protocols``         any of ``native/sdr/mirror/leader/redmpi``
``degrees``           replication degree *r* (native always runs r=1 and
                      is emitted once, not once per degree)
``ranks``             logical world sizes
``workloads``         :mod:`repro.scenarios` registry names — every
                      ``(workload, ranks)`` pair is checked against the
                      scenario's rank envelope when the matrix is built
``mixes``             named fault-mix profiles (:data:`MIX_PROFILES`)
``detectors``         named failure-detector configs (:data:`DETECTOR_PROFILES`)
``intensities``       adversary intensity: scales the network fault-window
                      probabilities of the mix (1.0 = the mix as named)
``seeds``             campaign seeds — one integer reproduces one run
====================  =====================================================

Non-cartesian matrices come from :meth:`SweepSpec.explicit`: a literal
list of configs, validated entry-by-entry at build time, with config
indices fixed by list order.

— executed serially or across a ``multiprocessing`` worker pool, streamed
to a :class:`~repro.harness.store.SweepStore`, and rendered as
paper-style tables.  Like :class:`~repro.harness.faults.FaultSchedule`,
the matrix is validated when it is built (:class:`SweepError` names the
bad axis), not when config #1731 finally executes.

Determinism contract: every config's fingerprint is **byte-identical**
whether the sweep runs serially or on N workers, warm cache or cold —
each worker's :class:`ShapeCache` only reuses construction that is a pure
function of ``(protocol, degree, n_ranks)`` (shared world, cost table,
protocol-shared template — the PR 5 flyweights), with hit/miss
accounting so the reuse is observable.  Every run is audited by
``run_case`` (``acquired == released + stranded``); an invariant
violation is a nonzero sweep exit, never a taxonomy bucket.  A worker
that *dies* (OOM-killed, segfaulted) marks its in-flight config failed
and the pool keeps draining — a sweep never hangs on a lost worker.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_mod
import time
from dataclasses import dataclass, field
from itertools import product
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.config import PROTOCOLS, ReplicationConfig
from repro.core.membership import DetectorConfig
from repro.harness.campaign import (
    OUTCOMES,
    CampaignConfig,
    run_case,
)
from repro.harness.report import (
    render_table,
    strand_site_rows,
    sweep_group_label,
    sweep_outcome_rows,
    traffic_rows,
)
from repro.harness.runner import JobShape, cluster_for
from repro.harness.store import SweepStore
from repro.scenarios import ScenarioError, get_scenario, scenario_names

__all__ = [
    "MIX_PROFILES",
    "DETECTOR_PROFILES",
    "SweepError",
    "SweepSpec",
    "SweepPoint",
    "ShapeCache",
    "SweepResult",
    "run_sweep",
    "verify_sample",
    "render_sweep_report",
]

_NO_FAULTS: Dict[str, float] = {
    "p_churn": 0.0, "p_crash": 0.0, "p_respawn": 0.0, "p_suspicion": 0.0,
    "p_drop_window": 0.0, "p_dup_window": 0.0, "p_delay_window": 0.0,
    "p_partition": 0.0,
}

#: named fault-mix profiles — the ``mixes`` axis.  Each maps to the
#: :class:`CampaignConfig` probability overrides that gate which fault
#: classes a seeded mix may draw (the draws themselves stay a pure
#: function of the seed; see ``sample_faults``).
MIX_PROFILES: Dict[str, Dict[str, float]] = {
    #: no faults at all — the correctness/throughput floor
    "clean": dict(_NO_FAULTS),
    #: process-level only: crashes, churn, respawns
    "crash": {**_NO_FAULTS, "p_churn": 0.2, "p_crash": 0.5, "p_respawn": 0.5},
    #: wire-level only: drop/dup/delay windows and healing partitions
    "network": {
        **_NO_FAULTS,
        "p_drop_window": 0.25, "p_dup_window": 0.5, "p_delay_window": 0.5,
        "p_partition": 0.15,
    },
    #: everything at the PR 6 campaign odds (CampaignConfig defaults)
    "full": {},
}

#: named failure-detector configurations — the ``detectors`` axis.
#: ``default`` is byte-identical to the campaign detector, so sweeps that
#: never name the axis reproduce their pre-axis fingerprints.
DETECTOR_PROFILES: Dict[str, DetectorConfig] = {
    "default": DetectorConfig(
        heartbeat_period=20e-6, timeout=30e-6, suspicion_threshold=2,
        notify_attempts=3, notify_backoff=5e-6, notify_drop_p=0.1,
    ),
    #: half the heartbeat/timeout, single-miss suspicion — fast but jumpy
    "eager": DetectorConfig(
        heartbeat_period=10e-6, timeout=15e-6, suspicion_threshold=1,
        notify_attempts=3, notify_backoff=5e-6, notify_drop_p=0.1,
    ),
    #: slow declaration, three-miss threshold — high latency, few false positives
    "conservative": DetectorConfig(
        heartbeat_period=30e-6, timeout=60e-6, suspicion_threshold=3,
        notify_attempts=3, notify_backoff=5e-6, notify_drop_p=0.1,
    ),
    #: default timing but a hostile notification path (40% drop, 2 attempts)
    "lossy-notify": DetectorConfig(
        heartbeat_period=20e-6, timeout=30e-6, suspicion_threshold=2,
        notify_attempts=2, notify_backoff=5e-6, notify_drop_p=0.4,
    ),
}

#: the CampaignConfig probabilities the ``intensities`` axis scales —
#: wire-level adversary knobs only; crash/churn odds stay the mix's own
_NETWORK_PROBS: Tuple[str, ...] = (
    "p_drop_window", "p_dup_window", "p_delay_window", "p_partition",
)

_DEFAULT_CFG = CampaignConfig()

#: test seam: a worker whose task index equals this env var hard-exits,
#: standing in for the OOM-kill/segfault class of failures the pool must
#: survive (see tests/test_sweep.py::test_worker_crash_keeps_draining)
_TEST_CRASH_ENV = "REPRO_SWEEP_TEST_CRASH"


class SweepError(ValueError):
    """Invalid sweep matrix — raised at build time, naming the bad axis."""


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved configuration of the matrix."""

    index: int
    protocol: str
    degree: int
    n_ranks: int
    workload: str
    mix: str
    seed: int
    steps: int = 12
    horizon: float = 2e-3
    active: float = 60e-6
    detector: str = "default"
    intensity: float = 1.0

    @property
    def effective_degree(self) -> int:
        return 1 if self.protocol == "native" else self.degree

    def label(self) -> str:
        base = (
            f"{self.protocol}/r{self.effective_degree}/n{self.n_ranks}"
            f"/{self.workload}/{self.mix}"
        )
        # detector/intensity segments appear only off their defaults, so
        # pre-axis labels (pinned by tests and report consumers) survive
        if self.detector != "default":
            base += f"/{self.detector}"
        if self.intensity != 1.0:
            base += f"/x{self.intensity:g}"
        return f"{base}/s{self.seed}"

    def campaign_config(self) -> CampaignConfig:
        overrides: Dict[str, Any] = dict(MIX_PROFILES[self.mix])
        if self.intensity != 1.0:
            for key in _NETWORK_PROBS:
                p = overrides.get(key, getattr(_DEFAULT_CFG, key))
                overrides[key] = min(1.0, p * self.intensity)
        if self.detector != "default":
            overrides["detector"] = DETECTOR_PROFILES[self.detector]
        return CampaignConfig(
            n_ranks=self.n_ranks,
            degree=self.degree,
            steps=self.steps,
            workload=self.workload,
            horizon=self.horizon,
            active=self.active,
            **overrides,
        )


def _check_axis(name: str, values: Sequence[Any], kind: type, minimum: int) -> None:
    if not values:
        raise SweepError(f"axis {name!r} is empty — nothing to sweep")
    for v in values:
        if not isinstance(v, kind) or isinstance(v, bool):
            raise SweepError(f"axis {name!r}: {v!r} is not {kind.__name__}")
        if kind is int and v < minimum:
            raise SweepError(f"axis {name!r}: {v} is below the minimum {minimum}")
    if len(set(values)) != len(values):
        raise SweepError(f"axis {name!r} has duplicate values: {list(values)}")


@dataclass(frozen=True)
class SweepSpec:
    """A validated config matrix.

    The default mode is the cartesian product of the explicit-list axes;
    :meth:`explicit` builds the non-cartesian variant (a literal list of
    configs with indices fixed by list order).  Either way, the whole
    matrix is validated when it is built.
    """

    protocols: Tuple[str, ...] = PROTOCOLS
    degrees: Tuple[int, ...] = (2,)
    ranks: Tuple[int, ...] = (4,)
    workloads: Tuple[str, ...] = ("ring",)
    mixes: Tuple[str, ...] = ("full",)
    detectors: Tuple[str, ...] = ("default",)
    intensities: Tuple[float, ...] = (1.0,)
    seeds: Tuple[int, ...] = (0, 1, 2)
    steps: int = 12
    horizon: float = 2e-3
    active: float = 60e-6
    #: non-cartesian mode: when set, this literal config list *is* the
    #: matrix and the axis tuples above are ignored for enumeration
    configs: Optional[Tuple[SweepPoint, ...]] = None

    def __post_init__(self) -> None:
        # Normalize every axis (ranges, lists, generators) to a tuple so the
        # spec is hashable, picklable, and iterable more than once.
        for axis in (
            "protocols", "degrees", "ranks", "workloads",
            "mixes", "detectors", "intensities", "seeds",
        ):
            object.__setattr__(self, axis, tuple(getattr(self, axis)))
        if self.configs is not None:
            object.__setattr__(self, "configs", tuple(self.configs))

    @classmethod
    def explicit(
        cls,
        entries: Sequence[Dict[str, Any]],
        steps: int = 12,
        horizon: float = 2e-3,
        active: float = 60e-6,
    ) -> "SweepSpec":
        """Build a non-cartesian matrix from a literal list of configs.

        Each entry is a dict with the per-config keys (``protocol``,
        ``n_ranks``, ``seed`` required; ``degree``/``workload``/``mix``/
        ``detector``/``intensity`` defaulted like the cartesian axes).
        Config indices are the list positions — stable across runs, so a
        stored sweep and its re-execution agree on ``config #17``.  The
        whole list is validated here, at build time.
        """
        if not entries:
            raise SweepError("explicit matrix is empty — nothing to sweep")
        allowed = {
            "protocol", "degree", "n_ranks", "workload",
            "mix", "seed", "detector", "intensity",
        }
        points: List[SweepPoint] = []
        for i, entry in enumerate(entries):
            if not isinstance(entry, dict):
                raise SweepError(f"explicit config #{i}: expected a dict, got {entry!r}")
            unknown = set(entry) - allowed
            if unknown:
                raise SweepError(
                    f"explicit config #{i}: unknown keys {sorted(unknown)}; "
                    f"have {sorted(allowed)}"
                )
            missing = {"protocol", "n_ranks", "seed"} - set(entry)
            if missing:
                raise SweepError(
                    f"explicit config #{i}: missing required keys {sorted(missing)}"
                )
            points.append(
                SweepPoint(
                    index=i,
                    protocol=entry["protocol"],
                    degree=entry.get("degree", 2),
                    n_ranks=entry["n_ranks"],
                    workload=entry.get("workload", "ring"),
                    mix=entry.get("mix", "full"),
                    seed=entry["seed"],
                    steps=steps,
                    horizon=horizon,
                    active=active,
                    detector=entry.get("detector", "default"),
                    intensity=entry.get("intensity", 1.0),
                )
            )
        spec = cls(
            protocols=tuple(dict.fromkeys(p.protocol for p in points)),
            degrees=tuple(sorted({p.degree for p in points})),
            ranks=tuple(sorted({p.n_ranks for p in points})),
            workloads=tuple(dict.fromkeys(p.workload for p in points)),
            mixes=tuple(dict.fromkeys(p.mix for p in points)),
            detectors=tuple(dict.fromkeys(p.detector for p in points)),
            intensities=tuple(dict.fromkeys(p.intensity for p in points)),
            seeds=tuple(dict.fromkeys(p.seed for p in points)),
            steps=steps,
            horizon=horizon,
            active=active,
            configs=tuple(points),
        )
        return spec.validate()

    def _check_workload_envelopes(self) -> None:
        """Every (workload, ranks, degree) combination the matrix will
        emit must satisfy the scenario's envelope — checked here, at
        build time, like every other axis."""
        for w in self.workloads:
            try:
                scenario = get_scenario(w)
            except ScenarioError:
                raise SweepError(
                    f"axis 'workloads': unknown {w!r}; have {scenario_names()}"
                ) from None
            for n in self.ranks:
                for protocol in self.protocols:
                    for degree in self.degrees:
                        eff = 1 if protocol == "native" else degree
                        try:
                            scenario.check(n, eff)
                        except ScenarioError as exc:
                            raise SweepError(
                                f"axis 'workloads': {w!r} cannot run at "
                                f"n_ranks={n}: {exc}"
                            ) from None

    def _validate_explicit(self) -> "SweepSpec":
        """Entry-by-entry validation of a non-cartesian matrix.  Checked
        per config, not per derived axis union — an explicit list may
        legally pair ``mg`` at 8 ranks with ``ring`` at 4."""
        assert self.configs is not None
        for i, point in enumerate(self.configs):
            where = f"explicit config #{i}"
            if point.index != i:
                raise SweepError(
                    f"{where}: index {point.index} does not match its list position"
                )
            if point.protocol not in PROTOCOLS:
                raise SweepError(
                    f"{where}: unknown protocol {point.protocol!r}; have {PROTOCOLS}"
                )
            if not isinstance(point.degree, int) or isinstance(point.degree, bool):
                raise SweepError(f"{where}: degree {point.degree!r} is not int")
            if point.protocol != "native" and point.degree < 2:
                raise SweepError(
                    f"{where}: degree {point.degree} is below the minimum 2"
                )
            if not isinstance(point.n_ranks, int) or point.n_ranks < 2:
                raise SweepError(
                    f"{where}: n_ranks {point.n_ranks!r} is below the minimum 2"
                )
            if point.mix not in MIX_PROFILES:
                raise SweepError(
                    f"{where}: unknown mix {point.mix!r}; have {sorted(MIX_PROFILES)}"
                )
            if point.detector not in DETECTOR_PROFILES:
                raise SweepError(
                    f"{where}: unknown detector {point.detector!r}; "
                    f"have {sorted(DETECTOR_PROFILES)}"
                )
            if isinstance(point.intensity, bool) or not isinstance(
                point.intensity, (int, float)
            ) or not point.intensity > 0:
                raise SweepError(f"{where}: intensity {point.intensity!r} must be > 0")
            if not isinstance(point.seed, int) or isinstance(point.seed, bool) or point.seed < 0:
                raise SweepError(f"{where}: seed {point.seed!r} must be an int >= 0")
            try:
                scenario = get_scenario(point.workload)
            except ScenarioError:
                raise SweepError(
                    f"{where}: unknown workload {point.workload!r}; "
                    f"have {scenario_names()}"
                ) from None
            try:
                scenario.check(point.n_ranks, point.effective_degree)
            except ScenarioError as exc:
                raise SweepError(f"{where}: {exc}") from None
        return self

    def validate(self) -> "SweepSpec":
        """Full build-time validation; returns self for chaining."""
        if self.steps < 1:
            raise SweepError(f"steps must be >= 1, got {self.steps}")
        if not (0 < self.active <= self.horizon):
            raise SweepError(
                f"need 0 < active <= horizon, got active={self.active} "
                f"horizon={self.horizon}"
            )
        if self.configs is not None:
            return self._validate_explicit()
        _check_axis("protocols", self.protocols, str, 0)
        for p in self.protocols:
            if p not in PROTOCOLS:
                raise SweepError(f"axis 'protocols': unknown {p!r}; have {PROTOCOLS}")
        replicated = [p for p in self.protocols if p != "native"]
        _check_axis("degrees", self.degrees, int, 2 if replicated else 1)
        _check_axis("ranks", self.ranks, int, 2)
        _check_axis("workloads", self.workloads, str, 0)
        _check_axis("mixes", self.mixes, str, 0)
        for m in self.mixes:
            if m not in MIX_PROFILES:
                raise SweepError(
                    f"axis 'mixes': unknown {m!r}; have {sorted(MIX_PROFILES)}"
                )
        _check_axis("detectors", self.detectors, str, 0)
        for d in self.detectors:
            if d not in DETECTOR_PROFILES:
                raise SweepError(
                    f"axis 'detectors': unknown {d!r}; have {sorted(DETECTOR_PROFILES)}"
                )
        if not self.intensities:
            raise SweepError("axis 'intensities' is empty — nothing to sweep")
        for x in self.intensities:
            if isinstance(x, bool) or not isinstance(x, (int, float)):
                raise SweepError(f"axis 'intensities': {x!r} is not a number")
            if not x > 0:
                raise SweepError(f"axis 'intensities': {x} must be > 0")
        if len(set(self.intensities)) != len(self.intensities):
            raise SweepError(
                f"axis 'intensities' has duplicate values: {list(self.intensities)}"
            )
        _check_axis("seeds", self.seeds, int, 0)
        self._check_workload_envelopes()
        return self

    @property
    def n_configs(self) -> int:
        return len(self.points())

    def points(self) -> List[SweepPoint]:
        """The matrix, enumerated in deterministic axis-major order (or,
        for an explicit spec, in list order).

        ``native`` ignores the degree axis (it always runs r=1), so it is
        emitted once per (ranks, workload, mix, detector, intensity, seed)
        combination instead of once per degree — a sweep never wastes runs
        on duplicate configs that would fingerprint identically.
        """
        self.validate()
        if self.configs is not None:
            return list(self.configs)
        points: List[SweepPoint] = []
        for protocol, degree, n_ranks, workload, mix, detector, intensity, seed in product(
            self.protocols, self.degrees, self.ranks, self.workloads,
            self.mixes, self.detectors, self.intensities, self.seeds,
        ):
            if protocol == "native" and degree != self.degrees[0]:
                continue
            points.append(
                SweepPoint(
                    index=len(points),
                    protocol=protocol,
                    degree=degree,
                    n_ranks=n_ranks,
                    workload=workload,
                    mix=mix,
                    seed=seed,
                    steps=self.steps,
                    horizon=self.horizon,
                    active=self.active,
                    detector=detector,
                    intensity=intensity,
                )
            )
        return points

    def as_dict(self) -> Dict[str, Any]:
        out = {
            "protocols": list(self.protocols),
            "degrees": list(self.degrees),
            "ranks": list(self.ranks),
            "workloads": list(self.workloads),
            "mixes": list(self.mixes),
            "detectors": list(self.detectors),
            "intensities": list(self.intensities),
            "seeds": list(self.seeds),
            "steps": self.steps,
            "horizon": self.horizon,
            "active": self.active,
        }
        if self.configs is not None:
            out["explicit"] = [
                {
                    "protocol": p.protocol, "degree": p.degree,
                    "n_ranks": p.n_ranks, "workload": p.workload,
                    "mix": p.mix, "seed": p.seed,
                    "detector": p.detector, "intensity": p.intensity,
                }
                for p in self.configs
            ]
        return out


# ---------------------------------------------------------------- execution
class ShapeCache:
    """Per-executor cache of :class:`JobShape` keyed by
    ``(protocol, effective degree, n_ranks)``.

    Every worker process holds one: the first config of a shape pays the
    construction (miss), every later same-shape config reuses it (hit).
    Cached values are pure functions of the key, so cache warmth cannot
    change any run's fingerprint — the property the serial-vs-pooled
    equivalence suite pins.
    """

    def __init__(self) -> None:
        self._shapes: Dict[Tuple[str, int, int], JobShape] = {}
        self.hits = 0
        self.misses = 0

    def get(self, protocol: str, degree: int, n_ranks: int) -> JobShape:
        key = (protocol, degree, n_ranks)
        shape = self._shapes.get(key)
        if shape is not None:
            self.hits += 1
            return shape
        self.misses += 1
        rcfg = ReplicationConfig(degree=degree, protocol=protocol)
        shape = JobShape.build(n_ranks, rcfg, cluster_for(n_ranks, degree))
        self._shapes[key] = shape
        return shape

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "shapes": len(self._shapes)}


def _execute_point(point: SweepPoint, cache: Optional[ShapeCache] = None) -> Dict[str, Any]:
    """Run one config through the audited campaign machinery."""
    cfg = point.campaign_config()
    degree = point.effective_degree
    shape = cache.get(point.protocol, degree, point.n_ranks) if cache is not None else None
    rec = run_case(point.protocol, point.seed, cfg, shape=shape)
    return {
        "index": point.index,
        "protocol": point.protocol,
        "degree": degree,
        "n_ranks": point.n_ranks,
        "workload": point.workload,
        "mix": point.mix,
        "detector": point.detector,
        "intensity": point.intensity,
        "seed": point.seed,
        "outcome": rec.outcome,
        "faults_drawn": {k: v for k, v in rec.mix.items()},
        "metrics": rec.metrics,
        "stranded_by_site": rec.stranded_by_site,
        "error": rec.error,
        "invariant_error": rec.invariant_error,
        "fingerprint": rec.fingerprint,
    }


def _error_record(point: SweepPoint, error: str) -> Dict[str, Any]:
    """Executor-level failure record: no fingerprint (the config never ran
    to a reproducible result), outcome ``failed``."""
    return {
        "index": point.index,
        "protocol": point.protocol,
        "degree": point.effective_degree,
        "n_ranks": point.n_ranks,
        "workload": point.workload,
        "mix": point.mix,
        "detector": point.detector,
        "intensity": point.intensity,
        "seed": point.seed,
        "outcome": "failed",
        "faults_drawn": {},
        "metrics": {},
        "stranded_by_site": {},
        "error": error,
        "invariant_error": None,
        "fingerprint": "",
    }


def _worker_main(wid: int, task_q: Any, result_q: Any) -> None:
    """Worker loop: one ShapeCache for the worker's lifetime, one audited
    run per task.  ``start`` precedes execution so the parent can attribute
    an in-flight config to a worker that dies mid-run."""
    cache = ShapeCache()
    crash_at = os.environ.get(_TEST_CRASH_ENV)
    while True:
        item = task_q.get()
        if item is None:
            result_q.put(("exit", wid, cache.stats()))
            return
        idx, point = item
        result_q.put(("start", wid, idx))
        if crash_at is not None and int(crash_at) == idx:
            # Test seam: simulated OOM-kill/segfault.  Flush the queue's
            # feeder thread first so the "start" message survives and the
            # parent attributes the in-flight config deterministically (a
            # real crash may lose it — the bounded-respawn fallback then
            # marks the lost config failed instead).
            result_q.close()
            result_q.join_thread()
            os._exit(43)
        try:
            rec = _execute_point(point, cache)
        except BaseException as exc:  # run_case absorbs run errors; this is executor-level
            rec = _error_record(point, f"{type(exc).__name__}: {exc}")
        result_q.put(("done", wid, idx, rec))


@dataclass
class SweepResult:
    """Everything one sweep produced, ordered by config index."""

    spec: SweepSpec
    records: List[Dict[str, Any]] = field(default_factory=list)
    cache: Dict[str, int] = field(default_factory=dict)
    worker_crashes: int = 0
    workers: int = 1
    host_seconds: float = 0.0

    @property
    def violations(self) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("invariant_error")]

    @property
    def fingerprints(self) -> List[str]:
        return [r.get("fingerprint", "") for r in self.records]

    def summary(self) -> Dict[str, Any]:
        return {
            "spec": self.spec.as_dict(),
            "n_configs": len(self.records),
            "workers": self.workers,
            "cache": dict(self.cache),
            "worker_crashes": self.worker_crashes,
            "violations": len(self.violations),
            "host_seconds": round(self.host_seconds, 3),
        }


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    store_base: Optional[str] = None,
    overwrite: bool = False,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> SweepResult:
    """Execute the matrix; stream records to the store as they complete.

    ``workers <= 1`` runs serially in-process; ``workers > 1`` farms
    configs over a ``multiprocessing`` pool (fork where available).  The
    records list is always ordered by config index whatever the completion
    order was, and per-config fingerprints are byte-identical either way.
    """
    points = spec.validate().points()
    store = SweepStore.create(store_base, overwrite=overwrite) if store_base else None
    t0 = time.monotonic()
    try:
        if workers <= 1:
            result = _run_serial(spec, points, store, progress)
        else:
            result = _run_pooled(spec, points, workers, store, progress)
        result.host_seconds = time.monotonic() - t0
        if store is not None:
            store.finalize(result.summary())
        return result
    except BaseException:
        if store is not None:
            store.abandon()
        raise


def _run_serial(spec, points, store, progress) -> SweepResult:
    cache = ShapeCache()
    records = []
    for point in points:
        rec = _execute_point(point, cache)
        if store is not None:
            store.append(rec)
        if progress is not None:
            progress(rec)
        records.append(rec)
    return SweepResult(spec=spec, records=records, cache=cache.stats(), workers=1)


def _run_pooled(spec, points, n_workers, store, progress) -> SweepResult:
    methods = mp.get_all_start_methods()
    ctx = mp.get_context("fork" if "fork" in methods else "spawn")
    task_q = ctx.Queue()
    result_q = ctx.Queue()
    for idx, point in enumerate(points):
        task_q.put((idx, point))
    for _ in range(n_workers):
        task_q.put(None)

    workers: Dict[int, Any] = {}
    next_wid = 0

    def spawn() -> None:
        nonlocal next_wid
        proc = ctx.Process(
            target=_worker_main, args=(next_wid, task_q, result_q), daemon=True
        )
        proc.start()
        workers[next_wid] = proc
        next_wid += 1

    for _ in range(n_workers):
        spawn()

    done: Dict[int, Dict[str, Any]] = {}
    in_flight: Dict[int, int] = {}  # wid -> config index
    cache_totals = {"hits": 0, "misses": 0, "shapes": 0}
    worker_crashes = 0
    respawns = 0

    def record(idx: int, rec: Dict[str, Any]) -> None:
        done[idx] = rec
        if store is not None:
            store.append(rec)
        if progress is not None:
            progress(rec)

    def reap_dead() -> None:
        """Mark the in-flight config of any dead worker failed; keep the
        pool draining by respawning when every worker is gone."""
        nonlocal worker_crashes, respawns
        for wid, proc in list(workers.items()):
            if proc.exitcode is None:
                continue
            proc.join()
            del workers[wid]
            idx = in_flight.pop(wid, None)
            if idx is not None and idx not in done:
                worker_crashes += 1
                record(idx, _error_record(
                    points[idx],
                    f"worker {wid} died (exitcode {proc.exitcode}) while running this config",
                ))
        if len(done) < len(points) and not workers:
            if respawns < len(points):
                respawns += 1
                task_q.put(None)  # the dead worker never consumed its sentinel
                spawn()
            else:
                for idx, point in enumerate(points):
                    if idx not in done:
                        worker_crashes += 1
                        record(idx, _error_record(
                            point, "sweep executor exhausted its worker respawn budget"
                        ))

    while len(done) < len(points):
        try:
            msg = result_q.get(timeout=0.25)
        except queue_mod.Empty:
            reap_dead()
            continue
        kind = msg[0]
        if kind == "start":
            in_flight[msg[1]] = msg[2]
        elif kind == "done":
            _kind, wid, idx, rec = msg
            in_flight.pop(wid, None)
            if idx not in done:
                record(idx, rec)
        elif kind == "exit":
            _kind, wid, stats = msg
            for k in cache_totals:
                cache_totals[k] += stats.get(k, 0)
            proc = workers.pop(wid, None)
            if proc is not None:
                proc.join()

    # Drain the remaining clean exits so the cache accounting is complete
    # (workers that died contribute nothing — their stats died with them).
    deadline = time.monotonic() + 10.0
    while workers and time.monotonic() < deadline:
        try:
            msg = result_q.get(timeout=0.5)
        except queue_mod.Empty:
            for wid, proc in list(workers.items()):
                if proc.exitcode is not None:
                    proc.join()
                    del workers[wid]
            continue
        if msg[0] == "exit":
            _kind, wid, stats = msg
            for k in cache_totals:
                cache_totals[k] += stats.get(k, 0)
            proc = workers.pop(wid, None)
            if proc is not None:
                proc.join()
    for proc in workers.values():  # hung workers: never block the sweep
        proc.terminate()
    task_q.close()
    result_q.close()

    records = [done[idx] for idx in range(len(points))]
    return SweepResult(
        spec=spec,
        records=records,
        cache=cache_totals,
        worker_crashes=worker_crashes,
        workers=n_workers,
    )


def verify_sample(spec: SweepSpec, records: List[Dict[str, Any]], k: int) -> List[str]:
    """Re-execute *k* evenly-spaced configs serially and compare
    fingerprints against the sweep's records — the production face of the
    serial-vs-pooled determinism contract.  Returns mismatch descriptions
    (empty means verified).  Records without a fingerprint (configs whose
    worker died) are skipped; they are already counted as worker crashes.
    """
    points = spec.points()
    n = len(points)
    if k <= 0 or n == 0:
        return []
    idxs = sorted({(i * n) // min(k, n) for i in range(min(k, n))})
    cache = ShapeCache()
    mismatches: List[str] = []
    for idx in idxs:
        rec = records[idx]
        if not rec.get("fingerprint"):
            continue
        fresh = _execute_point(points[idx], cache)
        if fresh["fingerprint"] != rec["fingerprint"]:
            mismatches.append(
                f"config #{idx} ({points[idx].label()}): serial re-execution "
                f"fingerprint differs from the sweep's record"
            )
    return mismatches


# ---------------------------------------------------------------- reporting
def render_sweep_report(
    records: List[Dict[str, Any]],
    summary: Optional[Dict[str, Any]] = None,
    title: str = "Sweep",
) -> str:
    """Paper-style tables from sweep records (live result or store query):
    the per-group outcome matrix with survival rates, the per-mechanism
    strand attribution columns (``strand_site_rows``), and — when any
    record carries open-loop request accounting — the traffic ledger
    (``traffic_rows``)."""
    header, rows = sweep_outcome_rows(records, OUTCOMES)
    parts = [render_table(f"{title} — outcomes by config group", header, rows)]

    t_header, t_rows = traffic_rows(records)
    if t_rows:
        parts.append("")
        parts.append(
            render_table(f"{title} — open-loop traffic by config group", t_header, t_rows)
        )

    by_group: Dict[str, Dict[str, Dict[str, int]]] = {}
    for rec in records:
        label = sweep_group_label(rec)
        agg = by_group.setdefault(label, {})
        for site, cell in (rec.get("stranded_by_site") or {}).items():
            entry = agg.setdefault(site, {"frames": 0, "envs": 0})
            entry["frames"] += cell.get("frames", 0)
            entry["envs"] += cell.get("envs", 0)
    labelled = [(label, agg) for label, agg in sorted(by_group.items()) if agg]
    if labelled:
        s_header, s_rows = strand_site_rows(labelled)
        parts.append("")
        parts.append(
            render_table(f"{title} — stranded frames/envs by mechanism", s_header, s_rows)
        )
    if summary:
        cache = summary.get("cache", {})
        parts.append("")
        parts.append(
            f"{summary.get('n_configs', len(records))} configs on "
            f"{summary.get('workers', '?')} worker(s) in "
            f"{summary.get('host_seconds', '?')}s host time; shape cache: "
            f"{cache.get('hits', 0)} hits / {cache.get('misses', 0)} misses "
            f"({cache.get('shapes', 0)} shapes); "
            f"{summary.get('worker_crashes', 0)} worker crashes, "
            f"{summary.get('violations', 0)} invariant violations"
        )
    return "\n".join(parts)
