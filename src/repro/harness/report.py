"""Paper-style rendering of experiment outputs.

Every benchmark prints the same rows/series the paper reports, side by
side with the paper's numbers, so a bench log double-checks the shape
claims at a glance (and feeds EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "render_table",
    "render_series",
    "overhead_row",
    "strand_site_rows",
    "sweep_group_label",
    "sweep_outcome_rows",
    "parallel_rows",
    "traffic_rows",
    "working_set_rows",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_FIG7_POINTS",
]

#: Table 1 of the paper (class D, 256 procs, r=2)
PAPER_TABLE1: Dict[str, Tuple[float, float, float]] = {
    # app: (native s, replicated s, overhead %)
    "BT": (267.24, 271.21, 1.49),
    "CG": (210.37, 220.71, 4.92),
    "FT": (130.61, 134.58, 3.04),
    "MG": (35.14, 36.04, 2.56),
    "SP": (418.62, 428.70, 2.41),
}

#: Table 2 of the paper (256 procs, r=2)
PAPER_TABLE2: Dict[str, Tuple[float, float, float]] = {
    "HPCCG": (91.13, 91.29, 0.002),
    "CM1": (210.21, 216.80, 3.14),
}

#: Fig. 7 anchor points quoted in the text (1-byte latency, µs)
PAPER_FIG7_POINTS = {"native_1B_us": 1.67, "sdr_1B_us": 2.37}


def render_table(
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in cells)) if cells else len(header[i])
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def overhead_row(
    name: str,
    native_s: float,
    replicated_s: float,
    paper: Optional[Tuple[float, float, float]] = None,
) -> List[object]:
    """One Table 1/2-shaped row: measured plus the paper's reference."""
    ovh = (replicated_s / native_s - 1.0) * 100.0
    row: List[object] = [name, f"{native_s:.2f}", f"{replicated_s:.2f}", f"{ovh:.2f}"]
    if paper is not None:
        row += [f"{paper[0]:.2f}", f"{paper[1]:.2f}", f"{paper[2]:.2f}"]
    return row


def strand_site_rows(
    labelled: Sequence[Tuple[str, Mapping[str, Mapping[str, int]]]],
) -> Tuple[List[str], List[List[object]]]:
    """Header + rows for per-mechanism strand attribution columns.

    Takes ``(run label, JobResult.stranded_by_site)`` pairs and builds one
    row per run with a ``frames/envs`` cell per strand site observed
    anywhere in the set, so fault experiments report *which* fail-stop
    mechanism stranded what (``dead_endpoint``, ``inbox_clear``,
    ``link_drop``, ...) instead of one opaque total.  Feed the result to
    :func:`render_table`.
    """
    sites = sorted(
        {
            site
            for _label, by_site in labelled
            for site, cell in by_site.items()
            if cell.get("frames", 0) or cell.get("envs", 0)
        }
    )
    header = ["run", *sites, "total f/e"]
    rows: List[List[object]] = []
    for label, by_site in labelled:
        cells: List[object] = []
        total_f = total_e = 0
        for site in sites:
            cell = by_site.get(site, {})
            f, e = cell.get("frames", 0), cell.get("envs", 0)
            total_f += f
            total_e += e
            cells.append(f"{f}/{e}" if (f or e) else "-")
        rows.append([label, *cells, f"{total_f}/{total_e}"])
    return header, rows


def working_set_rows(
    labelled: Sequence[Tuple[str, object]],
) -> Tuple[List[str], List[List[object]]]:
    """Header + rows for the run-time working-set columns.

    Takes ``(run label, JobResult)`` pairs (duck-typed, so this module
    stays import-free of the harness) and reports, per run: the payload
    intern table's hit/miss counts and hit rate, the envelope-arena
    high-water summed over every PML, and the fabric's frame high-water —
    the numbers the interning and trim policies are sized by.  Feed the
    result to :func:`render_table`.
    """
    header = ["run", "interned", "misses", "hit%", "env hw", "frame hw"]
    rows: List[List[object]] = []
    for label, res in labelled:
        hits = getattr(res, "payload_interned", 0)
        misses = getattr(res, "payload_misses", 0)
        total = hits + misses
        env_hw = res.stat_total("env_high_water")  # type: ignore[attr-defined]
        frame_hw = getattr(res, "fabric", {}).get("frame_high_water", 0)
        rows.append(
            [
                label,
                hits,
                misses,
                f"{100.0 * hits / total:.0f}" if total else "-",
                env_hw,
                frame_hw,
            ]
        )
    return header, rows


def parallel_rows(
    labelled: Sequence[Tuple[str, object]],
) -> Tuple[List[str], List[List[object]]]:
    """Header + rows for the sharded-execution columns.

    Takes ``(run label, JobResult-or-record)`` pairs (duck-typed: objects
    expose a ``parallel`` attribute, mappings a ``"parallel"`` key) and
    reports, per run that carries parallel metadata: the requested worker
    count, the shard count actually used, the number of conservative sync
    windows, and — when the pair's label matches a serial run in the same
    set whose label is the parallel label minus an ``@w<N>`` suffix and
    both carry a wall-time (``wall_s``, or bench-row ``host_seconds``) —
    the speedup versus that serial run.  Runs that fell back to serial execution show
    the first fallback reason instead of a window count.  Returns an empty
    row list when no run carries parallel metadata, so callers can omit
    the table entirely for purely serial reports (the default Job path
    stays column-free).  Feed to :func:`render_table`.
    """

    def _get(obj: object, key: str) -> object:
        if isinstance(obj, Mapping):
            return obj.get(key)
        return getattr(obj, key, None)

    walls: Dict[str, float] = {}
    for label, res in labelled:
        wall = _get(res, "wall_s")
        if wall is None:
            wall = _get(res, "host_seconds")
        if isinstance(wall, (int, float)):
            walls[label] = float(wall)
    header = ["run", "workers", "shards", "windows", "speedup"]
    rows: List[List[object]] = []
    for label, res in labelled:
        par = _get(res, "parallel")
        if not isinstance(par, Mapping):
            continue
        fallback = par.get("fallback") or []
        windows: object = str(fallback[0]) if fallback else par.get("windows", 0)
        speedup: object = "-"
        base, sep, _tail = label.rpartition("@w")
        if sep and base in walls and label in walls and walls[label] > 0.0:
            speedup = f"{walls[base] / walls[label]:.2f}x"
        rows.append(
            [label, par.get("workers", "-"), par.get("shards", "-"), windows, speedup]
        )
    return header, rows


def sweep_group_label(rec: Mapping[str, object]) -> str:
    """One sweep record's config-group label: every axis except the seed.

    The detector and intensity segments appear only when the record is off
    their defaults, so labels from sweeps that never touched those axes
    (including every stored pre-axis record) render unchanged.
    """
    label = (
        f"{rec['protocol']}/r{rec['degree']}/n{rec['n_ranks']}"
        f"/{rec['workload']}/{rec['mix']}"
    )
    detector = rec.get("detector", "default")
    if detector != "default":
        label += f"/{detector}"
    intensity = rec.get("intensity", 1.0)
    if intensity != 1.0:
        label += f"/x{intensity:g}"
    return label


def sweep_outcome_rows(
    records: Sequence[Mapping[str, object]],
    outcomes: Sequence[str],
) -> Tuple[List[str], List[List[object]]]:
    """Header + rows of the sweep outcome matrix.

    Groups sweep run records by config group (every axis except the seed)
    and counts each outcome of *outcomes* per group, plus a survival rate
    (completed + degraded, the paper's "application finishes" criterion)
    and the mean simulated runtime over the group's seeds.  The outcome
    vocabulary is passed in rather than imported so this module stays
    import-free of the campaign layer.  Feed to :func:`render_table`.
    """
    groups: Dict[str, Dict[str, object]] = {}
    for rec in records:
        label = sweep_group_label(rec)
        g = groups.setdefault(
            label, {"counts": {o: 0 for o in outcomes}, "runtimes": []}
        )
        counts: Dict[str, int] = g["counts"]  # type: ignore[assignment]
        outcome = str(rec.get("outcome", ""))
        counts[outcome] = counts.get(outcome, 0) + 1
        metrics = rec.get("metrics") or {}
        if isinstance(metrics, Mapping) and "runtime" in metrics:
            g["runtimes"].append(float(metrics["runtime"]))  # type: ignore[union-attr]
    header = ["config", "runs", *outcomes, "survive%", "mean runtime"]
    rows: List[List[object]] = []
    for label in sorted(groups):
        counts = groups[label]["counts"]  # type: ignore[assignment]
        runtimes: List[float] = groups[label]["runtimes"]  # type: ignore[assignment]
        n = sum(counts.values())
        survived = counts.get("completed", 0) + counts.get("degraded", 0)
        mean_rt = sum(runtimes) / len(runtimes) if runtimes else float("nan")
        rows.append(
            [
                label,
                n,
                *(counts.get(o, 0) for o in outcomes),
                f"{100.0 * survived / n:.0f}" if n else "-",
                f"{mean_rt:.3g}",
            ]
        )
    return header, rows


def traffic_rows(
    records: Sequence[Mapping[str, object]],
) -> Tuple[List[str], List[List[object]]]:
    """Header + rows of the open-loop traffic ledger, per config group.

    Only records whose metrics carry request accounting (open-loop
    scenarios) contribute; sums the offered/admitted/rejected/completed/
    lost request counters over the group's seeds and derives the rejection
    and loss rates the capacity-planning tables compare.  Returns an empty
    row list when no record carries traffic — callers can skip the table.
    Feed to :func:`render_table`.
    """
    keys = (
        "requests_offered", "requests_admitted", "requests_rejected",
        "requests_completed", "requests_lost",
    )
    groups: Dict[str, Dict[str, int]] = {}
    for rec in records:
        metrics = rec.get("metrics") or {}
        if not isinstance(metrics, Mapping) or "requests_offered" not in metrics:
            continue
        g = groups.setdefault(sweep_group_label(rec), {k: 0 for k in keys})
        for k in keys:
            g[k] += int(metrics.get(k, 0))
    header = [
        "config", "offered", "admitted", "rejected", "completed", "lost",
        "reject%", "loss%",
    ]
    rows: List[List[object]] = []
    for label in sorted(groups):
        g = groups[label]
        offered, admitted = g["requests_offered"], g["requests_admitted"]
        rows.append(
            [
                label,
                offered,
                admitted,
                g["requests_rejected"],
                g["requests_completed"],
                g["requests_lost"],
                f"{100.0 * g['requests_rejected'] / offered:.1f}" if offered else "-",
                f"{100.0 * g['requests_lost'] / admitted:.1f}" if admitted else "-",
            ]
        )
    return header, rows


def render_series(
    title: str,
    xlabel: str,
    series: Mapping[str, Mapping[int, float]],
    fmt: str = "{:.3g}",
) -> str:
    """Column-per-series rendering of Fig.-7-like sweeps."""
    xs = sorted({x for s in series.values() for x in s})
    header = [xlabel] + list(series)
    rows = []
    for x in xs:
        rows.append([x] + [fmt.format(series[name].get(x, float("nan"))) for name in series])
    return render_table(title, header, rows)
