"""Experiment harness: job launcher, fault schedules, metrics, reports."""

from repro.harness.runner import Job, JobResult, cluster_for
from repro.harness.faults import CrashSchedule, CrashSpec

__all__ = ["CrashSchedule", "CrashSpec", "Job", "JobResult", "cluster_for"]
