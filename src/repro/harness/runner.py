"""Job launcher: build a simulated cluster, wire protocols, run to completion.

A :class:`Job` assembles the full stack for every physical process::

    app generator  ->  MpiProcess (OMPI)  ->  protocol (vProtocol layer)
                   ->  Pml (ob1)          ->  Fabric (BTL/wire)

Native jobs run ``n`` processes with the identity protocol; replicated jobs
run ``degree·n`` processes with the paper's placement (replica sets on
disjoint node halves, §4.2) and the selected replication protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.core.baselines import LeaderProtocol, MirrorProtocol, RedMpiProtocol
from repro.core.config import ReplicationConfig
from repro.core.interpose import NativeProtocol
from repro.core.io import NativeIo, ReplicatedIo, VirtualFileSystem
from repro.core.membership import DetectorConfig, MembershipService
from repro.core.replicated import ProtocolShared
from repro.core.sdr import SdrProtocol
from repro.core.worlds import ReplicaMap
from repro.mpi.api import MpiProcess
from repro.mpi.comm import shared_world
from repro.mpi.datatypes import PayloadInterner
from repro.mpi.errors import DeadlockError, MpiError
from repro.mpi.pml import Pml
from repro.network.fabric import CostTable, Fabric, Frame
from repro.network.model import FaultPlan
from repro.network.topology import (
    Cluster,
    Placement,
    round_robin_placement,
    split_halves_placement,
)
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.rng import RngRegistry
from repro.sim.sync import AnyOf, Event

__all__ = ["Job", "JobResult", "JobShape", "cluster_for"]

_PROTOCOL_CLASSES = {
    "sdr": SdrProtocol,
    "mirror": MirrorProtocol,
    "leader": LeaderProtocol,
    "redmpi": RedMpiProtocol,
}


def cluster_for(n_ranks: int, degree: int = 1, cores_per_node: int = 8, **kwargs) -> Cluster:
    """Smallest paper-shaped cluster that fits n_ranks × degree processes."""
    nodes_per_set = max(1, math.ceil(n_ranks / cores_per_node))
    return Cluster(nodes=nodes_per_set * max(1, degree), cores_per_node=cores_per_node, **kwargs)


@dataclass(frozen=True)
class JobShape:
    """Everything a :class:`Job` constructs that is a pure function of
    ``(n_ranks, cfg, cluster)``: the cluster, validated placement, replica
    map, shared world (PR 5), memoized cost table, and the protocol-shared
    template.  All of it is immutable — or, for the cost table, a
    deterministic memo whose warmth cannot change results — so one shape
    can back every same-shape job of a sweep.  The sweep executor caches
    one per ``(protocol, degree, n_ranks)`` with hit/miss accounting
    (:class:`repro.harness.sweep.ShapeCache`); a plain ``Job(...)`` builds
    a private shape and behaves exactly as before.
    """

    n_ranks: int
    cfg: ReplicationConfig
    cluster: Cluster
    placement: Placement
    rmap: ReplicaMap
    world_shared: Any
    cost_table: CostTable
    #: membership-less template; each job rebinds it via ``rebound()``
    proto_shared: Optional[ProtocolShared]

    @classmethod
    def build(
        cls,
        n_ranks: int,
        cfg: Optional[ReplicationConfig] = None,
        cluster: Optional[Cluster] = None,
    ) -> "JobShape":
        cfg = cfg or ReplicationConfig(degree=1, protocol="native")
        cluster = cluster if cluster is not None else cluster_for(n_ranks, cfg.degree)
        rmap = ReplicaMap(n_ranks, cfg.degree)
        if cfg.degree > 1:
            placement: Placement = split_halves_placement(cluster, n_ranks, cfg.degree)
        else:
            placement = round_robin_placement(cluster, n_ranks)
        placement.validate()
        proto_shared = None
        if cfg.protocol != "native":
            proto_shared = ProtocolShared(rmap, None, cfg)  # type: ignore[arg-type]
        return cls(
            n_ranks=n_ranks,
            cfg=cfg,
            cluster=cluster,
            placement=placement,
            rmap=rmap,
            world_shared=shared_world(n_ranks),
            cost_table=CostTable(placement),
            proto_shared=proto_shared,
        )


@dataclass
class JobResult:
    """Outcome of one simulated execution."""

    #: virtual wall-clock: latest application finish time (seconds)
    runtime: float
    #: per physical process finish time
    finish_times: Dict[int, float]
    #: per physical process application return value
    app_results: Dict[int, Any]
    #: per physical process protocol statistics
    stats: Dict[int, dict]
    #: fabric totals (frame/byte counts, per-kind histogram)
    fabric: dict
    #: kernel events dispatched (simulation effort metric)
    events: int
    #: job-wide payload-intern accounting (Job ``interning`` flag): how
    #: many payload snapshots collapsed onto a canonical object vs passed
    #: through (uninternable type, first sighting, or table full)
    payload_interned: int = 0
    payload_misses: int = 0
    #: open-loop traffic accounting (Job ``traffic`` ledger; all zero for
    #: closed-loop workloads, where no client population exists):
    #: ``offered == admitted + rejected`` and
    #: ``admitted == completed + lost`` hold on every audited run
    requests_offered: int = 0
    requests_admitted: int = 0
    requests_rejected: int = 0
    requests_completed: int = 0
    requests_lost: int = 0
    #: ranks that lost every replica (empty on success)
    lost_ranks: List[int] = field(default_factory=list)
    #: strand *attribution*: {site: {"frames": n, "envs": n}} — which
    #: fail-stop mechanism stranded what (``inbox_clear``,
    #: ``dead_endpoint``, ``dead_source``, ``abandoned_pipeline``,
    #: ``reorder_reap``, ``retired_stack``, ...), so failover experiments
    #: can report per-mechanism losses instead of one opaque total
    stranded_by_site: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: sharded-parallel metadata (:mod:`repro.sim.shard`): workers/shards
    #: used, lookahead, window count and any serial-fallback reasons.
    #: ``None`` — always, for the default serial path — so pre-existing
    #: fingerprints and reports stay byte-identical.
    parallel: Optional[dict] = None

    def stat_total(self, key: str) -> int:
        return sum(s.get(key, 0) for s in self.stats.values())


class Job:
    """One simulated MPI execution (native or replicated)."""

    def __init__(
        self,
        n_ranks: int,
        cfg: Optional[ReplicationConfig] = None,
        cluster: Optional[Cluster] = None,
        seed: int = 0,
        jitter: Optional[Callable[[], float]] = None,
        recorder_factory: Optional[Callable[[int, int], Any]] = None,
        pooling: bool = True,
        bucketed: bool = True,
        shared_state: bool = True,
        interning: bool = True,
        arena_trim: bool = True,
        matching: str = "indexed",
        detector: Optional[DetectorConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        shape: Optional[JobShape] = None,
        traffic: Optional[Any] = None,
        parallel: Optional[Any] = None,
    ) -> None:
        self.cfg = cfg or ReplicationConfig(degree=1, protocol="native")
        #: opt-in multi-core execution (a ``repro.sim.shard.ParallelConfig``).
        #: ``None`` — the default — is the serial engine, byte-identical to
        #: every previous release; a config routes :meth:`run` through the
        #: conservative-window shard pool (or its audited serial fallback).
        self.parallel = parallel
        #: open-loop request ledger (a ``repro.sim.traffic.TrafficBook``)
        #: whose totals surface in :class:`JobResult`; ``None`` — the
        #: default — leaves the result's request columns at zero
        self.traffic = traffic
        self.n_ranks = n_ranks
        if shape is not None:
            # Reusing a cached shape is only sound when the job would have
            # built the very same values — enforce it instead of trusting
            # the sweep executor's keying.
            if not shared_state:
                raise ValueError(
                    "Job(shape=...) requires shared_state=True — the seed-shaped "
                    "private construction cannot reuse a shared shape"
                )
            if shape.n_ranks != n_ranks or shape.cfg != self.cfg:
                raise ValueError(
                    f"shape mismatch: shape is ({shape.n_ranks} ranks, {shape.cfg}), "
                    f"job wants ({n_ranks} ranks, {self.cfg})"
                )
            if cluster is not None and cluster != shape.cluster:
                raise ValueError("shape mismatch: Job cluster differs from shape.cluster")
        else:
            shape = JobShape.build(n_ranks, self.cfg, cluster)
        self.shape = shape
        self.rmap = shape.rmap
        self.cluster = shape.cluster
        self.placement: Placement = shape.placement
        #: ``bucketed=False`` keeps every queue insertion on the kernel heap
        #: (the seed-shaped reference mode) — the two-level-queue equivalence
        #: suite proves the bucketed engine observationally identical to it.
        self.sim = Simulator(bucketed=bucketed)
        self.rng = RngRegistry(seed)
        #: ``pooling=False`` bypasses the Frame and Envelope arenas (every
        #: acquire constructs fresh) while keeping the ownership accounting
        #: intact — the equivalence suite proves the pooled engine
        #: observationally identical to this mode.
        self.pooling = pooling
        #: ``shared_state=False`` gives every stack seed-shaped *private*
        #: copies of the flyweight state (cost rows, protocol config, world
        #: communicator members) — the executable spec the shared-state
        #: equivalence suite compares against.  Values are identical either
        #: way; only the sharing differs.
        self.shared_state = shared_state
        self._world_shared = shape.world_shared if shared_state else None
        #: ``interning=False`` disables the job-wide payload intern table
        #: (every snapshot stays a distinct object — the seed-shaped spec
        #: mode the interning equivalence suite compares against)
        self.interning = interning
        self.interner: Optional[PayloadInterner] = PayloadInterner() if interning else None
        #: ``arena_trim=False`` keeps the free lists growing to their
        #: all-time peak (the historical behaviour); the trim is pure
        #: memory policy — both modes are fingerprint-identical
        self.arena_trim = arena_trim
        if matching not in ("indexed", "linear"):
            raise ValueError(
                f"matching must be 'indexed' or 'linear', got {matching!r}"
            )
        #: ``matching="linear"`` runs every PML on :class:`LinearMatchEngine`
        #: (the executable matching spec) instead of the indexed SoA engine
        self.matching = matching
        self.fabric = Fabric(self.sim, self.placement, jitter=jitter, cost_table=shape.cost_table)
        self.fabric.pool_frames = pooling
        if fault_plan is not None:
            # Seeded network adversary (drops/dups/delay windows/partitions);
            # a dedicated rng stream keeps fault draws independent of jitter
            # and compute noise.  None — the default — leaves the wire
            # byte-identical to the reliable fabric.
            self.fabric.install_faults(fault_plan, self.rng.stream("net.faults"))
        self.membership = MembershipService(
            self.sim,
            self.fabric,
            self.rmap,
            detection_delay=self.cfg.detection_delay,
            detector=detector,
            rng=self.rng.stream("membership") if detector is not None else None,
        )
        #: one read-only protocol config shared by every replica stack
        #: (``shared_state=False`` → None → each protocol builds its own)
        self._proto_shared: Optional[ProtocolShared] = None
        if shared_state and self.cfg.protocol != "native":
            # The shape carries a membership-less template shared across
            # same-shape jobs; only the membership binding is per-job.
            self._proto_shared = (
                shape.proto_shared.rebound(self.membership)
                if shape.proto_shared is not None
                else ProtocolShared(self.rmap, self.membership, self.cfg)
            )
        self.vfs = VirtualFileSystem(self.sim)
        self.pmls: Dict[int, Pml] = {}
        self.protocols: Dict[int, Any] = {}
        self.mpis: Dict[int, MpiProcess] = {}
        self.processes: Dict[int, Process] = {}
        self.finish_times: Dict[int, float] = {}
        self.app_results: Dict[int, Any] = {}
        self._recorder_factory = recorder_factory
        self._app_factory: Optional[Callable] = None
        self._app_kwargs: dict = {}
        self._app_all_done = False
        self._drain_waiters: List[Any] = []
        #: sharded-parallel drain coordination (:mod:`repro.sim.shard`).
        #: In a shard worker `_maybe_all_done` must not flip on *local*
        #: completion — the parent establishes global completion across
        #: shards and commands `_shard_release_drain`.  `_drain_wakes`
        #: records frame-wake times inside the finalize drain loop (the
        #: parent's taint check) and `_drain_frame_waits` the currently
        #: armed frame-wait per parked proc (so the release can retire
        #: the one park the serial engine never creates).
        self._shard_mode = False
        self._drain_wakes: List[float] = []
        self._drain_frame_waits: Dict[int, Any] = {}
        #: (pml, protocol) stacks replaced by a respawn: their arena
        #: counters and parked envelopes still take part in the end-of-run
        #: balance, so they are retired here instead of vanishing when
        #: ``spawn_replica`` overwrites the per-proc dicts.
        self._retired_stacks: List[Any] = []
        #: teardown-reap strand attribution (see JobResult.stranded_by_site)
        self._reap_sites: Dict[str, int] = {"reorder_reap": 0, "retired_stack": 0}
        #: crash callbacks fired (sharded mode replays every crash in every
        #: shard; the merge subtracts the duplicate event dispatches)
        self._crash_fired = 0
        # Partial replication: replicas of unreplicated ranks simply do not
        # exist.  Mark their slots dead *before* protocols initialize, then
        # replay Algorithm 1's failure handling synchronously so replica-0
        # processes adopt the bereaved destinations from the start (an
        # absent replica is a replica that failed before t=0).
        self.absent: set = set()
        if self.cfg.replicated_ranks is not None:
            for rank in range(n_ranks):
                if not self.cfg.rank_is_replicated(rank):
                    for rep in range(1, self.cfg.degree):
                        proc = self.rmap.phys(rank, rep)
                        self.absent.add(proc)
                        self.fabric.endpoints[proc].alive = False
        for proc in range(self.rmap.n_procs):
            self._build_stack(proc)
        if arena_trim:
            self._install_trimmer()
        for absent_proc in sorted(self.absent):
            for proc, proto in self.protocols.items():
                if proc in self.absent:
                    continue
                handler = getattr(proto, "on_failure", None)
                if handler is not None:
                    for _ in handler(absent_proc):  # pragma: no cover - no yields at init
                        pass

    #: trim cadence: every TRIM_INTERVAL timestamp advances, trim the
    #: fabric frame pool plus the next TRIM_PROCS envelope pools
    #: (round-robin — a full sweep per tick would be O(n_procs) at every
    #: advance, which 16k-proc runs cannot afford)
    TRIM_INTERVAL = 256
    TRIM_PROCS = 64

    def _install_trimmer(self) -> None:
        """Arm the quiescent-point arena trimmer on the kernel.

        Runs from :attr:`Simulator.on_advance` — between timestamp
        batches, never mid-batch — so no in-flight owner can hold a shell
        the trim would drop, and nothing about event order or
        ``events_dispatched`` changes (the hook is not a scheduled event).
        Respawns are covered for free: the closure indexes ``self.pmls``
        live, which always maps every proc to its *current* stack.
        """
        pmls = self.pmls
        fabric = self.fabric
        n_procs = self.rmap.n_procs
        interval = self.TRIM_INTERVAL
        stride = min(self.TRIM_PROCS, n_procs)
        tick = 0
        cursor = 0

        def trim() -> None:
            nonlocal tick, cursor
            tick += 1
            if tick < interval:
                return
            tick = 0
            fabric.trim_frame_pool()
            for _ in range(stride):
                pmls[cursor].trim_env_pool()
                cursor += 1
                if cursor == n_procs:
                    cursor = 0

        self.sim.on_advance = trim

    # ------------------------------------------------------------- plumbing
    def _build_stack(self, proc: int) -> None:
        old_pml = self.pmls.get(proc)
        if old_pml is not None:
            self._retired_stacks.append((old_pml, self.protocols[proc]))
        pml = Pml(
            self.sim,
            self.fabric,
            proc,
            shared_costs=self.shared_state,
            interner=self.interner,
            linear_matching=self.matching == "linear",
        )
        pml.pool_envelopes = self.pooling
        if self.cfg.protocol == "native":
            protocol = NativeProtocol(pml, world_rank=proc)
        else:
            protocol = _PROTOCOL_CLASSES[self.cfg.protocol](
                pml, self.rmap, self.membership, self.cfg, shared=self._proto_shared
            )
        rank = self.rmap.rank_of(proc)
        mpi = MpiProcess(
            self.sim,
            pml,
            protocol,
            world_rank=rank,
            world_size=self.n_ranks,
            world_shared=self._world_shared,
        )
        if self.cluster.compute_noise > 0:
            # Stream keyed by (rank, replica): replica 0 sees the same noise
            # as the native run's rank, replica 1 sees independent noise —
            # the timing divergence the ack protocol has to absorb.
            rep = self.rmap.rep_of(proc)
            stream = self.rng.stream(f"noise.r{rank}.k{rep}")
            mpi.noise = (stream, self.cluster.compute_noise)
        if self.cfg.protocol == "native":
            mpi.io = NativeIo(self.vfs, rank)
        else:
            mpi.io = ReplicatedIo(self.vfs, protocol)
        if self._recorder_factory is not None:
            mpi.recorder = self._recorder_factory(proc, rank)
        self.pmls[proc] = pml
        self.protocols[proc] = protocol
        self.mpis[proc] = mpi

    def _start_process(self, proc: int, gen) -> None:
        rank, rep = self.rmap.pair(proc)
        name = f"p{rep}_{rank}" if self.cfg.degree > 1 else f"p{rank}"

        def body(gen=gen, proc=proc):
            result = yield from gen
            self.finish_times[proc] = self.sim.now
            self.app_results[proc] = result
            self._maybe_all_done()
            # MPI_Finalize semantics: keep progressing protocol traffic
            # (acks, duplicate rendezvous handshakes, ...) until every live
            # process has finished its application code.  Without this, a
            # peer's late cross-replica transfer could wedge forever.
            pml = self.pmls[proc]
            while not self._app_all_done:
                done_ev = Event(self.sim, label=f"finalize({proc})")
                self._drain_waiters.append(done_ev)
                frame_ev = pml.endpoint.wait_for_frame()
                if self._shard_mode:
                    self._drain_frame_waits[proc] = frame_ev
                yield AnyOf(self.sim, [done_ev, frame_ev])
                if self._shard_mode:
                    self._drain_frame_waits.pop(proc, None)
                    if not done_ev.triggered:
                        # Frame wake, not the release: the parent compares
                        # these times against the global completion time.
                        self._drain_wakes.append(self.sim.now)
                yield from pml.drain()
            return result

        self.processes[proc] = Process(self.sim, body(), name=name, on_exit=lambda p: self._maybe_all_done())

    def _maybe_all_done(self) -> None:
        if self._app_all_done:
            return
        if self._shard_mode:
            # A shard must not flip on shard-local completion: the drain
            # loop keeps progressing protocol traffic until the parent
            # establishes *global* completion and commands the release.
            return
        for proc, process in self.processes.items():
            if process.crashed:
                continue
            if proc not in self.finish_times:
                return
        self._app_all_done = True
        for ev in self._drain_waiters:
            if not ev.triggered:
                ev.succeed(None)
        self._drain_waiters.clear()

    def _shard_release_drain(self, last_proc: Optional[int] = None) -> None:
        """Sharded mode: perform the `_maybe_all_done` flip on parent command.

        Called between lookahead windows once every shard has reported
        local completion (:mod:`repro.sim.shard`).  *last_proc* is the
        globally last finisher when the completion trigger was an
        application finish: serially that process flips the flag inside
        its own finish dispatch and never parks in the drain loop, so its
        pending frame-wait is abandoned here (no stale endpoint waiter)
        and the merge subtracts the two dispatches its extra done-event
        wake costs.  All other parked processes wake exactly as the
        serial flip would wake them.
        """
        if last_proc is not None:
            ev = self._drain_frame_waits.get(last_proc)
            if ev is not None:
                ev.abandon()
        self._app_all_done = True
        for ev in self._drain_waiters:
            if not ev.triggered:
                ev.succeed(None)
        self._drain_waiters.clear()

    # ------------------------------------------------------------------ API
    def launch(self, app_factory: Callable[..., Any], **kwargs: Any) -> "Job":
        """Instantiate the application on every physical process.

        ``app_factory(mpi, **kwargs)`` must return the rank's generator.
        Recoverable applications additionally accept ``state=``.
        """
        self._app_factory = app_factory
        self._app_kwargs = dict(kwargs)
        if self.parallel is not None:
            # Sharded mode: process start is deferred to the shard workers
            # (each fork starts exactly its own procs, in proc order, so
            # every shard's t=0 bucket is the serial order's projection).
            # The serial fallback calls _launch_now() instead.
            return self
        self._launch_now()
        return self

    def _launch_now(self) -> None:
        for proc in range(self.rmap.n_procs):
            if proc in self.absent:
                continue
            self._start_process(proc, self._app_factory(self.mpis[proc], **self._app_kwargs))

    def spawn_replica(self, proc: int, app_state: Any, proto_state: dict) -> None:
        """Respawn a replica at slot *proc* (recovery fork, §3.4)."""
        if self._app_factory is None:
            raise MpiError("cannot respawn before launch()")
        self._build_stack(proc)
        protocol = self.protocols[proc]
        protocol.adopt_state(proto_state)
        gen = self._app_factory(self.mpis[proc], state=app_state, **self._app_kwargs)
        self._start_process(proc, gen)

    def crash(self, rank: int, rep: int = 1, at: float = 0.0) -> "Job":
        """Schedule a fail-stop crash of replica *rep* of *rank* at time *at*."""
        proc = self.rmap.phys(rank, rep)

        def do_crash() -> None:
            self._crash_fired += 1
            self.membership.crash(proc)  # wire-level + detector fan-out
            process = self.processes.get(proc)
            if process is not None:
                process.crash()

        self.sim.call_at(at, do_crash)
        return self

    def run(
        self,
        until: Optional[float] = None,
        allow_lost_ranks: bool = False,
        audit: Optional[bool] = None,
    ) -> JobResult:
        """Run to completion; detects deadlock and lost ranks.

        *audit* controls the end-of-run arena-balance proof.  The default
        (``None``) keeps the historical behaviour: audit exactly when the
        job runs to completion (``until is None``).  Campaigns pass
        ``audit=True`` with a horizon — a wedged (deadlocked/partitioned)
        run is audited too, after stranding whatever was still in flight
        at the horizon (see :meth:`audit`).

        With ``parallel=ParallelConfig(...)`` the run executes across the
        conservative-window shard pool (:mod:`repro.sim.shard`), merged to
        the same :class:`JobResult` the serial engine produces —
        byte-identical fingerprints are the contract, hypothesis-proven.
        """
        if self.parallel is not None:
            from repro.sim.shard import run_parallel

            return run_parallel(self, until=until, allow_lost_ranks=allow_lost_ranks, audit=audit)
        return self._run_serial(until=until, allow_lost_ranks=allow_lost_ranks, audit=audit)

    def _run_serial_fallback(
        self,
        until: Optional[float] = None,
        allow_lost_ranks: bool = False,
        audit: Optional[bool] = None,
    ) -> JobResult:
        """Hazard fallback for sharded mode: start the deferred processes
        and run on the serial engine (:func:`repro.sim.shard.run_parallel`
        annotates the result with the fallback reasons)."""
        self._launch_now()
        return self._run_serial(until=until, allow_lost_ranks=allow_lost_ranks, audit=audit)

    def _run_serial(
        self,
        until: Optional[float] = None,
        allow_lost_ranks: bool = False,
        audit: Optional[bool] = None,
    ) -> JobResult:
        if audit is None:
            audit = until is None
        self.sim.run(until=until)
        # Filter-guard violations surface on *every* exit path — a wedged
        # run (deadlock, lost ranks) is exactly where an unguarded filter
        # stranded something, and crash unwinding already swallowed the
        # inline AssertionError (Process.crash: the crash wins).
        self._check_guard_violations()
        lost = sorted(self.membership.lost_ranks)
        blocked = {
            p.name: (p._waiting_on.label if p._waiting_on is not None else "<runnable>")
            for proc, p in self.processes.items()
            if p.alive and proc not in self.finish_times
        }
        for proc, process in self.processes.items():
            if process.exception is not None:
                raise process.exception
        if blocked and until is None:
            if lost and allow_lost_ranks:
                pass  # an expected application-fatal failure scenario
            else:
                raise DeadlockError(blocked)
        if lost and not allow_lost_ranks:
            raise MpiError(f"application lost ranks {lost}: every replica failed")
        if audit:
            self.audit()
        finished = [t for p, t in self.finish_times.items()]
        requests = self.traffic.totals() if self.traffic is not None else {}
        return JobResult(
            runtime=max(finished) if finished else self.sim.now,
            finish_times=dict(self.finish_times),
            app_results=dict(self.app_results),
            stats={p: proto.stats() for p, proto in self.protocols.items()},
            fabric={
                "frames": self.fabric.total_frames,
                "bytes": self.fabric.total_bytes,
                "by_kind": dict(self.fabric.frames_by_kind),
                **self.fabric.stats(),
            },
            events=self.sim.events_dispatched,
            payload_interned=self.interner.hits if self.interner is not None else 0,
            payload_misses=self.interner.misses if self.interner is not None else 0,
            requests_offered=requests.get("requests_offered", 0),
            requests_admitted=requests.get("requests_admitted", 0),
            requests_rejected=requests.get("requests_rejected", 0),
            requests_completed=requests.get("requests_completed", 0),
            requests_lost=requests.get("requests_lost", 0),
            lost_ranks=lost,
            stranded_by_site=self._strand_attribution(),
        )

    def audit(self) -> None:
        """Machine-check the zero-leak contract on this run, whatever state
        it stopped in: strand anything still in flight at the stop time,
        then assert ``acquired == released + stranded`` for both arenas.
        Also callable directly by campaign drivers after a run that raised
        (a failed run must still balance its books).
        """
        self._strand_in_flight()
        self._assert_arenas_balanced()

    def _strand_in_flight(self) -> None:
        """Strand frames still sitting in the kernel queue at the horizon.

        A job stopped at ``until`` leaves undelivered frames (and their
        envelopes) on the heap — nobody will ever release them, so the
        balance proof attributes them to the ``in_flight`` site.  Safe
        only once the run is over: a stranded frame must not fire.
        """
        sim = self.sim
        fab = self.fabric
        for _t, _seq, ev in sim._queue:
            if type(ev) is Frame and ev.fabric is not None:
                fab.strand_frame(ev, "in_flight")
        for ev in sim._bucket:
            if type(ev) is Frame and ev.fabric is not None:
                fab.strand_frame(ev, "in_flight")

    def _check_guard_violations(self) -> None:
        """Re-raise any ownership violations the runtime guard recorded —
        incoming_filter strands (:func:`repro.core.interpose.guard_incoming_filter`)
        and unbalanced hook retains (:func:`repro.core.interpose.guard_hook`)."""
        pmls = list(self.pmls.values()) + [pml for pml, _proto in self._retired_stacks]
        violations = [v for pml in pmls for v in (pml.guard_violations or ())]
        if violations:
            raise AssertionError(
                "envelope ownership violations (REPRO_FILTER_GUARD):\n  "
                + "\n  ".join(violations)
            )

    def _strand_attribution(self) -> Dict[str, Dict[str, int]]:
        """Merge every drop site's counters into one {site: {frames, envs}}
        map: the fabric's fail-stop sites, the receive-pipeline guards on
        every PML (live and retired), and the teardown reaps."""
        by_site: Dict[str, Dict[str, int]] = {
            site: {"frames": cell[0], "envs": cell[1]}
            for site, cell in self.fabric.strands_by_site.items()
        }
        pmls = list(self.pmls.values()) + [pml for pml, _proto in self._retired_stacks]
        for pml in pmls:
            pml_sites = pml.env_stranded_by_site
            if pml_sites:
                for site, n in pml_sites.items():
                    entry = by_site.setdefault(site, {"frames": 0, "envs": 0})
                    entry["envs"] += n
        for site, n in self._reap_sites.items():
            if n:
                entry = by_site.setdefault(site, {"frames": 0, "envs": 0})
                entry["envs"] += n
        return by_site

    def _assert_arenas_balanced(self) -> None:
        """Leak check: every Frame/Envelope acquire has a release or an
        accounted strand.

        Runs in the teardown of every run-to-completion job — **crashy
        runs included**: the fail-stop drop sites (fabric injects by dead
        sources, arrivals at dead endpoints, dead-rank inbox clears) and
        the receive-pipeline ownership guards (generators abandoned
        mid-charge or mid-hook by a crash) count what they strand, so
        ``acquired == released + stranded`` stays provable through
        failover and recovery — exactly the scenarios the replication
        protocols exist for.  Leftovers with a well-defined end-of-run
        owner — inbox frames that arrived after the last application
        statement, unexpected-queue envelopes the application never
        received, reorder-buffer early arrivals orphaned by a crash — are
        reaped into the arenas first; anything still unbalanced after
        that is an ownership bug in the delivery path.
        """
        # Survivors blocked forever (lost-rank scenarios tolerated via
        # allow_lost_ranks) still hold suspended generators: closing them
        # routes any envelopes they were borrowing to the strand counters.
        for process in self.processes.values():
            process.abandon()
        live = [(self.pmls[p], self.protocols[p]) for p in self.pmls]
        reap_sites = self._reap_sites
        for pml, proto in live:
            reap = getattr(proto, "reap", None)
            if reap is not None:
                reap_sites["reorder_reap"] += reap() or 0
            pml.reap()
        # Stacks replaced by a respawn: everything they still parked is
        # attributed to the retirement, not the live stacks' reaping.
        for pml, proto in self._retired_stacks:
            retired = 0
            reap = getattr(proto, "reap", None)
            if reap is not None:
                retired += reap() or 0
            retired += pml.reap() or 0
            reap_sites["retired_stack"] += retired
        stacks = live + self._retired_stacks
        # Hook-retain audit (runtime ownership guard): unbalanced
        # Envelope.retain() calls are stranded at ``unbalanced_retain``
        # and recorded as violations — after the reaps above, so protocol
        # teardowns that release their retains have already cleared them.
        for pml, _proto in stacks:
            pml.reap_retain_ledger()
        self._check_guard_violations()
        fab = self.fabric
        # Sharded runs extend both sides with the cross-shard relay: an
        # exported frame left this arena's custody (its shell recycled
        # locally, the wire record re-acquired by the destination shard's
        # import_frame — which counts as a regular acquire here, so only
        # the export side needs a term).  Imported *envelopes* however are
        # minted without an acquire_env, exactly like link duplication, so
        # they join the acquired side.  Serial runs have all four relay
        # counters at zero and the historical formulas back.
        frames_closed = fab.frames_released + fab.frames_stranded + fab.frames_exported
        if fab.frames_acquired != frames_closed:
            raise AssertionError(
                f"frame arena leak: {fab.frames_acquired} acquired vs "
                f"{fab.frames_released} released + "
                f"{fab.frames_stranded} stranded + "
                f"{fab.frames_exported} exported "
                f"({fab.frames_acquired - frames_closed} unaccounted)"
            )
        pmls = [pml for pml, _proto in stacks]
        # Link duplication mints envelopes without an acquire_env — they
        # enter on the acquired side so each clone still needs a release
        # or an accounted strand of its own.
        env_acquired = sum(p.env_acquired for p in pmls) + fab.envs_duplicated + fab.envs_imported
        env_released = sum(p.env_released for p in pmls)
        env_stranded = sum(p.env_stranded for p in pmls) + fab.envs_stranded
        env_closed = env_released + env_stranded + fab.envs_exported
        if env_acquired != env_closed:
            raise AssertionError(
                f"envelope arena leak: {env_acquired} acquired vs "
                f"{env_released} released + {env_stranded} stranded + "
                f"{fab.envs_exported} exported "
                f"({env_acquired - env_closed} unaccounted)"
            )
