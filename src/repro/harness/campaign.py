"""Seeded fault campaigns with a machine-audited degradation taxonomy.

A campaign runs every protocol through N seeded fault mixes — crashes,
rolling churn, false suspicions through the imperfect detector, and
network-level drop/duplication/delay/partition windows — under live
traffic, and classifies each run:

``completed``
    every rank finished with the correct result and no fault left a
    measurable mark on the run;
``degraded``
    every rank finished correctly, but the protocol visibly absorbed
    faults on the way (failovers, resends, deduplicated copies, detector
    churn) — the replication value proposition, quantified;
``failed``
    a rank lost every replica, a finished rank returned a wrong result,
    or the run raised — replication was insufficient for this mix;
``deadlocked``
    live processes were still blocked at the horizon (a dropped frame
    with no retransmission path, an unhealed partition, an ack that
    never arrived).

Whatever the outcome, every run is **audited**: the zero-leak arena
balance (``acquired == released + stranded``) must hold, and the
per-site strand attribution must sum back to the scalar counters.  An
audit failure is an invariant violation — recorded on the run and fatal
to the campaign — never folded into the degradation taxonomy.

Determinism: the fault mix is derived from the campaign seed alone
(:class:`repro.sim.rng.RngRegistry` streams), and the same seed drives
the job's network adversary and detector draws — one integer reproduces
the run, byte-identically, fingerprint and all.

Notes on the taxonomy's edges: the simulated transport is reliable by
assumption, so a *dropped* application or control frame has no
retransmission path — drop and partition windows push runs toward
``deadlocked`` by design (the taxonomy names the pathology instead of
hanging a test suite).  Duplication windows are absorbed by the
replicated protocols' per-channel dedup (``degraded``), while the native
stack has no filter and may double-deliver (``failed`` on a wrong
result).  See ``docs/fault_model.md``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import ReplicationConfig
from repro.core.membership import DetectorConfig
from repro.harness.faults import FaultSchedule
from repro.harness.report import render_table
from repro.harness.runner import Job, JobShape, cluster_for
from repro.network.model import FaultPlan, LinkFaultWindow, PartitionWindow
from repro.scenarios import get_scenario
from repro.sim.rng import RngRegistry

__all__ = [
    "OUTCOMES",
    "DEFAULT_PROTOCOLS",
    "CampaignConfig",
    "RunRecord",
    "CampaignResult",
    "sample_faults",
    "run_case",
    "run_campaign",
]

#: exhaustive degradation taxonomy — every run maps to exactly one
OUTCOMES: Tuple[str, ...] = ("completed", "degraded", "failed", "deadlocked")

DEFAULT_PROTOCOLS: Tuple[str, ...] = ("native", "sdr", "mirror", "leader", "redmpi")


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one campaign: workload size, horizon, fault-mix odds.

    The probabilities gate *whether* a fault class appears in a given
    seeded mix; the parameters of each appearing fault (victim, time,
    window intensity) are drawn from the same stream.  Crash-like faults
    are sampled exclusively (churn *or* a single crash), so a mix never
    violates the one-fail-stop-per-process rule.
    """

    n_ranks: int = 4
    degree: int = 2
    steps: int = 12
    #: workload name (a :mod:`repro.scenarios` registry entry) — a sweep
    #: axis since PR 7, resolved through the scenario registry since PR 9
    workload: str = "ring"
    #: virtual-seconds cap per run (wedged runs stop and audit here)
    horizon: float = 2e-3
    #: fault-time scale: faults are drawn inside [0, active], matched to
    #: the workload's busy period so the mix lands under live traffic
    active: float = 60e-6
    p_churn: float = 0.2
    p_crash: float = 0.35
    p_respawn: float = 0.5
    p_suspicion: float = 0.4
    p_drop_window: float = 0.15
    p_dup_window: float = 0.35
    p_delay_window: float = 0.35
    p_partition: float = 0.1
    detector: DetectorConfig = DetectorConfig(
        heartbeat_period=20e-6, timeout=30e-6, suspicion_threshold=2,
        notify_attempts=3, notify_backoff=5e-6, notify_drop_p=0.1,
    )


# ------------------------------------------------------------- fault mixes
def sample_faults(
    seed: int, cfg: CampaignConfig, protocol: str, respawnable: bool = True
) -> Tuple[FaultSchedule, Optional[FaultPlan], Dict[str, Any]]:
    """Deterministically derive one fault mix from *seed*.

    Returns the process-level schedule, the network-level plan (or None),
    and a human-readable summary of what was drawn.  Every draw comes
    from the dedicated ``campaign.faults`` stream, so the mix — like the
    run it shapes — is a pure function of the seed.

    *respawnable* gates the churn and respawn branches for workloads
    whose app factory cannot fork a replica from a recovery point (no
    ``state=`` kwarg).  The gate sits outside the draws, so mixes for
    respawn-capable workloads are unchanged and the non-respawnable
    variant stays a pure function of ``(seed, respawnable)``.
    """
    rng = RngRegistry(seed).stream("campaign.faults")
    degree = 1 if protocol == "native" else cfg.degree
    h = cfg.active
    sched = FaultSchedule()
    mix: Dict[str, Any] = {}
    # Worst-case crash-to-declaration lag of the campaign detector (the
    # schedule validator rejects respawns that precede declaration).
    det = cfg.detector
    declare_lag = (
        det.suspicion_threshold * det.heartbeat_period
        + det.timeout
        + (det.notify_attempts - 1) * det.notify_backoff
    )

    # Crash-like faults, sampled exclusively: rolling churn (sdr only —
    # respawns need the recovery manager) or a single replica crash.
    draw = rng.random()
    if protocol == "sdr" and degree == 2 and respawnable and draw < cfg.p_churn:
        first = int(rng.integers(cfg.n_ranks))
        ranks = [first, (first + 1) % cfg.n_ranks]
        churn = FaultSchedule.rolling_churn(
            ranks, start=0.2 * h, period=0.15 * h, downtime=declare_lag + 0.2 * h
        )
        sched.crashes.extend(churn.crashes)
        sched.respawns.extend(churn.respawns)
        mix["churn_ranks"] = ranks
    elif draw < cfg.p_churn + cfg.p_crash:
        rank = int(rng.integers(cfg.n_ranks))
        rep = int(rng.integers(degree))
        at = float(rng.uniform(0.15, 0.6)) * h
        sched.crash(rank, rep, at)
        mix["crash"] = (rank, rep, at)
        if protocol == "sdr" and degree == 2 and respawnable and rng.random() < cfg.p_respawn:
            sched.respawn(
                rank, det.declare_at(at) + declare_lag + float(rng.uniform(0.1, 0.3)) * h
            )
            mix["respawn"] = True

    # False suspicion through the imperfect detector (no-op on the proc
    # if it happens to be dead by then — that is a true positive).
    if degree > 1 and rng.random() < cfg.p_suspicion:
        rank = int(rng.integers(cfg.n_ranks))
        rep = int(rng.integers(degree))
        at = float(rng.uniform(0.1, 0.5)) * h
        clear = float(rng.uniform(0.1, 0.3)) * h
        sched.suspect(rank, rep, at, clear_after=clear)
        mix["suspicion"] = (rank, rep, at)

    # Network adversary windows.
    windows: List[LinkFaultWindow] = []
    if rng.random() < cfg.p_dup_window:
        start = float(rng.uniform(0.0, 0.4)) * h
        end = start + float(rng.uniform(0.1, 0.4)) * h
        windows.append(LinkFaultWindow(start, end, dup_p=float(rng.uniform(0.05, 0.3))))
        mix["dup_window"] = (start, end)
    if rng.random() < cfg.p_delay_window:
        start = float(rng.uniform(0.0, 0.5)) * h
        end = start + float(rng.uniform(0.1, 0.4)) * h
        windows.append(LinkFaultWindow(start, end, delay=float(rng.uniform(0.5, 3.0)) * 1e-6))
        mix["delay_window"] = (start, end)
    if rng.random() < cfg.p_drop_window:
        start = float(rng.uniform(0.1, 0.5)) * h
        end = start + float(rng.uniform(0.05, 0.2)) * h
        windows.append(LinkFaultWindow(start, end, drop_p=float(rng.uniform(0.02, 0.15))))
        mix["drop_window"] = (start, end)
    partitions: List[PartitionWindow] = []
    if rng.random() < cfg.p_partition:
        nodes = cluster_for(cfg.n_ranks, degree).nodes
        if nodes >= 2:
            start = float(rng.uniform(0.1, 0.5)) * h
            end = start + float(rng.uniform(0.05, 0.2)) * h
            half = nodes // 2
            partitions.append(
                PartitionWindow(
                    start, end,
                    groups=(tuple(range(half)), tuple(range(half, nodes))),
                )
            )
            mix["partition"] = (start, end)
    plan: Optional[FaultPlan] = None
    if windows or partitions:
        plan = FaultPlan(windows=tuple(windows), partitions=tuple(partitions)).validate()
    return sched, plan, mix


# ------------------------------------------------------------------- runs
@dataclass
class RunRecord:
    """One audited campaign run."""

    protocol: str
    seed: int
    outcome: str
    mix: Dict[str, Any]
    metrics: Dict[str, Any]
    stranded_by_site: Dict[str, Dict[str, int]]
    error: Optional[str] = None
    #: arena-balance / per-site-sum failure — fatal, never a taxonomy bucket
    invariant_error: Optional[str] = None
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.outcome not in OUTCOMES:
            raise ValueError(f"outcome {self.outcome!r} not in {OUTCOMES}")


def _fingerprint(payload: Dict[str, Any]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_case(
    protocol: str,
    seed: int,
    cfg: Optional[CampaignConfig] = None,
    shape: Optional[JobShape] = None,
) -> RunRecord:
    """Run one seeded fault mix against *protocol* and audit the books.

    *shape* is an optional prebuilt :class:`JobShape` for this exact
    ``(protocol, degree, n_ranks)`` — the sweep executor's shape cache
    passes one so same-shape configs reuse the shared construction; the
    run is byte-identical with or without it (the cache only memoizes
    values that are pure functions of the shape).
    """
    cfg = cfg or CampaignConfig()
    scenario = get_scenario(cfg.workload)  # raises ScenarioError (a ValueError)
    degree = 1 if protocol == "native" else cfg.degree
    scenario.check(cfg.n_ranks, degree)
    bound = scenario.bind(cfg, seed)
    rcfg = ReplicationConfig(degree=degree, protocol=protocol)
    if shape is None:
        shape = JobShape.build(cfg.n_ranks, rcfg, cluster_for(cfg.n_ranks, degree))
    sched, plan, mix = sample_faults(
        seed, cfg, protocol, respawnable=scenario.supports_respawn
    )
    job = Job(
        cfg.n_ranks,
        cfg=rcfg,
        seed=seed,
        detector=cfg.detector,
        fault_plan=plan,
        shape=shape,
        traffic=bound.traffic,
    )
    job.launch(bound.factory, **bound.kwargs)
    sched.apply(job, horizon=cfg.horizon)

    outcome: Optional[str] = None
    error: Optional[str] = None
    invariant_error: Optional[str] = None
    res = None
    try:
        res = job.run(until=cfg.horizon, allow_lost_ranks=True, audit=False)
    except AssertionError as exc:  # guard violation surfaced by run()
        invariant_error = str(exc)
        outcome = "failed"
        error = f"{type(exc).__name__}: {exc}"
    except Exception as exc:
        error = f"{type(exc).__name__}: {exc}"
        outcome = "failed"
    # Blocked-process census before the audit abandons the stacks.
    unfinished = sorted(
        p for p, proc in job.processes.items() if proc.alive and p not in job.finish_times
    )
    try:
        job.audit()
    except AssertionError as exc:
        invariant_error = (invariant_error + "\n" if invariant_error else "") + str(exc)

    # Per-site strand sums must reproduce the scalar counters.
    sites = job._strand_attribution()
    fstats = job.fabric.stats()
    pmls = list(job.pmls.values()) + [pml for pml, _proto in job._retired_stacks]
    frame_sum = sum(cell["frames"] for cell in sites.values())
    env_sum = sum(cell["envs"] for cell in sites.values())
    env_total = (
        fstats["envs_stranded"]
        + sum(p.env_stranded for p in pmls)
        + sum(job._reap_sites.values())
    )
    if frame_sum != fstats["frames_stranded"]:
        invariant_error = (invariant_error + "\n" if invariant_error else "") + (
            f"per-site frame sum {frame_sum} != frames_stranded {fstats['frames_stranded']}"
        )
    if env_sum != env_total:
        invariant_error = (invariant_error + "\n" if invariant_error else "") + (
            f"per-site env sum {env_sum} != stranded+reaped total {env_total}"
        )

    membership = job.membership
    protos = list(job.protocols.values())
    metrics: Dict[str, Any] = {
        "runtime": res.runtime if res is not None else job.sim.now,
        "events": job.sim.events_dispatched,
        "crashes": len(membership.failed),
        "false_suspicions": len(membership.false_suspicions),
        "detection_latency_max": max(membership.detection_latency.values(), default=0.0),
        "notify_drops": membership.notify_drops,
        "fault_drops": fstats["fault_drops"],
        "fault_dups": fstats["fault_dups"],
        "fault_delays": fstats["fault_delays"],
        "duplicates_dropped": sum(getattr(p, "duplicates_dropped", 0) for p in protos),
        "resends": sum(getattr(p, "resends", 0) for p in protos),
        "speculative_failovers": sum(getattr(p, "speculative_failovers", 0) for p in protos),
        "stranded_frames": fstats["frames_stranded"],
        "stranded_envs": env_total,
        "unfinished": len(unfinished),
        "lost_ranks": sorted(membership.lost_ranks),
    }
    if bound.traffic is not None:
        # Traffic runs surface request accounting in the fingerprint; the
        # keys appear only when traffic is active, so closed-loop
        # fingerprints stay byte-identical to their pre-traffic goldens.
        metrics.update(bound.traffic.totals())
        try:
            bound.traffic.audit()
        except AssertionError as exc:
            invariant_error = (invariant_error + "\n" if invariant_error else "") + str(exc)

    if outcome is None:
        expected = bound.expected
        results = res.app_results if res is not None else {}
        wrong = [
            p for p, val in results.items() if val != expected[job.rmap.rank_of(p)]
        ]
        if metrics["lost_ranks"] or wrong:
            outcome = "failed"
            if wrong:
                error = f"wrong results from procs {sorted(wrong)}"
        elif unfinished:
            outcome = "deadlocked"
        elif (
            metrics["crashes"]
            or metrics["false_suspicions"]
            or metrics["fault_drops"]
            or metrics["fault_dups"]
            or metrics["fault_delays"]
            or metrics["notify_drops"]
        ):
            outcome = "degraded"
        else:
            outcome = "completed"

    fingerprint = _fingerprint(
        {
            "protocol": protocol,
            "seed": seed,
            "outcome": outcome,
            "metrics": metrics,
            "sites": sites,
            "frames": fstats["total_frames"],
            "bytes": fstats["total_bytes"],
        }
    )
    return RunRecord(
        protocol=protocol,
        seed=seed,
        outcome=outcome,
        mix=mix,
        metrics=metrics,
        stranded_by_site=sites,
        error=error,
        invariant_error=invariant_error,
        fingerprint=fingerprint,
    )


# -------------------------------------------------------------- campaigns
@dataclass
class CampaignResult:
    """All records of one campaign plus the roll-ups reports consume."""

    records: List[RunRecord] = field(default_factory=list)

    @property
    def violations(self) -> List[RunRecord]:
        return [r for r in self.records if r.invariant_error]

    def outcome_counts(self) -> Dict[str, Dict[str, int]]:
        """{protocol: {outcome: count}} with every taxonomy bucket present."""
        counts: Dict[str, Dict[str, int]] = {}
        for rec in self.records:
            row = counts.setdefault(rec.protocol, {o: 0 for o in OUTCOMES})
            row[rec.outcome] += 1
        return counts

    def impact(self) -> Dict[str, Dict[str, float]]:
        """Per-protocol fault-impact totals across the campaign."""
        keys = (
            "crashes", "false_suspicions", "fault_drops", "fault_dups",
            "fault_delays", "duplicates_dropped", "resends",
            "speculative_failovers", "stranded_frames", "stranded_envs",
        )
        out: Dict[str, Dict[str, float]] = {}
        for rec in self.records:
            row = out.setdefault(rec.protocol, {k: 0 for k in keys})
            for k in keys:
                row[k] += rec.metrics[k]
        return out

    def table(self, title: str = "Fault campaign") -> str:
        counts = self.outcome_counts()
        impact = self.impact()
        header = ["protocol", "runs", *OUTCOMES, "violations", "dedup", "resends", "stranded"]
        rows = []
        for proto, row in counts.items():
            imp = impact[proto]
            rows.append(
                [
                    proto,
                    sum(row.values()),
                    *(row[o] for o in OUTCOMES),
                    sum(1 for r in self.violations if r.protocol == proto),
                    int(imp["duplicates_dropped"]),
                    int(imp["resends"]),
                    int(imp["stranded_envs"]),
                ]
            )
        return render_table(title, header, rows)

    def to_json(self) -> str:
        return json.dumps(
            [
                {
                    "protocol": r.protocol,
                    "seed": r.seed,
                    "outcome": r.outcome,
                    "mix": {k: v for k, v in r.mix.items()},
                    "metrics": r.metrics,
                    "stranded_by_site": r.stranded_by_site,
                    "error": r.error,
                    "invariant_error": r.invariant_error,
                    "fingerprint": r.fingerprint,
                }
                for r in self.records
            ],
            sort_keys=True,
            indent=2,
            default=str,
        )


def run_campaign(
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    seeds: Sequence[int] = range(5),
    cfg: Optional[CampaignConfig] = None,
) -> CampaignResult:
    """N seeded fault mixes × every protocol, each run audited."""
    cfg = cfg or CampaignConfig()
    result = CampaignResult()
    for protocol in protocols:
        for seed in seeds:
            result.records.append(run_case(protocol, seed, cfg))
    return result
