"""Sweep result store: streamed JSONL + a SQLite index, finalized atomically.

A sweep streams every audited run record as it completes — append-only
JSONL for grep/jq-ability, plus a SQLite index over the axis and outcome
columns so reports can query thousands of runs without re-parsing the
stream.  Both artifacts are written to ``*.partial`` paths while the
sweep runs and moved to their final names in :meth:`SweepStore.finalize`
via :func:`atomic_replace` — an interrupted nightly job leaves only
``.partial`` droppings, never a truncated final artifact that would
poison the next consumer.  ``sdr-mpi campaign --json`` shares the same
helper (:func:`atomic_write_text`) for its single-shot artifact.

Schema (``runs`` table; ``record`` holds the full JSON line)::

    idx INTEGER PRIMARY KEY,   -- config index in the sweep matrix
    protocol TEXT, degree INT, n_ranks INT, workload TEXT, mix TEXT,
    seed INT,                  -- campaign seed of this config
    outcome TEXT,              -- completed/degraded/failed/deadlocked
    error TEXT, invariant_error TEXT,
    events INT, runtime REAL, stranded_frames INT, stranded_envs INT,
    fingerprint TEXT, record TEXT

plus a one-row ``meta`` table carrying the sweep-level summary (spec,
cache hit/miss accounting, worker crashes) as JSON.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["StoreError", "SweepStore", "atomic_replace", "atomic_write_text"]


class StoreError(RuntimeError):
    """Store misuse: path collision, missing artifact, finalized twice."""


def atomic_write_text(path: str, text: str) -> None:
    """Write *text* to *path* atomically (write temp, fsync, rename).

    A reader never observes a truncated file: either the old content (or
    absence) or the complete new content.  Used by ``sdr-mpi campaign
    --json`` and the sweep store's finalize step.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        fh.write(text)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def atomic_replace(partial: str, final: str) -> None:
    """Promote a fully-written ``.partial`` artifact to its final name."""
    os.replace(partial, final)


_COLUMNS: Tuple[str, ...] = (
    "idx", "protocol", "degree", "n_ranks", "workload", "mix", "seed",
    "outcome", "error", "invariant_error", "events", "runtime",
    "stranded_frames", "stranded_envs", "fingerprint", "record",
)

_SCHEMA = f"""
CREATE TABLE runs ({", ".join(
    c + (" INTEGER PRIMARY KEY" if c == "idx" else "") for c in _COLUMNS)});
CREATE INDEX runs_outcome ON runs (outcome);
CREATE INDEX runs_axes ON runs (protocol, degree, n_ranks, workload, mix);
CREATE TABLE meta (summary TEXT);
"""


class SweepStore:
    """One sweep's artifacts: ``<base>.jsonl`` + ``<base>.sqlite``.

    Create-side lifecycle: :meth:`create` → :meth:`append` per record (in
    completion order — the ``idx`` column, not file order, is the config
    identity) → :meth:`finalize` (atomic promotion).  Read side:
    :meth:`open` → :meth:`records` / :meth:`sql` / :attr:`summary`.
    """

    def __init__(self, base: str, *, _writable: bool, _conn: sqlite3.Connection) -> None:
        self.base = base
        self.jsonl_path = base + ".jsonl"
        self.db_path = base + ".sqlite"
        self._writable = _writable
        self._conn = _conn
        self._jsonl_fh = None
        self._finalized = False

    # ------------------------------------------------------------- creation
    @classmethod
    def create(cls, base: str, overwrite: bool = False) -> "SweepStore":
        """Open a fresh store for streaming; collides loudly by default."""
        jsonl, db = base + ".jsonl", base + ".sqlite"
        existing = [p for p in (jsonl, db) if os.path.exists(p)]
        if existing and not overwrite:
            raise StoreError(
                f"store artifacts already exist: {', '.join(existing)} "
                f"(pass overwrite to replace them)"
            )
        parent = os.path.dirname(os.path.abspath(base))
        if not os.path.isdir(parent):
            raise StoreError(f"store directory does not exist: {parent}")
        for stale in (jsonl + ".partial", db + ".partial"):
            if os.path.exists(stale):
                os.remove(stale)
        conn = sqlite3.connect(db + ".partial")
        conn.executescript(_SCHEMA)
        store = cls(base, _writable=True, _conn=conn)
        store._jsonl_fh = open(jsonl + ".partial", "w")
        return store

    def append(self, record: Dict[str, Any]) -> None:
        """Stream one run record: a JSONL line plus an index row."""
        if not self._writable or self._finalized:
            raise StoreError("append() on a read-only or finalized store")
        line = json.dumps(record, sort_keys=True, separators=(",", ":"), default=str)
        self._jsonl_fh.write(line + "\n")
        self._jsonl_fh.flush()
        metrics = record.get("metrics") or {}
        self._conn.execute(
            f"INSERT INTO runs ({', '.join(_COLUMNS)}) VALUES "
            f"({', '.join('?' * len(_COLUMNS))})",
            (
                record["index"],
                record["protocol"],
                record["degree"],
                record["n_ranks"],
                record["workload"],
                record["mix"],
                record["seed"],
                record["outcome"],
                record.get("error"),
                record.get("invariant_error"),
                metrics.get("events", 0),
                metrics.get("runtime", 0.0),
                metrics.get("stranded_frames", 0),
                metrics.get("stranded_envs", 0),
                record.get("fingerprint", ""),
                line,
            ),
        )
        self._conn.commit()

    def finalize(self, summary: Optional[Dict[str, Any]] = None) -> None:
        """Promote both ``.partial`` artifacts to their final names."""
        if not self._writable or self._finalized:
            raise StoreError("finalize() on a read-only or finalized store")
        self._conn.execute(
            "INSERT INTO meta (summary) VALUES (?)",
            (json.dumps(summary or {}, sort_keys=True, default=str),),
        )
        self._conn.commit()
        self._conn.close()
        self._jsonl_fh.flush()
        os.fsync(self._jsonl_fh.fileno())
        self._jsonl_fh.close()
        atomic_replace(self.jsonl_path + ".partial", self.jsonl_path)
        atomic_replace(self.db_path + ".partial", self.db_path)
        self._finalized = True

    def abandon(self) -> None:
        """Drop the ``.partial`` artifacts (nothing final is ever touched)."""
        if self._finalized or not self._writable:
            return
        self._conn.close()
        if self._jsonl_fh is not None:
            self._jsonl_fh.close()
        for p in (self.jsonl_path + ".partial", self.db_path + ".partial"):
            if os.path.exists(p):
                os.remove(p)
        self._finalized = True

    # -------------------------------------------------------------- reading
    @classmethod
    def open(cls, base: str) -> "SweepStore":
        """Read access to a finalized store."""
        jsonl, db = base + ".jsonl", base + ".sqlite"
        missing = [p for p in (jsonl, db) if not os.path.exists(p)]
        if missing:
            hint = ""
            if any(os.path.exists(p + ".partial") for p in missing):
                hint = " (a .partial artifact exists — the sweep never finalized)"
            raise StoreError(f"no finalized store at {base}: missing {missing}{hint}")
        conn = sqlite3.connect(f"file:{db}?mode=ro", uri=True)
        return cls(base, _writable=False, _conn=conn)

    def sql(self, query: str, params: Sequence[Any] = ()) -> List[Tuple]:
        """Raw SQL against the index (see module docstring for the schema)."""
        return list(self._conn.execute(query, params))

    def records(self, where: str = "", params: Sequence[Any] = ()) -> List[Dict[str, Any]]:
        """Full run records (parsed JSON), optionally filtered, in idx order."""
        clause = f" WHERE {where}" if where else ""
        rows = self._conn.execute(
            f"SELECT record FROM runs{clause} ORDER BY idx", params
        )
        return [json.loads(r[0]) for r in rows]

    @property
    def summary(self) -> Dict[str, Any]:
        row = self._conn.execute("SELECT summary FROM meta").fetchone()
        return json.loads(row[0]) if row else {}

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "SweepStore":
        return self

    def __exit__(self, *exc) -> None:
        if self._writable and not self._finalized:
            self.abandon()
        elif not self._writable:
            self.close()
