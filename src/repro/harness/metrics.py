"""Run aggregation: the paper reports averages over five executions."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["RunStats", "overhead_pct", "summarize"]


@dataclass(frozen=True)
class RunStats:
    """Summary statistics of repeated runtime measurements."""

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    @classmethod
    def of(cls, samples: Sequence[float]) -> "RunStats":
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("no samples")
        return cls(
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
            minimum=float(arr.min()),
            maximum=float(arr.max()),
            n=int(arr.size),
        )


def overhead_pct(native: float, replicated: float) -> float:
    """The paper's Table 1/2 metric: wall-clock increase in percent."""
    if native <= 0:
        raise ValueError("native runtime must be positive")
    return (replicated / native - 1.0) * 100.0


def summarize(run: Callable[[int], float], repetitions: int = 1) -> RunStats:
    """Run *run(seed)* `repetitions` times (seeds 0..n-1) and summarize."""
    return RunStats.of([run(seed) for seed in range(repetitions)])
