"""repro — SDR-MPI: Replication for Send-Deterministic MPI HPC Applications.

A simulation-grade reproduction of Lefray, Ropars & Schiper (FTXS/HPDC
2013): the SDR-MPI replication protocol implemented inside a deterministic
discrete-event MPI runtime, together with the mirror (MR-MPI), leader-based
(rMPI) and redMPI comparator protocols, the paper's benchmark set (NetPipe,
NAS BT/CG/FT/MG/SP, HPCCG, CM1), failure injection, dual-replication
recovery, and a harness regenerating every table and figure of the paper's
evaluation.

Quickstart::

    from repro import Job, ReplicationConfig

    def app(mpi):
        x = yield from mpi.allreduce(float(mpi.rank), op="sum")
        return x

    native = Job(8).launch(app).run()
    replicated = Job(8, cfg=ReplicationConfig(degree=2, protocol="sdr")).launch(app).run()
"""

from repro.core.config import ReplicationConfig
from repro.core.recovery import RecoveryManager
from repro.harness.faults import CrashSchedule
from repro.harness.runner import Job, JobResult, cluster_for
from repro.mpi.status import ANY_SOURCE, ANY_TAG
from repro.network.topology import Cluster
from repro.trace.determinism import check_send_determinism

__version__ = "1.0.0"

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Cluster",
    "CrashSchedule",
    "Job",
    "JobResult",
    "RecoveryManager",
    "ReplicationConfig",
    "check_send_determinism",
    "cluster_for",
    "__version__",
]
