"""Collective operations built strictly on PML point-to-point calls.

This mirrors the paper's assumption ("collective operations are implemented
on top of the point-to-point functions", §2.2, valid for Open MPI/MPICH2
without hardware collectives) — which is exactly why SDR-MPI supports all
collectives with zero extra code: every constituent p2p message flows
through the interposed protocol layer and is replicated/acked like any
application message.
"""

from repro.mpi.collectives.algorithms import (
    allgather,
    allreduce,
    alltoall,
    barrier,
    bcast,
    gather,
    reduce,
    reduce_scatter_block,
    scan,
    scatter,
)

__all__ = [
    "allgather",
    "allreduce",
    "alltoall",
    "barrier",
    "bcast",
    "gather",
    "reduce",
    "reduce_scatter_block",
    "scan",
    "scatter",
]
