"""Collective algorithms.

Standard production algorithms (the ones ob1-based Open MPI picks for
mid-size messages), all expressed over the protocol-interposed p2p layer:

* barrier            — dissemination (Hensgen et al.), ⌈log₂ n⌉ rounds
* bcast              — binomial tree
* reduce             — binomial tree with per-link combine
* allreduce          — recursive doubling (power-of-two), else reduce+bcast
* gather / scatter   — linear (root-rooted), fine at simulated scales
* allgather          — ring, n-1 rounds
* alltoall           — pairwise exchange (XOR schedule when n is 2^k)
* reduce_scatter     — reduce + scatter (block variant)
* scan               — linear chain (inclusive)

Every routine is a generator; ``tag`` space is per-collective-invocation
(derived from the communicator's collective sequence number) with the round
number folded in, so concurrent rounds never cross-match.

Determinism note: combine order is fixed by the tree/ring structure, never
by arrival order — reductions are bitwise reproducible, a precondition for
using these inside send-deterministic applications.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.mpi.datatypes import Phantom, combine, nbytes_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.api import MpiProcess
    from repro.mpi.comm import Communicator

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "reduce_scatter_block",
    "scan",
]

#: rounds per collective are encoded into the tag; 4096 rounds is plenty
_ROUND_SPAN = 4096
#: tiny payload used by synchronization-only messages
_TOKEN = b"\x00"


def _base_tag(comm: "Communicator") -> int:
    return comm.next_coll_tag() * _ROUND_SPAN


def _send(api: "MpiProcess", comm: "Communicator", peer: int, tag: int, data: Any) -> Generator:
    req = yield from api.isend_on(comm, comm.ctx_coll, peer, tag, data)
    return req


def _recv(api: "MpiProcess", comm: "Communicator", peer: int, tag: int) -> Generator:
    req = yield from api.irecv_on(comm, comm.ctx_coll, peer, tag)
    return req


def _sendrecv(api, comm, send_peer, recv_peer, tag, data) -> Generator:
    """Post both sides, then progress both to completion (deadlock-free)."""
    rreq = yield from _recv(api, comm, recv_peer, tag)
    sreq = yield from _send(api, comm, send_peer, tag, data)
    yield from api.wait_handles([sreq, rreq])
    return rreq.data


# --------------------------------------------------------------------- sync
def barrier(api: "MpiProcess", comm: "Communicator") -> Generator:
    """Dissemination barrier: round k talks to rank ± 2^k."""
    n = comm.size
    if n == 1:
        return
    me = comm.rank
    tag0 = _base_tag(comm)
    k = 0
    dist = 1
    while dist < n:
        to = (me + dist) % n
        frm = (me - dist) % n
        yield from _sendrecv(api, comm, to, frm, tag0 + k, _TOKEN)
        dist <<= 1
        k += 1


# --------------------------------------------------------------- tree moves
def bcast(api: "MpiProcess", comm: "Communicator", data: Any, root: int) -> Generator:
    """Binomial-tree broadcast; returns the payload on every rank."""
    n = comm.size
    if n == 1:
        return data
    me = (comm.rank - root) % n  # virtual rank: root becomes 0
    tag0 = _base_tag(comm)
    # Receive phase: my parent clears my lowest set bit.
    if me != 0:
        mask = me & (-me)
        parent = (me - mask + root) % n
        req = yield from _recv(api, comm, parent, tag0)
        yield from api.wait_handles([req])
        data = req.data
        mask >>= 1
    else:
        mask = 1 << ((n - 1).bit_length() - 1)
    # Send phase: forward to children below my lowest set bit.
    while mask >= 1:
        child = me + mask
        if child < n:
            peer = (child + root) % n
            req = yield from _send(api, comm, peer, tag0, data)
            yield from api.wait_handles([req])
        mask >>= 1
    return data


def reduce(api: "MpiProcess", comm: "Communicator", data: Any, op: str, root: int) -> Generator:
    """Binomial-tree reduction; result only meaningful at *root*."""
    n = comm.size
    if n == 1:
        return data
    me = (comm.rank - root) % n
    tag0 = _base_tag(comm)
    acc = data
    mask = 1
    while mask < n:
        if me & mask:
            parent = ((me & ~mask) + root) % n
            req = yield from _send(api, comm, parent, tag0, acc)
            yield from api.wait_handles([req])
            break
        child = me | mask
        if child < n:
            peer = (child + root) % n
            req = yield from _recv(api, comm, peer, tag0)
            yield from api.wait_handles([req])
            acc = combine(op, acc, req.data)
        mask <<= 1
    return acc if comm.rank == root else None


def allreduce(api: "MpiProcess", comm: "Communicator", data: Any, op: str) -> Generator:
    """Recursive doubling for power-of-two sizes, reduce+bcast otherwise."""
    n = comm.size
    if n == 1:
        return data
    if n & (n - 1):  # not a power of two
        acc = yield from reduce(api, comm, data, op, root=0)
        acc = yield from bcast(api, comm, acc, root=0)
        return acc
    me = comm.rank
    tag0 = _base_tag(comm)
    acc = data
    mask = 1
    k = 0
    while mask < n:
        peer = me ^ mask
        other = yield from _sendrecv(api, comm, peer, peer, tag0 + k, acc)
        # Fixed combine order (lower rank's contribution first) so every
        # rank computes bitwise-identical results.
        acc = combine(op, acc, other) if peer > me else combine(op, other, acc)
        mask <<= 1
        k += 1
    return acc


# ------------------------------------------------------------ data movement
def gather(api: "MpiProcess", comm: "Communicator", data: Any, root: int) -> Generator:
    """Linear gather; returns the rank-ordered list at root, None elsewhere."""
    n = comm.size
    tag0 = _base_tag(comm)
    if comm.rank == root:
        out: List[Any] = [None] * n
        out[root] = data
        reqs = []
        for r in range(n):
            if r == root:
                continue
            req = yield from _recv(api, comm, r, tag0)
            reqs.append((r, req))
        yield from api.wait_handles([req for _r, req in reqs])
        for r, req in reqs:
            out[r] = req.data
        return out
    req = yield from _send(api, comm, root, tag0, data)
    yield from api.wait_handles([req])
    return None


def scatter(api: "MpiProcess", comm: "Communicator", chunks: Optional[List[Any]], root: int) -> Generator:
    """Linear scatter of a rank-indexed list from root."""
    n = comm.size
    tag0 = _base_tag(comm)
    if comm.rank == root:
        if chunks is None or len(chunks) != n:
            raise ValueError(f"scatter at root requires a list of {n} chunks")
        reqs = []
        for r in range(n):
            if r == root:
                continue
            req = yield from _send(api, comm, r, tag0, chunks[r])
            reqs.append(req)
        yield from api.wait_handles(reqs)
        return chunks[root]
    req = yield from _recv(api, comm, root, tag0)
    yield from api.wait_handles([req])
    return req.data


def allgather(api: "MpiProcess", comm: "Communicator", data: Any) -> Generator:
    """Ring allgather: n-1 rounds, each forwarding the next slice."""
    n = comm.size
    me = comm.rank
    out: List[Any] = [None] * n
    out[me] = data
    if n == 1:
        return out
    tag0 = _base_tag(comm)
    right = (me + 1) % n
    left = (me - 1) % n
    carry = data
    for k in range(n - 1):
        carry = yield from _sendrecv(api, comm, right, left, tag0 + k, carry)
        out[(me - 1 - k) % n] = carry
    return out


def alltoall(api: "MpiProcess", comm: "Communicator", chunks: List[Any]) -> Generator:
    """Pairwise-exchange alltoall (XOR schedule for power-of-two sizes)."""
    n = comm.size
    me = comm.rank
    if chunks is None or len(chunks) != n:
        raise ValueError(f"alltoall requires a list of {n} chunks")
    out: List[Any] = [None] * n
    out[me] = chunks[me]
    tag0 = _base_tag(comm)
    pow2 = n & (n - 1) == 0
    for k in range(1, n):
        if pow2:
            peer = me ^ k
            send_peer = recv_peer = peer
        else:
            send_peer = (me + k) % n
            recv_peer = (me - k) % n
        got = yield from _sendrecv(api, comm, send_peer, recv_peer, tag0 + k, chunks[send_peer])
        out[recv_peer] = got
    return out


def reduce_scatter_block(api: "MpiProcess", comm: "Communicator", chunks: List[Any], op: str) -> Generator:
    """Block reduce-scatter: elementwise reduce of rank-indexed chunk lists,
    each rank keeping its own chunk.  Implemented as reduce + scatter."""
    n = comm.size
    if chunks is None or len(chunks) != n:
        raise ValueError(f"reduce_scatter requires a list of {n} chunks")
    # combine() is elementwise over lists, so a plain tree reduce of the
    # chunk lists followed by a scatter implements the block variant.
    reduced = yield from reduce(api, comm, list(chunks), op=op, root=0)
    return (yield from scatter(api, comm, reduced, root=0))


def scan(api: "MpiProcess", comm: "Communicator", data: Any, op: str) -> Generator:
    """Inclusive prefix scan along the rank order (linear chain)."""
    me = comm.rank
    n = comm.size
    tag0 = _base_tag(comm)
    acc = data
    if me > 0:
        req = yield from _recv(api, comm, me - 1, tag0)
        yield from api.wait_handles([req])
        acc = combine(op, req.data, acc)
    if me < n - 1:
        req = yield from _send(api, comm, me + 1, tag0, acc)
        yield from api.wait_handles([req])
    return acc
