"""Collective algorithms.

Standard production algorithms (the ones ob1-based Open MPI picks for
mid-size messages), all expressed over the protocol-interposed p2p layer:

* barrier            — dissemination (Hensgen et al.), ⌈log₂ n⌉ rounds
* bcast              — binomial tree
* reduce             — binomial tree with per-link combine
* allreduce          — recursive doubling (power-of-two), else reduce+bcast
* gather / scatter   — linear (root-rooted), fine at simulated scales
* allgather          — ring, n-1 rounds
* alltoall           — pairwise exchange (XOR schedule when n is 2^k)
* reduce_scatter     — reduce + scatter (block variant)
* scan               — linear chain (inclusive)

Every routine is a generator; ``tag`` space is per-collective-invocation
(derived from the communicator's collective sequence number) with the round
number folded in, so concurrent rounds never cross-match.

Determinism note: combine order is fixed by the tree/ring structure, never
by arrival order — reductions are bitwise reproducible, a precondition for
using these inside send-deterministic applications.

Two implementations per collective
----------------------------------
The public names (``bcast``, ``reduce``, ...) are *flattened* fast paths:
the posting preamble (recorder + ``protocol.app_isend``/``app_irecv``) and
the blocking wait loops are inlined into the collective body, exactly the
way :meth:`repro.mpi.api.MpiProcess.send`/``recv`` inline them for blocking
point-to-point.  The seed shape — each tree step delegating through
``_send``/``_recv`` → ``isend_on``/``irecv_on`` → ``wait_handles`` — costs
3–4 generator frames per resumed event, and a collective at rank count *n*
resumes O(n log n) times; the flat versions cut that to 1–2 frames.

The original generator towers survive as the ``*_spec`` functions: the
executable specification.  ``tests/test_collectives_equivalence.py`` proves
— per collective, across ranks, roots, ops and protocols — that both
implementations produce identical results *and* identical engine behaviour
(virtual times, event counts, frame counts).  Modify a schedule in one and
the equivalence suite (plus the golden fingerprints in
``tests/test_determinism_regression.py``) will catch the other.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.mpi.datatypes import combine, nbytes_of
from repro.mpi.handles import RecvHandle, SendHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.api import MpiProcess
    from repro.mpi.comm import Communicator

__all__ = [
    "barrier",
    "bcast",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "alltoall",
    "reduce_scatter_block",
    "scan",
    "barrier_spec",
    "bcast_spec",
    "reduce_spec",
    "allreduce_spec",
    "gather_spec",
    "scatter_spec",
    "allgather_spec",
    "alltoall_spec",
    "reduce_scatter_block_spec",
    "scan_spec",
]

#: rounds per collective are encoded into the tag; 4096 rounds is plenty
_ROUND_SPAN = 4096
#: tiny payload used by synchronization-only messages
_TOKEN = b"\x00"


def _base_tag(comm: "Communicator") -> int:
    return comm.next_coll_tag() * _ROUND_SPAN


# ---------------------------------------------------------------------------
# Flat plumbing: fused post + wait primitives.
#
# Each helper is ONE generator frame wrapping the protocol entry points
# directly; the wait loops replicate the blocking fast paths of
# repro.mpi.api (same completion predicates, same pop-one-frame-or-block
# progress step), so the dispatched event stream is identical to the spec
# path's ``wait_handles`` — only host-side frame traversals are saved.
# ---------------------------------------------------------------------------
def _send_done(shandle) -> bool:
    """Stock SendHandle completion predicate, inlined (see api.send)."""
    if shandle.needs_ack:
        return False
    reqs = shandle.pml_reqs
    if len(reqs) == 1:
        return reqs[0].done
    return all(r.done for r in reqs)


def _sendrecv(api: "MpiProcess", comm: "Communicator", send_peer: int,
              recv_peer: int, tag: int, data: Any) -> Generator:
    """Flat sendrecv: post both sides, drive both to completion inline.

    Observationally identical to ``_sendrecv_spec`` (post recv, post send,
    ``wait_handles([sreq, rreq])``) — posting order, recorder calls and the
    progress step are the same; only the delegation tower is gone.
    """
    ctx = comm.ctx_coll
    protocol = api.protocol
    rhandle = yield from protocol.app_irecv(ctx=ctx, source=recv_peer, tag=tag, buf=None)
    world_dst = comm.world_of(send_peer)
    if api.recorder is not None:
        api.recorder.record_send(ctx, comm.rank, send_peer, world_dst, tag, nbytes_of(data))
    shandle = yield from protocol.app_isend(
        ctx=ctx, src_rank=comm.rank, tag=tag, data=data, world_dst=world_dst, synchronous=False
    )
    pml = api.pml
    ep = pml.endpoint
    s_fast = type(shandle).done is SendHandle.done
    s_adv = getattr(shandle, "needs_advance", True)
    r_stock = type(rhandle) is RecvHandle
    r_req = rhandle.pml_req if r_stock else None
    while True:
        if s_adv:
            gen = shandle.advance()
            if gen is not None:
                yield from gen
        if not r_stock:
            gen = rhandle.advance()
            if gen is not None:
                yield from gen
        # _send_done inlined: one call per progress iteration of every
        # collective exchange is measurable at paper scale.
        if s_fast:
            if shandle.needs_ack:
                s_done = False
            else:
                reqs = shandle.pml_reqs
                s_done = reqs[0].done if len(reqs) == 1 else all(r.done for r in reqs)
        else:
            s_done = shandle.done
        if s_done and (r_req.done if r_stock else rhandle.done):
            return r_req.data if r_stock else rhandle.data
        if ep.inbox:
            yield from pml.handle_frame(ep.inbox.popleft())
        else:
            yield ep  # block on the endpoint (allocation-free waiter)


def _post_send(api: "MpiProcess", comm: "Communicator", peer: int, tag: int, data: Any) -> Generator:
    """Flat posting preamble of ``isend_on`` on the collective context."""
    world_dst = comm.world_of(peer)
    if api.recorder is not None:
        api.recorder.record_send(comm.ctx_coll, comm.rank, peer, world_dst, tag, nbytes_of(data))
    handle = yield from api.protocol.app_isend(
        ctx=comm.ctx_coll, src_rank=comm.rank, tag=tag, data=data, world_dst=world_dst, synchronous=False
    )
    return handle


def _send_wait(api: "MpiProcess", comm: "Communicator", peer: int, tag: int, data: Any) -> Generator:
    """Fused blocking send on the collective context (one frame)."""
    handle = yield from _post_send(api, comm, peer, tag, data)
    pml = api.pml
    ep = pml.endpoint
    fast = type(handle).done is SendHandle.done
    adv = getattr(handle, "needs_advance", True)
    while True:
        if adv:
            gen = handle.advance()
            if gen is not None:
                yield from gen
        if _send_done(handle) if fast else handle.done:
            return
        if ep.inbox:
            yield from pml.handle_frame(ep.inbox.popleft())
        else:
            yield ep  # block on the endpoint (allocation-free waiter)


def _recv_wait(api: "MpiProcess", comm: "Communicator", peer: int, tag: int) -> Generator:
    """Fused blocking receive on the collective context (one frame)."""
    handle = yield from api.protocol.app_irecv(
        ctx=comm.ctx_coll, source=peer, tag=tag, buf=None
    )
    pml = api.pml
    ep = pml.endpoint
    if type(handle) is RecvHandle:
        req = handle.pml_req
        while True:
            if req.done:
                return req.data
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)
    while True:
        gen = handle.advance()
        if gen is not None:
            yield from gen
        if handle.done:
            return handle.data
        if ep.inbox:
            yield from pml.handle_frame(ep.inbox.popleft())
        else:
            yield ep


def _wait_all(api: "MpiProcess", handles: List[Any]) -> Generator:
    """Flat MPI_Waitall core (mirrors api.wait_handles, sans status list)."""
    pml = api.pml
    ep = pml.endpoint
    while True:
        for h in handles:
            gen = h.advance()
            if gen is not None:
                yield from gen
        for h in handles:
            if not h.done:
                break
        else:
            return
        if ep.inbox:
            yield from pml.handle_frame(ep.inbox.popleft())
        else:
            yield ep  # block on the endpoint (allocation-free waiter)


# --------------------------------------------------------------------- sync
def barrier(api: "MpiProcess", comm: "Communicator") -> Generator:
    """Dissemination barrier: round k talks to rank ± 2^k."""
    n = comm.size
    if n == 1:
        return
    me = comm.rank
    tag0 = _base_tag(comm)
    k = 0
    dist = 1
    while dist < n:
        to = (me + dist) % n
        frm = (me - dist) % n
        yield from _sendrecv(api, comm, to, frm, tag0 + k, _TOKEN)
        dist <<= 1
        k += 1


# --------------------------------------------------------------- tree moves
def bcast(api: "MpiProcess", comm: "Communicator", data: Any, root: int) -> Generator:
    """Binomial-tree broadcast; returns the payload on every rank."""
    n = comm.size
    if n == 1:
        return data
    me = (comm.rank - root) % n  # virtual rank: root becomes 0
    tag0 = _base_tag(comm)
    # Receive phase: my parent clears my lowest set bit.
    if me != 0:
        mask = me & (-me)
        parent = (me - mask + root) % n
        data = yield from _recv_wait(api, comm, parent, tag0)
        mask >>= 1
    else:
        mask = 1 << ((n - 1).bit_length() - 1)
    # Send phase: forward to children below my lowest set bit.
    while mask >= 1:
        child = me + mask
        if child < n:
            yield from _send_wait(api, comm, (child + root) % n, tag0, data)
        mask >>= 1
    return data


def reduce(api: "MpiProcess", comm: "Communicator", data: Any, op: str, root: int) -> Generator:
    """Binomial-tree reduction; result only meaningful at *root*."""
    n = comm.size
    if n == 1:
        return data
    me = (comm.rank - root) % n
    tag0 = _base_tag(comm)
    acc = data
    mask = 1
    while mask < n:
        if me & mask:
            parent = ((me & ~mask) + root) % n
            yield from _send_wait(api, comm, parent, tag0, acc)
            break
        child = me | mask
        if child < n:
            got = yield from _recv_wait(api, comm, (child + root) % n, tag0)
            acc = combine(op, acc, got)
        mask <<= 1
    return acc if comm.rank == root else None


def allreduce(api: "MpiProcess", comm: "Communicator", data: Any, op: str) -> Generator:
    """Recursive doubling for power-of-two sizes, reduce+bcast otherwise."""
    n = comm.size
    if n == 1:
        return data
    if n & (n - 1):  # not a power of two
        acc = yield from reduce(api, comm, data, op, root=0)
        acc = yield from bcast(api, comm, acc, root=0)
        return acc
    me = comm.rank
    tag0 = _base_tag(comm)
    acc = data
    mask = 1
    k = 0
    while mask < n:
        peer = me ^ mask
        other = yield from _sendrecv(api, comm, peer, peer, tag0 + k, acc)
        # Fixed combine order (lower rank's contribution first) so every
        # rank computes bitwise-identical results.
        acc = combine(op, acc, other) if peer > me else combine(op, other, acc)
        mask <<= 1
        k += 1
    return acc


# ------------------------------------------------------------ data movement
def gather(api: "MpiProcess", comm: "Communicator", data: Any, root: int) -> Generator:
    """Linear gather; returns the rank-ordered list at root, None elsewhere."""
    n = comm.size
    tag0 = _base_tag(comm)
    if comm.rank == root:
        out: List[Any] = [None] * n
        out[root] = data
        protocol = api.protocol
        ctx = comm.ctx_coll
        handles = []
        for r in range(n):
            if r == root:
                continue
            handle = yield from protocol.app_irecv(ctx=ctx, source=r, tag=tag0, buf=None)
            handles.append((r, handle))
        yield from _wait_all(api, [h for _r, h in handles])
        for r, handle in handles:
            out[r] = handle.data
        return out
    yield from _send_wait(api, comm, root, tag0, data)
    return None


def scatter(api: "MpiProcess", comm: "Communicator", chunks: Optional[List[Any]], root: int) -> Generator:
    """Linear scatter of a rank-indexed list from root."""
    n = comm.size
    tag0 = _base_tag(comm)
    if comm.rank == root:
        if chunks is None or len(chunks) != n:
            raise ValueError(f"scatter at root requires a list of {n} chunks")
        handles = []
        for r in range(n):
            if r == root:
                continue
            handle = yield from _post_send(api, comm, r, tag0, chunks[r])
            handles.append(handle)
        yield from _wait_all(api, handles)
        return chunks[root]
    return (yield from _recv_wait(api, comm, root, tag0))


def allgather(api: "MpiProcess", comm: "Communicator", data: Any) -> Generator:
    """Ring allgather: n-1 rounds, each forwarding the next slice."""
    n = comm.size
    me = comm.rank
    out: List[Any] = [None] * n
    out[me] = data
    if n == 1:
        return out
    tag0 = _base_tag(comm)
    right = (me + 1) % n
    left = (me - 1) % n
    carry = data
    for k in range(n - 1):
        carry = yield from _sendrecv(api, comm, right, left, tag0 + k, carry)
        out[(me - 1 - k) % n] = carry
    return out


def alltoall(api: "MpiProcess", comm: "Communicator", chunks: List[Any]) -> Generator:
    """Pairwise-exchange alltoall (XOR schedule for power-of-two sizes)."""
    n = comm.size
    me = comm.rank
    if chunks is None or len(chunks) != n:
        raise ValueError(f"alltoall requires a list of {n} chunks")
    out: List[Any] = [None] * n
    out[me] = chunks[me]
    tag0 = _base_tag(comm)
    pow2 = n & (n - 1) == 0
    for k in range(1, n):
        if pow2:
            peer = me ^ k
            send_peer = recv_peer = peer
        else:
            send_peer = (me + k) % n
            recv_peer = (me - k) % n
        got = yield from _sendrecv(api, comm, send_peer, recv_peer, tag0 + k, chunks[send_peer])
        out[recv_peer] = got
    return out


def reduce_scatter_block(api: "MpiProcess", comm: "Communicator", chunks: List[Any], op: str) -> Generator:
    """Block reduce-scatter: elementwise reduce of rank-indexed chunk lists,
    each rank keeping its own chunk.  Implemented as reduce + scatter."""
    n = comm.size
    if chunks is None or len(chunks) != n:
        raise ValueError(f"reduce_scatter requires a list of {n} chunks")
    # combine() is elementwise over lists, so a plain tree reduce of the
    # chunk lists followed by a scatter implements the block variant.
    reduced = yield from reduce(api, comm, list(chunks), op=op, root=0)
    return (yield from scatter(api, comm, reduced, root=0))


def scan(api: "MpiProcess", comm: "Communicator", data: Any, op: str) -> Generator:
    """Inclusive prefix scan along the rank order (linear chain)."""
    me = comm.rank
    n = comm.size
    tag0 = _base_tag(comm)
    acc = data
    if me > 0:
        got = yield from _recv_wait(api, comm, me - 1, tag0)
        acc = combine(op, got, acc)
    if me < n - 1:
        yield from _send_wait(api, comm, me + 1, tag0, acc)
    return acc


# ---------------------------------------------------------------------------
# Executable specification: the seed-shaped generator towers.
#
# Each *_spec function delegates through the nonblocking API exactly the
# way the seed engine's collectives did.  They are kept runnable — the
# equivalence suite executes them in real jobs — and are the reference any
# schedule change must be made against first.
# ---------------------------------------------------------------------------
def _send(api: "MpiProcess", comm: "Communicator", peer: int, tag: int, data: Any) -> Generator:
    req = yield from api.isend_on(comm, comm.ctx_coll, peer, tag, data)
    return req


def _recv(api: "MpiProcess", comm: "Communicator", peer: int, tag: int) -> Generator:
    req = yield from api.irecv_on(comm, comm.ctx_coll, peer, tag)
    return req


def _sendrecv_spec(api, comm, send_peer, recv_peer, tag, data) -> Generator:
    """Post both sides, then progress both to completion (deadlock-free)."""
    rreq = yield from _recv(api, comm, recv_peer, tag)
    sreq = yield from _send(api, comm, send_peer, tag, data)
    yield from api.wait_handles([sreq, rreq])
    return rreq.data


def barrier_spec(api: "MpiProcess", comm: "Communicator") -> Generator:
    """Dissemination barrier: round k talks to rank ± 2^k."""
    n = comm.size
    if n == 1:
        return
    me = comm.rank
    tag0 = _base_tag(comm)
    k = 0
    dist = 1
    while dist < n:
        to = (me + dist) % n
        frm = (me - dist) % n
        yield from _sendrecv_spec(api, comm, to, frm, tag0 + k, _TOKEN)
        dist <<= 1
        k += 1


def bcast_spec(api: "MpiProcess", comm: "Communicator", data: Any, root: int) -> Generator:
    """Binomial-tree broadcast; returns the payload on every rank."""
    n = comm.size
    if n == 1:
        return data
    me = (comm.rank - root) % n  # virtual rank: root becomes 0
    tag0 = _base_tag(comm)
    # Receive phase: my parent clears my lowest set bit.
    if me != 0:
        mask = me & (-me)
        parent = (me - mask + root) % n
        req = yield from _recv(api, comm, parent, tag0)
        yield from api.wait_handles([req])
        data = req.data
        mask >>= 1
    else:
        mask = 1 << ((n - 1).bit_length() - 1)
    # Send phase: forward to children below my lowest set bit.
    while mask >= 1:
        child = me + mask
        if child < n:
            peer = (child + root) % n
            req = yield from _send(api, comm, peer, tag0, data)
            yield from api.wait_handles([req])
        mask >>= 1
    return data


def reduce_spec(api: "MpiProcess", comm: "Communicator", data: Any, op: str, root: int) -> Generator:
    """Binomial-tree reduction; result only meaningful at *root*."""
    n = comm.size
    if n == 1:
        return data
    me = (comm.rank - root) % n
    tag0 = _base_tag(comm)
    acc = data
    mask = 1
    while mask < n:
        if me & mask:
            parent = ((me & ~mask) + root) % n
            req = yield from _send(api, comm, parent, tag0, acc)
            yield from api.wait_handles([req])
            break
        child = me | mask
        if child < n:
            peer = (child + root) % n
            req = yield from _recv(api, comm, peer, tag0)
            yield from api.wait_handles([req])
            acc = combine(op, acc, req.data)
        mask <<= 1
    return acc if comm.rank == root else None


def allreduce_spec(api: "MpiProcess", comm: "Communicator", data: Any, op: str) -> Generator:
    """Recursive doubling for power-of-two sizes, reduce+bcast otherwise."""
    n = comm.size
    if n == 1:
        return data
    if n & (n - 1):  # not a power of two
        acc = yield from reduce_spec(api, comm, data, op, root=0)
        acc = yield from bcast_spec(api, comm, acc, root=0)
        return acc
    me = comm.rank
    tag0 = _base_tag(comm)
    acc = data
    mask = 1
    k = 0
    while mask < n:
        peer = me ^ mask
        other = yield from _sendrecv_spec(api, comm, peer, peer, tag0 + k, acc)
        # Fixed combine order (lower rank's contribution first) so every
        # rank computes bitwise-identical results.
        acc = combine(op, acc, other) if peer > me else combine(op, other, acc)
        mask <<= 1
        k += 1
    return acc


def gather_spec(api: "MpiProcess", comm: "Communicator", data: Any, root: int) -> Generator:
    """Linear gather; returns the rank-ordered list at root, None elsewhere."""
    n = comm.size
    tag0 = _base_tag(comm)
    if comm.rank == root:
        out: List[Any] = [None] * n
        out[root] = data
        reqs = []
        for r in range(n):
            if r == root:
                continue
            req = yield from _recv(api, comm, r, tag0)
            reqs.append((r, req))
        yield from api.wait_handles([req for _r, req in reqs])
        for r, req in reqs:
            out[r] = req.data
        return out
    req = yield from _send(api, comm, root, tag0, data)
    yield from api.wait_handles([req])
    return None


def scatter_spec(
    api: "MpiProcess", comm: "Communicator", chunks: Optional[List[Any]], root: int
) -> Generator:
    """Linear scatter of a rank-indexed list from root."""
    n = comm.size
    tag0 = _base_tag(comm)
    if comm.rank == root:
        if chunks is None or len(chunks) != n:
            raise ValueError(f"scatter at root requires a list of {n} chunks")
        reqs = []
        for r in range(n):
            if r == root:
                continue
            req = yield from _send(api, comm, r, tag0, chunks[r])
            reqs.append(req)
        yield from api.wait_handles(reqs)
        return chunks[root]
    req = yield from _recv(api, comm, root, tag0)
    yield from api.wait_handles([req])
    return req.data


def allgather_spec(api: "MpiProcess", comm: "Communicator", data: Any) -> Generator:
    """Ring allgather: n-1 rounds, each forwarding the next slice."""
    n = comm.size
    me = comm.rank
    out: List[Any] = [None] * n
    out[me] = data
    if n == 1:
        return out
    tag0 = _base_tag(comm)
    right = (me + 1) % n
    left = (me - 1) % n
    carry = data
    for k in range(n - 1):
        carry = yield from _sendrecv_spec(api, comm, right, left, tag0 + k, carry)
        out[(me - 1 - k) % n] = carry
    return out


def alltoall_spec(api: "MpiProcess", comm: "Communicator", chunks: List[Any]) -> Generator:
    """Pairwise-exchange alltoall (XOR schedule for power-of-two sizes)."""
    n = comm.size
    me = comm.rank
    if chunks is None or len(chunks) != n:
        raise ValueError(f"alltoall requires a list of {n} chunks")
    out: List[Any] = [None] * n
    out[me] = chunks[me]
    tag0 = _base_tag(comm)
    pow2 = n & (n - 1) == 0
    for k in range(1, n):
        if pow2:
            peer = me ^ k
            send_peer = recv_peer = peer
        else:
            send_peer = (me + k) % n
            recv_peer = (me - k) % n
        got = yield from _sendrecv_spec(api, comm, send_peer, recv_peer, tag0 + k, chunks[send_peer])
        out[recv_peer] = got
    return out


def reduce_scatter_block_spec(
    api: "MpiProcess", comm: "Communicator", chunks: List[Any], op: str
) -> Generator:
    """Block reduce-scatter: elementwise reduce of rank-indexed chunk lists,
    each rank keeping its own chunk.  Implemented as reduce + scatter."""
    n = comm.size
    if chunks is None or len(chunks) != n:
        raise ValueError(f"reduce_scatter requires a list of {n} chunks")
    # combine() is elementwise over lists, so a plain tree reduce of the
    # chunk lists followed by a scatter implements the block variant.
    reduced = yield from reduce_spec(api, comm, list(chunks), op=op, root=0)
    return (yield from scatter_spec(api, comm, reduced, root=0))


def scan_spec(api: "MpiProcess", comm: "Communicator", data: Any, op: str) -> Generator:
    """Inclusive prefix scan along the rank order (linear chain)."""
    me = comm.rank
    n = comm.size
    tag0 = _base_tag(comm)
    acc = data
    if me > 0:
        req = yield from _recv(api, comm, me - 1, tag0)
        yield from api.wait_handles([req])
        acc = combine(op, req.data, acc)
    if me < n - 1:
        req = yield from _send(api, comm, me + 1, tag0, acc)
        yield from api.wait_handles([req])
    return acc
