"""MPI-level exception types."""

from __future__ import annotations

__all__ = ["MpiError", "TruncationError", "RankError", "DeadlockError"]


class MpiError(RuntimeError):
    """Base class for errors raised by the simulated MPI library."""


class TruncationError(MpiError):
    """A received message is larger than the posted receive buffer."""


class RankError(MpiError):
    """A rank argument is outside the communicator."""


class DeadlockError(MpiError):
    """The simulation ran out of events while processes were still blocked.

    Carries a per-process description of what each blocked process was
    waiting for, which makes the §3.3 deadlock scenario test legible.
    """

    def __init__(self, blocked: dict) -> None:
        lines = "\n".join(f"  {name}: {what}" for name, what in sorted(blocked.items()))
        super().__init__(f"deadlock: all events drained with processes blocked:\n{lines}")
        self.blocked = blocked
