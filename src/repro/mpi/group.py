"""MPI group operations.

A group is an ordered set of *world-logical* ranks.  All set operations
follow the MPI standard's ordering rules: ``union`` keeps the first group's
order then appends new members in the second group's order; ``intersection``
and ``difference`` keep the first group's order.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.mpi.errors import RankError

__all__ = ["Group", "UNDEFINED"]

#: MPI_UNDEFINED analogue for translate_ranks misses
UNDEFINED: int = -32766


class Group:
    """An immutable ordered set of world ranks."""

    __slots__ = ("members",)

    def __init__(self, members: Iterable[int]) -> None:
        mem = tuple(int(m) for m in members)
        if len(set(mem)) != len(mem):
            raise RankError(f"group has duplicate members: {mem}")
        self.members = mem

    # ------------------------------------------------------------- queries
    @property
    def size(self) -> int:
        return len(self.members)

    def rank_of(self, world_rank: int) -> Optional[int]:
        """This group's rank of a world rank, or None if absent."""
        try:
            return self.members.index(world_rank)
        except ValueError:
            return None

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self.members

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and other.members == self.members

    def __hash__(self) -> int:
        return hash(self.members)

    def __repr__(self) -> str:
        return f"Group{self.members}"

    # -------------------------------------------------------- constructions
    def incl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup of the given group-ranks, in the given order."""
        for r in ranks:
            if not (0 <= r < self.size):
                raise RankError(f"incl rank {r} outside group of size {self.size}")
        return Group(self.members[r] for r in ranks)

    def excl(self, ranks: Sequence[int]) -> "Group":
        """Subgroup without the given group-ranks, preserving order."""
        bad = set(ranks)
        for r in bad:
            if not (0 <= r < self.size):
                raise RankError(f"excl rank {r} outside group of size {self.size}")
        return Group(m for i, m in enumerate(self.members) if i not in bad)

    def range_incl(self, triplets: Sequence[Tuple[int, int, int]]) -> "Group":
        """MPI_Group_range_incl: triplets of (first, last, stride)."""
        ranks: List[int] = []
        for first, last, stride in triplets:
            if stride == 0:
                raise RankError("range stride cannot be zero")
            ranks.extend(range(first, last + (1 if stride > 0 else -1), stride))
        return self.incl(ranks)

    def union(self, other: "Group") -> "Group":
        seen = set(self.members)
        return Group(self.members + tuple(m for m in other.members if m not in seen))

    def intersection(self, other: "Group") -> "Group":
        keep = set(other.members)
        return Group(m for m in self.members if m in keep)

    def difference(self, other: "Group") -> "Group":
        drop = set(other.members)
        return Group(m for m in self.members if m not in drop)

    # ---------------------------------------------------------- translation
    def translate_ranks(self, ranks: Sequence[int], other: "Group") -> List[int]:
        """Map this group's ranks into *other*'s ranks (UNDEFINED if absent)."""
        out: List[int] = []
        for r in ranks:
            if not (0 <= r < self.size):
                raise RankError(f"translate rank {r} outside group of size {self.size}")
            o = other.rank_of(self.members[r])
            out.append(UNDEFINED if o is None else o)
        return out
