"""The user-facing MPI binding (the "OMPI layer").

Applications receive an :class:`MpiProcess` facade and write ordinary MPI
programs as generators::

    def app(mpi):
        if mpi.rank == 0:
            yield from mpi.send(payload, dest=1, tag=7)
        elif mpi.rank == 1:
            data, st = yield from mpi.recv(source=mpi.ANY_SOURCE, tag=7)
        x = yield from mpi.allreduce(local, op="sum")
        yield from mpi.compute(0.5e-3)   # model 0.5 ms of local work

Every communication call is forwarded through the installed *protocol*
(:mod:`repro.core.interpose`): native passthrough, SDR-MPI, or one of the
baselines.  The facade itself is protocol-agnostic — this is the paper's
"implement replication inside the library" layering (Fig. 5).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.mpi.handles import RecvHandle, SendHandle
from repro.mpi.collectives import algorithms as coll
from repro.mpi.comm import Communicator
from repro.mpi.datatypes import nbytes_of
from repro.mpi.errors import MpiError
from repro.mpi.pml import Pml
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.sim.kernel import Simulator
from repro.sim.sync import Timeout  # noqa: F401 - re-exported for API users

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.interpose import BaseProtocol

__all__ = ["MpiProcess"]


class MpiProcess:
    """Per-physical-process MPI facade bound to a protocol and a world.

    A ``__slots__`` class: jobs build one per physical process, so the
    per-instance ``__dict__`` is pure footprint at scale.  ``world_shared``
    is the flyweight hand-off — the job builds one
    :func:`repro.mpi.comm.shared_world` pair and every process's world
    communicator references it instead of materializing its own
    O(world_size) member tuple and rank map (the seed engine's dominant
    construction cost at 4096+ ranks).
    """

    __slots__ = (
        "sim",
        "pml",
        "protocol",
        "world_rank",
        "world_size",
        "world",
        "recorder",
        "app_state",
        "compute_time",
        "noise",
        "io",
    )

    ANY_SOURCE = ANY_SOURCE
    ANY_TAG = ANY_TAG

    def __init__(
        self,
        sim: Simulator,
        pml: Pml,
        protocol: "BaseProtocol",
        world_rank: int,
        world_size: int,
        world_shared: Optional[Tuple[Tuple[int, ...], Any]] = None,
    ) -> None:
        self.sim = sim
        self.pml = pml
        self.protocol = protocol
        self.world_rank = world_rank
        self.world_size = world_size
        if world_shared is not None:
            members, rank_map = world_shared
            self.world: Communicator = Communicator(self, ("w",), members, rank_map=rank_map)
        else:
            # Seed-shaped private construction (direct API users, tests,
            # Job(shared_state=False)).
            self.world = Communicator(self, ("w",), range(world_size))
        #: optional event recorder installed by :mod:`repro.trace`
        self.recorder = None
        #: set by workloads that support §3.4 recovery (fork/restore)
        self.app_state = None
        #: virtual time spent in mpi.compute (diagnostics)
        self.compute_time = 0.0
        #: optional (rng, sigma) pair modelling OS noise on compute phases;
        #: installed by the harness from Cluster.compute_noise
        self.noise = None
        #: file-I/O adapter (NativeIo/ReplicatedIo), installed by the harness
        self.io = None

    # ------------------------------------------------------------ shorthand
    @property
    def rank(self) -> int:
        return self.world.rank

    @property
    def size(self) -> int:
        return self.world.size

    @property
    def proc(self) -> int:
        """Physical process id."""
        return self.pml.proc

    def wtime(self) -> float:
        return self.sim.now

    def compute(self, seconds: float) -> Generator:
        """Model *seconds* of pure local computation (MPI makes no progress).

        If the cluster models OS noise, the phase is stretched by a
        lognormal factor drawn from this process's noise stream.
        """
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        if seconds > 0 and self.noise is not None:
            rng, sigma = self.noise
            seconds *= float(rng.lognormal(mean=0.0, sigma=sigma))
        self.compute_time += seconds
        if seconds > 0:
            yield seconds

    def register_state(self, state: Any) -> None:
        """Register a snapshot/restore-able state object (recovery support)."""
        self.app_state = state

    def fwrite(self, path: str, data: Any) -> Generator:
        """Write to the simulated parallel file system.

        Under replication only the rank's leader replica physically writes
        (Böhm & Engelmann's redundant-execution I/O, the paper's planned
        integration — see :mod:`repro.core.io`).
        """
        if self.io is None:
            raise MpiError("file I/O is not wired for this job")
        yield from self.io.write(path, data)

    def fread(self, path: str) -> Generator:
        """Read the append-log of *path* from the simulated file system."""
        if self.io is None:
            raise MpiError("file I/O is not wired for this job")
        return (yield from self.io.read(path))

    def recovery_point(self) -> Generator:
        """Declare a quiescent point where a pending respawn may fork (§3.4).

        A no-op unless the harness installed a recovery hook and this
        process is the substitute of a rank with a pending respawn.
        """
        hook = getattr(self.protocol, "recovery_point", None)
        if hook is not None:
            yield from hook()

    # --------------------------------------------------------- nonblocking
    def isend_on(
        self, comm: Communicator, ctx: Any, dest: int, tag: int, data: Any, synchronous: bool = False
    ) -> Generator[Any, Any, "SendHandle"]:
        """Protocol-routed send on an explicit matching context."""
        world_dst = comm.world_of(dest)
        if self.recorder is not None:
            self.recorder.record_send(ctx, comm.rank, dest, world_dst, tag, nbytes_of(data))
        handle = yield from self.protocol.app_isend(
            ctx=ctx, src_rank=comm.rank, tag=tag, data=data, world_dst=world_dst, synchronous=synchronous
        )
        return handle

    def irecv_on(
        self, comm: Communicator, ctx: Any, source: int, tag: int, buf: Any = None
    ) -> Generator[Any, Any, "RecvHandle"]:
        """Protocol-routed receive on an explicit matching context."""
        if source != ANY_SOURCE and not (0 <= source < comm.size):
            raise MpiError(f"receive source {source} outside communicator of size {comm.size}")
        handle = yield from self.protocol.app_irecv(ctx=ctx, source=source, tag=tag, buf=buf)
        return handle

    def isend(self, data: Any, dest: int, tag: int = 0, comm: Optional[Communicator] = None) -> Generator:
        comm = comm or self.world
        return (yield from self.isend_on(comm, comm.ctx_p2p, dest, tag, data))

    def issend(self, data: Any, dest: int, tag: int = 0, comm: Optional[Communicator] = None) -> Generator:
        """MPI_Issend: completion additionally implies the receive matched."""
        comm = comm or self.world
        return (yield from self.isend_on(comm, comm.ctx_p2p, dest, tag, data, synchronous=True))

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
        buf: Any = None,
    ) -> Generator:
        comm = comm or self.world
        return (yield from self.irecv_on(comm, comm.ctx_p2p, source, tag, buf))

    # ------------------------------------------------------------ completion
    def wait_handles(self, handles: Sequence[Any]) -> Generator[Any, Any, List[Optional[Status]]]:
        """Progress until every handle completes (MPI_Waitall core loop).

        While blocked, the PML keeps progressing: incoming messages match,
        ``irecvComplete`` fires, acks flow — the behaviour §3.3's
        deadlock-avoidance argument requires.

        Specialized per-handle when every handle is *stock* (the NAS
        ``waitall`` towers and every collective wait): the underlying PML
        requests are collected once up front and each one is **dropped
        from the pending list the moment it completes** — later progress
        iterations re-scan only what is still outstanding, instead of
        chasing ``advance()``/``done`` through every handle every frame.
        Halo exchanges post 2k handles and complete them one frame at a
        time, so the generic loop's re-scan was quadratic in the fan-out.
        Stockness is decided exactly as the blocking fast paths do: a
        plain :class:`RecvHandle`, or a handle with the stock
        ``SendHandle.done`` predicate and no per-iteration ``advance()``
        work.  Anything else (e.g. a leader-protocol deferred receive)
        falls back to :meth:`wait_handles_generic` — the executable
        specification, proven equivalent by
        ``tests/test_wait_equivalence.py``.
        """
        rpend: List[Any] = []  # PML receive requests still incomplete
        spend: List[Any] = []  # send handles still incomplete
        for h in handles:
            cls = type(h)
            if cls is RecvHandle:
                req = h.pml_req
                if not req.done:
                    rpend.append(req)
            elif cls.done is SendHandle.done and cls.needs_advance is False:
                # Kept whole (not flattened into its pml_reqs): a failover
                # may append a resend request mid-wait, and the ack set
                # shrinks as acks land — re-reading both through the handle
                # each iteration matches the generic loop exactly.
                spend.append(h)
            else:
                return (yield from self.wait_handles_generic(handles))
        pml = self.pml
        ep = pml.endpoint
        while True:
            if rpend:
                # Compact in place: completed requests drop out and are
                # never polled again.
                n = 0
                for r in rpend:
                    if not r.done:
                        rpend[n] = r
                        n += 1
                del rpend[n:]
            if spend:
                n = 0
                for h in spend:
                    if h.needs_ack:
                        done = False
                    else:
                        reqs = h.pml_reqs
                        done = reqs[0].done if len(reqs) == 1 else all(r.done for r in reqs)
                    if not done:
                        spend[n] = h
                        n += 1
                del spend[n:]
            if not rpend and not spend:
                return [h.status for h in handles]
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)

    def wait_handles_generic(self, handles: Sequence[Any]) -> Generator[Any, Any, List[Optional[Status]]]:
        """Generic MPI_Waitall loop: drives ``advance()`` on every handle
        each progress iteration.  The executable specification of
        :meth:`wait_handles` — and the path non-stock handles take.

        Handle ``advance()`` may return ``None`` (no work, the common case)
        or a generator to drive; skipping the no-work generators keeps this
        loop allocation-free.  The progress step itself (pop one inbound
        frame, or block on the endpoint) is inlined from
        :meth:`~repro.mpi.pml.Pml.progress_step`: frames are still handled
        only here, preserving the no-asynchronous-progress contract (§3.3).
        """
        pml = self.pml
        ep = pml.endpoint
        while True:
            for h in handles:
                gen = h.advance()
                if gen is not None:
                    yield from gen
            for h in handles:
                if not h.done:
                    break
            else:
                break
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)
        return [h.status for h in handles]

    def wait(self, handle: Any) -> Generator[Any, Any, Optional[Status]]:
        """MPI_Wait: single-handle fast path of :meth:`wait_handles`."""
        pml = self.pml
        ep = pml.endpoint
        while True:
            gen = handle.advance()
            if gen is not None:
                yield from gen
            if handle.done:
                return handle.status
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)

    def waitall(self, handles: Sequence[Any]) -> Generator:
        return (yield from self.wait_handles(handles))

    def _stock_polls(self, handles: Sequence[Any]) -> Optional[List[Tuple[bool, Any]]]:
        """Per-handle poll plan for all-stock handle sets, or None.

        Each entry is ``(is_send, obj)``: receives poll their PML request's
        ``done`` slot directly (no descriptor dispatch), sends inline the
        stock ``SendHandle.done`` predicate.  A single non-stock handle
        (e.g. a leader-protocol deferred receive, which does real work in
        ``advance()``) disqualifies the whole set — the callers then take
        their ``*_generic`` loop, the executable specification.
        """
        polls: List[Tuple[bool, Any]] = []
        for h in handles:
            cls = type(h)
            if cls is RecvHandle:
                polls.append((False, h.pml_req))
            elif cls.done is SendHandle.done and cls.needs_advance is False:
                polls.append((True, h))
            else:
                return None
        return polls

    def waitsome(self, handles: Sequence[Any]) -> Generator[Any, Any, List[Tuple[int, Optional[Status]]]]:
        """Progress until at least one handle completes; returns every
        completed (index, status) pair (MPI_Waitsome).

        Specialized per-handle for all-stock handle sets: the underlying
        request objects are resolved once, each scan reads ``done`` slots
        instead of calling ``advance()`` plus two property descriptors per
        handle, and the progress step is inlined.  Non-stock sets fall
        back to :meth:`waitsome_generic` (proven equivalent by
        ``tests/test_wait_equivalence.py``).
        """
        if not handles:
            raise MpiError("waitsome requires at least one handle")
        polls = self._stock_polls(handles)
        if polls is None:
            return (yield from self.waitsome_generic(handles))
        pml = self.pml
        ep = pml.endpoint
        while True:
            done: List[Tuple[int, Optional[Status]]] = []
            for i, (is_send, obj) in enumerate(polls):
                if is_send:
                    if obj.needs_ack:
                        continue
                    reqs = obj.pml_reqs
                    if reqs[0].done if len(reqs) == 1 else all(r.done for r in reqs):
                        done.append((i, obj.status))
                elif obj.done:
                    done.append((i, obj.status))
            if done:
                return done
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)

    def waitsome_generic(
        self, handles: Sequence[Any]
    ) -> Generator[Any, Any, List[Tuple[int, Optional[Status]]]]:
        """Generic MPI_Waitsome loop (executable spec of :meth:`waitsome`)."""
        if not handles:
            raise MpiError("waitsome requires at least one handle")
        while True:
            for h in handles:
                gen = h.advance()
                if gen is not None:
                    yield from gen
            done = [(i, h.status) for i, h in enumerate(handles) if h.done]
            if done:
                return done
            yield from self.pml.progress_step()

    def waitany(self, handles: Sequence[Any]) -> Generator[Any, Any, Tuple[int, Optional[Status]]]:
        """Progress until *some* handle completes; returns (index, status).

        The winning index depends on message timing — a non-deterministic
        outcome that send-deterministic applications may observe internally
        without externally visible divergence (§2.2).  Index-order priority
        matches :meth:`waitany_generic` exactly: the lowest completed index
        wins each scan.  Specialized per-handle like :meth:`waitsome`.
        """
        if not handles:
            raise MpiError("waitany requires at least one handle")
        polls = self._stock_polls(handles)
        if polls is None:
            return (yield from self.waitany_generic(handles))
        pml = self.pml
        ep = pml.endpoint
        while True:
            for i, (is_send, obj) in enumerate(polls):
                if is_send:
                    if obj.needs_ack:
                        continue
                    reqs = obj.pml_reqs
                    if reqs[0].done if len(reqs) == 1 else all(r.done for r in reqs):
                        return i, obj.status
                elif obj.done:
                    return i, obj.status
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)

    def waitany_generic(self, handles: Sequence[Any]) -> Generator[Any, Any, Tuple[int, Optional[Status]]]:
        """Generic MPI_Waitany loop (executable spec of :meth:`waitany`)."""
        if not handles:
            raise MpiError("waitany requires at least one handle")
        while True:
            for i, h in enumerate(handles):
                gen = h.advance()
                if gen is not None:
                    yield from gen
                if h.done:
                    return i, h.status
            yield from self.pml.progress_step()

    def test(self, handle: Any) -> Generator[Any, Any, bool]:
        """Nonblocking completion check (MPI_Test): drain, never block."""
        yield from self.pml.drain()
        gen = handle.advance()
        if gen is not None:
            yield from gen
        return handle.done

    def testall(self, handles: Sequence[Any]) -> Generator[Any, Any, bool]:
        yield from self.pml.drain()
        for h in handles:
            gen = h.advance()
            if gen is not None:
                yield from gen
        return all(h.done for h in handles)

    # --------------------------------------------------------------- blocking
    def send(self, data: Any, dest: int, tag: int = 0, comm: Optional[Communicator] = None) -> Generator:
        """Blocking send.

        Flattened fast path: isend_on + wait fused into one generator
        frame.  Blocking point-to-point dominates the workloads this engine
        is benched on, and every layer of ``yield from`` delegation costs
        a frame traversal per resumed event — so the blocking calls avoid
        the nonblocking plumbing entirely.  Semantics are identical to
        ``isend`` + ``wait``.
        """
        comm = comm or self.world
        world_dst = comm.world_of(dest)
        if self.recorder is not None:
            self.recorder.record_send(
                comm.ctx_p2p, comm.rank, dest, world_dst, tag, nbytes_of(data)
            )
        handle = yield from self.protocol.app_isend(
            ctx=comm.ctx_p2p, src_rank=comm.rank, tag=tag, data=data, world_dst=world_dst, synchronous=False
        )
        pml = self.pml
        ep = pml.endpoint
        # Specialize the completion test when the handle has the stock
        # ``done`` predicate: the property call per progress iteration is
        # measurable.  ``needs_advance`` is a class flag — stock handles
        # have no per-iteration work.
        fast_done = type(handle).done is SendHandle.done
        needs_advance = getattr(handle, "needs_advance", True)
        while True:
            if needs_advance:
                gen = handle.advance()
                if gen is not None:
                    yield from gen
            if fast_done:
                if not handle.needs_ack:
                    reqs = handle.pml_reqs
                    if len(reqs) == 1:
                        if reqs[0].done:
                            return
                    elif all(r.done for r in reqs):
                        return
            elif handle.done:
                return
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)

    def ssend(self, data: Any, dest: int, tag: int = 0, comm: Optional[Communicator] = None) -> Generator:
        """MPI_Ssend: returns only after the matching receive was posted."""
        handle = yield from self.issend(data, dest, tag, comm)
        yield from self.wait(handle)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
        buf: Any = None,
    ) -> Generator[Any, Any, Tuple[Any, Status]]:
        """Blocking receive (flattened fast path; see :meth:`send`)."""
        comm = comm or self.world
        if source != ANY_SOURCE and not (0 <= source < comm.size):
            raise MpiError(f"receive source {source} outside communicator of size {comm.size}")
        handle = yield from self.protocol.app_irecv(
            ctx=comm.ctx_p2p, source=source, tag=tag, buf=buf
        )
        pml = self.pml
        ep = pml.endpoint
        if type(handle) is RecvHandle:
            # Stock handle: the wrapped PML request never changes, so poll
            # it directly instead of going through three properties per
            # progress iteration.
            req = handle.pml_req
            while True:
                if req.done:
                    return req.data, req.status
                if ep.inbox:
                    yield from pml.handle_frame(ep.inbox.popleft())
                else:
                    yield ep  # block on the endpoint (allocation-free waiter)
        while True:
            gen = handle.advance()
            if gen is not None:
                yield from gen
            if handle.done:
                return handle.data, handle.status
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)

    def sendrecv(
        self,
        senddata: Any,
        dest: int,
        source: int,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        comm: Optional[Communicator] = None,
    ) -> Generator[Any, Any, Tuple[Any, Status]]:
        """Fused MPI_Sendrecv (flattened fast path; see :meth:`send`).

        Posting order (receive first, then send), recorder calls and the
        progress step match the irecv + isend + ``wait_handles`` tower
        exactly; only the delegation frames and the per-iteration
        ``advance()`` calls on stock handles are gone.  Halo exchanges are
        the dominant call shape of the paper-scale workloads, which is
        what earns this one its own flat body.
        """
        comm = comm or self.world
        if source != ANY_SOURCE and not (0 <= source < comm.size):
            raise MpiError(f"receive source {source} outside communicator of size {comm.size}")
        ctx = comm.ctx_p2p
        protocol = self.protocol
        rhandle = yield from protocol.app_irecv(ctx=ctx, source=source, tag=recvtag, buf=None)
        world_dst = comm.world_of(dest)
        if self.recorder is not None:
            self.recorder.record_send(
                ctx, comm.rank, dest, world_dst, sendtag, nbytes_of(senddata)
            )
        shandle = yield from protocol.app_isend(
            ctx=ctx, src_rank=comm.rank, tag=sendtag, data=senddata, world_dst=world_dst, synchronous=False
        )
        pml = self.pml
        ep = pml.endpoint
        s_fast = type(shandle).done is SendHandle.done
        s_adv = getattr(shandle, "needs_advance", True)
        r_stock = type(rhandle) is RecvHandle
        r_req = rhandle.pml_req if r_stock else None
        while True:
            if s_adv:
                gen = shandle.advance()
                if gen is not None:
                    yield from gen
            if not r_stock:
                gen = rhandle.advance()
                if gen is not None:
                    yield from gen
            if s_fast:
                if shandle.needs_ack:
                    s_done = False
                else:
                    reqs = shandle.pml_reqs
                    s_done = reqs[0].done if len(reqs) == 1 else all(r.done for r in reqs)
            else:
                s_done = shandle.done
            if s_done:
                if r_stock:
                    if r_req.done:
                        return r_req.data, r_req.status
                elif rhandle.done:
                    return rhandle.data, rhandle.status
            if ep.inbox:
                yield from pml.handle_frame(ep.inbox.popleft())
            else:
                yield ep  # block on the endpoint (allocation-free waiter)

    # ----------------------------------------------------------------- probe
    def iprobe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, Optional[Status]]:
        comm = comm or self.world
        yield from self.pml.drain()
        env = self.pml.matching.probe(comm.ctx_p2p, source, tag)
        if env is None:
            return None
        return Status(source=env.src_rank, tag=env.tag, nbytes=env.nbytes)

    def probe(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG, comm: Optional[Communicator] = None
    ) -> Generator[Any, Any, Status]:
        comm = comm or self.world
        while True:
            st = yield from self.iprobe(source, tag, comm)
            if st is not None:
                return st
            yield from self.pml.progress_step()

    # ------------------------------------------------------------ collectives
    def barrier(self, comm: Optional[Communicator] = None) -> Generator:
        yield from coll.barrier(self, comm or self.world)

    def bcast(self, data: Any, root: int = 0, comm: Optional[Communicator] = None) -> Generator:
        return (yield from coll.bcast(self, comm or self.world, data, root))

    def reduce(
        self, data: Any, op: str = "sum", root: int = 0, comm: Optional[Communicator] = None
    ) -> Generator:
        return (yield from coll.reduce(self, comm or self.world, data, op, root))

    def allreduce(self, data: Any, op: str = "sum", comm: Optional[Communicator] = None) -> Generator:
        return (yield from coll.allreduce(self, comm or self.world, data, op))

    def gather(self, data: Any, root: int = 0, comm: Optional[Communicator] = None) -> Generator:
        return (yield from coll.gather(self, comm or self.world, data, root))

    def scatter(
        self, chunks: Optional[List[Any]], root: int = 0, comm: Optional[Communicator] = None
    ) -> Generator:
        return (yield from coll.scatter(self, comm or self.world, chunks, root))

    def allgather(self, data: Any, comm: Optional[Communicator] = None) -> Generator:
        return (yield from coll.allgather(self, comm or self.world, data))

    def alltoall(self, chunks: List[Any], comm: Optional[Communicator] = None) -> Generator:
        return (yield from coll.alltoall(self, comm or self.world, chunks))

    def reduce_scatter(
        self, chunks: List[Any], op: str = "sum", comm: Optional[Communicator] = None
    ) -> Generator:
        return (yield from coll.reduce_scatter_block(self, comm or self.world, chunks, op))

    def scan(self, data: Any, op: str = "sum", comm: Optional[Communicator] = None) -> Generator:
        return (yield from coll.scan(self, comm or self.world, data, op))

    # ---------------------------------------------------------- communicators
    def comm_dup(self, comm: Optional[Communicator] = None) -> Generator:
        return (yield from (comm or self.world).dup())

    def comm_split(self, color: int, key: int = 0, comm: Optional[Communicator] = None) -> Generator:
        return (yield from (comm or self.world).split(color, key))

    def comm_create(self, group, comm: Optional[Communicator] = None) -> Generator:
        return (yield from (comm or self.world).create(group))
