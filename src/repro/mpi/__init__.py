"""A simulated MPI library with Open MPI's layering.

Layer map (paper Fig. 5):

* :mod:`repro.mpi.api`      — the "OMPI" user-facing binding (MPI_* analogue)
* :mod:`repro.mpi.pml`      — point-to-point management layer: eager and
  rendezvous protocols, matching, the ``pml_match`` / ``pml_recv_complete``
  hook events the vProtocol interposition layer consumes
* :mod:`repro.network`      — the "BTL": the wire

Replication protocols (:mod:`repro.core`) interpose between the API and the
PML exactly as SDR-MPI does between OMPI and ob1.

The library deliberately reproduces one behavioural constraint the paper's
deadlock argument (§3.3) depends on: **no asynchronous progress**.  Frames
are only examined while the owning process executes an MPI call.
"""

from repro.mpi.errors import (
    DeadlockError,
    MpiError,
    RankError,
    TruncationError,
)
from repro.mpi.datatypes import Phantom, copy_payload, nbytes_of
from repro.mpi.status import ANY_SOURCE, ANY_TAG, Status
from repro.mpi.pml import Envelope, MessageView, Pml
from repro.mpi.group import Group
from repro.mpi.comm import Communicator
from repro.mpi.api import MpiProcess

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Communicator",
    "DeadlockError",
    "Envelope",
    "Group",
    "MessageView",
    "MpiError",
    "MpiProcess",
    "Phantom",
    "Pml",
    "RankError",
    "Status",
    "TruncationError",
    "copy_payload",
    "nbytes_of",
]
