"""Message payloads: real data and phantom (size-only) buffers.

Workloads run in one of two modes:

* **validate** — payloads are real Python/numpy objects; receives copy data,
  reductions compute real values.  Used by tests and small examples.
* **modeled**  — payloads are :class:`Phantom` markers carrying only a byte
  count.  The protocol/cost behaviour is identical (everything is keyed on
  sizes), but no memory traffic happens, letting benches run the paper's
  256-rank class-D-sized problems in seconds.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = ["Phantom", "nbytes_of", "copy_payload", "writable_copy", "combine", "snapshot_stats"]


class Phantom:
    """A size-only stand-in for a message payload.

    Phantoms are absorbing under arithmetic-style combination, so reduction
    collectives work transparently in modeled mode.
    """

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("payload size cannot be negative")
        self.nbytes = int(nbytes)

    def __repr__(self) -> str:
        return f"Phantom({self.nbytes})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Phantom) and other.nbytes == self.nbytes

    def __hash__(self) -> int:
        return hash(("Phantom", self.nbytes))


def nbytes_of(obj: Any) -> int:
    """Byte size of a payload object for costing purposes."""
    if obj is None:
        return 0
    if isinstance(obj, Phantom):
        return obj.nbytes
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (int, float, complex, np.generic)):
        return 8
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (list, tuple)):
        return sum(nbytes_of(x) for x in obj)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")


#: copy-on-write accounting: how often a snapshot was shared vs. deep-copied
snapshot_stats = {"shared": 0, "copied": 0}


def copy_payload(obj: Any) -> Any:
    """Snapshot a payload at send time (MPI send-buffer semantics).

    Copy-on-write discipline: the returned snapshot is *immutable* and may
    be shared freely.  Immutable inputs — ``Phantom``, ``bytes``, scalars,
    and ndarrays whose writeable flag is already cleared (i.e. a previous
    ``copy_payload`` result) — are returned as-is; only a writable ndarray
    pays for a copy, and that copy is write-guarded (``writeable=False``)
    so any later mutation of the shared snapshot raises instead of silently
    corrupting retention buffers.  This is what lets the SDR retention
    table, mirror fan-out, failover resends and respawn state cloning all
    hold *one* snapshot per logical message instead of deep-copying per
    send: re-snapshotting an immutable payload is free.
    """
    if obj is None or isinstance(obj, (Phantom, bytes, str, int, float, complex)):
        return obj
    if isinstance(obj, np.ndarray):
        if not obj.flags.writeable:
            snapshot_stats["shared"] += 1
            return obj
        snap = obj.copy()
        snap.flags.writeable = False
        snapshot_stats["copied"] += 1
        return snap
    if isinstance(obj, bytearray):
        return bytes(obj)
    if isinstance(obj, (list, tuple)):
        return type(obj)(copy_payload(x) for x in obj)
    if isinstance(obj, np.generic):
        return obj
    raise TypeError(f"cannot copy payload of type {type(obj).__name__}")


def writable_copy(obj: Any) -> Any:
    """Mutable copy of a (possibly shared, read-only) received payload.

    Receivers that want to update a received array in place should go
    through this instead of mutating ``recv.data`` — the latter may be a
    write-guarded shared snapshot.
    """
    if isinstance(obj, np.ndarray) and not obj.flags.writeable:
        return obj.copy()
    return obj


_OPS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
}


def combine(op: str, a: Any, b: Any) -> Any:
    """Apply reduction *op* to two payloads; Phantom absorbs.

    Lists/tuples combine elementwise (MPI reductions over count>1 buffers;
    also what reduce_scatter needs for rank-indexed chunk lists).
    """
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            raise ValueError(f"cannot combine sequences of lengths {len(a)} and {len(b)}")
        return type(a)(combine(op, x, y) for x, y in zip(a, b))
    if isinstance(a, Phantom) or isinstance(b, Phantom):
        return Phantom(max(nbytes_of(a), nbytes_of(b)))
    try:
        fn = _OPS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}; have {sorted(_OPS)}") from None
    return fn(a, b)
