"""Message payloads: real data and phantom (size-only) buffers.

Workloads run in one of two modes:

* **validate** — payloads are real Python/numpy objects; receives copy data,
  reductions compute real values.  Used by tests and small examples.
* **modeled**  — payloads are :class:`Phantom` markers carrying only a byte
  count.  The protocol/cost behaviour is identical (everything is keyed on
  sizes), but no memory traffic happens, letting benches run the paper's
  256-rank class-D-sized problems in seconds.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "Phantom",
    "PayloadInterner",
    "nbytes_of",
    "copy_payload",
    "writable_copy",
    "combine",
    "snapshot_stats",
]


class Phantom:
    """A size-only stand-in for a message payload.

    Phantoms are absorbing under arithmetic-style combination, so reduction
    collectives work transparently in modeled mode.
    """

    __slots__ = ("nbytes",)

    def __init__(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("payload size cannot be negative")
        self.nbytes = int(nbytes)

    def __repr__(self) -> str:
        return f"Phantom({self.nbytes})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Phantom) and other.nbytes == self.nbytes

    def __hash__(self) -> int:
        return hash(("Phantom", self.nbytes))


class PayloadInterner:
    """Job-wide intern table for immutable payload snapshots.

    Collectives and replication fan-out mint millions of size-only
    :class:`Phantom` markers per run — e.g. every reduction step of every
    replica produces a fresh ``Phantom(max(...))`` even though only a
    handful of distinct sizes ever occur.  All of them are immutable and
    compared by value, so one canonical object per distinct value is
    observationally equivalent; `copy_payload`/`writable_copy` remain the
    only mutation gates, and neither ever mutates an interned type.

    Interned types are chosen for *safe* value-keyed identity collapse:

    * ``Phantom`` — keyed by ``nbytes`` (the whole value);
    * ``bytes``/``str`` — keyed by ``(type, value)``, only up to
      :data:`SMALL_LIMIT` so a huge one-off blob cannot be pinned by the
      table for the rest of the job.

    Ints and floats are deliberately **not** interned: ``True == 1`` and
    ``hash(True) == hash(1)`` would conflate distinct payloads under a
    value key, and ``-0.0 == 0.0`` would canonicalize away a sign bit.

    The table is bounded (:data:`MAX_ENTRIES` per kind); once full it
    keeps serving hits for known values but stops admitting new ones
    (counted as misses), so an adversarial workload degrades to the
    uninterned baseline instead of leaking.
    """

    MAX_ENTRIES = 4096
    SMALL_LIMIT = 256

    __slots__ = ("_phantoms", "_small", "hits", "misses")

    def __init__(self) -> None:
        self._phantoms: dict = {}
        self._small: dict = {}
        #: payloads collapsed onto an existing canonical object
        self.hits = 0
        #: payloads passed through unchanged (uninternable type, first
        #: sighting of a value, or table full)
        self.misses = 0

    def intern(self, obj: Any) -> Any:
        """Canonical object for *obj*, or *obj* itself if not internable."""
        cls = type(obj)
        if cls is Phantom:
            table = self._phantoms
            canon = table.get(obj.nbytes)
            if canon is not None:
                self.hits += 1
                return canon
            if len(table) < self.MAX_ENTRIES:
                table[obj.nbytes] = obj
            self.misses += 1
            return obj
        if (cls is bytes or cls is str) and len(obj) <= self.SMALL_LIMIT:
            table = self._small
            key = (cls, obj)
            canon = table.get(key)
            if canon is not None:
                self.hits += 1
                return canon
            if len(table) < self.MAX_ENTRIES:
                table[key] = obj
            self.misses += 1
            return obj
        self.misses += 1
        return obj

    def stats(self) -> dict:
        return {
            "payload_interned": self.hits,
            "payload_misses": self.misses,
            "intern_entries": len(self._phantoms) + len(self._small),
        }


def nbytes_of(obj: Any) -> int:
    """Byte size of a payload object for costing purposes."""
    if obj is None:
        return 0
    if isinstance(obj, Phantom):
        return obj.nbytes
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes)
    if isinstance(obj, (bytes, bytearray, memoryview)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode())
    if isinstance(obj, (int, float, complex, np.generic)):
        return 8
    if isinstance(obj, bool):
        return 1
    if isinstance(obj, (list, tuple)):
        return sum(nbytes_of(x) for x in obj)
    raise TypeError(f"cannot size payload of type {type(obj).__name__}")


#: copy-on-write accounting: how often a snapshot was shared vs. deep-copied
snapshot_stats = {"shared": 0, "copied": 0}


def copy_payload(obj: Any) -> Any:
    """Snapshot a payload at send time (MPI send-buffer semantics).

    Copy-on-write discipline: the returned snapshot is *immutable* and may
    be shared freely.  Immutable inputs — ``Phantom``, ``bytes``, scalars,
    and ndarrays whose writeable flag is already cleared (i.e. a previous
    ``copy_payload`` result) — are returned as-is; only a writable ndarray
    pays for a copy, and that copy is write-guarded (``writeable=False``)
    so any later mutation of the shared snapshot raises instead of silently
    corrupting retention buffers.  This is what lets the SDR retention
    table, mirror fan-out, failover resends and respawn state cloning all
    hold *one* snapshot per logical message instead of deep-copying per
    send: re-snapshotting an immutable payload is free.
    """
    if obj is None or isinstance(obj, (Phantom, bytes, str, int, float, complex)):
        return obj
    if isinstance(obj, np.ndarray):
        if not obj.flags.writeable:
            snapshot_stats["shared"] += 1
            return obj
        snap = obj.copy()
        snap.flags.writeable = False
        snapshot_stats["copied"] += 1
        return snap
    if isinstance(obj, bytearray):
        return bytes(obj)
    if isinstance(obj, (list, tuple)):
        return type(obj)(copy_payload(x) for x in obj)
    if isinstance(obj, np.generic):
        return obj
    raise TypeError(f"cannot copy payload of type {type(obj).__name__}")


def writable_copy(obj: Any) -> Any:
    """Mutable copy of a (possibly shared, read-only) received payload.

    Receivers that want to update a received array in place should go
    through this instead of mutating ``recv.data`` — the latter may be a
    write-guarded shared snapshot.
    """
    if isinstance(obj, np.ndarray) and not obj.flags.writeable:
        return obj.copy()
    return obj


_OPS = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: np.maximum(a, b) if isinstance(a, np.ndarray) else max(a, b),
    "min": lambda a, b: np.minimum(a, b) if isinstance(a, np.ndarray) else min(a, b),
}


def combine(op: str, a: Any, b: Any) -> Any:
    """Apply reduction *op* to two payloads; Phantom absorbs.

    Lists/tuples combine elementwise (MPI reductions over count>1 buffers;
    also what reduce_scatter needs for rank-indexed chunk lists).
    """
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            raise ValueError(f"cannot combine sequences of lengths {len(a)} and {len(b)}")
        return type(a)(combine(op, x, y) for x, y in zip(a, b))
    if isinstance(a, Phantom) or isinstance(b, Phantom):
        return Phantom(max(nbytes_of(a), nbytes_of(b)))
    try:
        fn = _OPS[op]
    except KeyError:
        raise ValueError(f"unknown reduction op {op!r}; have {sorted(_OPS)}") from None
    return fn(a, b)
