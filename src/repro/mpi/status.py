"""MPI_Status analogue and wildcard constants."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status"]

#: wildcard source rank (MPI_ANY_SOURCE)
ANY_SOURCE: int = -1
#: wildcard tag (MPI_ANY_TAG)
ANY_TAG: int = -1


@dataclass
class Status:
    """Outcome of a completed receive.

    ``source`` and ``tag`` are the matched values (never wildcards), as in
    ``MPI_Status.MPI_SOURCE`` / ``MPI_TAG``.  ``nbytes`` plays the role of
    ``MPI_Get_count`` in bytes.
    """

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0
    cancelled: bool = False
