"""MPI_Status analogue and wildcard constants."""

from __future__ import annotations

__all__ = ["ANY_SOURCE", "ANY_TAG", "Status"]

#: wildcard source rank (MPI_ANY_SOURCE)
ANY_SOURCE: int = -1
#: wildcard tag (MPI_ANY_TAG)
ANY_TAG: int = -1


class Status:
    """Outcome of a completed receive.

    ``source`` and ``tag`` are the matched values (never wildcards), as in
    ``MPI_Status.MPI_SOURCE`` / ``MPI_TAG``.  ``nbytes`` plays the role of
    ``MPI_Get_count`` in bytes.  One is allocated per completed receive, so
    a ``__slots__`` class instead of a dataclass.
    """

    __slots__ = ("source", "tag", "nbytes", "cancelled")

    def __init__(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        nbytes: int = 0,
        cancelled: bool = False,
    ) -> None:
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        self.cancelled = cancelled

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Status)
            and self.source == other.source
            and self.tag == other.tag
            and self.nbytes == other.nbytes
            and self.cancelled == other.cancelled
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Status(source={self.source}, tag={self.tag}, "
            f"nbytes={self.nbytes}, cancelled={self.cancelled})"
        )
