"""Point-to-point Management Layer (the ob1 analogue).

Implements eager and rendezvous transfer protocols over the fabric, message
matching, and — crucially for this paper — the interposition surface the
replication layer uses (§4.1):

* ``on_match`` hooks fire at the ``pml_match`` event: an incoming message
  has been paired with a posted receive (first packet arrived);
* ``on_recv_complete`` hooks fire at the ``pml_recv_complete`` event: a
  message is *fully received at the library level* — for eager messages this
  is frame arrival (even if the receive has not been posted yet), for
  rendezvous it is arrival of the DATA frame.  SDR-MPI sends its acks here
  (§3.3, Algorithm 1 line 15);
* ``incoming_filter`` lets a protocol intercept application envelopes before
  matching (SDR-MPI uses this for duplicate suppression and per-channel
  in-order release);
* ``ctrl_handlers`` dispatch protocol-private frames (acks, leader
  decisions, hashes, recovery notices) that never touch MPI matching.

Cost accounting: every injected frame charges the sender
``model.send_overhead`` of CPU busy time; every handled frame charges the
receiver ``model.recv_overhead``.  Wire serialization and propagation are
charged by the fabric.  There is **no asynchronous progress**: frames are
handled only inside :meth:`Pml.progress_step`, which runs only while the
owning process executes an MPI call.

Envelope ownership contract
---------------------------
Every :class:`Envelope` — all five kinds — recycles through a per-PML
arena and has **exactly one owner** at every point in its lifetime:

* the sending PML allocates from its arena (:meth:`Pml.acquire_env`) and
  ownership travels with the frame to the receiving PML;
* on the receive side, ownership moves through a fixed pipeline —
  ``incoming_filter`` (which may park the envelope, e.g. in a reorder
  buffer) → :meth:`Pml.deliver_to_matching` (which *consumes* it: either
  the unexpected queue holds it, or matching completes and the PML
  releases it) — and the PML returns the envelope to the arena the moment
  the last handler has run (:meth:`Pml.release_env`);
* hooks (``on_match``, ``on_recv_complete``) and ``ctrl_handlers``
  receive the envelope as a **borrow**: it is valid for the duration of
  the handler invocation (including every resumption of a generator
  handler until it finishes) and must not be retained past it.  A
  protocol that needs the message afterwards takes the explicit escape
  hatch: :meth:`Envelope.retain` keeps the envelope out of the arena
  until a matching :meth:`Pml.release_env`, or :meth:`Envelope.copy`
  snapshots it into an arena-independent, read-only
  :class:`MessageView`.

Payloads are *not* part of the recycling: ``env.data`` refers to the
copy-on-write snapshot machinery of :mod:`repro.mpi.datatypes`, and
``Pml._complete_recv`` hands that reference to the receive request before
the shell is recycled.  ``tests/test_pooling_equivalence.py`` proves the
arena observationally equivalent to plain allocation (``pool_envelopes``
bypass flag), and the harness asserts the arenas balance — every acquire
matched by a release or an accounted strand — at the end of every run,
crashes included.  Fail-stop teardown is what makes crashy runs provable:
every receive-pipeline span that owns an envelope across a yield carries a
guard routing the abandoned reference to :meth:`Pml.strand_env`, and the
fabric counts the frames (and their envelopes) dropped at its own fail-stop
sites (see :mod:`repro.network.fabric`).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.mpi.datatypes import PayloadInterner, copy_payload, nbytes_of
from repro.mpi.errors import MpiError, TruncationError
from repro.mpi.matching import LinearMatchEngine, MatchEngine
from repro.mpi.status import ANY_SOURCE, Status
from repro.network.fabric import Fabric, Frame
from repro.sim.kernel import Simulator

__all__ = [
    "Envelope",
    "MessageView",
    "Pml",
    "PmlRecvRequest",
    "PmlSendRequest",
    "RTS_BYTES",
    "CTS_BYTES",
    "CTRL_BYTES",
]

#: wire size of a rendezvous request-to-send frame
RTS_BYTES = 64
#: wire size of a clear-to-send frame
CTS_BYTES = 32
#: default wire size of protocol control frames (acks etc.)
CTRL_BYTES = 32


class Envelope:
    """Everything the PML knows about a message.

    ``src_rank`` is the sender's rank *within the matching context* (what
    MPI matching sees); ``world_src``/``world_dst`` are logical world ranks
    (what the replication protocol keys on); ``seq`` is the per
    (world_src → world_dst) application-message sequence number, identical
    across replicas by send-determinism.

    A ``__slots__`` class rather than a dataclass: one envelope per frame
    makes its construction part of the per-message critical path.

    Instances delivered by the PML are arena-owned **borrows** (see the
    module docstring): handlers read them freely while they run, and use
    :meth:`retain`/:meth:`copy` to hold a message past the handler.
    """

    __slots__ = (
        "kind",
        "ctx",
        "src_rank",
        "tag",
        "world_src",
        "world_dst",
        "seq",
        "nbytes",
        "data",
        "src_phys",
        "dst_phys",
        "msg_id",
        "ctrl_key",
        "_refs",
    )

    def __init__(
        self,
        kind: str,  # 'eager' | 'rts' | 'cts' | 'data' | 'ctrl'
        ctx: Any,
        src_rank: int,
        tag: int,
        world_src: int,
        world_dst: int,
        seq: int,
        nbytes: int,
        data: Any,
        src_phys: int,
        dst_phys: int,
        msg_id: int = -1,
        ctrl_key: str = "",
    ) -> None:
        self.kind = kind
        self.ctx = ctx
        self.src_rank = src_rank
        self.tag = tag
        self.world_src = world_src
        self.world_dst = world_dst
        self.seq = seq
        self.nbytes = nbytes
        self.data = data
        self.src_phys = src_phys
        self.dst_phys = dst_phys
        self.msg_id = msg_id
        self.ctrl_key = ctrl_key
        self._refs = 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Envelope(kind={self.kind!r}, ctx={self.ctx!r}, src_rank={self.src_rank}, "
            f"tag={self.tag}, world_src={self.world_src}, world_dst={self.world_dst}, "
            f"seq={self.seq}, nbytes={self.nbytes}, src_phys={self.src_phys}, "
            f"dst_phys={self.dst_phys}, msg_id={self.msg_id}, ctrl_key={self.ctrl_key!r})"
        )

    def retain(self) -> "Envelope":
        """Escape hatch: keep this envelope alive past the borrow window.

        Each ``retain()`` must be balanced by one :meth:`Pml.release_env`
        — the envelope returns to the arena only when every holder has
        released it.  Prefer :meth:`copy` unless you need the live object.
        """
        self._refs += 1
        return self

    def copy(self) -> "MessageView":
        """Arena-independent, read-only snapshot of this message.

        The safe way for a protocol to hold a message for later comparison
        (redMPI-style vote checks, diagnostics): the view shares the
        immutable payload snapshot but is detached from the recycling
        arena, so it stays valid forever.
        """
        return MessageView(self)


class MessageView:
    """Immutable snapshot of a delivered message.

    Carries the matching/replication-relevant fields of an
    :class:`Envelope` (ctx/src/tag/seq/payload and the physical
    addressing), detached from the recycling arena: a view taken inside a
    hook stays valid after the envelope shell has been recycled.  The
    payload reference follows the copy-on-write snapshot discipline of
    :mod:`repro.mpi.datatypes` (immutable, shared).  Attribute assignment
    raises — a view is a value, not a message in flight.
    """

    __slots__ = (
        "kind",
        "ctx",
        "src_rank",
        "tag",
        "world_src",
        "world_dst",
        "seq",
        "nbytes",
        "data",
        "src_phys",
        "dst_phys",
        "msg_id",
        "ctrl_key",
    )

    def __init__(self, env: Envelope) -> None:
        setattr_ = object.__setattr__
        for field in self.__slots__:
            setattr_(self, field, getattr(env, field))

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(f"MessageView is read-only (tried to set {name!r})")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MessageView(kind={self.kind!r}, ctx={self.ctx!r}, src_rank={self.src_rank}, "
            f"tag={self.tag}, seq={self.seq}, nbytes={self.nbytes})"
        )


class PmlSendRequest:
    """Library-level send request: done at ``isendComplete``.

    Holds no envelope reference: under the ownership contract the eager
    envelope belongs to the wire (and then to the receiving PML) the
    moment it is injected, and rendezvous retention lives in the PML's
    ``_rdv_sends`` table until the CTS arrives.
    """

    __slots__ = ("dst_phys", "nbytes", "done", "msg_id", "cancelled")

    def __init__(self, dst_phys: int, nbytes: int, msg_id: int) -> None:
        self.dst_phys = dst_phys
        self.nbytes = nbytes
        self.msg_id = msg_id
        self.done = False
        self.cancelled = False


class PmlRecvRequest:
    """Library-level receive request.

    ``lib_complete`` mirrors the paper's ``irecvComplete``: payload fully in
    the library.  ``done`` is application-level completion (payload copied
    into the user buffer, status filled).  ``matched`` exposes the matched
    envelope **only during the match/complete hook window** — it is cleared
    when the PML recycles the envelope (take a :meth:`Envelope.copy` in an
    ``on_match`` hook to keep it).
    """

    __slots__ = (
        "ctx",
        "source",
        "tag",
        "buf",
        "done",
        "lib_complete",
        "matched",
        "data",
        "status",
        "cancelled",
    )

    def __init__(self, ctx: Any, source: int, tag: int, buf: Any = None) -> None:
        self.ctx = ctx
        self.source = source
        self.tag = tag
        self.buf = buf
        self.done = False
        self.lib_complete = False
        self.matched: Optional[Envelope] = None
        self.data: Any = None
        self.status: Optional[Status] = None
        self.cancelled = False


HookFn = Callable[..., Optional[Generator]]


class _HookList(list):
    """Hook registry for one interposition event (``on_match`` /
    ``on_recv_complete``).

    A plain list everywhere it matters (the firing loops iterate it
    directly), except that :meth:`append` — the only registration path the
    protocols use — wraps the hook in the retain-accounting guard
    (:func:`repro.core.interpose.guard_hook`) when the runtime ownership
    guard is enabled, mirroring how ``incoming_filter`` wraps at
    assignment time.
    """

    __slots__ = ("_pml", "_kind")

    def __init__(self, pml: "Pml", kind: str) -> None:
        super().__init__()
        self._pml = pml
        self._kind = kind

    def append(self, fn: HookFn) -> None:
        from repro.core.interpose import filter_guard_enabled, guard_hook

        if filter_guard_enabled():
            fn = guard_hook(self._pml, fn, self._kind)
        super().append(fn)


class Pml:
    """Per-physical-process point-to-point layer.

    A ``__slots__`` class whose ``__init__`` builds only the hot minimum:
    jobs construct one PML per physical process, so every eager dict and
    per-proc string here multiplies by 8192+ at scale.  Cold state —
    the rendezvous tables, the filter-guard set — is lazy behind ``None``
    sentinels, and the per-peer cost caches are **views into the job-level
    shared table** (see :class:`repro.network.fabric.CostTable`): all PMLs
    on a node share one send row and one recv row, keyed by peer node.
    """

    __slots__ = (
        "sim",
        "fabric",
        "proc",
        "endpoint",
        "matching",
        "_msg_id",
        "_rdv_sends",
        "_rdv_recvs",
        "on_match",
        "on_recv_complete",
        "_incoming_filter",
        "ctrl_handlers",
        "svc_handlers",
        "_env_pool",
        "pool_envelopes",
        "env_acquired",
        "env_allocated",
        "env_released",
        "env_stranded",
        "env_stranded_by_site",
        "_node_of",
        "_send_row",
        "_recv_row",
        "_release_frame",
        "_guard_pending",
        "_retain_ledger",
        "guard_violations",
        "sends_posted",
        "recvs_posted",
        "any_source_posts",
        "_interner",
        "env_hw_window",
        "env_high_water",
        "env_trimmed",
    )

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        proc: int,
        shared_costs: bool = True,
        interner: Optional[PayloadInterner] = None,
        linear_matching: bool = False,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.proc = proc
        self.endpoint = fabric.endpoint(proc)
        # linear_matching keeps the seed engine (the executable matching
        # spec) for whole-job equivalence runs: Job(matching="linear")
        self.matching = LinearMatchEngine() if linear_matching else MatchEngine()
        self._msg_id = 0
        # outstanding rendezvous state, lazily allocated: eager-only
        # workloads (every small-message tier) never touch it
        self._rdv_sends: Optional[Dict[int, Tuple[PmlSendRequest, Envelope]]] = None
        self._rdv_recvs: Optional[Dict[Tuple[int, int], PmlRecvRequest]] = None
        # interposition surface (hook lists wrap appends in the retain
        # guard when the runtime ownership guard is enabled)
        self.on_match: List[HookFn] = _HookList(self, "on_match")
        self.on_recv_complete: List[HookFn] = _HookList(self, "on_recv_complete")
        #: see the ``incoming_filter`` property
        self._incoming_filter: Optional[Callable[[Envelope], Generator]] = None
        #: ctrl envelopes are recycled the moment a handler returns —
        #: handlers get a borrow and must copy out whatever they need
        #: (``env.retain()``/``env.copy()`` are the escape hatches)
        self.ctrl_handlers: Dict[str, Callable[[Envelope], Generator]] = {}
        self.svc_handlers: Dict[str, Callable[[Any], Generator]] = {}
        #: free list shared by every envelope kind (see module docstring);
        #: ``pool_envelopes = False`` bypasses recycling (equivalence tests)
        #: while keeping the acquire/release accounting intact
        self._env_pool: List[Envelope] = []
        self.pool_envelopes = True
        #: arena accounting: every acquire must be matched by a release or
        #: an accounted strand (checked at end-of-run by the harness —
        #: crashy runs included, via the strand counters)
        self.env_acquired = 0
        self.env_allocated = 0  # pool misses (fresh constructions)
        self.env_released = 0
        #: envelopes abandoned mid-pipeline by a fail-stop crash: a process
        #: torn down while suspended inside frame handling (a CPU charge, a
        #: hook, a ctrl handler) strands the envelope the pipeline owned —
        #: the receive-path guards route it here instead of losing it
        self.env_stranded = 0
        #: strand *attribution*: {site: count} filled by :meth:`strand_env`
        #: (lazy — crash-free runs never allocate it)
        self.env_stranded_by_site: Optional[Dict[str, int]] = None
        # Per-peer cost views into the job-level shared CostTable: models
        # are immutable for a job's lifetime and identical per node pair,
        # so the rows are shared by every PML on this node and keyed by
        # peer *node* (one list index + one dict probe per frame).
        # shared_costs=False keeps seed-shaped private dicts (equivalence
        # spec — same code path, unshared containers).
        table = fabric.cost_table
        self._node_of = table.node_of
        my_node = self._node_of[proc]
        if shared_costs:
            self._send_row: Dict[int, Tuple[float, int]] = table.send_row(my_node)
            self._recv_row: Dict[int, float] = table.recv_row(my_node)
        else:
            self._send_row = {}
            self._recv_row = {}
        #: bound-method cache: one attribute chase per handled frame saved
        self._release_frame = fabric.release_frame
        #: filter-guard bookkeeping (see the ``incoming_filter`` property);
        #: ``None`` unless the debug guard is enabled
        self._guard_pending: Optional[set] = None
        #: hook-retain ledger: {id(env): (env, hook_name)} for envelopes a
        #: guarded hook retained and has not yet balanced with a release —
        #: ``None`` unless the debug guard recorded one (see
        #: :meth:`reap_retain_ledger`)
        self._retain_ledger: Optional[Dict[int, Tuple[Envelope, str]]] = None
        #: ownership-contract violations the guard recorded; re-raised in
        #: the harness teardown because crash unwinding swallows cleanup
        #: errors (``Process.crash``: the crash wins)
        self.guard_violations: Optional[List[str]] = None
        # counters
        self.sends_posted = 0
        self.recvs_posted = 0
        #: wildcard receives posted — the sharded engine treats any
        #: ANY_SOURCE post as a taint (match order under wildcards
        #: depends on same-timestamp dispatch interleaving that
        #: shard-local seq assignment cannot reproduce)
        self.any_source_posts = 0
        #: job-wide payload intern table (shared by every PML of a Job;
        #: ``None`` disables — Job(interning=False) equivalence spec)
        self._interner = interner
        # Arena high-water tracking, windowed so the hot path stays one
        # compare: acquire sites bump ``env_hw_window`` from the current
        # outstanding count; :meth:`trim_env_pool` folds the window into
        # ``env_high_water`` and resets it, so after a trim the free list
        # re-sizes to the *recent* burst height, not the all-time peak.
        self.env_hw_window = 0
        self.env_high_water = 0
        #: pooled shells dropped by quiescent-point trims
        self.env_trimmed = 0

    # ------------------------------------------------------------ utilities
    def _next_msg_id(self) -> int:
        self._msg_id += 1
        return self._msg_id

    def model_to(self, dst_phys: int):
        return self.fabric.model_for(self.proc, dst_phys)

    def _charge(self, seconds: float) -> Generator:
        if seconds > 0.0:
            yield seconds

    def _send_cost_to(self, dst: int) -> Tuple[float, int]:
        """Row-fill slow path: price *dst* and publish it for every sharer."""
        model = self.fabric.model_for(self.proc, dst)
        cost = (model.send_overhead, model.eager_limit)
        self._send_row[self._node_of[dst]] = cost
        return cost

    # ------------------------------------------------------- incoming filter
    @property
    def incoming_filter(self) -> Optional[Callable[[Envelope], Generator]]:
        """Protocol hook intercepting application envelopes before matching.

        A filter that returns False takes *ownership* of the envelope: it
        must eventually hand it to :meth:`deliver_to_matching` or return it
        via :meth:`release_env` (duplicate drops), and a filter that owns
        an envelope across a ``yield`` must route it to :meth:`strand_env`
        when torn down mid-suspension (see :mod:`repro.core.interpose`).

        Assignment goes through a property so the runtime ownership guard
        (:func:`repro.core.interpose.filter_guard_enabled`) can wrap any
        filter — in-tree or custom — at install time.
        """
        return self._incoming_filter

    @incoming_filter.setter
    def incoming_filter(self, fn: Optional[Callable[[Envelope], Generator]]) -> None:
        if fn is not None:
            from repro.core.interpose import filter_guard_enabled, guard_incoming_filter

            if filter_guard_enabled():
                fn = guard_incoming_filter(self, fn)
        self._incoming_filter = fn

    # ------------------------------------------------------- envelope arena
    def acquire_env(
        self,
        kind: str,
        ctx: Any,
        src_rank: int,
        tag: int,
        world_src: int,
        world_dst: int,
        seq: int,
        nbytes: int,
        data: Any,
        dst_phys: int,
        msg_id: int = -1,
        ctrl_key: str = "",
    ) -> Envelope:
        """Pool-backed Envelope — the only allocation site on a send path.

        Every kind recycles: application envelopes (``eager``/``rts``/
        ``data``) are consumed by the receive pipeline and released when
        the last hook has run; protocol-private ones (``ctrl``/``cts``)
        are consumed exactly once inside
        :meth:`_handle_frame`/:meth:`_handle_cts`.  The caller owns the
        returned envelope until it injects it (ownership travels with the
        frame) or releases it.
        """
        interner = self._interner
        if interner is not None and data is not None:
            data = interner.intern(data)
        acquired = self.env_acquired + 1
        self.env_acquired = acquired
        outstanding = acquired - self.env_released - self.env_stranded
        if outstanding > self.env_hw_window:
            self.env_hw_window = outstanding
        pool = self._env_pool
        if pool:
            env = pool.pop()
            env.kind = kind
            env.ctx = ctx
            env.src_rank = src_rank
            env.tag = tag
            env.world_src = world_src
            env.world_dst = world_dst
            env.seq = seq
            env.nbytes = nbytes
            env.data = data
            env.src_phys = self.proc
            env.dst_phys = dst_phys
            env.msg_id = msg_id
            env.ctrl_key = ctrl_key
            env._refs = 1
            return env
        self.env_allocated += 1
        return Envelope(
            kind=kind,
            ctx=ctx,
            src_rank=src_rank,
            tag=tag,
            world_src=world_src,
            world_dst=world_dst,
            seq=seq,
            nbytes=nbytes,
            data=data,
            src_phys=self.proc,
            dst_phys=dst_phys,
            msg_id=msg_id,
            ctrl_key=ctrl_key,
        )

    def release_env(self, env: Envelope) -> None:
        """Drop one ownership reference; recycle at zero.

        Explicit reset on recycle: the payload and context references are
        cleared so a parked envelope pins nothing.  Envelopes retained via
        :meth:`Envelope.retain` stay live until their holder releases.
        """
        pending = self._guard_pending
        if pending is not None:
            pending.discard(id(env))
        refs = env._refs
        if refs > 1:
            env._refs = refs - 1
            return
        ledger = self._retain_ledger
        if ledger is not None:
            # Last reference dropped: any hook retain was balanced.
            ledger.pop(id(env), None)
        self.env_released += 1
        env.ctx = None
        env.data = None
        pool = self._env_pool
        if self.pool_envelopes and len(pool) < 4096:
            pool.append(env)

    def strand_env(self, env: Envelope, site: str = "abandoned_pipeline") -> None:
        """Account one abandoned ownership reference (fail-stop teardown).

        The refcount discipline mirrors :meth:`release_env`: a strand drops
        the pipeline's reference, and the shell counts as stranded only
        when no retainer still holds it (a retained envelope will still be
        released — or stranded — by its holder).  Stranded shells are not
        pooled: behaviour is identical to the pre-accounting engine, only
        the counter moves.  *site* attributes the strand to the mechanism
        that dropped it (``abandoned_pipeline``, ``duplicate_window``, ...)
        for :attr:`repro.harness.runner.JobResult.stranded_by_site`.
        """
        pending = self._guard_pending
        if pending is not None:
            pending.discard(id(env))
        refs = env._refs
        if refs > 1:
            env._refs = refs - 1
            return
        ledger = self._retain_ledger
        if ledger is not None:
            ledger.pop(id(env), None)
        self.env_stranded += 1
        by_site = self.env_stranded_by_site
        if by_site is None:
            by_site = self.env_stranded_by_site = {}
        by_site[site] = by_site.get(site, 0) + 1
        env.ctx = None
        env.data = None

    def inject(self, env: Envelope, wire_bytes: int) -> Generator:
        """Charge sender overhead and put one frame on the wire.

        The zero-overhead case (LinearCostModel, teaching setups) yields
        nothing; the charge is inlined rather than delegated to
        :meth:`_charge` so the common path allocates no sub-generator.
        The hottest send paths (:meth:`isend`, :meth:`send_ctrl`) inline
        this body outright to skip the sub-generator entirely.
        """
        dst = env.dst_phys
        cost = self._send_row.get(self._node_of[dst])
        if cost is None:
            cost = self._send_cost_to(dst)
        if cost[0] > 0.0:
            try:
                yield cost[0]
            except BaseException:
                # Fail-stop crash mid-charge: the generator is being torn
                # down with the un-injected envelope in hand — account it.
                self.strand_env(env)
                raise
        self.fabric.send(self.proc, dst, wire_bytes, env, env.kind)

    # ----------------------------------------------------------------- send
    def isend(
        self,
        ctx: Any,
        src_rank: int,
        tag: int,
        data: Any,
        world_src: int,
        world_dst: int,
        seq: int,
        dst_phys: int,
        already_copied: bool = False,
        synchronous: bool = False,
        nbytes: Optional[int] = None,
    ) -> Generator[Any, Any, PmlSendRequest]:
        """Post a send.  Generator: charges sender CPU; returns the request.

        Payload is snapshotted here (MPI allows the caller to reuse the
        buffer only after completion, but replication needs a stable copy
        for retention regardless).  ``synchronous`` forces the rendezvous
        protocol whatever the size — MPI_Ssend semantics: completion
        implies the receive has been matched.  Callers that already sized
        the payload may pass ``nbytes`` to skip re-measuring it.
        """
        payload = data if already_copied else copy_payload(data)
        if nbytes is None:
            nbytes = nbytes_of(payload)
        msg_id = self._next_msg_id()
        cost = self._send_row.get(self._node_of[dst_phys])
        if cost is None:
            cost = self._send_cost_to(dst_phys)
        req = PmlSendRequest(dst_phys, nbytes, msg_id)
        self.sends_posted += 1
        # inject() inlined: one application send per call makes the extra
        # sub-generator measurable.  Envelopes are acquired *after* the
        # charge so an abandoned generator (crash mid-charge) strands
        # nothing outside the arena.
        overhead = cost[0]
        if not synchronous and nbytes <= cost[1]:
            if overhead > 0.0:
                yield overhead
            env = self.acquire_env(
                "eager",
                ctx,
                src_rank,
                tag,
                world_src,
                world_dst,
                seq,
                nbytes,
                payload,
                dst_phys,
                msg_id=msg_id,
            )
            self.fabric.send(self.proc, dst_phys, nbytes, env, "eager")
            req.done = True
        else:
            # Rendezvous: RTS now, DATA once the CTS comes back.  The
            # payload-bearing envelope is retained in _rdv_sends (owned by
            # this PML); the RTS on the wire carries no payload.
            if overhead > 0.0:
                yield overhead
            env = self.acquire_env(
                "rts", ctx, src_rank, tag, world_src, world_dst, seq, nbytes, payload, dst_phys, msg_id=msg_id
            )
            rdv = self._rdv_sends
            if rdv is None:
                rdv = self._rdv_sends = {}
            rdv[msg_id] = (req, env)
            rts = self.acquire_env(
                "rts", ctx, src_rank, tag, world_src, world_dst, seq, nbytes, None, dst_phys, msg_id=msg_id
            )
            self.fabric.send(self.proc, dst_phys, RTS_BYTES, rts, "rts")
        return req

    def send_cost(self, dst_phys: int) -> float:
        """Sender CPU overhead toward *dst* (hot-path split of send_ctrl:
        protocols charge this themselves, then call :meth:`inject_ctrl`,
        avoiding a sub-generator per control frame)."""
        cost = self._send_row.get(self._node_of[dst_phys])
        if cost is None:
            cost = self._send_cost_to(dst_phys)
        return cost[0]

    def post_send(
        self,
        ctx: Any,
        src_rank: int,
        tag: int,
        payload: Any,
        world_src: int,
        world_dst: int,
        seq: int,
        dst_phys: int,
        nbytes: int,
        synchronous: bool = False,
    ) -> PmlSendRequest:
        """Non-generator core of :meth:`isend` for pre-charged callers.

        The caller must have snapshotted *payload* (``copy_payload``) and
        charged :meth:`send_cost` already — the protocol fast paths do
        charge-then-post to skip one sub-generator per application send.
        Observationally identical to ``isend(..., already_copied=True)``.
        """
        msg_id = self._next_msg_id()
        cost = self._send_row.get(self._node_of[dst_phys])
        if cost is None:
            cost = self._send_cost_to(dst_phys)
        req = PmlSendRequest(dst_phys, nbytes, msg_id)
        self.sends_posted += 1
        if not synchronous and nbytes <= cost[1]:
            env = self.acquire_env(
                "eager",
                ctx,
                src_rank,
                tag,
                world_src,
                world_dst,
                seq,
                nbytes,
                payload,
                dst_phys,
                msg_id=msg_id,
            )
            self.fabric.send(self.proc, dst_phys, nbytes, env, "eager")
            req.done = True
        else:
            env = self.acquire_env(
                "rts", ctx, src_rank, tag, world_src, world_dst, seq, nbytes, payload, dst_phys, msg_id=msg_id
            )
            rdv = self._rdv_sends
            if rdv is None:
                rdv = self._rdv_sends = {}
            rdv[msg_id] = (req, env)
            rts = self.acquire_env(
                "rts", ctx, src_rank, tag, world_src, world_dst, seq, nbytes, None, dst_phys, msg_id=msg_id
            )
            self.fabric.send(self.proc, dst_phys, RTS_BYTES, rts, "rts")
        return req

    def inject_ctrl(self, dst_phys: int, ctrl_key: str, data: Any, nbytes: int = CTRL_BYTES) -> None:
        """Put one control frame on the wire *without* charging CPU.

        The caller must charge :meth:`send_cost` first (yield the seconds)
        — see :meth:`send_ctrl` for the composed generator form.  The
        envelope and frame both come from the recycling arenas: control
        traffic (acks, decisions) outnumbers application frames under
        replication, so this path is allocation-free at steady state
        (acquire_env inlined — one call per control frame is measurable).
        """
        acquired = self.env_acquired + 1
        self.env_acquired = acquired
        outstanding = acquired - self.env_released - self.env_stranded
        if outstanding > self.env_hw_window:
            self.env_hw_window = outstanding
        pool = self._env_pool
        if pool:
            env = pool.pop()
            env.kind = "ctrl"
            env.ctx = None
            env.src_rank = -1
            env.tag = -1
            env.world_src = -1
            env.world_dst = -1
            env.seq = -1
            env.nbytes = nbytes
            env.data = data
            env.src_phys = self.proc
            env.dst_phys = dst_phys
            env.msg_id = -1
            env.ctrl_key = ctrl_key
            env._refs = 1
        else:
            self.env_allocated += 1
            env = Envelope(
                "ctrl", None, -1, -1, -1, -1, -1, nbytes, data, self.proc, dst_phys, ctrl_key=ctrl_key
            )
        self.fabric.send(self.proc, dst_phys, nbytes, env, "ctrl")

    def send_ctrl(self, dst_phys: int, ctrl_key: str, data: Any, nbytes: int = CTRL_BYTES) -> Generator:
        """Send a protocol-private control frame (never enters matching)."""
        # inject() inlined: ctrl frames (acks, decisions) outnumber
        # application frames under replication.  The envelope is acquired
        # *after* the charge so an abandoned generator leaks nothing.
        cost = self._send_row.get(self._node_of[dst_phys])
        if cost is None:
            cost = self._send_cost_to(dst_phys)
        if cost[0] > 0.0:
            yield cost[0]
        env = self.acquire_env(
            "ctrl", None, -1, -1, -1, -1, -1, nbytes, data, dst_phys, ctrl_key=ctrl_key
        )
        self.fabric.send(self.proc, dst_phys, nbytes, env, "ctrl")

    # ----------------------------------------------------------------- recv
    def irecv(self, ctx: Any, source: int, tag: int, buf: Any = None) -> Generator[Any, Any, PmlRecvRequest]:
        """Post a receive; may match an unexpected message immediately."""
        req = PmlRecvRequest(ctx, source, tag, buf)
        self.recvs_posted += 1
        if source == ANY_SOURCE:
            self.any_source_posts += 1
        env = self.matching.post(req)
        if env is not None:
            yield from self._matched(req, env, from_unexpected=True)
        return req

    def cancel_recv(self, req: PmlRecvRequest) -> bool:
        ok = self.matching.cancel(req)
        if ok:
            req.cancelled = True
            req.done = True
            req.status = Status(cancelled=True)
        return ok

    # ------------------------------------------------------------- progress
    def progress_step(self) -> Generator:
        """Handle one inbound frame, or block until one arrives.

        The *only* place frames are examined — the no-asynchronous-progress
        contract.  Callers loop over this until their completion condition
        holds.
        """
        ep = self.endpoint
        if ep.inbox:
            frame = ep.inbox.popleft()
            yield from self._handle_frame(frame)
        else:
            yield ep  # block on the endpoint (allocation-free waiter)

    def drain(self) -> Generator:
        """Handle all currently-queued frames without blocking (MPI_Test)."""
        ep = self.endpoint
        while ep.inbox:
            frame = ep.inbox.popleft()
            yield from self._handle_frame(frame)

    def _handle_frame(self, frame: Frame) -> Generator:
        # The frame is fully consumed by the field reads below; recycle it
        # immediately (before any yield) so an abandoned generator — a
        # process crashing mid-charge — cannot strand it outside the pool.
        # The envelope's ownership moves from the frame to this PML here.
        # (Fabric.release_frame inlined: once per frame handled.)
        kind = frame.kind
        payload = frame.payload
        src = frame.src
        fabric = self.fabric
        fabric.frames_released += 1
        frame.payload = None
        frame.fabric = None
        fpool = fabric._frame_pool
        if fabric.pool_frames and len(fpool) < 4096:
            fpool.append(frame)
        if kind == "svc":
            key, svc_payload = payload
            handler = self.svc_handlers.get(key)
            if handler is not None:
                yield from handler(svc_payload)
            return
        env: Envelope = payload
        if src >= 0:
            recv_row = self._recv_row
            overhead = recv_row.get(self._node_of[src])
            if overhead is None:
                overhead = fabric.model_for(src, self.proc).recv_overhead
                recv_row[self._node_of[src]] = overhead
            if overhead > 0.0:
                try:
                    yield overhead
                except BaseException:
                    # Crash mid-charge: this PML owns the envelope and the
                    # pipeline is being abandoned — account the strand.
                    self.strand_env(env)
                    raise
        if env.kind == "ctrl":
            handler = self.ctrl_handlers.get(env.ctrl_key)
            if handler is None:
                raise MpiError(f"proc {self.proc}: no handler for ctrl {env.ctrl_key!r}")
            # A handler may be a generator function (driven here) or a
            # plain function returning None — the latter avoids a
            # generator allocation for bookkeeping-only handlers.  Once it
            # returns, the envelope is recycled (handlers hold a borrow —
            # see the ctrl_handlers contract; release_env inlined: ctrl is
            # the majority frame kind under replication).
            gen = handler(env)
            if gen is not None:
                try:
                    yield from gen
                except BaseException:
                    self.strand_env(env)  # handler abandoned mid-borrow
                    raise
            if env._refs > 1:
                env._refs -= 1
            else:
                if self._retain_ledger is not None:
                    self._retain_ledger.pop(id(env), None)
                self.env_released += 1
                env.ctx = None
                env.data = None
                pool = self._env_pool
                if self.pool_envelopes and len(pool) < 4096:
                    pool.append(env)
        elif env.kind == "cts":
            yield from self._handle_cts(env)
        elif env.kind == "data":
            yield from self._handle_rdv_data(env)
        elif env.kind in ("eager", "rts"):
            filt = self._incoming_filter
            if filt is not None:
                # Ownership transfers to the filter: if it withholds the
                # envelope (returns False) it must deliver or release it.
                deliver = yield from filt(env)
                if not deliver:
                    return
            yield from self.deliver_to_matching(env)
        else:  # pragma: no cover - defensive
            raise MpiError(f"unknown frame kind {env.kind!r}")

    #: public alias — the blocking fast paths in :mod:`repro.mpi.api`
    #: inline ``progress_step`` (pop one frame / block) and drive this
    handle_frame = _handle_frame

    # ---------------------------------------------------- matching plumbing
    def deliver_to_matching(self, env: Envelope) -> Generator:
        """Offer an application envelope to MPI matching — consuming it.

        Called from frame handling, and by the replication layer when it
        releases held-back envelopes from its reorder buffer.  Ownership
        contract: this method consumes one reference — the envelope ends
        up either recycled (matched-and-completed) or parked in the
        unexpected queue, whose entries the PML releases when they match
        (or at teardown).
        """
        pending = self._guard_pending
        if pending is not None:
            # Filter-guard bookkeeping: ownership has left the filter.
            pending.discard(id(env))
        recv = self.matching.arrive(env)
        if recv is not None:
            # _matched inlined for the eager case (one call per matched
            # arrival); rendezvous and error paths take the method.
            if env.kind == "eager":
                recv.matched = env
                try:
                    for hook in self.on_match:
                        gen = hook(recv, env)
                        if gen is not None:
                            yield from gen
                    recv.lib_complete = True
                    for hook in self.on_recv_complete:
                        gen = hook(env, recv)
                        if gen is not None:
                            yield from gen
                except BaseException:
                    self.strand_env(env)  # pipeline abandoned mid-hook
                    raise
                # _complete_recv + release_env inlined (once per matched
                # eager; the bufferless receive is the common case).
                recv.data = env.data
                if recv.buf is not None:
                    self._copy_into_buf(recv, env)
                recv.status = Status(env.src_rank, env.tag, env.nbytes)
                recv.done = True
                recv.matched = None  # end of the borrow window
                if env._refs > 1:
                    env._refs -= 1
                else:
                    if self._retain_ledger is not None:
                        self._retain_ledger.pop(id(env), None)
                    self.env_released += 1
                    env.ctx = None
                    env.data = None
                    pool = self._env_pool
                    if self.pool_envelopes and len(pool) < 4096:
                        pool.append(env)
            else:
                yield from self._matched(recv, env, from_unexpected=False)
        else:
            if env.kind == "eager":
                # Fully received at the library level even though unexpected:
                # this *is* irecvComplete for the vProtocol layer (§3.3).
                # (_fire_recv_complete inlined: once per unexpected eager.)
                # The unexpected queue now owns the envelope; hooks borrow.
                for hook in self.on_recv_complete:
                    gen = hook(env, None)
                    if gen is not None:
                        yield from gen
            # rts: nothing to do until a receive is posted.

    def _matched(self, recv: PmlRecvRequest, env: Envelope, from_unexpected: bool) -> Generator:
        recv.matched = env
        if env.kind == "eager":
            try:
                for hook in self.on_match:
                    gen = hook(recv, env)
                    if gen is not None:
                        yield from gen
                if not from_unexpected:
                    # _fire_recv_complete inlined: once per matched eager.
                    recv.lib_complete = True
                    for hook in self.on_recv_complete:
                        gen = hook(env, recv)
                        if gen is not None:
                            yield from gen
            except BaseException:
                self.strand_env(env)  # pipeline abandoned mid-hook
                raise
            # _complete_recv + release_env inlined (the unexpected-queue
            # match is the hot path of every ANY_SOURCE-heavy workload).
            recv.lib_complete = True
            recv.data = env.data
            if recv.buf is not None:
                self._copy_into_buf(recv, env)
            recv.status = Status(env.src_rank, env.tag, env.nbytes)
            recv.done = True
            recv.matched = None  # end of the borrow window
            if env._refs > 1:
                env._refs -= 1
            else:
                if self._retain_ledger is not None:
                    self._retain_ledger.pop(id(env), None)
                self.env_released += 1
                env.ctx = None
                env.data = None
                pool = self._env_pool
                if self.pool_envelopes and len(pool) < 4096:
                    pool.append(env)
        elif env.kind == "rts":
            try:
                for hook in self.on_match:
                    gen = hook(recv, env)
                    if gen is not None:
                        yield from gen
            except BaseException:
                self.strand_env(env)  # pipeline abandoned mid-hook
                raise
            # Clear the sender to transfer the payload.  The RTS is fully
            # consumed by the field reads below; recycle it before the CTS
            # injection can yield (a crash mid-charge then strands only
            # the un-injected CTS, which inject() accounts).
            ctx = env.ctx
            seq = env.seq
            src_phys = env.src_phys
            msg_id = env.msg_id
            rdv = self._rdv_recvs
            if rdv is None:
                rdv = self._rdv_recvs = {}
            rdv[(src_phys, msg_id)] = recv
            recv.matched = None
            self.release_env(env)
            cts = self.acquire_env(
                "cts", ctx, -1, -1, -1, -1, seq, CTS_BYTES, None, src_phys, msg_id=msg_id
            )
            yield from self.inject(cts, CTS_BYTES)
        else:  # pragma: no cover - defensive
            raise MpiError(f"cannot match frame kind {env.kind!r}")

    def _handle_cts(self, cts: Envelope) -> Generator:
        rdv = self._rdv_sends
        entry = rdv.pop(cts.msg_id, None) if rdv is not None else None
        # The CTS is consumed by that single lookup: recycle it before the
        # DATA injection below can yield.
        self.release_env(cts)
        if entry is None:
            return  # send was cancelled (destination died)
        req, env = entry
        if req.cancelled:  # pragma: no cover - cancel also removes the entry
            self.release_env(env)
            return
        data_env = self.acquire_env(
            "data",
            env.ctx,
            env.src_rank,
            env.tag,
            env.world_src,
            env.world_dst,
            env.seq,
            env.nbytes,
            env.data,
            env.dst_phys,
            msg_id=env.msg_id,
        )
        self.release_env(env)
        yield from self.inject(data_env, data_env.nbytes)
        req.done = True

    def _handle_rdv_data(self, env: Envelope) -> Generator:
        rdv = self._rdv_recvs
        recv = rdv.pop((env.src_phys, env.msg_id), None) if rdv is not None else None
        if recv is None:
            self.release_env(env)
            return  # receive was cancelled after CTS
        try:
            yield from self._fire_recv_complete(env, recv)
        except BaseException:
            self.strand_env(env)  # pipeline abandoned mid-hook
            raise
        self._complete_recv(recv, env)
        self.release_env(env)

    def _fire_recv_complete(self, env: Envelope, recv: Optional[PmlRecvRequest]) -> Generator:
        if recv is not None:
            recv.lib_complete = True
        for hook in self.on_recv_complete:
            gen = hook(env, recv)
            if gen is not None:
                yield from gen

    def _copy_into_buf(self, recv: PmlRecvRequest, env: Envelope) -> None:
        """MPI_Recv-into-buffer semantics for the posted-buffer case."""
        if isinstance(recv.buf, np.ndarray) and isinstance(env.data, np.ndarray):
            if env.data.nbytes > recv.buf.nbytes:
                raise TruncationError(
                    f"proc {self.proc}: message of {env.data.nbytes} B truncates "
                    f"buffer of {recv.buf.nbytes} B (ctx={env.ctx}, tag={env.tag})"
                )
            flat = recv.buf.reshape(-1)
            src = env.data.reshape(-1)
            flat[: src.size] = src

    def _complete_recv(self, recv: PmlRecvRequest, env: Envelope) -> None:
        recv.lib_complete = True
        recv.data = env.data
        if recv.buf is not None:
            self._copy_into_buf(recv, env)
        recv.status = Status(env.src_rank, env.tag, env.nbytes)
        recv.done = True

    def cancel_sends_to(self, dst_phys: int) -> int:
        """Cancel outstanding rendezvous sends toward a dead process."""
        cancelled = 0
        rdv = self._rdv_sends
        if rdv is None:
            return 0
        for msg_id, (req, env) in list(rdv.items()):
            if req.dst_phys == dst_phys and not req.done:
                req.cancelled = True
                req.done = True
                del rdv[msg_id]
                self.release_env(env)
                cancelled += 1
        return cancelled

    # -------------------------------------------------------- observability
    def stats(self) -> dict:
        """PML-level counters: posting totals, arena accounting, matching."""
        return {
            "sends_posted": self.sends_posted,
            "recvs_posted": self.recvs_posted,
            "env_acquired": self.env_acquired,
            "env_allocated": self.env_allocated,
            "env_released": self.env_released,
            "env_stranded": self.env_stranded,
            "env_stranded_by_site": dict(self.env_stranded_by_site or ()),
            "env_pool_size": len(self._env_pool),
            "env_high_water": max(self.env_high_water, self.env_hw_window),
            "env_trimmed": self.env_trimmed,
            **self.matching.stats(),
        }

    # Retain a small cushion above the windowed high-water so a burst one
    # envelope taller than the last window does not immediately re-allocate.
    TRIM_SLACK = 32

    def trim_env_pool(self) -> int:
        """Quiescent-point arena trim: cap the free list at the recent burst.

        Called by the harness trimmer from the kernel's ``on_advance`` hook
        (between timestamp batches, never mid-batch), so no in-flight
        owner can be holding a shell the trim would drop.  Folds the
        acquire-side window into the run high-water, drops pooled shells
        beyond ``window + TRIM_SLACK``, and restarts the window at the
        currently outstanding count.  Without this, one peak burst sizes
        the free list for the rest of the run.
        """
        window = self.env_hw_window
        if window > self.env_high_water:
            self.env_high_water = window
        pool = self._env_pool
        bound = window + self.TRIM_SLACK
        dropped = len(pool) - bound
        if dropped > 0:
            del pool[bound:]
            self.env_trimmed += dropped
        else:
            dropped = 0
        self.env_hw_window = self.env_acquired - self.env_released - self.env_stranded
        return dropped

    def reap(self) -> int:
        """End-of-run teardown: release everything still parked here.

        Frames sitting in the inbox (e.g. a mirror duplicate that arrived
        after every application finished) and envelopes parked in the
        unexpected queue are well-defined leftovers of a completed run —
        returning them to the arenas is what lets the harness assert that
        every acquire was matched by a release.  Rendezvous retention is
        reaped too, though on a crash-free run it is empty (an incomplete
        send implies a blocked process, which the deadlock detector
        reports first).  Returns the number of envelopes released (strand
        attribution for retired stacks).
        """
        reaped = 0
        ep = self.endpoint
        while ep.inbox:
            frame = ep.inbox.popleft()
            payload = frame.payload
            kind = frame.kind
            self._release_frame(frame)
            if kind != "svc" and isinstance(payload, Envelope):
                self.release_env(payload)
                reaped += 1
        for env in self.matching.drain_unexpected():
            self.release_env(env)
            reaped += 1
        rdv = self._rdv_sends
        if rdv is not None:
            reaped += len(rdv)
            for _req, env in rdv.values():
                self.release_env(env)
            rdv.clear()
        return reaped

    def reap_retain_ledger(self) -> int:
        """Strand every hook retain that was never balanced — loudly.

        Runs after the protocol/PML reaps (a protocol whose teardown
        releases its retains clears its ledger entries on the way).
        Whatever is still here is a hook that called ``env.retain()`` and
        forgot the balancing :meth:`release_env`: the outstanding
        references are dropped so the arena balance stays provable
        (``unbalanced_retain`` strand site), and a violation naming the
        hook is recorded for the harness to raise.  Only populated when
        the runtime ownership guard wrapped the hooks
        (:func:`repro.core.interpose.guard_hook`).
        """
        ledger = self._retain_ledger
        if not ledger:
            return 0
        violations = self.guard_violations
        if violations is None:
            violations = self.guard_violations = []
        reaped = 0
        for env, hook_name in list(ledger.values()):
            violations.append(
                f"hook {hook_name!r} on proc {self.proc} retained an envelope "
                f"(kind={env.kind!r}, seq={env.seq}) without the balancing "
                "pml.release_env — every Envelope.retain() must be released "
                "(see the ownership contract in repro.core.interpose)"
            )
            # Drop every outstanding reference; the terminal strand pops
            # the ledger entry itself.
            while env._refs > 1:
                env._refs -= 1
            self.strand_env(env, "unbalanced_retain")
            reaped += 1
        ledger.clear()
        return reaped
