"""Point-to-point Management Layer (the ob1 analogue).

Implements eager and rendezvous transfer protocols over the fabric, message
matching, and — crucially for this paper — the interposition surface the
replication layer uses (§4.1):

* ``on_match`` hooks fire at the ``pml_match`` event: an incoming message
  has been paired with a posted receive (first packet arrived);
* ``on_recv_complete`` hooks fire at the ``pml_recv_complete`` event: a
  message is *fully received at the library level* — for eager messages this
  is frame arrival (even if the receive has not been posted yet), for
  rendezvous it is arrival of the DATA frame.  SDR-MPI sends its acks here
  (§3.3, Algorithm 1 line 15);
* ``incoming_filter`` lets a protocol intercept application envelopes before
  matching (SDR-MPI uses this for duplicate suppression and per-channel
  in-order release);
* ``ctrl_handlers`` dispatch protocol-private frames (acks, leader
  decisions, hashes, recovery notices) that never touch MPI matching.

Cost accounting: every injected frame charges the sender
``model.send_overhead`` of CPU busy time; every handled frame charges the
receiver ``model.recv_overhead``.  Wire serialization and propagation are
charged by the fabric.  There is **no asynchronous progress**: frames are
handled only inside :meth:`Pml.progress_step`, which runs only while the
owning process executes an MPI call.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

import numpy as np

from repro.mpi.datatypes import copy_payload, nbytes_of
from repro.mpi.errors import MpiError, TruncationError
from repro.mpi.matching import MatchEngine
from repro.mpi.status import Status
from repro.network.fabric import Fabric, Frame
from repro.sim.kernel import Simulator

__all__ = [
    "Envelope",
    "Pml",
    "PmlRecvRequest",
    "PmlSendRequest",
    "RTS_BYTES",
    "CTS_BYTES",
    "CTRL_BYTES",
]

#: wire size of a rendezvous request-to-send frame
RTS_BYTES = 64
#: wire size of a clear-to-send frame
CTS_BYTES = 32
#: default wire size of protocol control frames (acks etc.)
CTRL_BYTES = 32


class Envelope:
    """Everything the PML knows about a message.

    ``src_rank`` is the sender's rank *within the matching context* (what
    MPI matching sees); ``world_src``/``world_dst`` are logical world ranks
    (what the replication protocol keys on); ``seq`` is the per
    (world_src → world_dst) application-message sequence number, identical
    across replicas by send-determinism.

    A ``__slots__`` class rather than a dataclass: one envelope per frame
    makes its construction part of the per-message critical path.
    """

    __slots__ = (
        "kind",
        "ctx",
        "src_rank",
        "tag",
        "world_src",
        "world_dst",
        "seq",
        "nbytes",
        "data",
        "src_phys",
        "dst_phys",
        "msg_id",
        "ctrl_key",
    )

    def __init__(
        self,
        kind: str,  # 'eager' | 'rts' | 'cts' | 'data' | 'ctrl'
        ctx: Any,
        src_rank: int,
        tag: int,
        world_src: int,
        world_dst: int,
        seq: int,
        nbytes: int,
        data: Any,
        src_phys: int,
        dst_phys: int,
        msg_id: int = -1,
        ctrl_key: str = "",
    ) -> None:
        self.kind = kind
        self.ctx = ctx
        self.src_rank = src_rank
        self.tag = tag
        self.world_src = world_src
        self.world_dst = world_dst
        self.seq = seq
        self.nbytes = nbytes
        self.data = data
        self.src_phys = src_phys
        self.dst_phys = dst_phys
        self.msg_id = msg_id
        self.ctrl_key = ctrl_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Envelope(kind={self.kind!r}, ctx={self.ctx!r}, src_rank={self.src_rank}, "
            f"tag={self.tag}, world_src={self.world_src}, world_dst={self.world_dst}, "
            f"seq={self.seq}, nbytes={self.nbytes}, src_phys={self.src_phys}, "
            f"dst_phys={self.dst_phys}, msg_id={self.msg_id}, ctrl_key={self.ctrl_key!r})"
        )

    def clone_for(self, dst_phys: int) -> "Envelope":
        """Copy addressed to a different physical destination (mirror/resend)."""
        return Envelope(
            kind=self.kind,
            ctx=self.ctx,
            src_rank=self.src_rank,
            tag=self.tag,
            world_src=self.world_src,
            world_dst=self.world_dst,
            seq=self.seq,
            nbytes=self.nbytes,
            data=self.data,
            src_phys=self.src_phys,
            dst_phys=dst_phys,
            msg_id=self.msg_id,
            ctrl_key=self.ctrl_key,
        )


class PmlSendRequest:
    """Library-level send request: done at ``isendComplete``."""

    __slots__ = ("dst_phys", "nbytes", "done", "msg_id", "envelope", "cancelled")

    def __init__(self, dst_phys: int, nbytes: int, msg_id: int, envelope: Envelope) -> None:
        self.dst_phys = dst_phys
        self.nbytes = nbytes
        self.msg_id = msg_id
        self.envelope = envelope
        self.done = False
        self.cancelled = False


class PmlRecvRequest:
    """Library-level receive request.

    ``lib_complete`` mirrors the paper's ``irecvComplete``: payload fully in
    the library.  ``done`` is application-level completion (payload copied
    into the user buffer, status filled).
    """

    __slots__ = (
        "ctx",
        "source",
        "tag",
        "buf",
        "done",
        "lib_complete",
        "matched",
        "data",
        "status",
        "cancelled",
    )

    def __init__(self, ctx: Any, source: int, tag: int, buf: Any = None) -> None:
        self.ctx = ctx
        self.source = source
        self.tag = tag
        self.buf = buf
        self.done = False
        self.lib_complete = False
        self.matched: Optional[Envelope] = None
        self.data: Any = None
        self.status: Optional[Status] = None
        self.cancelled = False


HookFn = Callable[..., Optional[Generator]]


class Pml:
    """Per-physical-process point-to-point layer."""

    def __init__(self, sim: Simulator, fabric: Fabric, proc: int) -> None:
        self.sim = sim
        self.fabric = fabric
        self.proc = proc
        self.endpoint = fabric.endpoint(proc)
        self.matching = MatchEngine()
        self._msg_id = 0
        # outstanding rendezvous state
        self._rdv_sends: Dict[int, Tuple[PmlSendRequest, Envelope]] = {}
        self._rdv_recvs: Dict[Tuple[int, int], PmlRecvRequest] = {}
        # interposition surface
        self.on_match: List[HookFn] = []
        self.on_recv_complete: List[HookFn] = []
        self.incoming_filter: Optional[Callable[[Envelope], Generator]] = None
        #: ctrl envelopes are pool-recycled the moment a handler returns —
        #: handlers must copy out whatever they need and never retain the
        #: envelope object itself (every in-tree handler complies)
        self.ctrl_handlers: Dict[str, Callable[[Envelope], Generator]] = {}
        self.svc_handlers: Dict[str, Callable[[Any], Generator]] = {}
        #: free list for the protocol-private envelope kinds (see
        #: :meth:`_acquire_env`)
        self._env_pool: List[Envelope] = []
        # Per-peer cost caches (models are immutable for a job's lifetime):
        # dst -> (send_overhead, eager_limit), src -> recv_overhead.  One
        # dict probe per frame instead of fabric/placement lookups.
        self._send_cost: Dict[int, Tuple[float, int]] = {}
        self._recv_cost: Dict[int, float] = {}
        # counters
        self.sends_posted = 0
        self.recvs_posted = 0

    # ------------------------------------------------------------ utilities
    def _next_msg_id(self) -> int:
        self._msg_id += 1
        return self._msg_id

    def model_to(self, dst_phys: int):
        return self.fabric.model_for(self.proc, dst_phys)

    def _charge(self, seconds: float) -> Generator:
        if seconds > 0.0:
            yield seconds

    def _send_cost_to(self, dst: int) -> Tuple[float, int]:
        cost = self._send_cost.get(dst)
        if cost is None:
            model = self.fabric.model_for(self.proc, dst)
            cost = (model.send_overhead, model.eager_limit)
            self._send_cost[dst] = cost
        return cost

    # ------------------------------------------------------- envelope arena
    def _acquire_env(
        self,
        kind: str,
        ctx: Any,
        src_rank: int,
        tag: int,
        world_src: int,
        world_dst: int,
        seq: int,
        nbytes: int,
        data: Any,
        dst_phys: int,
        msg_id: int = -1,
        ctrl_key: str = "",
    ) -> Envelope:
        """Pool-backed Envelope for the *protocol-private* kinds.

        Only ``ctrl`` and ``cts`` envelopes recycle through the arena: they
        are born in the PML (or a protocol's charge-then-inject split),
        consumed exactly once inside :meth:`_handle_frame`/:meth:`_handle_cts`
        on the receiving side, and never touch the interposition surface.
        Application envelopes (``eager``/``rts``/``data``) are **never**
        pooled — matching queues, reorder buffers, ``on_match`` /
        ``on_recv_complete`` hooks and request handles may all legitimately
        retain them (and tests do).
        """
        pool = self._env_pool
        if pool:
            env = pool.pop()
            env.kind = kind
            env.ctx = ctx
            env.src_rank = src_rank
            env.tag = tag
            env.world_src = world_src
            env.world_dst = world_dst
            env.seq = seq
            env.nbytes = nbytes
            env.data = data
            env.src_phys = self.proc
            env.dst_phys = dst_phys
            env.msg_id = msg_id
            env.ctrl_key = ctrl_key
            return env
        return Envelope(
            kind=kind,
            ctx=ctx,
            src_rank=src_rank,
            tag=tag,
            world_src=world_src,
            world_dst=world_dst,
            seq=seq,
            nbytes=nbytes,
            data=data,
            src_phys=self.proc,
            dst_phys=dst_phys,
            msg_id=msg_id,
            ctrl_key=ctrl_key,
        )

    def _release_env(self, env: Envelope) -> None:
        """Explicit reset + return to the arena: drop the payload and
        context references so a parked envelope pins nothing."""
        env.ctx = None
        env.data = None
        pool = self._env_pool
        if len(pool) < 4096:
            pool.append(env)

    def inject(self, env: Envelope, wire_bytes: int) -> Generator:
        """Charge sender overhead and put one frame on the wire.

        The zero-overhead case (LinearCostModel, teaching setups) yields
        nothing; the charge is inlined rather than delegated to
        :meth:`_charge` so the common path allocates no sub-generator.
        The hottest send paths (:meth:`isend`, :meth:`send_ctrl`) inline
        this body outright to skip the sub-generator entirely.
        """
        dst = env.dst_phys
        cost = self._send_cost.get(dst)
        if cost is None:
            cost = self._send_cost_to(dst)
        if cost[0] > 0.0:
            yield cost[0]
        self.fabric.send(self.proc, dst, wire_bytes, env, env.kind)

    # ----------------------------------------------------------------- send
    def isend(
        self,
        ctx: Any,
        src_rank: int,
        tag: int,
        data: Any,
        world_src: int,
        world_dst: int,
        seq: int,
        dst_phys: int,
        already_copied: bool = False,
        synchronous: bool = False,
        nbytes: Optional[int] = None,
    ) -> Generator[Any, Any, PmlSendRequest]:
        """Post a send.  Generator: charges sender CPU; returns the request.

        Payload is snapshotted here (MPI allows the caller to reuse the
        buffer only after completion, but replication needs a stable copy
        for retention regardless).  ``synchronous`` forces the rendezvous
        protocol whatever the size — MPI_Ssend semantics: completion
        implies the receive has been matched.  Callers that already sized
        the payload may pass ``nbytes`` to skip re-measuring it.
        """
        payload = data if already_copied else copy_payload(data)
        if nbytes is None:
            nbytes = nbytes_of(payload)
        msg_id = self._next_msg_id()
        cost = self._send_cost.get(dst_phys)
        if cost is None:
            cost = self._send_cost_to(dst_phys)
        kind = "eager" if (not synchronous and nbytes <= cost[1]) else "rts"
        env = Envelope(
            kind=kind,
            ctx=ctx,
            src_rank=src_rank,
            tag=tag,
            world_src=world_src,
            world_dst=world_dst,
            seq=seq,
            nbytes=nbytes,
            data=payload,
            src_phys=self.proc,
            dst_phys=dst_phys,
            msg_id=msg_id,
        )
        req = PmlSendRequest(dst_phys, nbytes, msg_id, env)
        self.sends_posted += 1
        # inject() inlined: one application send per call makes the extra
        # sub-generator measurable.
        overhead = cost[0]
        if kind == "eager":
            if overhead > 0.0:
                yield overhead
            self.fabric.send(self.proc, dst_phys, nbytes, env, "eager")
            req.done = True
        else:
            # Rendezvous: RTS now, DATA once the CTS comes back.
            rts = env.clone_for(dst_phys)
            rts.kind = "rts"
            rts.data = None
            self._rdv_sends[msg_id] = (req, env)
            if overhead > 0.0:
                yield overhead
            self.fabric.send(self.proc, dst_phys, RTS_BYTES, rts, "rts")
        return req

    def send_cost(self, dst_phys: int) -> float:
        """Sender CPU overhead toward *dst* (hot-path split of send_ctrl:
        protocols charge this themselves, then call :meth:`inject_ctrl`,
        avoiding a sub-generator per control frame)."""
        cost = self._send_cost.get(dst_phys)
        if cost is None:
            cost = self._send_cost_to(dst_phys)
        return cost[0]

    def post_send(
        self,
        ctx: Any,
        src_rank: int,
        tag: int,
        payload: Any,
        world_src: int,
        world_dst: int,
        seq: int,
        dst_phys: int,
        nbytes: int,
        synchronous: bool = False,
    ) -> PmlSendRequest:
        """Non-generator core of :meth:`isend` for pre-charged callers.

        The caller must have snapshotted *payload* (``copy_payload``) and
        charged :meth:`send_cost` already — the protocol fast paths do
        charge-then-post to skip one sub-generator per application send.
        Observationally identical to ``isend(..., already_copied=True)``.
        """
        msg_id = self._next_msg_id()
        cost = self._send_cost.get(dst_phys)
        if cost is None:
            cost = self._send_cost_to(dst_phys)
        kind = "eager" if (not synchronous and nbytes <= cost[1]) else "rts"
        env = Envelope(
            kind=kind,
            ctx=ctx,
            src_rank=src_rank,
            tag=tag,
            world_src=world_src,
            world_dst=world_dst,
            seq=seq,
            nbytes=nbytes,
            data=payload,
            src_phys=self.proc,
            dst_phys=dst_phys,
            msg_id=msg_id,
        )
        req = PmlSendRequest(dst_phys, nbytes, msg_id, env)
        self.sends_posted += 1
        if kind == "eager":
            self.fabric.send(self.proc, dst_phys, nbytes, env, "eager")
            req.done = True
        else:
            rts = env.clone_for(dst_phys)
            rts.kind = "rts"
            rts.data = None
            self._rdv_sends[msg_id] = (req, env)
            self.fabric.send(self.proc, dst_phys, RTS_BYTES, rts, "rts")
        return req

    def inject_ctrl(self, dst_phys: int, ctrl_key: str, data: Any, nbytes: int = CTRL_BYTES) -> None:
        """Put one control frame on the wire *without* charging CPU.

        The caller must charge :meth:`send_cost` first (yield the seconds)
        — see :meth:`send_ctrl` for the composed generator form.  The
        envelope and frame both come from the recycling arenas: control
        traffic (acks, decisions) outnumbers application frames under
        replication, so this path is allocation-free at steady state.
        """
        env = self._acquire_env(
            "ctrl", None, -1, -1, -1, -1, -1, nbytes, data, dst_phys, ctrl_key=ctrl_key
        )
        self.fabric.send(self.proc, dst_phys, nbytes, env, "ctrl")

    def send_ctrl(self, dst_phys: int, ctrl_key: str, data: Any, nbytes: int = CTRL_BYTES) -> Generator:
        """Send a protocol-private control frame (never enters matching)."""
        # inject() inlined: ctrl frames (acks, decisions) outnumber
        # application frames under replication.  The envelope is acquired
        # *after* the charge so an abandoned generator leaks nothing.
        cost = self._send_cost.get(dst_phys)
        if cost is None:
            cost = self._send_cost_to(dst_phys)
        if cost[0] > 0.0:
            yield cost[0]
        env = self._acquire_env(
            "ctrl", None, -1, -1, -1, -1, -1, nbytes, data, dst_phys, ctrl_key=ctrl_key
        )
        self.fabric.send(self.proc, dst_phys, nbytes, env, "ctrl")

    # ----------------------------------------------------------------- recv
    def irecv(self, ctx: Any, source: int, tag: int, buf: Any = None) -> Generator[Any, Any, PmlRecvRequest]:
        """Post a receive; may match an unexpected message immediately."""
        req = PmlRecvRequest(ctx, source, tag, buf)
        self.recvs_posted += 1
        env = self.matching.post(req)
        if env is not None:
            yield from self._matched(req, env, from_unexpected=True)
        return req

    def cancel_recv(self, req: PmlRecvRequest) -> bool:
        ok = self.matching.cancel(req)
        if ok:
            req.cancelled = True
            req.done = True
            req.status = Status(cancelled=True)
        return ok

    # ------------------------------------------------------------- progress
    def progress_step(self) -> Generator:
        """Handle one inbound frame, or block until one arrives.

        The *only* place frames are examined — the no-asynchronous-progress
        contract.  Callers loop over this until their completion condition
        holds.
        """
        ep = self.endpoint
        if ep.inbox:
            frame = ep.inbox.popleft()
            yield from self._handle_frame(frame)
        else:
            yield ep  # block on the endpoint (allocation-free waiter)

    def drain(self) -> Generator:
        """Handle all currently-queued frames without blocking (MPI_Test)."""
        ep = self.endpoint
        while ep.inbox:
            frame = ep.inbox.popleft()
            yield from self._handle_frame(frame)

    def _handle_frame(self, frame: Frame) -> Generator:
        # The frame is fully consumed by the field reads below; recycle it
        # immediately (before any yield) so an abandoned generator — a
        # process crashing mid-charge — cannot strand it outside the pool.
        kind = frame.kind
        payload = frame.payload
        src = frame.src
        self.fabric.release_frame(frame)
        if kind == "svc":
            key, svc_payload = payload
            handler = self.svc_handlers.get(key)
            if handler is not None:
                yield from handler(svc_payload)
            return
        env: Envelope = payload
        if src >= 0:
            overhead = self._recv_cost.get(src)
            if overhead is None:
                overhead = self.fabric.model_for(src, self.proc).recv_overhead
                self._recv_cost[src] = overhead
            if overhead > 0.0:
                yield overhead
        if env.kind == "ctrl":
            handler = self.ctrl_handlers.get(env.ctrl_key)
            if handler is None:
                raise MpiError(f"proc {self.proc}: no handler for ctrl {env.ctrl_key!r}")
            # A handler may be a generator function (driven here) or a
            # plain function returning None — the latter avoids a
            # generator allocation for bookkeeping-only handlers.  Once it
            # returns, the envelope is recycled (handlers never retain it —
            # see the ctrl_handlers contract).
            gen = handler(env)
            if gen is not None:
                yield from gen
            self._release_env(env)
        elif env.kind == "cts":
            yield from self._handle_cts(env)
        elif env.kind == "data":
            yield from self._handle_rdv_data(env)
        elif env.kind in ("eager", "rts"):
            if self.incoming_filter is not None:
                deliver = yield from self.incoming_filter(env)
                if not deliver:
                    return
            yield from self.deliver_to_matching(env)
        else:  # pragma: no cover - defensive
            raise MpiError(f"unknown frame kind {env.kind!r}")

    #: public alias — the blocking fast paths in :mod:`repro.mpi.api`
    #: inline ``progress_step`` (pop one frame / block) and drive this
    handle_frame = _handle_frame

    # ---------------------------------------------------- matching plumbing
    def deliver_to_matching(self, env: Envelope) -> Generator:
        """Offer an application envelope to MPI matching.

        Called from frame handling, and by the replication layer when it
        releases held-back envelopes from its reorder buffer.
        """
        recv = self.matching.arrive(env)
        if recv is not None:
            # _matched inlined for the eager case (one call per matched
            # arrival); rendezvous and error paths take the method.
            if env.kind == "eager":
                recv.matched = env
                for hook in self.on_match:
                    gen = hook(recv, env)
                    if gen is not None:
                        yield from gen
                recv.lib_complete = True
                for hook in self.on_recv_complete:
                    gen = hook(env, recv)
                    if gen is not None:
                        yield from gen
                self._complete_recv(recv, env)
            else:
                yield from self._matched(recv, env, from_unexpected=False)
        else:
            if env.kind == "eager":
                # Fully received at the library level even though unexpected:
                # this *is* irecvComplete for the vProtocol layer (§3.3).
                # (_fire_recv_complete inlined: once per unexpected eager.)
                for hook in self.on_recv_complete:
                    gen = hook(env, None)
                    if gen is not None:
                        yield from gen
            # rts: nothing to do until a receive is posted.

    def _matched(self, recv: PmlRecvRequest, env: Envelope, from_unexpected: bool) -> Generator:
        recv.matched = env
        for hook in self.on_match:
            gen = hook(recv, env)
            if gen is not None:
                yield from gen
        if env.kind == "eager":
            if not from_unexpected:
                # _fire_recv_complete inlined: once per matched eager.
                recv.lib_complete = True
                for hook in self.on_recv_complete:
                    gen = hook(env, recv)
                    if gen is not None:
                        yield from gen
            self._complete_recv(recv, env)
        elif env.kind == "rts":
            # Clear the sender to transfer the payload.
            self._rdv_recvs[(env.src_phys, env.msg_id)] = recv
            cts = self._acquire_env(
                "cts", env.ctx, -1, -1, -1, -1, env.seq, CTS_BYTES, None,
                env.src_phys, msg_id=env.msg_id,
            )
            yield from self.inject(cts, CTS_BYTES)
        else:  # pragma: no cover - defensive
            raise MpiError(f"cannot match frame kind {env.kind!r}")

    def _handle_cts(self, cts: Envelope) -> Generator:
        entry = self._rdv_sends.pop(cts.msg_id, None)
        # The CTS is consumed by that single lookup: recycle it before the
        # DATA injection below can yield.
        self._release_env(cts)
        if entry is None:
            return  # send was cancelled (destination died)
        req, env = entry
        if req.cancelled:
            return
        data_env = env.clone_for(env.dst_phys)
        data_env.kind = "data"
        yield from self.inject(data_env, data_env.nbytes)
        req.done = True

    def _handle_rdv_data(self, env: Envelope) -> Generator:
        recv = self._rdv_recvs.pop((env.src_phys, env.msg_id), None)
        if recv is None:
            return  # receive was cancelled after CTS
        yield from self._fire_recv_complete(env, recv)
        self._complete_recv(recv, env)

    def _fire_recv_complete(self, env: Envelope, recv: Optional[PmlRecvRequest]) -> Generator:
        if recv is not None:
            recv.lib_complete = True
        for hook in self.on_recv_complete:
            gen = hook(env, recv)
            if gen is not None:
                yield from gen

    def _complete_recv(self, recv: PmlRecvRequest, env: Envelope) -> None:
        recv.lib_complete = True
        recv.data = env.data
        if recv.buf is not None and isinstance(recv.buf, np.ndarray) and isinstance(env.data, np.ndarray):
            if env.data.nbytes > recv.buf.nbytes:
                raise TruncationError(
                    f"proc {self.proc}: message of {env.data.nbytes} B truncates "
                    f"buffer of {recv.buf.nbytes} B (ctx={env.ctx}, tag={env.tag})"
                )
            flat = recv.buf.reshape(-1)
            src = env.data.reshape(-1)
            flat[: src.size] = src
        recv.status = Status(source=env.src_rank, tag=env.tag, nbytes=env.nbytes)
        recv.done = True

    def cancel_sends_to(self, dst_phys: int) -> int:
        """Cancel outstanding rendezvous sends toward a dead process."""
        cancelled = 0
        for msg_id, (req, _env) in list(self._rdv_sends.items()):
            if req.dst_phys == dst_phys and not req.done:
                req.cancelled = True
                req.done = True
                del self._rdv_sends[msg_id]
                cancelled += 1
        return cancelled
