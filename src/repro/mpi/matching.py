"""Message matching: posted-receive queue and unexpected-message queue.

MPI matching rules implemented here:

* a receive matches a message when contexts are equal, the receive's source
  is :data:`~repro.mpi.status.ANY_SOURCE` or equals the message's source
  rank, and the receive's tag is :data:`~repro.mpi.status.ANY_TAG` or equals
  the message's tag;
* *non-overtaking*: messages are considered in arrival order, receives in
  posting order — the first compatible pair matches;
* a message that matches no posted receive is queued as *unexpected* (the
  paper's §3.1 points out that leader-based replication inflates this queue;
  we count hits so the ablation can measure it).

Two implementations share that contract:

:class:`MatchEngine` (the default) indexes both queues by
``(ctx, source, tag)`` *pattern lanes* so every operation touches a handful
of deque heads instead of scanning the whole queue.  A posted receive lives
in exactly one lane — the lane of its own pattern, wildcards included.  An
arriving envelope can be claimed by at most four patterns
(``(ctx, src, tag)``, ``(ctx, src, ANY)``, ``(ctx, ANY, tag)``,
``(ctx, ANY, ANY)``), so ``arrive`` peeks four lane heads and takes the
earliest-posted candidate — which is exactly the "first compatible receive
in posting order" rule.  Symmetrically, an unexpected envelope is appended
to all four of its pattern lanes; ``post`` looks up the single lane of the
receive's own pattern and claims the head.  Claimed/cancelled entries are
tombstoned in place and dropped lazily when they surface at a lane head,
keeping every operation amortized O(1) — the seed engine's linear scans
made the §3.1 leader ablation quadratic in the unexpected-queue depth.

:class:`LinearMatchEngine` is the seed engine's O(n)-scan implementation,
kept as the executable specification: the property tests in
``tests/test_matching_equivalence.py`` drive both engines with randomized
post/arrive/cancel/probe streams (including wildcards) and require
identical pairing decisions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.mpi.status import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.pml import Envelope, PmlRecvRequest

__all__ = ["MatchEngine", "LinearMatchEngine"]

#: tombstone indices into lane entries ([order_seq, item, alive])
_SEQ, _ITEM, _ALIVE = 0, 1, 2


def _compatible(recv: "PmlRecvRequest", env: "Envelope") -> bool:
    if recv.ctx != env.ctx:
        return False
    if recv.source != ANY_SOURCE and recv.source != env.src_rank:
        return False
    if recv.tag != ANY_TAG and recv.tag != env.tag:
        return False
    return True


class MatchEngine:
    """Per-process matching state, indexed by (ctx, source, tag) lanes."""

    __slots__ = (
        "_posted_lanes",
        "_posted_entry",
        "_posted_seq",
        "_posted_pending",
        "_unexpected_lanes",
        "_unexpected_seq",
        "_unexpected_pending",
        "unexpected_count",
        "unexpected_peak",
    )

    def __init__(self) -> None:
        #: posting-order lanes: pattern key -> deque of [seq, recv, alive]
        self._posted_lanes: Dict[Tuple, Deque[list]] = {}
        #: recv identity -> its lane entry (for O(1) cancel)
        self._posted_entry: Dict[int, list] = {}
        self._posted_seq = 0
        self._posted_pending = 0
        #: arrival-order lanes: pattern key -> deque of [seq, env, alive];
        #: each envelope appears in all four patterns that could claim it
        self._unexpected_lanes: Dict[Tuple, Deque[list]] = {}
        self._unexpected_seq = 0
        self._unexpected_pending = 0
        #: number of messages that arrived before their receive was posted
        self.unexpected_count = 0
        #: high-water mark of the unexpected queue
        self.unexpected_peak = 0

    # ----------------------------------------------------- diagnostic views
    @property
    def posted(self) -> List["PmlRecvRequest"]:
        """Pending posted receives in posting order (diagnostics/tests)."""
        entries = [e for lane in self._posted_lanes.values() for e in lane if e[_ALIVE]]
        entries.sort(key=lambda e: e[_SEQ])
        return [e[_ITEM] for e in entries]

    @property
    def unexpected(self) -> List["Envelope"]:
        """Pending unexpected envelopes in arrival order (diagnostics/tests)."""
        seen: Dict[int, list] = {}
        for lane in self._unexpected_lanes.values():
            for e in lane:
                if e[_ALIVE]:
                    seen[e[_SEQ]] = e
        return [seen[s][_ITEM] for s in sorted(seen)]

    # ----------------------------------------------------------- post side
    def post(self, recv: "PmlRecvRequest") -> Optional["Envelope"]:
        """Register a receive; returns an unexpected envelope if one matches."""
        lane = self._unexpected_lanes.get((recv.ctx, recv.source, recv.tag))
        if lane:
            while lane:
                entry = lane[0]
                if entry[_ALIVE]:
                    env = entry[_ITEM]
                    entry[_ALIVE] = False
                    # The entry list is shared by this envelope's other
                    # three pattern lanes; dropping the item reference now
                    # frees the envelope (and its payload) even though the
                    # tombstones are only compacted when they surface at a
                    # lane head.
                    entry[_ITEM] = None
                    lane.popleft()
                    self._unexpected_pending -= 1
                    return env
                lane.popleft()
        self._posted_seq += 1
        entry = [self._posted_seq, recv, True]
        key = (recv.ctx, recv.source, recv.tag)
        posted_lane = self._posted_lanes.get(key)
        if posted_lane is None:
            posted_lane = self._posted_lanes[key] = deque()
        posted_lane.append(entry)
        self._posted_entry[id(recv)] = entry
        self._posted_pending += 1
        return None

    def cancel(self, recv: "PmlRecvRequest") -> bool:
        """Remove a posted receive; False if it already matched."""
        entry = self._posted_entry.pop(id(recv), None)
        if entry is None or not entry[_ALIVE]:
            return False
        entry[_ALIVE] = False
        entry[_ITEM] = None  # free the request; the lane holds a tombstone
        self._posted_pending -= 1
        return True

    # -------------------------------------------------------- arrival side
    def arrive(self, env: "Envelope") -> Optional["PmlRecvRequest"]:
        """Offer an arriving envelope; returns the matching posted receive,
        or None after queuing the envelope as unexpected."""
        ctx = env.ctx
        src = env.src_rank
        tag = env.tag
        lanes = self._posted_lanes
        best_entry = None
        best_lane = None
        for key in (
            (ctx, src, tag),
            (ctx, src, ANY_TAG),
            (ctx, ANY_SOURCE, tag),
            (ctx, ANY_SOURCE, ANY_TAG),
        ):
            lane = lanes.get(key)
            if not lane:
                continue
            # Drop tombstones (matched or cancelled receives) at the head.
            while lane:
                head = lane[0]
                if head[_ALIVE]:
                    break
                lane.popleft()
            if lane:
                head = lane[0]
                if best_entry is None or head[_SEQ] < best_entry[_SEQ]:
                    best_entry = head
                    best_lane = lane
        if best_entry is not None:
            best_entry[_ALIVE] = False
            best_lane.popleft()
            recv = best_entry[_ITEM]
            del self._posted_entry[id(recv)]
            self._posted_pending -= 1
            return recv
        # Unexpected: enqueue under every pattern that could later claim it.
        self._unexpected_seq += 1
        entry = [self._unexpected_seq, env, True]
        for key in (
            (ctx, src, tag),
            (ctx, src, ANY_TAG),
            (ctx, ANY_SOURCE, tag),
            (ctx, ANY_SOURCE, ANY_TAG),
        ):
            lane = self._unexpected_lanes.get(key)
            if lane is None:
                lane = self._unexpected_lanes[key] = deque()
            lane.append(entry)
        self._unexpected_pending += 1
        self.unexpected_count += 1
        if self._unexpected_pending > self.unexpected_peak:
            self.unexpected_peak = self._unexpected_pending
        return None

    # ------------------------------------------------------------- queries
    def probe(self, ctx, source: int, tag: int) -> Optional["Envelope"]:
        """First unexpected envelope compatible with (ctx, source, tag)."""
        lane = self._unexpected_lanes.get((ctx, source, tag))
        if not lane:
            return None
        # Non-destructive for live entries, but dead heads can be dropped.
        while lane:
            entry = lane[0]
            if entry[_ALIVE]:
                return entry[_ITEM]
            lane.popleft()
        return None

    def drain_unexpected(self) -> List["Envelope"]:
        """Remove and return every pending unexpected envelope, in arrival
        order (end-of-run teardown: the PML returns them to its arena)."""
        seen: Dict[int, list] = {}
        for lane in self._unexpected_lanes.values():
            for e in lane:
                if e[_ALIVE]:
                    seen[e[_SEQ]] = e
        out: List["Envelope"] = []
        for s in sorted(seen):
            entry = seen[s]
            entry[_ALIVE] = False
            out.append(entry[_ITEM])
            entry[_ITEM] = None
        self._unexpected_lanes.clear()
        self._unexpected_pending = 0
        return out

    def stats(self) -> dict:
        return {
            "unexpected_count": self.unexpected_count,
            "unexpected_peak": self.unexpected_peak,
            "posted_pending": self._posted_pending,
            "unexpected_pending": self._unexpected_pending,
        }


class LinearMatchEngine:
    """The seed engine: linear scans over plain deques.

    Kept as the executable specification of MPI matching semantics; the
    indexed :class:`MatchEngine` must be observationally equivalent (see
    the property tests).  Also the better choice for tiny hand-built
    debugging scenarios where inspecting raw deques beats speed.
    """

    def __init__(self) -> None:
        self.posted: Deque["PmlRecvRequest"] = deque()
        self.unexpected: Deque["Envelope"] = deque()
        self.unexpected_count = 0
        self.unexpected_peak = 0

    # ----------------------------------------------------------- post side
    def post(self, recv: "PmlRecvRequest") -> Optional["Envelope"]:
        """Register a receive; returns an unexpected envelope if one matches."""
        for i, env in enumerate(self.unexpected):
            if _compatible(recv, env):
                del self.unexpected[i]
                return env
        self.posted.append(recv)
        return None

    def cancel(self, recv: "PmlRecvRequest") -> bool:
        """Remove a posted receive; False if it already matched."""
        try:
            self.posted.remove(recv)
            return True
        except ValueError:
            return False

    # -------------------------------------------------------- arrival side
    def arrive(self, env: "Envelope") -> Optional["PmlRecvRequest"]:
        """Offer an arriving envelope; returns the matching posted receive,
        or None after queuing the envelope as unexpected."""
        for i, recv in enumerate(self.posted):
            if _compatible(recv, env):
                del self.posted[i]
                return recv
        self.unexpected.append(env)
        self.unexpected_count += 1
        self.unexpected_peak = max(self.unexpected_peak, len(self.unexpected))
        return None

    # ------------------------------------------------------------- queries
    def probe(self, ctx, source: int, tag: int) -> Optional["Envelope"]:
        """First unexpected envelope compatible with (ctx, source, tag)."""
        for env in self.unexpected:
            if env.ctx != ctx:
                continue
            if source != ANY_SOURCE and source != env.src_rank:
                continue
            if tag != ANY_TAG and tag != env.tag:
                continue
            return env
        return None

    def drain_unexpected(self) -> List["Envelope"]:
        """Remove and return every pending unexpected envelope, in arrival
        order (end-of-run teardown: the PML returns them to its arena)."""
        out = list(self.unexpected)
        self.unexpected.clear()
        return out

    def stats(self) -> dict:
        return {
            "unexpected_count": self.unexpected_count,
            "unexpected_peak": self.unexpected_peak,
            "posted_pending": len(self.posted),
            "unexpected_pending": len(self.unexpected),
        }
