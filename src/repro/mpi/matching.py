"""Message matching: posted-receive queue and unexpected-message queue.

MPI matching rules implemented here:

* a receive matches a message when contexts are equal, the receive's source
  is :data:`~repro.mpi.status.ANY_SOURCE` or equals the message's source
  rank, and the receive's tag is :data:`~repro.mpi.status.ANY_TAG` or equals
  the message's tag;
* *non-overtaking*: messages are considered in arrival order, receives in
  posting order — the first compatible pair matches;
* a message that matches no posted receive is queued as *unexpected* (the
  paper's §3.1 points out that leader-based replication inflates this queue;
  we count hits so the ablation can measure it).

Two implementations share that contract:

:class:`MatchEngine` (the default) indexes both queues by
``(ctx, source, tag)`` *pattern lanes*.  A posted receive lives in exactly
one lane — the lane of its own pattern, wildcards included.  An arriving
envelope can be claimed by at most four patterns (``(ctx, src, tag)``,
``(ctx, src, ANY)``, ``(ctx, ANY, tag)``, ``(ctx, ANY, ANY)``), so
``arrive`` peeks four lane heads and takes the earliest-posted candidate —
which is exactly the "first compatible receive in posting order" rule.
Symmetrically, an unexpected envelope is registered under all four of its
pattern lanes; ``post`` looks up the single lane of the receive's own
pattern and claims the head.

Structure-of-arrays layout (the run-time working-set pass): entries live
in parallel slot arrays (``seq``/``item`` for posted, ``seq``/``env``/
``refs`` for unexpected) with a free-slot stack, and a lane is a plain
list of slot indices whose element 0 is the head cursor — ``[head, s0,
s1, ...]``.  The previous layout kept one ``deque`` per pattern lane
holding a 3-element list per entry; at 8192+ processes those per-lane
deques (~760 B each, ~tens of lanes per PML) were the single largest
run-time working-set term the profiler found.  A lane list costs ~64 B
and an entry costs two array cells plus one lane int.  Claimed/cancelled
entries are tombstoned in place (``item``/``env`` cell cleared — which
frees the payload immediately) and their slots recycled when they surface
at a lane head, keeping every operation amortized O(1); an unexpected
slot is recycled once all four lanes have dropped their reference
(``refs`` cell).  Drained lanes are truncated back to ``[1]`` and long
dead prefixes compacted, so lane lists cannot grow without bound.

:class:`LinearMatchEngine` is the seed engine's O(n)-scan implementation,
kept as the executable specification: the property tests in
``tests/test_matching_equivalence.py`` drive both engines with randomized
post/arrive/cancel/probe streams (including wildcards) and require
identical pairing decisions, and ``Job(matching="linear")`` runs entire
jobs on it for the fingerprint-equivalence suite.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.mpi.status import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.pml import Envelope, PmlRecvRequest

__all__ = ["MatchEngine", "LinearMatchEngine"]

#: compact a lane's dead prefix once the head cursor passes this depth
_COMPACT_AT = 32


def _compatible(recv: "PmlRecvRequest", env: "Envelope") -> bool:
    if recv.ctx != env.ctx:
        return False
    if recv.source != ANY_SOURCE and recv.source != env.src_rank:
        return False
    if recv.tag != ANY_TAG and recv.tag != env.tag:
        return False
    return True


class MatchEngine:
    """Per-process matching state: (ctx, source, tag) lanes over slot arrays."""

    __slots__ = (
        "_posted_lanes",
        "_posted_entry",
        "_posted_seq",
        "_posted_pending",
        "_p_seq",
        "_p_item",
        "_p_free",
        "_unexpected_lanes",
        "_unexpected_seq",
        "_unexpected_pending",
        "_u_seq",
        "_u_env",
        "_u_refs",
        "_u_free",
        "unexpected_count",
        "unexpected_peak",
    )

    def __init__(self) -> None:
        #: posting-order lanes: pattern key -> [head, slot, slot, ...]
        self._posted_lanes: Dict[Tuple, list] = {}
        #: recv identity -> its slot index (for O(1) cancel)
        self._posted_entry: Dict[int, int] = {}
        self._posted_seq = 0
        self._posted_pending = 0
        # posted slot arrays (parallel): posting seq + the request itself;
        # a cleared item cell is a tombstone, recycled via the free stack
        self._p_seq: List[int] = []
        self._p_item: List[Optional["PmlRecvRequest"]] = []
        self._p_free: List[int] = []
        #: arrival-order lanes: pattern key -> [head, slot, slot, ...];
        #: each envelope's slot appears in all four patterns that could
        #: claim it
        self._unexpected_lanes: Dict[Tuple, list] = {}
        self._unexpected_seq = 0
        self._unexpected_pending = 0
        # unexpected slot arrays (parallel): arrival seq, the envelope
        # (cleared on claim — frees payload while tombstones linger), and
        # the number of lanes still referencing the slot (recycle at 0)
        self._u_seq: List[int] = []
        self._u_env: List[Optional["Envelope"]] = []
        self._u_refs: List[int] = []
        self._u_free: List[int] = []
        #: number of messages that arrived before their receive was posted
        self.unexpected_count = 0
        #: high-water mark of the unexpected queue
        self.unexpected_peak = 0

    # ----------------------------------------------------- diagnostic views
    @property
    def posted(self) -> List["PmlRecvRequest"]:
        """Pending posted receives in posting order (diagnostics/tests)."""
        seqs = self._p_seq
        live = [
            (seqs[slot], item)
            for slot, item in enumerate(self._p_item)
            if item is not None
        ]
        live.sort(key=lambda e: e[0])
        return [item for _s, item in live]

    @property
    def unexpected(self) -> List["Envelope"]:
        """Pending unexpected envelopes in arrival order (diagnostics/tests)."""
        seqs = self._u_seq
        live = [
            (seqs[slot], env)
            for slot, env in enumerate(self._u_env)
            if env is not None
        ]
        live.sort(key=lambda e: e[0])
        return [env for _s, env in live]

    # ----------------------------------------------------------- post side
    def post(self, recv: "PmlRecvRequest") -> Optional["Envelope"]:
        """Register a receive; returns an unexpected envelope if one matches."""
        key = (recv.ctx, recv.source, recv.tag)
        lane = self._unexpected_lanes.get(key)
        if lane is not None:
            u_env = self._u_env
            u_refs = self._u_refs
            u_free = self._u_free
            h = lane[0]
            n = len(lane)
            claimed = None
            while h < n:
                slot = lane[h]
                h += 1
                env = u_env[slot]
                # This lane drops its reference whether the slot is a
                # tombstone being compacted or the live head being claimed.
                r = u_refs[slot] - 1
                u_refs[slot] = r
                if env is not None:
                    # Clearing the env cell frees the envelope's payload
                    # now, even though the other three lanes only drop
                    # their tombstones when they surface at a head.
                    u_env[slot] = None
                    if r == 0:
                        u_free.append(slot)
                    claimed = env
                    break
                if r == 0:
                    u_free.append(slot)
            if h >= n:
                del lane[1:]
                lane[0] = 1
            elif h > _COMPACT_AT:
                del lane[1:h]
                lane[0] = 1
            else:
                lane[0] = h
            if claimed is not None:
                self._unexpected_pending -= 1
                return claimed
        self._posted_seq += 1
        p_free = self._p_free
        if p_free:
            slot = p_free.pop()
            self._p_seq[slot] = self._posted_seq
            self._p_item[slot] = recv
        else:
            slot = len(self._p_seq)
            self._p_seq.append(self._posted_seq)
            self._p_item.append(recv)
        posted_lane = self._posted_lanes.get(key)
        if posted_lane is None:
            posted_lane = self._posted_lanes[key] = [1]
        posted_lane.append(slot)
        self._posted_entry[id(recv)] = slot
        self._posted_pending += 1
        return None

    def cancel(self, recv: "PmlRecvRequest") -> bool:
        """Remove a posted receive; False if it already matched."""
        slot = self._posted_entry.pop(id(recv), None)
        if slot is None:
            return False
        # Tombstone in place; the slot recycles when it surfaces at its
        # lane's head (arrive/post head-compaction).
        self._p_item[slot] = None
        self._posted_pending -= 1
        return True

    # -------------------------------------------------------- arrival side
    def arrive(self, env: "Envelope") -> Optional["PmlRecvRequest"]:
        """Offer an arriving envelope; returns the matching posted receive,
        or None after queuing the envelope as unexpected."""
        ctx = env.ctx
        src = env.src_rank
        tag = env.tag
        lanes = self._posted_lanes
        p_item = self._p_item
        p_seq = self._p_seq
        p_free = self._p_free
        best_seq = 0
        best_lane = None
        best_slot = -1
        for key in (
            (ctx, src, tag),
            (ctx, src, ANY_TAG),
            (ctx, ANY_SOURCE, tag),
            (ctx, ANY_SOURCE, ANY_TAG),
        ):
            lane = lanes.get(key)
            if lane is None:
                continue
            h = lane[0]
            n = len(lane)
            # Drop tombstones (matched or cancelled receives) at the head,
            # recycling their slots.
            while h < n:
                slot = lane[h]
                if p_item[slot] is not None:
                    break
                p_free.append(slot)
                h += 1
            if h >= n:
                if n > 1:
                    del lane[1:]
                lane[0] = 1
                continue
            if h > _COMPACT_AT:
                del lane[1:h]
                lane[0] = 1
            else:
                lane[0] = h
            slot = lane[lane[0]]
            s = p_seq[slot]
            if best_lane is None or s < best_seq:
                best_seq = s
                best_lane = lane
                best_slot = slot
        if best_lane is not None:
            recv = p_item[best_slot]
            p_item[best_slot] = None
            p_free.append(best_slot)
            h = best_lane[0] + 1
            if h >= len(best_lane):
                del best_lane[1:]
                best_lane[0] = 1
            else:
                best_lane[0] = h
            del self._posted_entry[id(recv)]
            self._posted_pending -= 1
            return recv
        # Unexpected: register the slot under every pattern that could
        # later claim it (four lane references).
        self._unexpected_seq += 1
        u_free = self._u_free
        if u_free:
            slot = u_free.pop()
            self._u_seq[slot] = self._unexpected_seq
            self._u_env[slot] = env
            self._u_refs[slot] = 4
        else:
            slot = len(self._u_seq)
            self._u_seq.append(self._unexpected_seq)
            self._u_env.append(env)
            self._u_refs.append(4)
        ulanes = self._unexpected_lanes
        for key in (
            (ctx, src, tag),
            (ctx, src, ANY_TAG),
            (ctx, ANY_SOURCE, tag),
            (ctx, ANY_SOURCE, ANY_TAG),
        ):
            lane = ulanes.get(key)
            if lane is None:
                lane = ulanes[key] = [1]
            lane.append(slot)
        self._unexpected_pending += 1
        self.unexpected_count += 1
        if self._unexpected_pending > self.unexpected_peak:
            self.unexpected_peak = self._unexpected_pending
        return None

    # ------------------------------------------------------------- queries
    def probe(self, ctx, source: int, tag: int) -> Optional["Envelope"]:
        """First unexpected envelope compatible with (ctx, source, tag)."""
        lane = self._unexpected_lanes.get((ctx, source, tag))
        if lane is None:
            return None
        u_env = self._u_env
        u_refs = self._u_refs
        u_free = self._u_free
        h = lane[0]
        n = len(lane)
        # Non-destructive for live entries, but dead heads can be dropped.
        while h < n:
            slot = lane[h]
            env = u_env[slot]
            if env is not None:
                lane[0] = h
                return env
            r = u_refs[slot] - 1
            u_refs[slot] = r
            if r == 0:
                u_free.append(slot)
            h += 1
        del lane[1:]
        lane[0] = 1
        return None

    def drain_unexpected(self) -> List["Envelope"]:
        """Remove and return every pending unexpected envelope, in arrival
        order (end-of-run teardown: the PML returns them to its arena)."""
        u_env = self._u_env
        u_seq = self._u_seq
        live = [
            (u_seq[slot], env) for slot, env in enumerate(u_env) if env is not None
        ]
        live.sort(key=lambda e: e[0])
        out = [env for _s, env in live]
        self._unexpected_lanes.clear()
        del u_env[:]
        del u_seq[:]
        del self._u_refs[:]
        del self._u_free[:]
        self._unexpected_pending = 0
        return out

    def stats(self) -> dict:
        return {
            "unexpected_count": self.unexpected_count,
            "unexpected_peak": self.unexpected_peak,
            "posted_pending": self._posted_pending,
            "unexpected_pending": self._unexpected_pending,
        }


class LinearMatchEngine:
    """The seed engine: linear scans over plain deques.

    Kept as the executable specification of MPI matching semantics; the
    indexed :class:`MatchEngine` must be observationally equivalent (see
    the property tests).  Also the better choice for tiny hand-built
    debugging scenarios where inspecting raw deques beats speed.
    """

    def __init__(self) -> None:
        self.posted: Deque["PmlRecvRequest"] = deque()
        self.unexpected: Deque["Envelope"] = deque()
        self.unexpected_count = 0
        self.unexpected_peak = 0

    # ----------------------------------------------------------- post side
    def post(self, recv: "PmlRecvRequest") -> Optional["Envelope"]:
        """Register a receive; returns an unexpected envelope if one matches."""
        for i, env in enumerate(self.unexpected):
            if _compatible(recv, env):
                del self.unexpected[i]
                return env
        self.posted.append(recv)
        return None

    def cancel(self, recv: "PmlRecvRequest") -> bool:
        """Remove a posted receive; False if it already matched."""
        try:
            self.posted.remove(recv)
            return True
        except ValueError:
            return False

    # -------------------------------------------------------- arrival side
    def arrive(self, env: "Envelope") -> Optional["PmlRecvRequest"]:
        """Offer an arriving envelope; returns the matching posted receive,
        or None after queuing the envelope as unexpected."""
        for i, recv in enumerate(self.posted):
            if _compatible(recv, env):
                del self.posted[i]
                return recv
        self.unexpected.append(env)
        self.unexpected_count += 1
        self.unexpected_peak = max(self.unexpected_peak, len(self.unexpected))
        return None

    # ------------------------------------------------------------- queries
    def probe(self, ctx, source: int, tag: int) -> Optional["Envelope"]:
        """First unexpected envelope compatible with (ctx, source, tag)."""
        for env in self.unexpected:
            if env.ctx != ctx:
                continue
            if source != ANY_SOURCE and source != env.src_rank:
                continue
            if tag != ANY_TAG and tag != env.tag:
                continue
            return env
        return None

    def drain_unexpected(self) -> List["Envelope"]:
        """Remove and return every pending unexpected envelope, in arrival
        order (end-of-run teardown: the PML returns them to its arena)."""
        out = list(self.unexpected)
        self.unexpected.clear()
        return out

    def stats(self) -> dict:
        return {
            "unexpected_count": self.unexpected_count,
            "unexpected_peak": self.unexpected_peak,
            "posted_pending": len(self.posted),
            "unexpected_pending": len(self.unexpected),
        }
