"""Message matching: posted-receive queue and unexpected-message queue.

MPI matching rules implemented here:

* a receive matches a message when contexts are equal, the receive's source
  is :data:`~repro.mpi.status.ANY_SOURCE` or equals the message's source
  rank, and the receive's tag is :data:`~repro.mpi.status.ANY_TAG` or equals
  the message's tag;
* *non-overtaking*: messages are considered in arrival order, receives in
  posting order — the first compatible pair matches;
* a message that matches no posted receive is queued as *unexpected* (the
  paper's §3.1 points out that leader-based replication inflates this queue;
  we count hits so the ablation can measure it).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, TYPE_CHECKING

from repro.mpi.status import ANY_SOURCE, ANY_TAG

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.pml import Envelope, PmlRecvRequest

__all__ = ["MatchEngine"]


def _compatible(recv: "PmlRecvRequest", env: "Envelope") -> bool:
    if recv.ctx != env.ctx:
        return False
    if recv.source != ANY_SOURCE and recv.source != env.src_rank:
        return False
    if recv.tag != ANY_TAG and recv.tag != env.tag:
        return False
    return True


class MatchEngine:
    """Per-process matching state."""

    def __init__(self) -> None:
        self.posted: Deque["PmlRecvRequest"] = deque()
        self.unexpected: Deque["Envelope"] = deque()
        #: number of messages that arrived before their receive was posted
        self.unexpected_count = 0
        #: high-water mark of the unexpected queue
        self.unexpected_peak = 0

    # ----------------------------------------------------------- post side
    def post(self, recv: "PmlRecvRequest") -> Optional["Envelope"]:
        """Register a receive; returns an unexpected envelope if one matches."""
        for i, env in enumerate(self.unexpected):
            if _compatible(recv, env):
                del self.unexpected[i]
                return env
        self.posted.append(recv)
        return None

    def cancel(self, recv: "PmlRecvRequest") -> bool:
        """Remove a posted receive; False if it already matched."""
        try:
            self.posted.remove(recv)
            return True
        except ValueError:
            return False

    # -------------------------------------------------------- arrival side
    def arrive(self, env: "Envelope") -> Optional["PmlRecvRequest"]:
        """Offer an arriving envelope; returns the matching posted receive,
        or None after queuing the envelope as unexpected."""
        for i, recv in enumerate(self.posted):
            if _compatible(recv, env):
                del self.posted[i]
                return recv
        self.unexpected.append(env)
        self.unexpected_count += 1
        self.unexpected_peak = max(self.unexpected_peak, len(self.unexpected))
        return None

    # ------------------------------------------------------------- queries
    def probe(self, ctx, source: int, tag: int) -> Optional["Envelope"]:
        """First unexpected envelope compatible with (ctx, source, tag)."""
        for env in self.unexpected:
            if env.ctx != ctx:
                continue
            if source != ANY_SOURCE and source != env.src_rank:
                continue
            if tag != ANY_TAG and tag != env.tag:
                continue
            return env
        return None

    def stats(self) -> dict:
        return {
            "unexpected_count": self.unexpected_count,
            "unexpected_peak": self.unexpected_peak,
            "posted_pending": len(self.posted),
            "unexpected_pending": len(self.unexpected),
        }
