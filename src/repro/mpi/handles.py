"""Stock application-level completion handles.

These are the request objects the MPI wait loops poll: a
:class:`SendHandle` aggregates library-level send requests plus protocol
completion conditions (SDR-MPI's "all r-1 acks collected"), a
:class:`RecvHandle` wraps one PML receive request.  They live in
:mod:`repro.mpi` (rather than with the protocol interposition contract in
:mod:`repro.core.interpose`, which re-exports them) so the API facade's
blocking fast paths can specialize on the stock types without creating an
import cycle.

Contract notes for subclasses:

* ``advance()`` returns ``None`` when there is no per-iteration work (the
  stock behaviour) or a generator the wait loop must drive;
* ``needs_advance`` is a class flag mirroring that: the wait loops skip
  the ``advance()`` call entirely when it is False;
* the blocking fast paths inline the *stock* ``done`` predicate only when
  ``type(handle).done is SendHandle.done`` — overriding ``done`` in a
  subclass safely falls back to the generic loop.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional, TYPE_CHECKING

from repro.mpi.status import Status

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from repro.mpi.pml import PmlRecvRequest, PmlSendRequest

__all__ = ["SendHandle", "RecvHandle"]


class SendHandle:
    """Application-level send completion handle.

    ``done`` is MPI_Wait's predicate for the send: the library-level sends
    have completed *and* every protocol condition holds.  ``needs_ack`` is
    populated by parallel protocols (empty for native/mirror).
    """

    __slots__ = ("pml_reqs", "needs_ack", "status", "world_dst", "seq", "payload", "nbytes")

    #: class flag: no per-iteration advance work (wait loops skip the call)
    needs_advance = False

    def __init__(
        self,
        pml_reqs: List["PmlSendRequest"],
        world_dst: int,
        seq: int,
        payload: Any = None,
        nbytes: int = 0,
    ) -> None:
        self.pml_reqs = pml_reqs
        self.needs_ack: set = set()
        self.status: Optional[Status] = None
        self.world_dst = world_dst
        self.seq = seq
        self.payload = payload
        self.nbytes = nbytes

    @property
    def done(self) -> bool:
        if self.needs_ack:
            return False
        reqs = self.pml_reqs
        if len(reqs) == 1:
            return reqs[0].done
        return all(r.done for r in reqs)

    def advance(self) -> Optional[Generator]:
        return None


class RecvHandle:
    """Application-level receive handle wrapping a PML receive request."""

    __slots__ = ("pml_req",)

    #: class flag: no per-iteration advance work (wait loops skip the call)
    needs_advance = False

    def __init__(self, pml_req: "PmlRecvRequest") -> None:
        self.pml_req = pml_req

    @property
    def done(self) -> bool:
        return self.pml_req.done

    @property
    def data(self) -> Any:
        return self.pml_req.data

    @property
    def status(self) -> Optional[Status]:
        return self.pml_req.status

    def advance(self) -> Optional[Generator]:
        return None
