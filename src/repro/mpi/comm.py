"""Communicators.

A communicator binds an ordered member list (world-logical ranks) to a
*context id* separating its matching space from every other communicator.

Context ids are **genealogy tuples**, not a mutable global counter: a child
context is ``parent_ctx + (op, seq[, color])`` where ``seq`` is the parent's
per-communicator construction counter.  Because MPI requires all members to
invoke communicator operations in the same order, every process derives the
same tuple — and, crucially for replication, every *replica world* derives
the same tuple, so cross-world traffic after a failover still matches
(§4.1, Fig. 6).

Point-to-point and collective traffic use disjoint sub-contexts of each
communicator so application tags can never collide with internal collective
tags (Open MPI does the same with separate context id halves).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.mpi.errors import RankError
from repro.mpi.group import Group, UNDEFINED

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.api import MpiProcess

__all__ = ["Communicator", "IdentityRankMap", "shared_world"]


class IdentityRankMap:
    """Dict-shaped flyweight for the world→rank map of an identity communicator.

    The world communicator maps world rank *w* to communicator rank *w* on
    every process, so materializing a ``{w: w}`` dict per process costs
    O(world_size) bytes × n_procs — the dominant construction footprint at
    scale before this class existed.  One shared instance answers the same
    queries arithmetically.
    """

    __slots__ = ("n",)

    def __init__(self, n: int) -> None:
        self.n = n

    def get(self, world_rank: Any, default: Any = None) -> Any:
        if type(world_rank) is int and 0 <= world_rank < self.n:
            return world_rank
        return default

    def __getitem__(self, world_rank: int) -> int:
        if type(world_rank) is int and 0 <= world_rank < self.n:
            return world_rank
        raise KeyError(world_rank)

    def __contains__(self, world_rank: Any) -> bool:
        return type(world_rank) is int and 0 <= world_rank < self.n

    def __len__(self) -> int:
        return self.n

    def __iter__(self):
        return iter(range(self.n))

    def keys(self):
        return range(self.n)

    def values(self):
        return range(self.n)

    def items(self):
        return ((w, w) for w in range(self.n))


def shared_world(world_size: int) -> Tuple[Tuple[int, ...], IdentityRankMap]:
    """One (members, rank_map) pair for *every* process of a job to share.

    Built once per :class:`~repro.harness.runner.Job` and handed to each
    :class:`~repro.mpi.api.MpiProcess`: the per-process world communicator
    then holds two references instead of an O(world_size) tuple + dict of
    its own.
    """
    return tuple(range(world_size)), IdentityRankMap(world_size)


class Communicator:
    """An ordered process group plus an isolated matching context."""

    __slots__ = (
        "api",
        "ctx",
        "members",
        "_world_to_rank",
        "rank",
        "ctx_p2p",
        "ctx_coll",
        "_child_seq",
        "_coll_seq",
    )

    def __init__(
        self,
        api: "MpiProcess",
        ctx: Tuple,
        members: Sequence[int],
        rank_map: Optional[Mapping[int, int]] = None,
    ) -> None:
        self.api = api
        self.ctx = tuple(ctx)
        #: ``tuple(t)`` returns *t* itself, so a shared members tuple (see
        #: :func:`shared_world`) is stored by reference, never copied
        self.members: Tuple[int, ...] = tuple(members)
        if rank_map is None:
            rank_map = {w: r for r, w in enumerate(self.members)}
        self._world_to_rank: Mapping[int, int] = rank_map
        me = api.world_rank
        if me not in self._world_to_rank:
            raise RankError(f"world rank {me} is not a member of {self.ctx}")
        self.rank = self._world_to_rank[me]
        #: matching context for application point-to-point traffic
        self.ctx_p2p = self.ctx + ("p",)
        #: matching context for internal collective traffic
        self.ctx_coll = self.ctx + ("c",)
        self._child_seq = 0
        self._coll_seq = 0

    # ------------------------------------------------------------- queries
    @property
    def size(self) -> int:
        return len(self.members)

    def world_of(self, rank: int) -> int:
        """World-logical rank of communicator rank *rank*."""
        if not (0 <= rank < self.size):
            raise RankError(f"rank {rank} outside communicator of size {self.size}")
        return self.members[rank]

    def rank_of_world(self, world_rank: int) -> Optional[int]:
        return self._world_to_rank.get(world_rank)

    @property
    def group(self) -> Group:
        return Group(self.members)

    def __repr__(self) -> str:
        return f"<Communicator ctx={self.ctx} rank={self.rank}/{self.size}>"

    # ----------------------------------------------------------- internals
    def next_child_ctx(self, op: str, *extra: Any) -> Tuple:
        self._child_seq += 1
        return self.ctx + ((op, self._child_seq) + tuple(extra),)

    def next_coll_tag(self) -> int:
        """Tag for the next collective; all ranks agree by call order."""
        self._coll_seq += 1
        return self._coll_seq

    # -------------------------------------------------------- constructions
    def dup(self) -> Generator[Any, Any, "Communicator"]:
        """MPI_Comm_dup: same members, fresh context (collective)."""
        ctx = self.next_child_ctx("dup")
        # Synchronize like a real dup (context agreement is collective).
        yield from self.api.barrier(comm=self)
        # Same members, so the rank map is reusable (shared or private).
        return Communicator(self.api, ctx, self.members, rank_map=self._world_to_rank)

    def split(self, color: int, key: int) -> Generator[Any, Any, Optional["Communicator"]]:
        """MPI_Comm_split (collective).

        Members of each color are ordered by (key, parent rank).  A color
        of ``UNDEFINED`` yields None for that caller.
        """
        pairs = yield from self.api.allgather((color, key), comm=self)
        ctx_seq = self._child_seq + 1
        self._child_seq = ctx_seq
        if color == UNDEFINED:
            return None
        ordered = sorted(
            (pair_key, parent_rank)
            for parent_rank, (pair_color, pair_key) in enumerate(pairs)
            if pair_color == color
        )
        members = [self.members[parent_rank] for _key, parent_rank in ordered]
        ctx = self.ctx + (("split", ctx_seq, color),)
        return Communicator(self.api, ctx, members)

    def create(self, group: Group) -> Generator[Any, Any, Optional["Communicator"]]:
        """MPI_Comm_create (collective over this communicator)."""
        for w in group.members:
            if w not in self._world_to_rank:
                raise RankError(f"group member {w} not in parent communicator")
        ctx = self.next_child_ctx("create", group.members)
        yield from self.api.barrier(comm=self)
        if self.api.world_rank not in group:
            return None
        return Communicator(self.api, ctx, group.members)
