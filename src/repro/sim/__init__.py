"""Deterministic discrete-event simulation kernel.

A minimal, dependency-free cooperative simulation engine in the style of
SimPy.  Application code runs as generator-based :class:`~repro.sim.process.Process`
objects scheduled by a :class:`~repro.sim.kernel.Simulator` with a virtual
clock.  All scheduling is deterministic: events firing at the same virtual
time are ordered by a monotonically increasing sequence number, so two runs
of the same program produce bit-identical event orders.

The kernel knows nothing about MPI or networks; those live in
:mod:`repro.network` and :mod:`repro.mpi`.
"""

from repro.sim.kernel import Simulator, SimulationError, StopSimulation
from repro.sim.process import Process, ProcessCrashed, ProcessFailure
from repro.sim.sync import AllOf, AnyOf, Event, Interrupt, Mailbox, Timeout
from repro.sim.rng import RngRegistry

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Mailbox",
    "Process",
    "ProcessCrashed",
    "ProcessFailure",
    "RngRegistry",
    "SimulationError",
    "Simulator",
    "StopSimulation",
    "Timeout",
]
