"""Generator-based cooperative processes.

A process wraps a generator.  Each time the generator yields an
:class:`~repro.sim.sync.Event`, the process suspends until the event fires;
the event's value is sent back into the generator (failures are thrown in).
``yield from`` composes sub-generators naturally, which is how the MPI API
facade exposes blocking calls.

A process may also yield a bare non-negative ``float``/``int``: a *CPU
charge*.  The process is then scheduled directly on the kernel queue
(heap for positive charges, the near-horizon bucket for zero charges) and
resumed (with ``None``) that many virtual seconds later — observationally
identical to yielding ``Timeout(sim, seconds)``, including the dispatched
event count and FIFO sequencing, but without allocating an event or
running the callback machinery.  CPU-overhead charges are the single most
common event in MPI-heavy workloads, which makes this fast path worth its
special case.

Crash injection: :meth:`Process.crash` throws :class:`ProcessCrashed` into
the generator at the *current* simulation time, modelling fail-stop
behaviour.  A crashed process never runs again.  A charge-scheduled heap
entry for a crashed process fires as a no-op (and is still counted, just
as a dead process's pending Timeout would be).
"""

from __future__ import annotations

from heapq import heappush
from typing import Any, Callable, Generator, Optional

from repro.sim.kernel import Simulator, SimulationError
from repro.sim.sync import Event, Interrupt

__all__ = ["Process", "ProcessCrashed", "ProcessFailure"]


class _Charging:
    """Sentinel ``_waiting_on`` marker while a process sleeps on a charge."""

    label = "cpu-charge"
    triggered = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<charging>"


_CHARGING = _Charging()


class ProcessCrashed(Interrupt):
    """Thrown into a process generator to model a fail-stop crash."""


class ProcessFailure(RuntimeError):
    """Wraps an exception that escaped a process generator."""

    def __init__(self, process: "Process", cause: BaseException) -> None:
        super().__init__(f"process {process.name!r} died: {cause!r}")
        self.process = process
        self.cause = cause


class Process:
    """A cooperative process driven by the simulator.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The process body.  It may yield Events and return a final value.
    name:
        Human-readable identifier used in traces and error messages.
    on_exit:
        Optional callback invoked as ``on_exit(process)`` when the body
        returns, raises, or crashes.
    """

    __slots__ = (
        "sim",
        "name",
        "_gen",
        "_send",
        "_throw",
        "_resume_cb",
        "_waiting_on",
        "alive",
        "crashed",
        "value",
        "exception",
        "terminated",
        "on_exit",
    )

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        on_exit: Optional[Callable[["Process"], None]] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process body must be a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.name = name
        self._gen = generator
        # Resuming is the single hottest call in the simulator: one per
        # dispatched event.  Bind the generator entry points and our own
        # callback once instead of materializing bound methods per event.
        self._send = generator.send
        self._throw = generator.throw
        self._resume_cb = self._resume
        self._waiting_on: Optional[Event] = None
        self.alive = True
        self.crashed = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        #: Event fired when the process terminates (for joins).
        self.terminated = Event(sim, label=f"terminated({name})")
        self.on_exit = on_exit
        # Kick off at the current time via the event queue so construction
        # order, not construction *site*, determines first-step order.
        # The start event completes immediately and nothing can ever block
        # on it, so it shares the process's name string instead of
        # allocating a per-process f-string label.
        start = Event(sim, label=name)
        start.add_callback(self._resume_cb)
        start.succeed(None)

    #: charge heap entries are never revoked (fire() guards on alive)
    cancelled = False

    # ------------------------------------------------------------- stepping
    def _resume(self, ev: Event) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        try:
            # ev is always completed here (it just fired), so read the
            # slots directly rather than going through the checking
            # properties.
            if ev._ok:
                target = self._send(ev._value)
            else:
                target = self._throw(ev._value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except ProcessCrashed:
            self._finish(crashed=True)
            return
        except BaseException as exc:  # noqa: BLE001 - escalate with context
            self._finish(exception=exc)
            return
        # _wait_on inlined: one call per dispatched event.
        if isinstance(target, Event):
            self._waiting_on = target
            if target._fired:
                target.add_callback(self._resume_cb)
            else:
                callbacks = target.callbacks
                if callbacks is None:
                    target.callbacks = [self._resume_cb]
                else:
                    callbacks.append(self._resume_cb)
            return
        cls = type(target)
        if (cls is float or cls is int) and target >= 0:
            sim = self.sim
            if target or not sim._bucketed:
                sim._seq += 1
                heappush(sim._queue, (sim._now + target, sim._seq, self))
            else:
                sim._bucket.append(self)
            self._waiting_on = _CHARGING
            return
        self._wait_on(target)

    def fire(self) -> None:
        """Kernel entry point when this process was charge-scheduled.

        Equivalent to a Timeout with value ``None`` firing: resume the
        generator, then wait on whatever it yields next.
        """
        if not self.alive:
            return
        self._waiting_on = None
        try:
            target = self._send(None)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except ProcessCrashed:
            self._finish(crashed=True)
            return
        except BaseException as exc:  # noqa: BLE001 - escalate with context
            self._finish(exception=exc)
            return
        # _wait_on inlined: one call per dispatched event.
        if isinstance(target, Event):
            self._waiting_on = target
            if target._fired:
                target.add_callback(self._resume_cb)
            else:
                callbacks = target.callbacks
                if callbacks is None:
                    target.callbacks = [self._resume_cb]
                else:
                    callbacks.append(self._resume_cb)
            return
        cls = type(target)
        if (cls is float or cls is int) and target >= 0:
            sim = self.sim
            if target or not sim._bucketed:
                sim._seq += 1
                heappush(sim._queue, (sim._now + target, sim._seq, self))
            else:
                sim._bucket.append(self)
            self._waiting_on = _CHARGING
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        """Suspend until *target* — an Event, or a float/int CPU charge."""
        if isinstance(target, Event):
            self._waiting_on = target
            # Event.add_callback inlined (one call per dispatched event):
            # the immediate-run path for already-fired events falls back to
            # the real method.
            if target._fired:
                target.add_callback(self._resume_cb)
            else:
                callbacks = target.callbacks
                if callbacks is None:
                    target.callbacks = [self._resume_cb]
                else:
                    callbacks.append(self._resume_cb)
            return
        cls = type(target)
        if (cls is float or cls is int) and target >= 0:
            # CPU charge: schedule this process directly (see module docs).
            sim = self.sim
            if target or not sim._bucketed:
                sim._seq += 1
                heappush(sim._queue, (sim._now + target, sim._seq, self))
            else:
                sim._bucket.append(self)
            self._waiting_on = _CHARGING
            return
        # Blocker protocol: an object (e.g. a fabric endpoint) that parks
        # the process itself and later schedules it directly — the
        # allocation-free analogue of yielding one of its waiter events.
        block = getattr(target, "block_process", None)
        if block is not None:
            self._waiting_on = target
            block(self)
            return
        self._finish(
            exception=SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances, non-negative float/int CPU "
                "charges, or blockers (use `yield from` for sub-generators)"
            )
        )

    def _finish(
        self,
        value: Any = None,
        exception: Optional[BaseException] = None,
        crashed: bool = False,
    ) -> None:
        self.alive = False
        self.crashed = crashed
        self.value = value
        self.exception = exception
        self._gen.close()
        if self.on_exit is not None:
            self.on_exit(self)
        if exception is not None:
            # Fail the join event so waiters see the error; if nobody joins,
            # surface it loudly instead of dying silently.
            self.terminated.fail(ProcessFailure(self, exception))
        else:
            self.terminated.succeed(value)

    # ------------------------------------------------------------ interface
    def crash(self) -> None:
        """Fail-stop this process immediately (idempotent)."""
        if not self.alive:
            return
        if self._waiting_on is not None and not self._waiting_on.triggered:
            # Detach: deliver the crash via a dedicated event so we do not
            # mutate the event the process was waiting on.
            waiting = self._waiting_on
            self._waiting_on = None
            try:
                self._gen.throw(ProcessCrashed())
            except (StopIteration, ProcessCrashed):
                pass
            except BaseException:  # noqa: BLE001 - crash wins over cleanup errors
                pass
            self._finish(crashed=True)
        else:
            # Process is on the run queue (event triggered but not fired):
            # mark dead; _resume guards on self.alive.
            try:
                self._gen.throw(ProcessCrashed())
            except (StopIteration, ProcessCrashed):
                pass
            except BaseException:  # noqa: BLE001
                pass
            self._finish(crashed=True)

    def abandon(self) -> None:
        """Tear down a process that will never run again (idempotent).

        End-of-run cleanup for blocked survivors of lost-rank scenarios:
        closing the generator unwinds it with ``GeneratorExit``, so the
        ownership guards in the PML receive pipeline see the abandonment
        and strand-account whatever the process was borrowing.  Unlike
        :meth:`crash`, no ``ProcessCrashed`` is delivered and the
        ``terminated`` event does not fire — the simulation is already
        over and nobody is left to observe either.
        """
        if not self.alive:
            return
        self.alive = False
        self._waiting_on = None
        self._gen.close()

    def join(self) -> Event:
        """Event that fires when this process terminates."""
        return self.terminated

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else ("crashed" if self.crashed else "done")
        return f"<Process {self.name!r} {state}>"
