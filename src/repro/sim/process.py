"""Generator-based cooperative processes.

A process wraps a generator.  Each time the generator yields an
:class:`~repro.sim.sync.Event`, the process suspends until the event fires;
the event's value is sent back into the generator (failures are thrown in).
``yield from`` composes sub-generators naturally, which is how the MPI API
facade exposes blocking calls.

Crash injection: :meth:`Process.crash` throws :class:`ProcessCrashed` into
the generator at the *current* simulation time, modelling fail-stop
behaviour.  A crashed process never runs again.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.sim.kernel import Simulator, SimulationError
from repro.sim.sync import Event, Interrupt

__all__ = ["Process", "ProcessCrashed", "ProcessFailure"]


class ProcessCrashed(Interrupt):
    """Thrown into a process generator to model a fail-stop crash."""


class ProcessFailure(RuntimeError):
    """Wraps an exception that escaped a process generator."""

    def __init__(self, process: "Process", cause: BaseException) -> None:
        super().__init__(f"process {process.name!r} died: {cause!r}")
        self.process = process
        self.cause = cause


class Process:
    """A cooperative process driven by the simulator.

    Parameters
    ----------
    sim:
        Owning simulator.
    generator:
        The process body.  It may yield Events and return a final value.
    name:
        Human-readable identifier used in traces and error messages.
    on_exit:
        Optional callback invoked as ``on_exit(process)`` when the body
        returns, raises, or crashes.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[Event, Any, Any],
        name: str = "proc",
        on_exit: Optional[Callable[["Process"], None]] = None,
    ) -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process body must be a generator, got {type(generator).__name__}; "
                "did you forget to call the generator function?"
            )
        self.sim = sim
        self.name = name
        self._gen = generator
        self._waiting_on: Optional[Event] = None
        self.alive = True
        self.crashed = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None
        #: Event fired when the process terminates (for joins).
        self.terminated = Event(sim, label=f"terminated({name})")
        self.on_exit = on_exit
        # Kick off at the current time via the event queue so construction
        # order, not construction *site*, determines first-step order.
        start = Event(sim, label=f"start({name})")
        start.add_callback(lambda ev: self._resume(ev))
        start.succeed(None)

    # ------------------------------------------------------------- stepping
    def _resume(self, ev: Event) -> None:
        if not self.alive:
            return
        self._waiting_on = None
        try:
            if ev.ok:
                target = self._gen.send(ev.value)
            else:
                target = self._gen.throw(ev.value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except ProcessCrashed:
            self._finish(crashed=True)
            return
        except BaseException as exc:  # noqa: BLE001 - escalate with context
            self._finish(exception=exc)
            return
        if not isinstance(target, Event):
            self._finish(
                exception=SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes may "
                    "only yield Event instances (use `yield from` for "
                    "sub-generators)"
                )
            )
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def _finish(
        self,
        value: Any = None,
        exception: Optional[BaseException] = None,
        crashed: bool = False,
    ) -> None:
        self.alive = False
        self.crashed = crashed
        self.value = value
        self.exception = exception
        self._gen.close()
        if self.on_exit is not None:
            self.on_exit(self)
        if exception is not None:
            # Fail the join event so waiters see the error; if nobody joins,
            # surface it loudly instead of dying silently.
            self.terminated.fail(ProcessFailure(self, exception))
        else:
            self.terminated.succeed(value)

    # ------------------------------------------------------------ interface
    def crash(self) -> None:
        """Fail-stop this process immediately (idempotent)."""
        if not self.alive:
            return
        if self._waiting_on is not None and not self._waiting_on.triggered:
            # Detach: deliver the crash via a dedicated event so we do not
            # mutate the event the process was waiting on.
            waiting = self._waiting_on
            self._waiting_on = None
            try:
                self._gen.throw(ProcessCrashed())
            except (StopIteration, ProcessCrashed):
                pass
            except BaseException:  # noqa: BLE001 - crash wins over cleanup errors
                pass
            self._finish(crashed=True)
        else:
            # Process is on the run queue (event triggered but not fired):
            # mark dead; _resume guards on self.alive.
            try:
                self._gen.throw(ProcessCrashed())
            except (StopIteration, ProcessCrashed):
                pass
            except BaseException:  # noqa: BLE001
                pass
            self._finish(crashed=True)

    def join(self) -> Event:
        """Event that fires when this process terminates."""
        return self.terminated

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else ("crashed" if self.crashed else "done")
        return f"<Process {self.name!r} {state}>"
