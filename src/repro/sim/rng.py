"""Named deterministic random streams.

Every source of randomness in the simulation (network jitter, fault
schedules, workload data) draws from a named stream derived from a single
job seed.  Streams are independent: perturbing one (e.g. network jitter for
the determinism checker) leaves the others bit-identical.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory of independent, reproducible numpy Generators keyed by name."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for *name*, creating it on first use.

        The stream seed is derived by hashing ``(job_seed, name)`` so adding
        a new stream never shifts existing ones.
        """
        gen = self._streams.get(name)
        if gen is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            gen = np.random.default_rng(int.from_bytes(digest[:8], "little"))
            self._streams[name] = gen
        return gen

    def reseed(self, name: str, seed: int) -> np.random.Generator:
        """Force a specific seed for one stream (used to perturb replays)."""
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        gen = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        self._streams[name] = gen
        return gen
